#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint + smoke
# runs, all offline. This is the command CI and reviewers run; it must
# pass from a clean checkout with no network access.
#
# The pipeline is split into named stages, each timed. Run one stage in
# isolation with VCU_VERIFY_STAGE=<name> (e.g.
# `VCU_VERIFY_STAGE=clippy scripts/verify.sh`); unknown names run
# nothing and fail, so typos can't silently pass.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

STAGE_FILTER="${VCU_VERIFY_STAGE:-}"
CURRENT_STAGE=""
STAGES_RUN=0
trap '[[ -n "$CURRENT_STAGE" ]] && echo "stage $CURRENT_STAGE: FAILED" >&2' ERR

run_stage() {
    local name="$1"
    shift
    if [[ -n "$STAGE_FILTER" && "$STAGE_FILTER" != "$name" ]]; then
        return 0
    fi
    echo "==> stage $name"
    CURRENT_STAGE="$name"
    local t0=$SECONDS
    "$@"
    CURRENT_STAGE=""
    STAGES_RUN=$((STAGES_RUN + 1))
    echo "==> stage $name: OK ($((SECONDS - t0))s)"
}

stage_fmt() {
    cargo fmt --all -- --check
}

stage_build() {
    cargo build --workspace --release --offline
}

stage_test() {
    cargo test -q --workspace --offline
}

stage_clippy() {
    cargo clippy --workspace --all-targets --offline -q -- -D warnings
}

# Smoke-run every example with its built-in fixed seed (VCU_SEED
# unset → defaults), offline; `set -e` fails the stage on any
# non-zero exit. Each prints a one-line JSON summary at the end.
stage_examples() {
    local ex
    for ex in quickstart upload_pipeline live_streaming cloud_gaming failure_drill observe chaos serve; do
        echo "--> example $ex"
        env -u VCU_SEED cargo run -q -p vcu-bench --release --offline --example "$ex" \
            | tail -n 1
    done
}

# Smoke-run every bench binary in its seconds-long configuration
# (tiny fleets, temp-dir JSON) so the binaries and their built-in
# gates (indexed-vs-linear equivalence, graceful-degradation curve,
# thread-count byte-identity) can't rot.
stage_bench_smoke() {
    echo "--> bench_cluster_scale"
    VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_cluster_scale \
        | tail -n 2
    echo "--> bench_fault_campaign"
    VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_fault_campaign \
        | tail -n 3
    echo "--> bench codec"
    VCU_BENCH_SMOKE=1 cargo bench -q -p vcu-bench --offline --bench codec \
        | tail -n 2
}

# Smoke-run the serving campaign: a seconds-long cache sweep whose
# in-binary gates (exact session accounting, monotone hit ratio, no
# TTFF p99 cliff) keep the serving layer honest.
stage_serve_smoke() {
    VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_serve \
        | tail -n 3
}

# Smoke-run the region campaign: a seconds-long two-region sweep whose
# in-binary gates (overflow routing never loses goodput vs isolated
# regions, anti-phased peaks actually route) keep the planet layer
# honest.
stage_region_smoke() {
    VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_region_campaign \
        | tail -n 3
}

# Smoke-run the chip design-space exploration: a seconds-long 3x3
# sweep (encoder cores x DRAM bandwidth through the shipped point)
# whose in-binary gates (byte-identity across executor parallelism,
# shipped-VCU-on-frontier, no dominated point reported) keep the
# co-design loop honest.
stage_dse_smoke() {
    VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_dse \
        | tail -n 3
}

# Compare a fresh smoke bench run against the committed results: a
# >3x throughput regression on any stable row fails the build.
stage_bench_gate() {
    scripts/check_bench.sh
}

# The determinism suite must hold at any thread count: run it once
# sequential and once with 4 encode workers. Byte-identical bitstreams
# and telemetry snapshots are asserted inside the tests.
stage_determinism() {
    local t
    for t in 1 4; do
        echo "--> VCU_THREADS=$t"
        VCU_THREADS=$t cargo test -q -p vcu-system --offline --test determinism \
            | tail -n 2
    done
}

# The pixel-kernel dispatch layer must be byte-invisible: with the
# dispatcher pinned to the scalar reference (VCU_SIMD=off), the golden
# bitstream hashes and the scalar<->SIMD differential suite must pass
# exactly as they do under the best backend (the plain test stage).
stage_simd_off() {
    echo "--> VCU_SIMD=off"
    VCU_SIMD=off cargo test -q -p vcu-system --offline --test golden --test simd \
        | tail -n 4
}

run_stage fmt stage_fmt
run_stage build stage_build
run_stage test stage_test
run_stage clippy stage_clippy
run_stage examples stage_examples
run_stage bench_smoke stage_bench_smoke
run_stage serve_smoke stage_serve_smoke
run_stage region_smoke stage_region_smoke
run_stage dse_smoke stage_dse_smoke
run_stage bench_gate stage_bench_gate
run_stage determinism stage_determinism
run_stage simd_off stage_simd_off

if [[ "$STAGES_RUN" -eq 0 ]]; then
    echo "no stage named '$STAGE_FILTER' (stages: fmt build test clippy examples bench_smoke serve_smoke region_smoke dse_smoke bench_gate determinism simd_off)" >&2
    exit 1
fi
echo "tier-1 verify: OK ($STAGES_RUN stages)"
