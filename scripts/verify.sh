#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint, all
# offline. This is the command CI and reviewers run; it must pass from
# a clean checkout with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -q -- -D warnings

# Smoke-run every example with its built-in fixed seed (VCU_SEED
# unset → defaults), offline; `set -e` fails the script on any
# non-zero exit. Each prints a one-line JSON summary at the end.
echo "==> example smoke runs"
for ex in quickstart upload_pipeline live_streaming cloud_gaming failure_drill observe; do
    echo "--> example $ex"
    env -u VCU_SEED cargo run -q -p vcu-bench --release --offline --example "$ex" \
        | tail -n 1
done

# Smoke-run the warehouse-scale placement bench in its seconds-long
# configuration (tiny fleets, temp-dir JSON) so the binary and its
# indexed-vs-linear equivalence gate can't rot.
echo "==> bench_cluster_scale smoke run"
VCU_BENCH_SMOKE=1 cargo run -q -p vcu-bench --release --offline --bin bench_cluster_scale \
    | tail -n 2

# Smoke-run the codec microbenches (quick mode, temp-dir JSON). This
# exercises every bench row including the chunk-parallel encode ones,
# whose built-in assert pins thread-count byte-identity.
echo "==> bench codec smoke run"
VCU_BENCH_SMOKE=1 cargo bench -q -p vcu-bench --offline --bench codec \
    | tail -n 2

# The determinism suite must hold at any thread count: run it once
# sequential and once with 4 encode workers. Byte-identical bitstreams
# and telemetry snapshots are asserted inside the tests.
echo "==> determinism suite at VCU_THREADS=1 and VCU_THREADS=4"
for t in 1 4; do
    echo "--> VCU_THREADS=$t"
    VCU_THREADS=$t cargo test -q -p vcu-system --offline --test determinism \
        | tail -n 2
done

echo "tier-1 verify: OK"
