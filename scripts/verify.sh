#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint, all
# offline. This is the command CI and reviewers run; it must pass from
# a clean checkout with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -q -- -D warnings

echo "tier-1 verify: OK"
