#!/usr/bin/env bash
# Bench regression gate: run the codec microbenches in smoke mode and
# compare per-row throughput against the committed
# results/bench_codec.json. A row that got more than REGRESSION_FACTOR
# slower fails the build, and a committed row that the fresh run no
# longer produces fails outright (a silently dropped bench is a gate
# with a hole in it).
#
# Rows can only be throughput-compared when both sides carry a
# throughput and the committed median is long enough to be stable
# (throughput is shape-insensitive where raw medians are not — smoke
# runs encode fewer frames; rows with a committed median under
# MIN_MEDIAN_NS are too noisy to gate on). Every skipped row is printed
# with its reason so the gate's blind spots are visible in the log.
#
# Scaling gate: bench JSON records the capture machine's host_cores.
# When both this host and the committed run have >= 4 cores, the
# committed codec/encode_vp9_sw_t4 row must show >= MIN_SCALING x the
# _t1 row's throughput — flat scaling on a multi-core host means the
# parallel encode path is broken. On smaller hosts the gate reports
# itself disarmed instead of pretending flat rows are fine.
#
# Kernel gate: each committed codec/kern_*_{sse2,avx2} row must beat
# its _scalar sibling by KERNEL_MIN_SPEEDUP (a SIMD backend slower
# than the scalar reference means the dispatch layer is shipping
# pessimization). Hosts without the instruction set skip the matching
# rows with the reason printed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

REGRESSION_FACTOR="${VCU_BENCH_GATE_FACTOR:-3.0}"
MIN_MEDIAN_NS=100000 # 100 µs
MIN_SCALING="${VCU_BENCH_MIN_SCALING:-2.0}"
KERNEL_MIN_SPEEDUP="${VCU_KERNEL_MIN_SPEEDUP:-1.5}"
COMMITTED=results/bench_codec.json
FRESH="${TMPDIR:-/tmp}/bench_codec_smoke.json"
HOST_CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

# SIMD features of this host, for the per-backend kernel rows: a host
# without AVX2 cannot emit codec/kern_*_avx2 rows, so those committed
# rows must be exempt from the missing-row check (with the reason
# printed) instead of failing the build.
HOST_SSE2=0
HOST_AVX2=0
if grep -qw sse2 /proc/cpuinfo 2>/dev/null; then HOST_SSE2=1; fi
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then HOST_AVX2=1; fi

if [[ ! -f "$COMMITTED" ]]; then
    echo "check_bench: no committed $COMMITTED, nothing to gate" >&2
    exit 1
fi

echo "--> fresh smoke run"
VCU_BENCH_SMOKE=1 cargo bench -q -p vcu-bench --offline --bench codec >/dev/null
if [[ ! -f "$FRESH" ]]; then
    echo "check_bench: smoke run did not write $FRESH" >&2
    exit 1
fi

# The Harness writes one record per line with a fixed key order, so a
# line-oriented awk join is reliable (no jq in the image).
awk -v factor="$REGRESSION_FACTOR" -v min_median="$MIN_MEDIAN_NS" \
    -v min_scaling="$MIN_SCALING" -v host_cores="$HOST_CORES" \
    -v host_sse2="$HOST_SSE2" -v host_avx2="$HOST_AVX2" \
    -v min_kernel_speedup="$KERNEL_MIN_SPEEDUP" '
    function field(line, key,    s) {
        s = line
        if (!match(s, "\"" key "\": [-0-9.e+]+")) return ""
        s = substr(s, RSTART, RLENGTH)
        sub("\"" key "\": ", "", s)
        return s
    }
    /"host_cores":/ {
        if (FNR == NR) committed_cores = field($0, "host_cores") + 0
    }
    /"name":/ {
        name = $0
        sub(/.*"name": "/, "", name)
        sub(/".*/, "", name)
        if (FNR == NR) {
            order[++n_committed] = name
            committed_tp[name] = field($0, "throughput")
            committed_med[name] = field($0, "median_ns")
        } else {
            fresh_seen[name] = 1
            fresh_tp[name] = field($0, "throughput")
        }
    }
    END {
        compared = 0
        skipped = 0
        worst = 0
        for (i = 1; i <= n_committed; i++) {
            name = order[i]
            if (!(name in fresh_seen)) {
                # Per-backend kernel rows only exist where the CPU has
                # the instruction set; a committed row from a bigger
                # capture host is a visible skip here, not a failure.
                if (name ~ /^codec\/kern_.*_sse2$/ && !host_sse2) {
                    printf "    %-40s SKIPPED: host has no sse2, row cannot exist here\n", name
                    skipped++
                    continue
                }
                if (name ~ /^codec\/kern_.*_avx2$/ && !host_avx2) {
                    printf "    %-40s SKIPPED: host has no avx2, row cannot exist here\n", name
                    skipped++
                    continue
                }
                printf "check_bench: committed row %s missing from fresh run (bench renamed or dropped?)\n", \
                    name > "/dev/stderr"
                bad = 1
                continue
            }
            if (committed_tp[name] == "") {
                printf "    %-40s SKIPPED: committed row has no throughput (no elements count)\n", name
                skipped++
                continue
            }
            if (fresh_tp[name] == "") {
                printf "    %-40s SKIPPED: fresh row has no throughput (no elements count)\n", name
                skipped++
                continue
            }
            if (committed_med[name] + 0 < min_median) {
                printf "    %-40s SKIPPED: committed median %.0f ns under %.0f ns noise floor\n", \
                    name, committed_med[name], min_median
                skipped++
                continue
            }
            ratio = committed_tp[name] / fresh_tp[name]
            compared++
            if (ratio > worst) worst = ratio
            printf "    %-40s committed %12.0f elem/s  fresh %12.0f elem/s  (%.2fx)\n", \
                name, committed_tp[name], fresh_tp[name], ratio
            if (ratio > factor) {
                printf "check_bench: %s regressed %.2fx (> %.1fx budget)\n", name, ratio, factor > "/dev/stderr"
                bad = 1
            }
        }
        if (compared == 0) {
            print "check_bench: no comparable rows between committed and fresh runs" > "/dev/stderr"
            exit 1
        }
        printf "check_bench: %d rows compared, %d skipped, worst ratio %.2fx (budget %.1fx)\n", \
            compared, skipped, worst, factor

        # Scaling gate: committed t4 throughput must beat t1 by
        # min_scaling when both the committed capture machine and this
        # host have the cores to show it.
        t1 = committed_tp["codec/encode_vp9_sw_t1"]
        t4 = committed_tp["codec/encode_vp9_sw_t4"]
        if (committed_cores + 0 >= 4 && host_cores + 0 >= 4) {
            if (t1 == "" || t4 == "") {
                print "check_bench: scaling gate needs encode_vp9_sw_t1 and _t4 rows with throughput" > "/dev/stderr"
                bad = 1
            } else {
                scaling = t4 / t1
                printf "check_bench: scaling gate t4/t1 = %.2fx (floor %.1fx, committed on %d cores)\n", \
                    scaling, min_scaling, committed_cores
                if (scaling < min_scaling) {
                    printf "check_bench: encode_vp9_sw_t4 only %.2fx of _t1 on a %d-core capture host (< %.1fx)\n", \
                        scaling, committed_cores, min_scaling > "/dev/stderr"
                    bad = 1
                }
            }
        } else {
            printf "check_bench: *** SCALING GATE DISARMED *** (committed host_cores=%d, this host=%d; " \
                   "both must be >= 4 — flat multi-core scaling is NOT being checked)\n", \
                committed_cores + 0, host_cores + 0
        }

        # Kernel gate: each committed per-backend kernel row
        # (codec/kern_<k>_{sse2,avx2}) must beat its _scalar sibling by
        # min_kernel_speedup. Committed rows come from full calibrated
        # runs, so the ratios are stable where the smoke rows above are
        # not (microsecond kernels at 1 iteration are pure noise). The
        # rows only exist when the capture host had the instruction
        # set; a committed artifact without them reports the gate
        # disarmed rather than pretending vectorization is checked.
        kern_pairs = 0
        for (i = 1; i <= n_committed; i++) {
            name = order[i]
            if (name !~ /^codec\/kern_.*_(sse2|avx2)$/) continue
            scalar_name = name
            sub(/_(sse2|avx2)$/, "_scalar", scalar_name)
            if (committed_tp[scalar_name] == "" || committed_tp[name] == "") {
                printf "    %-40s SKIPPED: no committed throughput pair with %s\n", name, scalar_name
                continue
            }
            speedup = committed_tp[name] / committed_tp[scalar_name]
            kern_pairs++
            printf "    %-40s %.2fx over %s (floor %.1fx)\n", name, speedup, scalar_name, min_kernel_speedup
            if (speedup < min_kernel_speedup) {
                printf "check_bench: %s is only %.2fx its scalar reference (< %.1fx floor)\n", \
                    name, speedup, min_kernel_speedup > "/dev/stderr"
                bad = 1
            }
        }
        if (kern_pairs == 0) {
            print "check_bench: *** KERNEL GATE DISARMED *** (no committed codec/kern_*_{sse2,avx2} rows; " \
                  "capture host had no SIMD — vectorized speedups are NOT being checked)"
        } else {
            printf "check_bench: kernel gate %d SIMD rows >= %.1fx their scalar siblings\n", \
                kern_pairs, min_kernel_speedup
        }
        exit bad
    }
' "$COMMITTED" "$FRESH"

# The committed bench JSONs were captured on a small host, which keeps
# the scaling gate above disarmed on every run. When the build host has
# the cores to re-arm it, regenerate the three committed artifacts in
# full mode so the next commit carries multi-core rows.
COMMITTED_CORES="$(grep -o '"host_cores": [0-9]*' "$COMMITTED" | head -n 1 | grep -o '[0-9]*$' || echo 0)"
if [[ "$HOST_CORES" -ge 4 && "${COMMITTED_CORES:-0}" -lt 4 ]]; then
    echo "--> committed bench JSONs captured on a ${COMMITTED_CORES}-core host; regenerating on this ${HOST_CORES}-core host"
    cargo bench -q -p vcu-bench --offline --bench codec >/dev/null
    cargo bench -q -p vcu-bench --offline --bench chip_cluster >/dev/null
    cargo run -q -p vcu-bench --release --offline --bin bench_cluster_scale >/dev/null
    echo "check_bench: regenerated results/bench_codec.json, results/bench_chip_cluster.json, results/bench_cluster_scale.json"
    echo "check_bench: commit the regenerated JSONs to arm the multi-core scaling gate"
fi

# Serving-campaign gate: validate the committed
# results/serve_campaign.json artifact. The full sweep is minutes-long
# so no fresh run happens here (bench_serve's smoke gates cover the
# code path); this checks the committed artifact itself — every cell
# carries the full key set with exact session accounting, the largest
# cell demonstrates >= MIN_PEAK peak concurrent viewers, and TTFF p99
# shows no cliff across ascending cache sizes within a sweep group.
# Rows without a same-fleet sweep partner are reported as skipped so
# the gate's blind spots stay visible.
MIN_PEAK="${VCU_SERVE_MIN_PEAK:-1000000}"
TTFF_CLIFF_FACTOR="${VCU_SERVE_TTFF_FACTOR:-1.25}"
TTFF_CLIFF_SLACK_S=0.05
SERVE_COMMITTED=results/serve_campaign.json

if [[ ! -f "$SERVE_COMMITTED" ]]; then
    echo "check_bench: no committed $SERVE_COMMITTED, nothing to gate" >&2
    exit 1
fi

echo "--> serve campaign artifact"
awk -v min_peak="$MIN_PEAK" -v cliff="$TTFF_CLIFF_FACTOR" -v slack="$TTFF_CLIFF_SLACK_S" '
    function field(line, key,    s) {
        s = line
        if (!match(s, "\"" key "\": [-0-9.e+]+")) return ""
        s = substr(s, RSTART, RLENGTH)
        sub("\"" key "\": ", "", s)
        return s
    }
    /"viewers":/ {
        n++
        split("viewers vcus cache_segments arrivals admitted shed completed aborted " \
              "peak_concurrent ttff_p50_s ttff_p99_s rebuffer_ratio rebuffer_events " \
              "hit_ratio transcodes transcode_failures segments_served egress_gb " \
              "egress_cost_usd transcode_cost_usd degraded_frac", keys, " ")
        for (k in keys) {
            if (field($0, keys[k]) == "") {
                printf "check_bench: serve cell %d missing key %s\n", n, keys[k] > "/dev/stderr"
                bad = 1
            }
        }
        viewers[n] = field($0, "viewers") + 0
        vcus[n] = field($0, "vcus") + 0
        cache[n] = field($0, "cache_segments") + 0
        peak[n] = field($0, "peak_concurrent") + 0
        p99[n] = field($0, "ttff_p99_s") + 0
        if (field($0, "arrivals") + 0 != field($0, "admitted") + field($0, "shed")) {
            printf "check_bench: serve cell %d arrivals != admitted + shed\n", n > "/dev/stderr"
            bad = 1
        }
        if (field($0, "admitted") + 0 != field($0, "completed") + field($0, "aborted")) {
            printf "check_bench: serve cell %d admitted != completed + aborted\n", n > "/dev/stderr"
            bad = 1
        }
        if (peak[n] > max_peak) max_peak = peak[n]
    }
    END {
        if (n == 0) {
            print "check_bench: no serve cells in committed artifact" > "/dev/stderr"
            exit 1
        }
        compared = 0
        skipped = 0
        for (i = 1; i <= n; i++) {
            paired = 0
            for (j = 1; j <= n; j++) {
                if (i != j && viewers[i] == viewers[j] && vcus[i] == vcus[j]) paired = 1
            }
            if (!paired) {
                printf "    serve %9d viewers / cache %7d  SKIPPED: no same-fleet sweep partner for cliff check\n", \
                    viewers[i], cache[i]
                skipped++
                continue
            }
            # Adjacent cells of one sweep group arrive consecutively
            # with ascending cache sizes (render order).
            if (i > 1 && viewers[i] == viewers[i-1] && vcus[i] == vcus[i-1] && cache[i] > cache[i-1]) {
                compared++
                printf "    serve %9d viewers: ttff_p99 %.3fs (cache %d) -> %.3fs (cache %d)\n", \
                    viewers[i], p99[i-1], cache[i-1], p99[i], cache[i]
                if (p99[i] > p99[i-1] * cliff + slack) {
                    printf "check_bench: TTFF p99 cliff across the cache sweep at %d viewers\n", \
                        viewers[i] > "/dev/stderr"
                    bad = 1
                }
            }
        }
        if (compared == 0) {
            print "check_bench: no adjacent cache-sweep pairs to cliff-check" > "/dev/stderr"
            bad = 1
        }
        printf "check_bench: serve %d cells, %d cliff pairs, %d skipped, max peak %d (floor %d)\n", \
            n, compared, skipped, max_peak, min_peak
        if (max_peak + 0 < min_peak + 0) {
            printf "check_bench: peak concurrency %d below %d floor\n", max_peak, min_peak > "/dev/stderr"
            bad = 1
        }
        exit bad
    }
' "$SERVE_COMMITTED"

# Region-campaign gate: validate the committed
# results/region_campaign.json artifact. The full sweep is minutes-long
# so no fresh run happens here (bench_region_campaign's smoke gates
# cover the code path); this checks the committed artifact itself —
# every cell carries the full key set, overflow routing never reduced
# total goodput versus the isolated-regions counterfactual, every
# multi-region cell actually routed work across its anti-phased peaks,
# and the largest cell demonstrates >= MIN_VCUS total VCUs.
MIN_VCUS="${VCU_REGION_MIN_VCUS:-100000}"
REGION_COMMITTED=results/region_campaign.json

if [[ ! -f "$REGION_COMMITTED" ]]; then
    echo "check_bench: no committed $REGION_COMMITTED, nothing to gate" >&2
    exit 1
fi

echo "--> region campaign artifact"
awk -v min_vcus="$MIN_VCUS" '
    function field(line, key,    s) {
        s = line
        if (!match(s, "\"" key "\": [-0-9.e+]+")) return ""
        s = substr(s, RSTART, RLENGTH)
        sub("\"" key "\": ", "", s)
        return s
    }
    /"total_vcus":/ {
        n++
        split("regions cells_per_region vcus_per_cell total_vcus traffic_scale " \
              "jobs routed_jobs routed_frac goodput_overflow goodput_isolated " \
              "p99_wait_overflow_s p99_wait_isolated_s blast_radius " \
              "perf_mpix_per_s tco_usd perf_per_tco merge_digest", keys, " ")
        for (k in keys) {
            if (field($0, keys[k]) == "") {
                printf "check_bench: region cell %d missing key %s\n", n, keys[k] > "/dev/stderr"
                bad = 1
            }
        }
        regions = field($0, "regions") + 0
        vcus = field($0, "total_vcus") + 0
        routed = field($0, "routed_jobs") + 0
        g_ov = field($0, "goodput_overflow") + 0
        g_iso = field($0, "goodput_isolated") + 0
        printf "    region %d regions / %7d VCUs  goodput overflow %.4f vs isolated %.4f, routed %d\n", \
            regions, vcus, g_ov, g_iso, routed
        if (g_ov < g_iso) {
            printf "check_bench: region cell %d overflow routing lost goodput (%.6f < %.6f)\n", \
                n, g_ov, g_iso > "/dev/stderr"
            bad = 1
        }
        if (regions > 1 && routed == 0) {
            printf "check_bench: region cell %d has %d anti-phased regions but routed nothing\n", \
                n, regions > "/dev/stderr"
            bad = 1
        }
        if (vcus > max_vcus) max_vcus = vcus
    }
    END {
        if (n == 0) {
            print "check_bench: no region cells in committed artifact" > "/dev/stderr"
            exit 1
        }
        printf "check_bench: region %d cells, max fleet %d VCUs (floor %d)\n", n, max_vcus, min_vcus
        if (max_vcus + 0 < min_vcus + 0) {
            printf "check_bench: largest region fleet %d below %d-VCU floor\n", \
                max_vcus, min_vcus > "/dev/stderr"
            bad = 1
        }
        exit bad
    }
' "$REGION_COMMITTED"

# DSE-frontier gate: validate the committed results/dse_frontier.json
# artifact. The full sweep is minutes-long so no fresh run happens here
# (bench_dse's smoke gates cover the code path); this checks the
# committed artifact itself — every candidate carries the full key set,
# the frontier is recomputed from the four recorded objectives (steady
# perf/VCU, fault goodput, perf/TCO, latency headroom 1/(1+p99)) and
# must match the on_frontier flags exactly, the shipped anchor appears
# exactly once, sits on the frontier, and no candidate dominates it
# beyond VCU_DSE_ANCHOR_TOL. Candidates are never skipped here — a row
# that cannot be scored is a failure, and the zero-skip count is
# printed so that stays visible.
DSE_ANCHOR_TOL="${VCU_DSE_ANCHOR_TOL:-0.02}"
DSE_COMMITTED=results/dse_frontier.json

if [[ ! -f "$DSE_COMMITTED" ]]; then
    echo "check_bench: no committed $DSE_COMMITTED, nothing to gate" >&2
    exit 1
fi

echo "--> dse frontier artifact"
awk -v tol="$DSE_ANCHOR_TOL" '
    function field(line, key,    s) {
        s = line
        if (!match(s, "\"" key "\": [-0-9.e+]+")) return ""
        s = substr(s, RSTART, RLENGTH)
        sub("\"" key "\": ", "", s)
        return s
    }
    # True if candidate a Pareto-dominates b over the four maximize
    # objectives (>= on all, > on at least one) — the same textbook
    # definition vcu-dse implements, re-derived independently here.
    function dominates(a, b,    k, strictly) {
        strictly = 0
        for (k = 1; k <= 4; k++) {
            if (obj[a, k] < obj[b, k]) return 0
            if (obj[a, k] > obj[b, k]) strictly = 1
        }
        return strictly
    }
    /"encoder_cores":/ {
        n++
        split("encoder_cores decoder_cores dram_gib_s refstore_kpix area_mm2 " \
              "card_power_w card_capex_usd fleet_tco_usd traffic_factor " \
              "bandwidth_pressure util_steady goodput_steady goodput_fault " \
              "p99_wait_s perf_mpix_s_per_vcu perf_per_tco anchor on_frontier", keys, " ")
        for (k in keys) {
            if (field($0, keys[k]) == "") {
                printf "check_bench: dse candidate %d missing key %s\n", n, keys[k] > "/dev/stderr"
                bad = 1
            }
        }
        label[n] = sprintf("%de%dd%sG%sK", field($0, "encoder_cores"), \
            field($0, "decoder_cores"), field($0, "dram_gib_s") + 0, field($0, "refstore_kpix"))
        obj[n, 1] = field($0, "perf_mpix_s_per_vcu") + 0
        obj[n, 2] = field($0, "goodput_fault") + 0
        obj[n, 3] = field($0, "perf_per_tco") + 0
        obj[n, 4] = 1.0 / (1.0 + field($0, "p99_wait_s") + 0)
        anchor[n] = field($0, "anchor") + 0
        front[n] = field($0, "on_frontier") + 0
        if (anchor[n]) anchors++
    }
    END {
        if (n == 0) {
            print "check_bench: no dse candidates in committed artifact" > "/dev/stderr"
            exit 1
        }
        if (anchors != 1) {
            printf "check_bench: expected exactly 1 shipped anchor, found %d\n", anchors > "/dev/stderr"
            exit 1
        }
        # Recompute the frontier and match the committed flags.
        frontier = 0
        for (i = 1; i <= n; i++) {
            dominated = 0
            for (j = 1; j <= n; j++) {
                if (i != j && dominates(j, i)) { dominated = 1; break }
            }
            if (front[i] != !dominated) {
                printf "check_bench: dse %s on_frontier=%d but recomputation says %d\n", \
                    label[i], front[i], !dominated > "/dev/stderr"
                bad = 1
            }
            if (front[i]) frontier++
            if (anchor[i]) {
                a = i
                if (!front[i]) {
                    printf "check_bench: shipped anchor %s is off the frontier\n", label[i] > "/dev/stderr"
                    bad = 1
                }
            }
        }
        # Anchor tolerance: nothing may dominate the anchor even after
        # inflating its objectives by (1 + tol).
        for (k = 1; k <= 4; k++) obj[0, k] = obj[a, k] * (1 + tol)
        for (i = 1; i <= n; i++) {
            if (i != a && dominates(i, 0)) {
                printf "check_bench: dse %s dominates the shipped anchor beyond tol %.3f\n", \
                    label[i], tol > "/dev/stderr"
                bad = 1
            }
        }
        printf "check_bench: dse %d candidates, %d on frontier, 0 skipped, anchor %s within tol %.3f\n", \
            n, frontier, label[a], tol
        exit bad
    }
' "$DSE_COMMITTED"
