#!/usr/bin/env bash
# Bench regression gate: run the codec microbenches in smoke mode and
# compare per-row throughput against the committed
# results/bench_codec.json. A row that got more than REGRESSION_FACTOR
# slower fails the build.
#
# Only rows that exist under both configurations and are long enough to
# be stable are compared: throughput (elements/s) is shape-insensitive
# where raw medians are not (smoke runs encode fewer frames), and rows
# with a committed median under MIN_MEDIAN_NS are too noisy to gate on.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

REGRESSION_FACTOR="${VCU_BENCH_GATE_FACTOR:-3.0}"
MIN_MEDIAN_NS=100000 # 100 µs
COMMITTED=results/bench_codec.json
FRESH="${TMPDIR:-/tmp}/bench_codec_smoke.json"

if [[ ! -f "$COMMITTED" ]]; then
    echo "check_bench: no committed $COMMITTED, nothing to gate" >&2
    exit 1
fi

echo "--> fresh smoke run"
VCU_BENCH_SMOKE=1 cargo bench -q -p vcu-bench --offline --bench codec >/dev/null
if [[ ! -f "$FRESH" ]]; then
    echo "check_bench: smoke run did not write $FRESH" >&2
    exit 1
fi

# The Harness writes one record per line with a fixed key order, so a
# line-oriented awk join is reliable (no jq in the image).
awk -v factor="$REGRESSION_FACTOR" -v min_median="$MIN_MEDIAN_NS" '
    function field(line, key,    s) {
        s = line
        if (!match(s, "\"" key "\": [-0-9.e+]+")) return ""
        s = substr(s, RSTART, RLENGTH)
        sub("\"" key "\": ", "", s)
        return s
    }
    /"name":/ {
        name = $0
        sub(/.*"name": "/, "", name)
        sub(/".*/, "", name)
        if (FNR == NR) {
            committed_tp[name] = field($0, "throughput")
            committed_med[name] = field($0, "median_ns")
        } else {
            fresh_tp[name] = field($0, "throughput")
        }
    }
    END {
        compared = 0
        worst = 0
        for (name in committed_tp) {
            if (committed_tp[name] == "" || fresh_tp[name] == "") continue
            if (committed_med[name] + 0 < min_median) continue
            ratio = committed_tp[name] / fresh_tp[name]
            compared++
            if (ratio > worst) worst = ratio
            printf "    %-40s committed %12.0f elem/s  fresh %12.0f elem/s  (%.2fx)\n", \
                name, committed_tp[name], fresh_tp[name], ratio
            if (ratio > factor) {
                printf "check_bench: %s regressed %.2fx (> %.1fx budget)\n", name, ratio, factor > "/dev/stderr"
                bad = 1
            }
        }
        if (compared == 0) {
            print "check_bench: no comparable rows between committed and fresh runs" > "/dev/stderr"
            exit 1
        }
        printf "check_bench: %d rows compared, worst ratio %.2fx (budget %.1fx)\n", compared, worst, factor
        exit bad
    }
' "$COMMITTED" "$FRESH"
