//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo seeded harness (`vcu_rng::prop_cases!`). A
//! failing case prints the exact seed; replay it with
//! `VCU_PROP_SEED=<seed> cargo test <name>`.

use vcu_chip::ResourceDemand;
use vcu_cluster::{PlacementMode, Scheduler, SchedulerKind};
use vcu_codec::entropy::{
    read_int, read_uint, write_int, write_uint, AdaptiveModel, BoolDecoder, BoolEncoder,
};
use vcu_codec::{decode, encode, encode_parallel_traced, CodingStats, EncoderConfig, Profile, Qp};
use vcu_media::bdrate::{bd_rate, RdPoint};
use vcu_media::scale::scale_plane;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Frame, Plane, Resolution, Video};
use vcu_rng::prop_cases;

prop_cases! {
    /// The arithmetic coder round-trips any bit sequence at any
    /// probability sequence.
    #[cases(256)]
    fn bool_coder_round_trips(rng) {
        let n = rng.gen_range(1usize..500);
        let bits: Vec<(bool, u8)> = (0..n)
            .map(|_| (rng.gen_bool(0.5), rng.gen_range(1u8..=255)))
            .collect();
        let mut enc = BoolEncoder::new();
        for (b, p) in &bits {
            enc.put(*b, *p);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        for (b, p) in &bits {
            assert_eq!(dec.get(*p), *b);
        }
    }

    /// Adaptive integer coding round-trips arbitrary values.
    #[cases(256)]
    fn adaptive_ints_round_trip(rng) {
        let n = rng.gen_range(1usize..200);
        let values: Vec<i32> = (0..n).map(|_| rng.gen_range(-100_000i32..100_000)).collect();
        let mut enc = BoolEncoder::new();
        let mut me = AdaptiveModel::new(8);
        for v in &values {
            write_int(&mut enc, &mut me, 0, *v);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut md = AdaptiveModel::new(8);
        for v in &values {
            assert_eq!(read_int(&mut dec, &mut md, 0), *v);
        }
    }

    /// Unsigned variant.
    #[cases(256)]
    fn adaptive_uints_round_trip(rng) {
        let n = rng.gen_range(1usize..200);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..2_000_000)).collect();
        let mut enc = BoolEncoder::new();
        let mut me = AdaptiveModel::new(8);
        for v in &values {
            write_uint(&mut enc, &mut me, 0, *v);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut md = AdaptiveModel::new(8);
        for v in &values {
            assert_eq!(read_uint(&mut dec, &mut md, 0), *v);
        }
    }

    /// Plane block copy with clamping never panics and always fills
    /// the destination, for any geometry.
    #[cases(256)]
    fn plane_block_copy_total(rng) {
        let w = rng.gen_range(1usize..64);
        let h = rng.gen_range(1usize..64);
        let x = rng.gen_range(-70isize..70);
        let y = rng.gen_range(-70isize..70);
        let bw = rng.gen_range(1usize..32);
        let bh = rng.gen_range(1usize..32);
        let p = Plane::from_fn(w, h, |a, b| (a * 7 + b * 13) as u8);
        let mut dst = vec![1u8; bw * bh];
        p.copy_block_clamped(x, y, bw, bh, &mut dst);
        // Every value must be a value that exists in the plane (clamp
        // can only replicate real pixels).
        for v in dst {
            assert!(p.data().contains(&v));
        }
    }

    /// Downscaling preserves the mean within rounding.
    #[cases(256)]
    fn scaling_preserves_mean(rng) {
        let seed = rng.gen_range(0u64..500);
        let p = Plane::from_fn(48, 32, |x, y| {
            ((x as u64 * 31 + y as u64 * 17 + seed * 7) % 251) as u8
        });
        let s = scale_plane(&p, 24, 16);
        assert!((p.mean() - s.mean()).abs() < 3.0);
    }

    /// BD-rate antisymmetry: bd(a,b) and bd(b,a) compose to identity.
    #[cases(256)]
    fn bd_rate_antisymmetric(rng) {
        let mult = rng.gen_range(0.3f64..3.0);
        let curve = |m: f64| -> Vec<RdPoint> {
            [0.5f64, 1.0, 2.0, 4.0]
                .iter()
                .map(|&r| RdPoint::new(r * m * 1e6, 10.0 * (r * 1e6).log10()))
                .collect()
        };
        let a = curve(1.0);
        let b = curve(mult);
        let ab = bd_rate(&a, &b).unwrap();
        let ba = bd_rate(&b, &a).unwrap();
        let prod = (1.0 + ab / 100.0) * (1.0 + ba / 100.0);
        assert!((prod - 1.0).abs() < 1e-6, "prod {}", prod);
    }

    /// Frame invariants: chroma is half luma, raw size is 1.5 B/px.
    #[cases(256)]
    fn frame_invariants(rng) {
        let w = rng.gen_range(1usize..32);
        let h = rng.gen_range(1usize..32);
        let f = Frame::new(w * 2, h * 2);
        assert_eq!(f.u().width() * 2, f.width());
        assert_eq!(f.raw_bytes(), (f.pixels() * 3) / 2);
    }
}

// Whole-codec round trips are expensive; keep the case count low.
prop_cases! {
    /// The decoder reproduces frame counts and stays within sane
    /// distortion bounds for arbitrary synthetic content and QP.
    #[cases(6)]
    fn codec_round_trip_any_content(rng) {
        let seed = rng.gen_range(0u64..1000);
        let qp = rng.gen_range(8u8..55);
        let profile_vp9 = rng.gen_bool(0.5);
        let frames = rng.gen_range(2usize..6);
        let content = ContentClass {
            spatial_detail: (seed % 10) as f64 / 10.0,
            pan_speed: (seed % 4) as f64,
            objects: (seed % 5) as usize,
            object_speed: (seed % 3) as f64,
            noise_sigma: (seed % 4) as f64,
            scene_cut_period: None,
        };
        let video: Video = SynthSpec::new(Resolution::R144, frames, content, seed).generate();
        let profile = if profile_vp9 { Profile::Vp9Sim } else { Profile::H264Sim };
        let cfg = EncoderConfig::const_qp(profile, Qp::new(qp));
        let e = encode(&cfg, &video).expect("encode");
        let d = decode(&e.bytes).expect("decode own bitstream");
        assert_eq!(d.video.frames.len(), video.frames.len());
        assert_eq!(d.video.width(), video.width());
        // Reconstruction error bounded by quantizer scale: max per-pixel
        // error across the video should not exceed a generous multiple
        // of the step size.
        let max_err = video
            .frames
            .iter()
            .zip(&d.video.frames)
            .flat_map(|(a, b)| {
                a.y().data().iter().zip(b.y().data()).map(|(x, y)| (*x as i32 - *y as i32).abs())
            })
            .max()
            .unwrap_or(0);
        let bound = (Qp::new(qp).step() * 12.0 + 48.0) as i32;
        assert!(max_err <= bound, "max err {} > bound {}", max_err, bound);
    }

    /// Any single-byte container corruption is either detected or
    /// changes the output (never silently decodes identically).
    #[cases(6)]
    fn corruption_never_silently_identical(rng) {
        let pos_frac = rng.gen_range(0.1f64..0.95);
        let flip = rng.gen_range(1u8..255);
        let video = SynthSpec::new(
            Resolution::R144, 3, ContentClass::talking_head(), 4,
        ).generate();
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        let e = encode(&cfg, &video).expect("encode");
        let reference = decode(&e.bytes).expect("decode").video;
        let mut bytes = e.bytes.clone();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= flip;
        match decode(&bytes) {
            Err(_) => {} // detected: good
            Ok(d) => assert_ne!(d.video, reference),
        }
    }
}

prop_cases! {
    /// The decoder never panics on arbitrary garbage input.
    #[cases(64)]
    fn decoder_total_on_garbage(rng) {
        let n = rng.gen_range(0usize..400);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
        let _ = decode(&bytes); // must return, never panic
    }

    /// Nor on garbage wearing a valid container header.
    #[cases(64)]
    fn decoder_total_on_framed_garbage(rng) {
        let n = rng.gen_range(0usize..300);
        let payload: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VCSM");
        bytes.push(1); // version
        bytes.push(1); // vp9 profile
        bytes.extend_from_slice(&64u16.to_le_bytes());
        bytes.extend_from_slice(&64u16.to_le_bytes());
        bytes.extend_from_slice(&30.0f32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0); // key frame
        bytes.push(30); // qp
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        // Correct checksum so the payload reaches the frame decoder.
        let mut h: u32 = 0x811C9DC5;
        for &b in &payload {
            h ^= b as u32;
            h = h.wrapping_mul(16777619);
        }
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&h.to_le_bytes());
        let _ = decode(&bytes); // must return, never panic
    }
}

prop_cases! {
    /// The fixed-point half-pel interpolator is the f64 bilinear
    /// sampler: for any plane, any block geometry (including blocks
    /// hanging off every edge), and any half-pel phase, every output
    /// pixel matches `sample_bilinear` at the equivalent fractional
    /// coordinate.
    #[cases(256)]
    fn hpel_integer_matches_f64_reference(rng) {
        let w = rng.gen_range(1usize..48);
        let h = rng.gen_range(1usize..48);
        let p = Plane::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8);
        let x = rng.gen_range(-8isize..w as isize + 8);
        let y = rng.gen_range(-8isize..h as isize + 8);
        let (fx, fy) = (rng.gen_range(0u32..2) as u8, rng.gen_range(0u32..2) as u8);
        let bw = rng.gen_range(1usize..17);
        let bh = rng.gen_range(1usize..17);
        let mut dst = vec![0u8; bw * bh];
        p.copy_block_hpel(x, y, fx, fy, bw, bh, &mut dst);
        for by in 0..bh {
            for bx in 0..bw {
                let want = p.sample_bilinear(
                    (x + bx as isize) as f64 + fx as f64 * 0.5,
                    (y + by as isize) as f64 + fy as f64 * 0.5,
                );
                assert_eq!(
                    dst[by * bw + bx], want,
                    "({bx},{by}) of {bw}x{bh} at ({x},{y}) phase ({fx},{fy})"
                );
            }
        }
    }

    /// Early-exit SAD picks the same winner as exhaustive SAD: running
    /// a best-candidate scan with `sad_block_thresholded` (pruned at
    /// the running best) selects the identical candidate and cost that
    /// unpruned `sad_block` does.
    #[cases(256)]
    fn thresholded_sad_selects_same_winner(rng) {
        let w = rng.gen_range(8usize..40);
        let h = rng.gen_range(8usize..40);
        let p = Plane::from_fn(w, h, |_, _| rng.gen_range(0u32..256) as u8);
        let bw = rng.gen_range(1usize..9);
        let bh = rng.gen_range(1usize..9);
        let cur: Vec<u8> = (0..bw * bh).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let n_cand = rng.gen_range(1usize..20);
        let cands: Vec<(isize, isize)> = (0..n_cand)
            .map(|_| (rng.gen_range(-4isize..w as isize), rng.gen_range(-4isize..h as isize)))
            .collect();
        let (mut best_ref, mut besti_ref) = (u64::MAX, 0usize);
        for (i, &(cx, cy)) in cands.iter().enumerate() {
            let s = p.sad_block(cx, cy, bw, bh, &cur);
            if s < best_ref {
                best_ref = s;
                besti_ref = i;
            }
        }
        let (mut best, mut besti) = (u64::MAX, 0usize);
        for (i, &(cx, cy)) in cands.iter().enumerate() {
            let (s, examined) = p.sad_block_thresholded(cx, cy, bw, bh, &cur, best);
            assert!(examined <= (bw * bh) as u64);
            if s < best {
                best = s;
                besti = i;
            }
        }
        assert_eq!((besti, best), (besti_ref, best_ref), "pruning changed the search winner");
    }

    /// Merging per-chunk stats is order-independent: the same multiset
    /// of `CodingStats` sums to the same total regardless of merge
    /// order, so parallel completion order can never leak into results.
    #[cases(256)]
    fn stats_merge_is_order_independent(rng) {
        let n = rng.gen_range(2usize..12);
        let mut parts: Vec<CodingStats> = (0..n)
            .map(|_| {
                let mut s = CodingStats::new();
                s.pixels = rng.gen_range(0u64..1 << 40);
                s.frames = rng.gen_range(0u64..1 << 16);
                s.sad_pixels = rng.gen_range(0u64..1 << 40);
                s.sad_pixels_examined = rng.gen_range(0u64..1 << 40);
                s.transform_pixels = rng.gen_range(0u64..1 << 40);
                s.mc_pixels = rng.gen_range(0u64..1 << 40);
                s.intra_pixels = rng.gen_range(0u64..1 << 40);
                s.temporal_filter_pixels = rng.gen_range(0u64..1 << 40);
                s.deblock_pixels = rng.gen_range(0u64..1 << 40);
                s.bits = rng.gen_range(0u64..1 << 40);
                s.intra_blocks = rng.gen_range(0u64..1 << 32);
                s.inter_blocks = rng.gen_range(0u64..1 << 32);
                s.ref_bytes_read = rng.gen_range(0u64..1 << 40);
                s
            })
            .collect();
        let mut forward = CodingStats::new();
        for s in &parts {
            forward += *s;
        }
        // Fisher–Yates shuffle, then re-merge.
        for i in (1..parts.len()).rev() {
            parts.swap(i, rng.gen_range(0usize..i + 1));
        }
        let mut shuffled = CodingStats::new();
        for s in &parts {
            shuffled += *s;
        }
        assert_eq!(forward, shuffled);
    }
}

prop_cases! {
    /// Chunk-parallel encoding is pool-width invariant: for arbitrary
    /// content, chunk size, and clip length, every `VCU_THREADS`-style
    /// width in {1, 2, 3, 4, 8} produces a byte-identical container,
    /// identical merged stats and frame records, and a byte-identical
    /// telemetry snapshot. Widths exceed the chunk count on most cases
    /// (<= 6 chunks vs 8 lanes), so surplus workers must idle rather
    /// than perturb anything.
    #[cases(4)]
    fn parallel_encode_thread_invariant(rng) {
        let seed = rng.gen_range(0u64..1000);
        let frames = rng.gen_range(2usize..7);
        let chunk = rng.gen_range(1usize..4);
        let profile = if rng.gen_bool(0.5) { Profile::Vp9Sim } else { Profile::H264Sim };
        let qp = rng.gen_range(20u8..45);
        let video = SynthSpec::new(Resolution::R144, frames, ContentClass::ugc(), seed).generate();
        let base = EncoderConfig::const_qp(profile, Qp::new(qp));
        let seq_reg = vcu_telemetry::Registry::new();
        let seq = encode_parallel_traced(&base.with_threads(1), &video, chunk, &seq_reg)
            .expect("t1 encode");
        let seq_snap = seq_reg.snapshot_json(&[]);
        for threads in [2usize, 3, 4, 8] {
            let reg = vcu_telemetry::Registry::new();
            let par = encode_parallel_traced(&base.with_threads(threads), &video, chunk, &reg)
                .expect("parallel encode");
            assert_eq!(seq.bytes, par.bytes, "threads={threads} changed the bitstream");
            assert_eq!(seq.stats, par.stats, "threads={threads} changed merged stats");
            assert_eq!(seq.frames, par.frames, "threads={threads} changed frame records");
            assert_eq!(
                seq_snap,
                reg.snapshot_json(&[]),
                "threads={threads} changed the telemetry snapshot"
            );
        }
        // And the spliced stream actually decodes to every frame.
        assert_eq!(decode(&seq.bytes).expect("decode").video.frames.len(), frames);
    }
}

prop_cases! {
    /// The O(log n) availability index and the O(n) linear scan are the
    /// same scheduler: identical placements on identical request
    /// streams — including wrapping windows, starts past the fleet
    /// size, releases, and `set_accepting` churn. First-fit order is
    /// observable behaviour (black-holing and Fig. 6 depend on it), so
    /// nothing short of exact agreement is acceptable.
    #[cases(96)]
    fn placement_index_agrees_with_linear_oracle(rng) {
        let n = rng.gen_range(1usize..80);
        let kind = if rng.gen_bool(0.5) {
            SchedulerKind::MultiDim
        } else {
            SchedulerKind::SingleSlot { slots: rng.gen_range(1u32..4) }
        };
        let mut idx = Scheduler::with_placement(kind, n, 1, PlacementMode::Indexed);
        let mut lin = Scheduler::with_placement(kind, n, 1, PlacementMode::LinearScan);
        // (worker, demand) pairs currently placed, for exact releases.
        let mut live: Vec<(usize, ResourceDemand)> = Vec::new();
        for _ in 0..rng.gen_range(1usize..300) {
            match rng.gen_range(0u32..10) {
                0..=5 => {
                    let d = ResourceDemand {
                        millidecode: rng.gen_range(0u32..2_000),
                        milliencode: rng.gen_range(0u32..6_000),
                        dram_mib: rng.gen_range(0u32..4_000),
                        host_mcpu: rng.gen_range(0u32..3_000),
                    };
                    let start = rng.gen_range(0usize..3 * n);
                    let window = rng.gen_range(0usize..2 * n + 1);
                    let a = idx.place_from(d, start, window);
                    let b = lin.place_from(d, start, window);
                    assert_eq!(a, b, "placement diverged (n={n}, {kind:?})");
                    if let Some(w) = a {
                        live.push((w, d));
                    }
                }
                6..=7 => {
                    if !live.is_empty() {
                        let (w, d) = live.swap_remove(rng.gen_range(0usize..live.len()));
                        idx.release(w, d);
                        lin.release(w, d);
                    }
                }
                _ => {
                    let w = rng.gen_range(0usize..n);
                    let on = rng.gen_bool(0.5);
                    idx.set_accepting(w, on);
                    lin.set_accepting(w, on);
                }
            }
        }
        assert_eq!(idx.placements, lin.placements);
        assert_eq!(idx.rejections, lin.rejections);
        for w in 0..n {
            assert_eq!(idx.worker(w), lin.worker(w), "worker {w} state diverged");
        }
    }

    /// Release restores the exact pre-place scheduler state: place a
    /// job, release it, and every observable (per-worker availability,
    /// utilization aggregates, and the next placement decision) matches
    /// a scheduler that never saw the job.
    #[cases(96)]
    fn release_then_place_restores_state(rng) {
        let n = rng.gen_range(1usize..40);
        let kind = if rng.gen_bool(0.5) {
            SchedulerKind::MultiDim
        } else {
            SchedulerKind::SingleSlot { slots: rng.gen_range(1u32..4) }
        };
        let mode = if rng.gen_bool(0.5) {
            PlacementMode::Indexed
        } else {
            PlacementMode::LinearScan
        };
        let mut s = Scheduler::with_placement(kind, n, 1, mode);
        // Random warm-up load that stays resident.
        let mut resident: Vec<(usize, ResourceDemand)> = Vec::new();
        for _ in 0..rng.gen_range(0usize..60) {
            let d = ResourceDemand {
                millidecode: rng.gen_range(0u32..1_500),
                milliencode: rng.gen_range(0u32..5_000),
                dram_mib: rng.gen_range(0u32..3_000),
                host_mcpu: rng.gen_range(0u32..2_500),
            };
            if let Some(w) = s.place_from(d, rng.gen_range(0usize..n), n) {
                resident.push((w, d));
            }
        }
        let before: Vec<_> = (0..n).map(|w| s.worker(w).clone()).collect();
        let enc_before = s.encode_utilization();
        let dec_before = s.decode_utilization();
        let extra = ResourceDemand {
            millidecode: rng.gen_range(1u32..2_000),
            milliencode: rng.gen_range(1u32..6_000),
            dram_mib: rng.gen_range(1u32..3_000),
            host_mcpu: rng.gen_range(1u32..2_500),
        };
        let start = rng.gen_range(0usize..n);
        if let Some(w) = s.place_from(extra, start, n) {
            s.release(w, extra);
            for (v, prev) in before.iter().enumerate() {
                assert_eq!(s.worker(v), prev, "worker {v} not restored");
            }
            assert_eq!(s.encode_utilization(), enc_before);
            assert_eq!(s.decode_utilization(), dec_before);
            // The restored state makes the identical decision again.
            assert_eq!(s.place_from(extra, start, n), Some(w));
        }
    }
}

// Fault-path properties: the failure-management machinery must keep
// the DES total (every job resolves), the backoff deterministic, and
// Critical work un-strandable while any healthy worker remains.
mod fault_paths {
    use vcu_chip::TranscodeJob;
    use vcu_cluster::{
        ClusterConfig, ClusterSim, DegradePolicy, FaultInjection, FaultKind, HealthPolicy, JobSpec,
        Priority, RetryPolicy, WatchdogPolicy,
    };
    use vcu_codec::Profile;
    use vcu_media::Resolution;
    use vcu_rng::prop_cases;

    fn random_fault_kind(rng: &mut vcu_rng::Rng) -> FaultKind {
        match rng.gen_range(0u32..8) {
            0 => FaultKind::SilentCorruption,
            1 => FaultKind::FirmwareHang,
            2 => FaultKind::SlowCore {
                factor_pct: rng.gen_range(200u32..3_000),
            },
            3 => FaultKind::EccStorm {
                correctable_per_tick: rng.gen_range(1u64..400),
            },
            4 => FaultKind::CrashLoop,
            5 => FaultKind::Dead,
            _ => FaultKind::Repair,
        }
    }

    fn random_jobs(rng: &mut vcu_rng::Rng, n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                arrival_s: rng.gen_range(0.0..60.0),
                job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
                priority: match i % 4 {
                    0 => Priority::Critical,
                    3 => Priority::Batch,
                    _ => Priority::Normal,
                },
                video_id: (i / 4) as u64,
            })
            .collect()
    }

    prop_cases! {
        /// Any random fault schedule — any mix of kinds, timings,
        /// repairs, and policy knobs — terminates with every job
        /// accounted for: completed + failed == submitted, and the
        /// failure sub-counters never exceed their parent.
        #[cases(48)]
        fn fault_schedules_always_terminate(rng) {
            let vcus = rng.gen_range(2usize..12);
            let n = rng.gen_range(10usize..80);
            let jobs = random_jobs(rng, n);
            let faults: Vec<FaultInjection> = (0..rng.gen_range(0usize..12))
                .map(|_| FaultInjection {
                    time_s: rng.gen_range(0.0..90.0),
                    worker: rng.gen_range(0usize..vcus),
                    kind: random_fault_kind(rng),
                })
                .collect();
            let cfg = ClusterConfig {
                vcus,
                detection_rate: rng.gen_range(0.0..1.0),
                retry: RetryPolicy {
                    base_s: rng.gen_range(0.0..5.0),
                    factor: rng.gen_range(1.0..3.0),
                    max_attempts: rng.gen_range(1u32..6),
                    jitter_frac: rng.gen_range(0.0..0.3),
                    ..RetryPolicy::default()
                },
                watchdog: WatchdogPolicy {
                    grace_s: rng.gen_range(1.0..30.0),
                    service_factor: rng.gen_range(2.0..8.0),
                },
                health: HealthPolicy {
                    strike_threshold: rng.gen_range(1u32..5),
                    max_recoveries: rng.gen_range(0u32..3),
                    golden_period_s: if rng.gen_bool(0.5) {
                        rng.gen_range(10.0..120.0)
                    } else {
                        0.0
                    },
                },
                degrade: DegradePolicy {
                    enabled: rng.gen_bool(0.5),
                    ..DegradePolicy::default()
                },
                seed: rng.next_u64(),
                ..ClusterConfig::default()
            };
            let r = ClusterSim::new(cfg, jobs, faults).run();
            assert_eq!(
                r.completed + r.failed,
                n as u64,
                "jobs must all resolve (completed {} + failed {})",
                r.completed,
                r.failed
            );
            assert!(r.stranded <= r.failed, "stranded is a subset of failed");
            assert!(r.shed <= r.failed, "shed is a subset of failed");
        }

        /// Backoff delays are a pure function of (policy, attempt,
        /// RNG state): same seed gives the identical sequence, and
        /// every delay is bounded by base * factor^(attempt-1) *
        /// (1 + jitter_frac).
        #[cases(64)]
        fn backoff_is_deterministic_and_bounded(rng) {
            let policy = RetryPolicy {
                base_s: rng.gen_range(0.1..10.0),
                factor: rng.gen_range(1.0..4.0),
                max_attempts: rng.gen_range(1u32..8),
                jitter_frac: rng.gen_range(0.0..0.5),
                ..RetryPolicy::default()
            };
            let seed = rng.next_u64();
            let mut a = vcu_rng::Rng::seed_from_u64(seed);
            let mut b = vcu_rng::Rng::seed_from_u64(seed);
            for attempt in 1..=policy.max_attempts {
                let da = policy.delay_s(attempt, &mut a);
                let db = policy.delay_s(attempt, &mut b);
                assert_eq!(da.to_bits(), db.to_bits(), "same-seed delays must match");
                let cap = policy.base_s
                    * policy.factor.powi(attempt.saturating_sub(1) as i32)
                    * (1.0 + policy.jitter_frac);
                assert!(da >= 0.0 && da <= cap, "delay {da} exceeds cap {cap}");
            }
        }

        /// As long as one worker never faults, Critical jobs are never
        /// stranded: strand-failure requires the whole fleet to be
        /// unusable with nothing pending that could revive it.
        #[cases(32)]
        fn critical_jobs_never_strand_while_a_healthy_worker_exists(rng) {
            let vcus = rng.gen_range(2usize..10);
            let n = rng.gen_range(8usize..40);
            let jobs: Vec<JobSpec> = (0..n)
                .map(|i| JobSpec {
                    arrival_s: rng.gen_range(0.0..40.0),
                    job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
                    priority: Priority::Critical,
                    video_id: i as u64,
                })
                .collect();
            // Fault every worker except worker 0, possibly repeatedly.
            let faults: Vec<FaultInjection> = (0..rng.gen_range(1usize..10))
                .map(|_| FaultInjection {
                    time_s: rng.gen_range(0.0..50.0),
                    worker: rng.gen_range(1usize..vcus),
                    kind: match rng.gen_range(0u32..3) {
                        0 => FaultKind::Dead,
                        1 => FaultKind::FirmwareHang,
                        _ => FaultKind::CrashLoop,
                    },
                })
                .collect();
            let cfg = ClusterConfig {
                vcus,
                retry: RetryPolicy {
                    base_s: 1.0,
                    ..RetryPolicy::default()
                },
                seed: rng.next_u64(),
                ..ClusterConfig::default()
            };
            let r = ClusterSim::new(cfg, jobs, faults).run();
            assert_eq!(r.completed + r.failed, n as u64);
            assert_eq!(
                r.stranded, 0,
                "worker 0 stays healthy, so no Critical job may strand"
            );
        }
    }
}

// Serving-path properties: the segment cache must behave like a
// capacity-bounded stack algorithm (never over-full, hits monotone in
// capacity, head segments scan-resistant), and the serving simulator
// must account for every session it admits.
mod serving {
    use vcu_rng::prop_cases;
    use vcu_serve::{seg_key, SegmentCache, ServeConfig, ServeSim};

    /// A random popularity-skewed access trace: (key, is_head) pairs
    /// where a small hot set dominates, as in real serving.
    fn random_trace(rng: &mut vcu_rng::Rng, len: usize) -> Vec<(u64, bool)> {
        let hot = rng.gen_range(4u32..32);
        let cold = rng.gen_range(64u32..512);
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    (seg_key(rng.gen_range(0u32..hot), 0), true)
                } else {
                    (seg_key(1_000 + rng.gen_range(0u32..cold), 0), false)
                }
            })
            .collect()
    }

    fn replay(cache: &mut SegmentCache, trace: &[(u64, bool)]) {
        for &(key, head) in trace {
            if !cache.lookup(key) {
                cache.insert(key, head);
            }
        }
    }

    prop_cases! {
        /// The cache never holds more than its capacity (globally or in
        /// the protected tier), whatever the trace.
        #[cases(64)]
        fn cache_never_exceeds_capacity(rng) {
            let capacity = rng.gen_range(1usize..200);
            let frac = rng.f64();
            let trace = random_trace(rng, 600);
            let mut cache = SegmentCache::new(capacity, frac);
            for &(key, head) in &trace {
                if !cache.lookup(key) {
                    cache.insert(key, head);
                }
                assert!(cache.len() <= capacity);
                assert!(cache.protected_len() <= cache.protected_capacity());
            }
        }

        /// Hit count is monotone in capacity for the identical trace:
        /// the two-tier LRU is a stack algorithm, so growing either
        /// tier can only add hits.
        #[cases(48)]
        fn cache_hits_monotone_in_capacity(rng) {
            let small = rng.gen_range(1usize..100);
            let big = small + rng.gen_range(1usize..150);
            let frac = rng.f64();
            let trace = random_trace(rng, 800);
            let mut a = SegmentCache::new(small, frac);
            let mut b = SegmentCache::new(big, frac);
            replay(&mut a, &trace);
            replay(&mut b, &trace);
            assert!(
                b.hits() >= a.hits(),
                "capacity {} hit {} times but capacity {} only {}",
                small, a.hits(), big, b.hits()
            );
        }

        /// A scan of one-shot cold keys cannot evict the protected
        /// head set.
        #[cases(48)]
        fn protected_tier_survives_scan(rng) {
            let capacity = rng.gen_range(8usize..128);
            let mut cache = SegmentCache::new(capacity, 0.5);
            let heads: Vec<u64> = (0..cache.protected_capacity() as u32)
                .map(|v| seg_key(v, 0))
                .collect();
            for &k in &heads {
                cache.insert(k, true);
            }
            let scan_len = rng.gen_range(100usize..1_000);
            for i in 0..scan_len {
                cache.insert(seg_key(10_000 + i as u32, 0), false);
            }
            for &k in &heads {
                assert!(
                    cache.contains(k),
                    "scan of {scan_len} cold keys evicted a protected head segment"
                );
            }
        }

        /// Every session the serving sim admits ends exactly once:
        /// arrivals = admitted + shed and admitted = completed +
        /// aborted, for random populations, fleets, and cache sizes.
        /// (The sim also asserts internally that no session or
        /// transcode is still live at drain.)
        #[cases(12)]
        fn serving_sessions_all_account(rng) {
            let report = ServeSim::new(ServeConfig {
                viewers: rng.gen_range(50usize..600),
                horizon_s: rng.gen_range(10.0..40.0),
                catalog_videos: rng.gen_range(20usize..400),
                cache_segments: rng.gen_range(16usize..1_024),
                vcus: rng.gen_range(2usize..32),
                seed: rng.next_u64(),
                ..ServeConfig::default()
            })
            .run();
            assert_eq!(report.arrivals, report.admitted + report.shed_sessions);
            assert_eq!(
                report.admitted,
                report.completed_sessions + report.aborted_sessions
            );
            // Every completed session delivered all its segments, and
            // deliveries only go to admitted sessions.
            assert!(report.segments_served >= report.completed_sessions);
            // Misses can coalesce onto an in-flight transcode, so
            // misses bound transcodes from above.
            assert!(report.cache_misses >= report.transcodes);
        }
    }
}

// Planet-scale properties: sharding the event queue by pool/cell must
// be a pure implementation detail. One cell behind the cross-shard
// merge is the same machine as a plain `ClusterSim`, and the merge's
// physical shard count can never change the merged event order or the
// final report.
mod region_scale {
    use vcu_cluster::{cell_cluster_config, ClusterSim, JobSpec, Priority};
    use vcu_regions::{region_job, RegionReport, RegionSim, RegionSpec};
    use vcu_rng::{mix64, prop_cases, Rng};
    use vcu_workloads::DiurnalCurve;

    const CHUNK_S: f64 = 6.0;
    const HORIZON_S: f64 = 90.0;
    const EPOCH_S: f64 = 30.0;

    /// Drives a region the way the planet does — epoch-windowed
    /// injection from a compressed diurnal curve, then drain — and
    /// returns the report plus the full arrival stream it offered.
    fn drive_region(
        seed: u64,
        cells: usize,
        vcus_per_cell: usize,
        merge_shards: usize,
        mean_rate_per_s: f64,
    ) -> (RegionReport, Vec<f64>) {
        let spec = RegionSpec {
            name: "prop".to_owned(),
            cells,
            vcus_per_cell,
            peak_hour: 6.0,
            mean_rate_per_s,
            amplitude: 0.8,
        };
        let curve = DiurnalCurve {
            mean_rate_per_s,
            amplitude: spec.amplitude,
            peak_hour: spec.peak_hour,
            period_s: HORIZON_S,
        };
        let mut arrival_rng = Rng::seed_from_u64(mix64(seed, 0xA1));
        let mut region = RegionSim::new(spec, seed, CHUNK_S, merge_shards, Vec::new());
        let mut offered = Vec::new();
        let mut t = 0.0;
        while t < HORIZON_S {
            let t1 = (t + EPOCH_S).min(HORIZON_S);
            let window = curve.arrivals_in(t, t1, &mut arrival_rng);
            region.inject_epoch(&window, false);
            offered.extend(window);
            region.advance_to(t1);
            t = t1;
        }
        let mut deadline = HORIZON_S;
        while region.busy() {
            deadline += HORIZON_S;
            assert!(
                deadline < HORIZON_S * 50.0,
                "region failed to drain (seed {seed})"
            );
            region.advance_to(deadline);
        }
        (region.finish(), offered)
    }

    prop_cases! {
        /// Tentpole equivalence: a one-cell region behind the sharded
        /// merge resolves exactly like a plain `ClusterSim` handed the
        /// same jobs in one batch — same counters, bit-identical
        /// output accounting. Open-world injection and the cross-shard
        /// merge must add nothing and lose nothing.
        #[cases(6)]
        fn one_cell_region_matches_plain_cluster_sim(rng) {
            let seed = rng.gen_range(0u64..1 << 48);
            let vcus = rng.gen_range(3usize..9);
            let rate = rng.gen_range(0.3..1.2);
            let (region, offered) = drive_region(seed, 1, vcus, 1, rate);

            let jobs: Vec<JobSpec> = offered
                .iter()
                .enumerate()
                .map(|(i, &arrival_s)| JobSpec {
                    arrival_s,
                    job: region_job(CHUNK_S),
                    priority: match i % 4 {
                        0 => Priority::Critical,
                        3 => Priority::Batch,
                        _ => Priority::Normal,
                    },
                    video_id: (i / 4) as u64,
                })
                .collect();
            let plain =
                ClusterSim::new(cell_cluster_config(vcus, mix64(seed, 0)), jobs, Vec::new()).run();

            assert_eq!(region.jobs, offered.len() as u64);
            assert_eq!(
                (region.completed, region.failed, region.shed, region.stranded),
                (plain.completed, plain.failed, plain.shed, plain.stranded),
                "seed {seed}: one-cell region diverged from plain ClusterSim"
            );
            assert_eq!(region.black_holed, plain.escaped_corruptions);
            assert_eq!(region.watchdog_fired, plain.watchdog_fired);
            assert_eq!(region.repairs, plain.repairs);
            assert_eq!(
                region.total_output_mpix.to_bits(),
                plain.total_output_mpix.to_bits(),
                "output accounting must be bit-identical"
            );
            assert_eq!(region.p99_wait_s.to_bits(), plain.p99_wait_s.to_bits());
            // mean_wait rides a completion-weighted average (x*c/c), so
            // allow one rounding step rather than bit equality.
            assert!(
                (region.mean_wait_s - plain.mean_wait_s).abs()
                    <= plain.mean_wait_s.abs() * 1e-12,
                "mean wait drifted: {} vs {}",
                region.mean_wait_s,
                plain.mean_wait_s
            );
            assert_eq!(region.merged_resolutions, plain.completed + plain.failed);
        }

        /// The merge's physical shard count is invisible: any shard
        /// count produces the same merged event order (pinned by the
        /// order-sensitive digest) and the same final report.
        #[cases(4)]
        fn merge_shard_count_never_changes_the_report(rng) {
            let seed = rng.gen_range(0u64..1 << 48);
            let cells = rng.gen_range(2usize..5);
            let vcus = rng.gen_range(3usize..7);
            let rate = rng.gen_range(0.5..1.5);
            let (one, offered_one) = drive_region(seed, cells, vcus, 1, rate);
            let shards = rng.gen_range(2usize..9);
            let (many, offered_many) = drive_region(seed, cells, vcus, shards, rate);
            assert_eq!(offered_one, offered_many, "same seed, same arrivals");
            assert_eq!(
                one, many,
                "seed {seed}: merge_shards {shards} changed the region outcome"
            );
            assert_eq!(one.merge_digest, many.merge_digest);
        }
    }
}

// Pareto-frontier properties: the design-space sweep's dominance
// relation and frontier extraction must behave like the textbook
// definitions on arbitrary point sets, because the committed
// `dse_frontier.json` flags are re-derived by an independent awk gate
// in scripts/check_bench.sh — any disagreement between implementations
// fails CI.
mod dse_pareto {
    use vcu_dse::{dominates, frontier_flags};
    use vcu_rng::{prop_cases, Rng};

    fn random_points(rng: &mut Rng, n: usize) -> Vec<[f64; 4]> {
        (0..n)
            .map(|_| {
                [
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..500.0),
                    rng.gen_range(0.0..1.0),
                ]
            })
            .collect()
    }

    prop_cases! {
        /// Frontier points are mutually non-dominating, and every
        /// point left off the frontier is dominated by at least one
        /// point on it.
        #[cases(64)]
        fn frontier_is_exactly_the_nondominated_set(rng) {
            let n = rng.gen_range(1usize..60);
            let pts = random_points(rng, n);
            let flags = frontier_flags(&pts);
            assert!(flags.iter().any(|&f| f), "frontier can never be empty");
            for (i, &on_i) in flags.iter().enumerate() {
                if on_i {
                    for (j, &on_j) in flags.iter().enumerate() {
                        if on_j && i != j {
                            assert!(
                                !dominates(&pts[i], &pts[j]),
                                "frontier point {i} dominates frontier point {j}"
                            );
                        }
                    }
                } else {
                    assert!(
                        flags
                            .iter()
                            .enumerate()
                            .any(|(j, &on_j)| on_j && dominates(&pts[j], &pts[i])),
                        "off-frontier point {i} dominated by no frontier point"
                    );
                }
            }
        }

        /// Appending a candidate that some existing point dominates
        /// never changes any existing flag, and the newcomer lands off
        /// the frontier.
        #[cases(64)]
        fn dominated_newcomer_changes_nothing(rng) {
            let n = rng.gen_range(1usize..40);
            let pts = random_points(rng, n);
            let before = frontier_flags(&pts);
            // Clone an arbitrary point and push every coordinate down:
            // strictly dominated by its parent, so by transitivity it
            // threatens no one.
            let parent = pts[rng.gen_range(0usize..pts.len())];
            let weaker = parent.map(|x| x * rng.gen_range(0.1..0.9));
            assert!(dominates(&parent, &weaker));
            let mut grown = pts.clone();
            grown.push(weaker);
            let after = frontier_flags(&grown);
            assert_eq!(&after[..pts.len()], &before[..]);
            assert!(!after[pts.len()], "dominated newcomer on frontier");
        }

        /// The frontier is a property of the set, not the enumeration
        /// order: any rotation of the candidate list yields the same
        /// rotated flags.
        #[cases(64)]
        fn frontier_is_order_invariant(rng) {
            let n = rng.gen_range(2usize..40);
            let pts = random_points(rng, n);
            let flags = frontier_flags(&pts);
            let cut = rng.gen_range(1usize..pts.len());
            let rotated: Vec<[f64; 4]> =
                pts[cut..].iter().chain(&pts[..cut]).copied().collect();
            let rotated_flags = frontier_flags(&rotated);
            let expect: Vec<bool> =
                flags[cut..].iter().chain(&flags[..cut]).copied().collect();
            assert_eq!(rotated_flags, expect, "rotation by {cut} changed the frontier");
        }

        /// Duplicate points are both kept: a tie is not a domination,
        /// so exact copies of a frontier point all stay on it.
        #[cases(32)]
        fn ties_are_kept(rng) {
            let n = rng.gen_range(1usize..30);
            let pts = random_points(rng, n);
            let flags = frontier_flags(&pts);
            let pick = rng.gen_range(0usize..pts.len());
            let mut grown = pts.clone();
            grown.push(pts[pick]);
            let after = frontier_flags(&grown);
            assert_eq!(
                after[pts.len()], flags[pick],
                "an exact duplicate must share its twin's frontier status"
            );
            assert_eq!(&after[..pts.len()], &flags[..]);
        }
    }
}
