//! Determinism regression tests: the whole pipeline — traffic
//! generation through cluster simulation to the TCO summary — must be
//! bit-stable for a fixed seed. Every randomness source is the
//! vendored `vcu-rng` stream, so two runs with the same seed produce
//! byte-identical reports, and different seeds genuinely differ.

use vcu_chip::{System, WorkloadShape};
use vcu_cluster::tco::{perf_per_tco_normalized, system_tco};
use vcu_cluster::{ClusterConfig, ClusterReport, ClusterSim, FaultInjection, FaultKind, JobSpec};
use vcu_codec::Profile;
use vcu_system::platform::Platform;
use vcu_telemetry::Registry;
use vcu_workloads::UploadTraffic;

/// Seeded workload: expand an upload-traffic stream through the
/// platform into cluster jobs.
fn jobs_for_seed(seed: u64) -> Vec<JobSpec> {
    let reqs = UploadTraffic::new(1.5, seed).generate(120.0);
    Platform::default().jobs_for_all(&reqs)
}

/// One full simulation with corruption in play, so the detection
/// coin-flips (the simulator's only runtime randomness) matter.
fn run(seed: u64) -> ClusterReport {
    let cfg = ClusterConfig {
        vcus: 6,
        detection_rate: 0.6,
        seed,
        ..ClusterConfig::default()
    };
    let faults = vec![FaultInjection {
        time_s: 5.0,
        worker: 1,
        kind: FaultKind::SilentCorruption,
    }];
    ClusterSim::new(cfg, jobs_for_seed(seed), faults).run()
}

/// Same simulation with a telemetry registry attached; returns the
/// serialized snapshot so determinism can be checked at the byte level.
fn snapshot(seed: u64) -> String {
    let reg = Registry::new();
    let cfg = ClusterConfig {
        vcus: 6,
        detection_rate: 0.6,
        seed,
        ..ClusterConfig::default()
    };
    let faults = vec![FaultInjection {
        time_s: 5.0,
        worker: 1,
        kind: FaultKind::SilentCorruption,
    }];
    ClusterSim::new(cfg, jobs_for_seed(seed), faults)
        .with_telemetry(reg.clone())
        .run();
    reg.snapshot_json(&[("seed", &seed.to_string())])
}

/// Bit-exact image of a report: per-sample fields (f64 bits), attempts
/// per worker, and total output Mpix (f64 bits).
type Trace = (Vec<(u64, u64, u64, u64, u64)>, Vec<u64>, u64);

/// The full job-completion trace and TCO summary of a report, as
/// comparable values. Floats are compared bit-exactly: determinism
/// here means *byte-identical*, not approximately equal.
fn trace(r: &ClusterReport) -> Trace {
    let samples = r
        .samples
        .iter()
        .map(|s| {
            (
                s.time_s.to_bits(),
                s.encode_util.to_bits(),
                s.decode_util.to_bits(),
                s.mpix_s_per_vcu.to_bits(),
                s.queued as u64,
            )
        })
        .collect();
    (
        samples,
        r.attempts_per_worker.clone(),
        r.total_output_mpix.to_bits(),
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.escaped_corruptions, b.escaped_corruptions);
    assert_eq!(a.caught_corruptions, b.caught_corruptions);
    assert_eq!(a.sw_decoded_jobs, b.sw_decoded_jobs);
    assert_eq!(
        trace(&a),
        trace(&b),
        "job-completion traces must be identical"
    );
    assert_eq!(
        a.mean_wait_s.to_bits(),
        b.mean_wait_s.to_bits(),
        "mean wait must be bit-identical"
    );
    assert_eq!(
        a.mean_vcus_per_video.to_bits(),
        b.mean_vcus_per_video.to_bits()
    );
    // TCO summary over the same fleet: identical inputs, identical
    // dollars and perf/TCO.
    let sys = System::VcuHost { vcus: 6 };
    let t1 = system_tco(sys);
    let t2 = system_tco(sys);
    assert_eq!(t1.total().to_bits(), t2.total().to_bits());
    let p1 = perf_per_tco_normalized(sys, Profile::Vp9Sim, WorkloadShape::SotTwoPass).unwrap();
    let p2 = perf_per_tco_normalized(sys, Profile::Vp9Sim, WorkloadShape::SotTwoPass).unwrap();
    assert_eq!(
        p1.to_bits(),
        p2.to_bits(),
        "TCO summary must be bit-identical"
    );
}

#[test]
fn different_seeds_differ() {
    let a = run(42);
    let b = run(43);
    // Different seeds generate different traffic and different
    // detection outcomes; the traces cannot coincide.
    assert_ne!(
        trace(&a),
        trace(&b),
        "different seeds must produce different traces"
    );
}

#[test]
fn telemetry_snapshot_is_byte_identical_for_same_seed() {
    let a = snapshot(42);
    let b = snapshot(42);
    assert_eq!(a, b, "same-seed telemetry snapshots must be byte-identical");
    // The snapshot is substantive, not vacuously equal: it carries
    // counters, utilization series, and fault events from the run.
    assert!(a.contains("\"cluster.jobs.completed\""));
    assert!(a.contains("\"cluster.util.decode\""));
    assert!(a.contains("\"cluster.fault.silent_corruption\""));
}

#[test]
fn telemetry_snapshot_diverges_across_seeds() {
    // Strip the meta block (it embeds the seed label) before comparing,
    // so divergence has to come from the recorded metrics themselves.
    let body = |s: String| {
        s.split_once("\"counters\"")
            .map(|(_, b)| b.to_owned())
            .unwrap()
    };
    let a = body(snapshot(42));
    let b = body(snapshot(43));
    assert_ne!(a, b, "different seeds must produce different telemetry");
}

#[test]
fn attaching_telemetry_does_not_perturb_the_simulation() {
    let plain = run(42);
    let cfg = ClusterConfig {
        vcus: 6,
        detection_rate: 0.6,
        seed: 42,
        ..ClusterConfig::default()
    };
    let faults = vec![FaultInjection {
        time_s: 5.0,
        worker: 1,
        kind: FaultKind::SilentCorruption,
    }];
    let traced = ClusterSim::new(cfg, jobs_for_seed(42), faults)
        .with_telemetry(Registry::new())
        .run();
    assert_eq!(
        trace(&plain),
        trace(&traced),
        "observation must not change the run"
    );
    assert_eq!(plain.completed, traced.completed);
    assert_eq!(plain.retries, traced.retries);
}

#[test]
fn warehouse_scale_run_is_byte_identical() {
    // The tentpole scale: 10,000 VCUs through the O(log n) availability
    // index must stay exactly as deterministic as the 6-VCU runs above
    // — and exactly as deterministic as the linear-scan oracle, since
    // first-fit order is observable behaviour.
    use vcu_cluster::{PlacementMode, Priority};
    use vcu_codec::Profile as P;
    use vcu_media::Resolution;

    let jobs: Vec<JobSpec> = (0..30_000)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.001,
            job: vcu_chip::TranscodeJob::mot(Resolution::R1080, P::Vp9Sim, 30.0, 5.0),
            priority: match i % 10 {
                0 => Priority::Critical,
                9 => Priority::Batch,
                _ => Priority::Normal,
            },
            video_id: (i / 4) as u64,
        })
        .collect();
    let run = |placement: PlacementMode| {
        let cfg = ClusterConfig {
            vcus: 10_000,
            placement,
            detection_rate: 0.6,
            seed: 42,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 5.0,
            worker: 17,
            kind: FaultKind::SilentCorruption,
        }];
        ClusterSim::new(cfg, jobs.clone(), faults).run()
    };
    let a = run(PlacementMode::Indexed);
    let b = run(PlacementMode::Indexed);
    assert_eq!(trace(&a), trace(&b), "10k-VCU runs must be byte-identical");
    assert_eq!(a.mean_wait_s.to_bits(), b.mean_wait_s.to_bits());
    let c = run(PlacementMode::LinearScan);
    assert_eq!(a.completed, c.completed);
    assert_eq!(a.failed, c.failed);
    assert_eq!(a.retries, c.retries);
    assert_eq!(
        trace(&a),
        trace(&c),
        "index and linear oracle must agree at warehouse scale"
    );
}

#[test]
fn chunk_parallel_encode_honors_vcu_threads_deterministically() {
    // The verify script runs this suite under VCU_THREADS=1 and
    // VCU_THREADS=4: whatever the knob says, chunk-parallel encoding
    // and its telemetry snapshot must be byte-identical. The encoder is
    // the one pipeline stage with real thread parallelism, so this is
    // where scheduling nondeterminism would leak in if it could.
    use vcu_codec::{encode_parallel_traced, env_threads, EncoderConfig, Qp};
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::Resolution;

    let threads = env_threads();
    let video = SynthSpec::new(Resolution::R144, 8, ContentClass::ugc(), 42).generate();
    let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)).with_threads(threads);
    let encode_once = || {
        let reg = Registry::new();
        let e = encode_parallel_traced(&cfg, &video, 3, &reg).expect("encode");
        (e, reg.snapshot_json(&[("threads", &threads.to_string())]))
    };
    let (a, snap_a) = encode_once();
    let (b, snap_b) = encode_once();
    assert_eq!(a.bytes, b.bytes, "same-seed encodes must be byte-identical");
    assert_eq!(a.stats, b.stats);
    assert_eq!(snap_a, snap_b, "telemetry snapshots must be byte-identical");
    // The bitstream is also invariant across thread counts, not just
    // across runs: pin against a single-threaded reference encode.
    let seq = vcu_codec::encode_parallel(&cfg.with_threads(1), &video, 3).expect("t1");
    assert_eq!(
        a.bytes, seq.bytes,
        "VCU_THREADS={threads} changed the bitstream"
    );
    // The snapshot is substantive: chunk spans and counters landed.
    assert!(snap_a.contains("codec.chunk.encode"));
    assert!(snap_a.contains("\"codec.chunks\""));
}

#[test]
fn traffic_generation_is_deterministic() {
    let a = UploadTraffic::new(3.0, 7).generate(200.0);
    let b = UploadTraffic::new(3.0, 7).generate(200.0);
    assert_eq!(a, b);
    let c = UploadTraffic::new(3.0, 8).generate(200.0);
    assert_ne!(a, c, "different traffic seeds must differ");
}

/// The fault-campaign artifact is a replayable build product: two
/// same-seed campaigns render byte-identical JSON (what CI pins for
/// `results/fault_campaign.json`), and the seed is load-bearing.
#[test]
fn fault_campaign_json_is_byte_identical() {
    use vcu_cluster::{render_json, run_campaign, CampaignConfig};
    let cfg = CampaignConfig {
        vcus: 24,
        jobs_per_vcu: 16,
        seed: 1234,
        fault_rates: vec![0.0, 0.2],
        mttr_s: vec![15.0, f64::INFINITY],
    };
    let a = render_json(&cfg, &run_campaign(&cfg));
    let b = render_json(&cfg, &run_campaign(&cfg));
    assert_eq!(a, b, "same-seed campaign JSON must be byte-identical");
    let c = render_json(
        &CampaignConfig {
            seed: 4321,
            ..cfg.clone()
        },
        &run_campaign(&CampaignConfig { seed: 4321, ..cfg }),
    );
    assert_ne!(a, c, "campaign seed must steer the fault schedule");
}

/// The serve-campaign artifact pins like the fault campaign: two
/// same-seed sweeps render byte-identical JSON and byte-identical
/// telemetry snapshots (what CI pins for `results/serve_campaign.json`),
/// the seed is load-bearing, and the result is invariant under the
/// work-stealing pool's thread count.
#[test]
fn serve_campaign_json_is_byte_identical() {
    use vcu_serve::{render_serve_json, run_serve_campaign, ServeCampaignConfig, ServeCellSpec};
    let cfg = ServeCampaignConfig {
        seed: 1234,
        cells: vec![
            ServeCellSpec {
                viewers: 250,
                vcus: 16,
                cache_segments: 128,
                catalog_videos: 150,
                horizon_s: 20.0,
            },
            ServeCellSpec {
                viewers: 250,
                vcus: 16,
                cache_segments: 512,
                catalog_videos: 150,
                horizon_s: 20.0,
            },
        ],
    };
    let a = render_serve_json(&cfg, &run_serve_campaign(&cfg));
    let b = render_serve_json(&cfg, &run_serve_campaign(&cfg));
    assert_eq!(a, b, "same-seed serve campaigns must be byte-identical");
    let c = render_serve_json(
        &ServeCampaignConfig {
            seed: 4321,
            ..cfg.clone()
        },
        &run_serve_campaign(&ServeCampaignConfig {
            seed: 4321,
            ..cfg.clone()
        }),
    );
    assert_ne!(a, c, "campaign seed must steer the serving trace");
}

#[test]
fn serve_campaign_is_thread_invariant() {
    // run_serve_campaign fans cells out at `vcu_exec::env_threads()`
    // parallelism; pin the 1-thread and 4-thread fan-outs against each
    // other directly (the verify script additionally runs this suite
    // under VCU_THREADS=1 and VCU_THREADS=4).
    use vcu_serve::{render_serve_json, run_serve_cell, ServeCampaignConfig};
    let cfg = ServeCampaignConfig {
        seed: 77,
        ..ServeCampaignConfig::smoke(77)
    };
    let sweep = |threads: usize| {
        let cells = vcu_exec::pool().run_batch(
            threads,
            cfg.cells
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let cfg = &cfg;
                    move || run_serve_cell(cfg, spec, i as u64)
                })
                .collect(),
        );
        render_serve_json(&cfg, &cells)
    };
    assert_eq!(
        sweep(1),
        sweep(4),
        "VCU_THREADS must not change the campaign bytes"
    );
}

/// The serving telemetry snapshot is part of the replayable artifact:
/// same seed, same bytes — counters, histograms, series, and trace
/// events all ride the DES clock, never the wall clock.
#[test]
fn serve_telemetry_snapshot_is_byte_identical() {
    use vcu_serve::{ServeConfig, ServeSim};
    let snap = |seed: u64| {
        let reg = Registry::new();
        ServeSim::new(ServeConfig {
            viewers: 300,
            horizon_s: 25.0,
            catalog_videos: 200,
            cache_segments: 256,
            vcus: 16,
            seed,
            ..ServeConfig::default()
        })
        .with_telemetry(reg.clone())
        .run();
        reg.snapshot_json(&[("artifact", "serve-determinism")])
    };
    let a = snap(9);
    assert_eq!(a, snap(9), "same-seed snapshots must be byte-identical");
    assert_ne!(a, snap(10), "seed must steer the snapshot");
    assert!(a.contains("serve.ttff_s"), "TTFF histogram must land");
    assert!(
        a.contains("serve.concurrent"),
        "concurrency series must land"
    );
}

/// The region-campaign artifact pins like the fault and serve
/// campaigns: two same-seed sweeps — each running every planet twice
/// for the overflow/isolated counterfactual — render byte-identical
/// JSON (what CI pins for `results/region_campaign.json`), and the
/// seed is load-bearing. The verify script runs this suite under
/// VCU_THREADS=1 and VCU_THREADS=4; every planet advance fans out
/// through the work-stealing pool, so those two runs double as the
/// thread-invariance check.
#[test]
fn region_campaign_json_is_byte_identical() {
    use vcu_regions::{
        render_region_json, run_region_campaign, RegionCampaignConfig, RegionCellSpec,
    };
    let cfg = RegionCampaignConfig {
        seed: 1234,
        horizon_s: 60.0,
        epoch_s: 15.0,
        chunk_s: 10.0,
        util: 0.8,
        amplitude: 0.85,
        cells: vec![RegionCellSpec {
            regions: 2,
            cells_per_region: 2,
            vcus_per_cell: 8,
            traffic_scale: 1.0,
        }],
    };
    let a = render_region_json(&cfg, &run_region_campaign(&cfg));
    let b = render_region_json(&cfg, &run_region_campaign(&cfg));
    assert_eq!(a, b, "same-seed region campaigns must be byte-identical");
    let other = RegionCampaignConfig {
        seed: 4321,
        ..cfg.clone()
    };
    let c = render_region_json(&other, &run_region_campaign(&other));
    assert_ne!(a, c, "campaign seed must steer the planet");
    assert!(a.contains("\"merge_digest\""), "digest must land in JSON");
}

/// The cross-shard merge digest is order-sensitive, so equality across
/// merge shard counts proves the merged event order — not just the
/// aggregates — is invariant in how the queue is physically sharded.
#[test]
fn region_merge_is_shard_count_invariant() {
    use vcu_regions::{OverflowPolicy, PlanetConfig, PlanetSim, RegionSpec};
    fn tiny(merge_shards: usize) -> PlanetConfig {
        PlanetConfig {
            seed: 77,
            horizon_s: 60.0,
            epoch_s: 15.0,
            period_s: 60.0,
            chunk_s: 10.0,
            traffic_scale: 1.0,
            merge_shards,
            overflow: OverflowPolicy {
                pressure_threshold: 1.0,
                ..OverflowPolicy::default()
            },
            upgrades: true,
            domain_failures: true,
            regions: (0..2)
                .map(|r| RegionSpec {
                    name: format!("r{r}"),
                    cells: 2,
                    vcus_per_cell: 8,
                    peak_hour: 6.0 + 12.0 * r as f64,
                    mean_rate_per_s: 6.0,
                    amplitude: 0.9,
                })
                .collect(),
        }
    }
    let one = PlanetSim::new(tiny(1)).run();
    let four = PlanetSim::new(tiny(4)).run();
    let seven = PlanetSim::new(tiny(7)).run();
    assert_eq!(one, four, "merge_shards=4 changed the planet report");
    assert_eq!(one, seven, "merge_shards=7 changed the planet report");
    assert_eq!(one.merge_digest, four.merge_digest);
}

/// A seconds-long design-space sweep for the determinism suite: four
/// candidates bracketing the shipped anchor on the encoder-count and
/// DRAM-bandwidth axes.
fn tiny_dse(seed: u64) -> vcu_dse::DseConfig {
    vcu_dse::DseConfig {
        seed,
        vcus: 8,
        jobs_per_vcu: 12,
        fault_rate: 0.25,
        mttr_s: 15.0,
        encoder_cores: vec![8, 10],
        decoder_cores: vec![3],
        dram_gib_s: vec![27.0, 36.0],
        refstore_pixels: vec![147_456],
    }
}

#[test]
fn dse_sweep_json_is_byte_identical() {
    use vcu_dse::{render_dse_json, run_dse};
    let cfg = tiny_dse(9);
    let a = render_dse_json(&cfg, &run_dse(&cfg, 1));
    let b = render_dse_json(&cfg, &run_dse(&cfg, 1));
    assert_eq!(a, b, "same-seed design sweeps must be byte-identical");
    assert!(
        a.contains("\"anchor\": 1"),
        "the shipped design must appear in every grid"
    );
    let other = tiny_dse(10);
    let c = render_dse_json(&other, &run_dse(&other, 1));
    assert_ne!(a, c, "campaign seed must steer the sweep");
}

#[test]
fn dse_sweep_is_thread_invariant() {
    // run_dse fans candidates out over the shared worker pool and
    // reassembles in grid order; pin sequential against wide fan-out
    // directly, honoring VCU_THREADS when the suite runs under the
    // varied leg (the verify script runs this suite at VCU_THREADS=1
    // and VCU_THREADS=4).
    use vcu_dse::{render_dse_json, run_dse};
    let cfg = tiny_dse(9);
    let wide = vcu_exec::env_threads().max(4);
    assert_eq!(
        render_dse_json(&cfg, &run_dse(&cfg, 1)),
        render_dse_json(&cfg, &run_dse(&cfg, wide)),
        "VCU_THREADS must not change the sweep bytes"
    );
}
