//! Scalar <-> SIMD differential tests for the pixel-kernel layer.
//!
//! Every dispatched kernel in `vcu_codec::kernels` is swept over random
//! block geometries (including non-multiple-of-lane-width tails),
//! unaligned slice offsets, and saturating-edge pixel values (0, 255),
//! asserting *exact* equality — output bytes, f64 bit patterns, and
//! work-metering counters — between the scalar reference and every
//! backend the host supports. On a machine without AVX2 the sweep
//! degrades gracefully to whatever `available_backends()` reports.
//!
//! A failing case prints the exact seed; replay it with
//! `VCU_PROP_SEED=<seed> cargo test <name>`.

use vcu_codec::kernels::{self, Backend};
use vcu_codec::{encode, encode_parallel, EncoderConfig, Profile, Qp};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Plane, Resolution};
use vcu_rng::{prop_cases, Rng};

/// Random pixel with the saturating edges oversampled: roughly a
/// quarter of samples are exactly 0 or 255, where `packus`/`pavgb`
/// rounding mistakes would hide from a uniform sweep.
fn px(rng: &mut Rng) -> u8 {
    match rng.gen_range(0u32..8) {
        0 | 1 => 0,
        2 | 3 => 255,
        _ => rng.gen_range(0u32..256) as u8,
    }
}

/// Buffer of `len` edge-biased pixels preceded by a random 0..8 byte
/// offset, so SIMD loads sweep every alignment class.
fn px_buf(rng: &mut Rng, len: usize) -> (Vec<u8>, usize) {
    let off = rng.gen_range(0usize..8);
    let buf: Vec<u8> = (0..off + len).map(|_| px(rng)).collect();
    (buf, off)
}

fn random_plane(rng: &mut Rng, w: usize, h: usize) -> Plane {
    let data: Vec<u8> = (0..w * h).map(|_| px(rng)).collect();
    Plane::from_fn(w, h, |x, y| data[y * w + x])
}

fn simd_backends() -> Vec<Backend> {
    kernels::available_backends()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .collect()
}

prop_cases! {
    /// Flat SAD over arbitrary lengths and alignments.
    #[cases(512)]
    fn sad_slice_matches_scalar(rng) {
        let len = rng.gen_range(1usize..300);
        let (a, ao) = px_buf(rng, len);
        let (b, bo) = px_buf(rng, len);
        let (a, b) = (&a[ao..ao + len], &b[bo..bo + len]);
        let want = kernels::sad_slice_with(Backend::Scalar, a, b);
        for bk in simd_backends() {
            assert_eq!(kernels::sad_slice_with(bk, a, b), want, "{bk:?}");
        }
    }

    /// Row-thresholded SAD: the (sad, examined) pair must match
    /// exactly, and `examined` must honor the row-granular contract.
    #[cases(512)]
    fn sad_rows_thresholded_matches_scalar(rng) {
        let bw = rng.gen_range(1usize..67);
        let bh = rng.gen_range(1usize..33);
        let (a, ao) = px_buf(rng, bw * bh);
        let (b, bo) = px_buf(rng, bw * bh);
        let (a, b) = (&a[ao..ao + bw * bh], &b[bo..bo + bw * bh]);
        let threshold = match rng.gen_range(0u32..4) {
            0 => 0,
            1 => u64::MAX,
            _ => rng.gen_range(0u64..(bw * bh) as u64 * 128),
        };
        let (sad, examined) =
            kernels::sad_rows_thresholded_with(Backend::Scalar, a, b, bw, threshold);
        assert_eq!(examined % bw as u64, 0, "examined must be whole rows");
        assert!(examined <= (bw * bh) as u64);
        for bk in simd_backends() {
            assert_eq!(
                kernels::sad_rows_thresholded_with(bk, a, b, bw, threshold),
                (sad, examined),
                "{bk:?} bw={bw} bh={bh} threshold={threshold}"
            );
        }
    }

    /// Plane-level thresholded SAD at arbitrary (mostly out-of-bounds)
    /// positions: every backend must match the plane's own
    /// edge-clamped scalar oracle, pixel meter included.
    #[cases(512)]
    fn plane_sad_block_matches_plane_oracle(rng) {
        let w = rng.gen_range(8usize..80);
        let h = rng.gen_range(8usize..60);
        let plane = random_plane(rng, w, h);
        let bw = rng.gen_range(1usize..49);
        let bh = rng.gen_range(1usize..49);
        let x = rng.gen_range(-(2 * w as i64)..2 * w as i64) as isize;
        let y = rng.gen_range(-(2 * h as i64)..2 * h as i64) as isize;
        let (cur, co) = px_buf(rng, bw * bh);
        let cur = &cur[co..co + bw * bh];
        let threshold = match rng.gen_range(0u32..3) {
            0 => u64::MAX,
            _ => rng.gen_range(0u64..(bw * bh) as u64 * 64),
        };
        let want = plane.sad_block_thresholded(x, y, bw, bh, cur, threshold);
        for bk in kernels::available_backends() {
            assert_eq!(
                kernels::plane_sad_block_thresholded_with(bk, &plane, x, y, bw, bh, cur, threshold),
                want,
                "{bk:?} at ({x},{y}) {bw}x{bh} in {w}x{h}"
            );
        }
    }

    /// Hadamard SATD over block shapes that exercise both the 8-aligned
    /// fast grid and the partial edge cells.
    #[cases(384)]
    fn satd_matches_scalar(rng) {
        let bw = rng.gen_range(1usize..41);
        let bh = rng.gen_range(1usize..41);
        let (a, ao) = px_buf(rng, bw * bh);
        let (b, bo) = px_buf(rng, bw * bh);
        let (a, b) = (&a[ao..ao + bw * bh], &b[bo..bo + bw * bh]);
        let want = kernels::satd_with(Backend::Scalar, a, b, bw, bh);
        for bk in simd_backends() {
            assert_eq!(kernels::satd_with(bk, a, b, bw, bh), want, "{bk:?} {bw}x{bh}");
        }
    }

    /// Half-pel motion-compensated fetch at every fraction, including
    /// blocks hanging off the clamped border.
    #[cases(384)]
    fn copy_block_hpel_matches_plane_oracle(rng) {
        let w = rng.gen_range(8usize..80);
        let h = rng.gen_range(8usize..60);
        let plane = random_plane(rng, w, h);
        let bw = rng.gen_range(1usize..49);
        let bh = rng.gen_range(1usize..49);
        let x = rng.gen_range(-(w as i64 + 8)..w as i64 + 8) as isize;
        let y = rng.gen_range(-(h as i64 + 8)..h as i64 + 8) as isize;
        let fx = rng.gen_range(0u32..2) as u8;
        let fy = rng.gen_range(0u32..2) as u8;
        let mut want = vec![0u8; bw * bh];
        plane.copy_block_hpel(x, y, fx, fy, bw, bh, &mut want);
        let mut got = vec![0u8; bw * bh];
        for bk in kernels::available_backends() {
            got.fill(0);
            kernels::plane_copy_block_hpel_with(bk, &plane, x, y, fx, fy, bw, bh, &mut got);
            assert_eq!(got, want, "{bk:?} at ({x},{y}) f=({fx},{fy}) {bw}x{bh} in {w}x{h}");
        }
    }

    /// Residual extraction (u8 - u8 -> i16).
    #[cases(384)]
    fn compute_residual_matches_scalar(rng) {
        let len = rng.gen_range(1usize..300);
        let (cur, co) = px_buf(rng, len);
        let (pred, po) = px_buf(rng, len);
        let (cur, pred) = (&cur[co..co + len], &pred[po..po + len]);
        let mut want = vec![0i16; len];
        kernels::compute_residual_with(Backend::Scalar, cur, pred, &mut want);
        let mut got = vec![0i16; len];
        for bk in simd_backends() {
            got.fill(0);
            kernels::compute_residual_with(bk, cur, pred, &mut got);
            assert_eq!(got, want, "{bk:?}");
        }
    }

    /// Reconstruction (pred + residual, clamped to u8) across the full
    /// i16 residual range, where the saturating-add path must agree
    /// with the widening scalar clamp.
    #[cases(384)]
    fn add_residual_clamp_matches_scalar(rng) {
        let len = rng.gen_range(1usize..300);
        let (pred, po) = px_buf(rng, len);
        let pred = &pred[po..po + len];
        let resid: Vec<i16> = (0..len)
            .map(|_| match rng.gen_range(0u32..8) {
                0 => i16::MIN,
                1 => i16::MAX,
                _ => rng.gen_range(-600i32..600) as i16,
            })
            .collect();
        let mut want = vec![0u8; len];
        kernels::add_residual_clamp_with(Backend::Scalar, pred, &resid, &mut want);
        let mut got = vec![0u8; len];
        for bk in simd_backends() {
            got.fill(0);
            kernels::add_residual_clamp_with(bk, pred, &resid, &mut got);
            assert_eq!(got, want, "{bk:?}");
        }
    }

    /// Compound-prediction rounding average.
    #[cases(384)]
    fn avg_u8_matches_scalar(rng) {
        let len = rng.gen_range(1usize..300);
        let (a, ao) = px_buf(rng, len);
        let (b, bo) = px_buf(rng, len);
        let (a, b) = (&a[ao..ao + len], &b[bo..bo + len]);
        let mut want = a.to_vec();
        kernels::avg_u8_inplace_with(Backend::Scalar, &mut want, b);
        for bk in simd_backends() {
            let mut got = a.to_vec();
            kernels::avg_u8_inplace_with(bk, &mut got, b);
            assert_eq!(got, want, "{bk:?}");
        }
    }

    /// Temporal-filter blend accumulation: f64 results must match to
    /// the last bit (`to_bits`), not approximately.
    #[cases(384)]
    fn blend_accumulate_bitwise_matches_scalar(rng) {
        let len = rng.gen_range(1usize..300);
        let (src, so) = px_buf(rng, len);
        let src = &src[so..so + len];
        let acc0: Vec<f64> = (0..len)
            .map(|_| rng.gen_range(0u32..512_000) as f64 / 1000.0)
            .collect();
        let weight = rng.gen_range(0u32..1001) as f64 / 1000.0;
        let mut want = acc0.clone();
        kernels::blend_accumulate_with(Backend::Scalar, &mut want, src, weight);
        for bk in simd_backends() {
            let mut got = acc0.clone();
            kernels::blend_accumulate_with(bk, &mut got, src, weight);
            let same = got.iter().zip(&want).all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same, "{bk:?}: blend result differs in bits");
        }
    }

    /// The inverse transform's round/clamp/narrow store: exact halves
    /// (x.5 rounds away from zero), near-half neighbors, and values far
    /// outside the i16 range must all narrow identically.
    #[cases(384)]
    fn round_clamp_i16_matches_scalar(rng) {
        let len = rng.gen_range(1usize..200);
        let src: Vec<f64> = (0..len)
            .map(|_| match rng.gen_range(0u32..8) {
                // Exact .5 boundary, both signs.
                0 => rng.gen_range(-40_000i64..40_000) as f64 + 0.5,
                1 => rng.gen_range(-40_000i64..40_000) as f64 - 0.5,
                // Out of i16 range -> clamp must engage.
                2 => rng.gen_range(-1_000_000i64..1_000_000) as f64 * 1000.0,
                // Dense around the rounding boundary.
                _ => rng.gen_range(-40_000_000i64..40_000_000) as f64 / 1000.0,
            })
            .collect();
        let mut want = vec![0i16; len];
        kernels::round_clamp_i16_with(Backend::Scalar, &src, &mut want);
        let mut got = vec![0i16; len];
        for bk in simd_backends() {
            got.fill(0);
            kernels::round_clamp_i16_with(bk, &src, &mut got);
            assert_eq!(got, want, "{bk:?}");
        }
    }

    /// Dead-zone quantizer and its inverse: coefficient magnitudes
    /// sweep tiny, typical, and far-beyond-the-level-cap values; the
    /// dequantized f64s are compared bitwise.
    #[cases(384)]
    fn quantize_dequantize_match_scalar(rng) {
        let len = rng.gen_range(1usize..200);
        let step = 4.0 * 2f64.powf((rng.gen_range(0i64..52) as f64 - 24.0) / 6.0);
        let deadzone = rng.gen_range(0i64..=500) as f64 / 1000.0;
        let coeffs: Vec<f64> = (0..len)
            .map(|_| match rng.gen_range(0u32..8) {
                // Exactly on a reconstruction point (floor boundary).
                0 => rng.gen_range(-64i64..=64) as f64 * step,
                // Magnitude beyond the 1<<20 level cap.
                1 => rng.gen_range(-4_000_000i64..4_000_000) as f64 * step,
                // Signed zero and small values.
                2 => rng.gen_range(-2i64..=2) as f64 * 0.0625,
                _ => rng.gen_range(-16_320_000i64..16_320_000) as f64 / 1000.0,
            })
            .collect();
        let mut want = vec![0i32; len];
        kernels::quantize_levels_with(Backend::Scalar, &coeffs, step, deadzone, &mut want);
        let mut want_rec = vec![0.0f64; len];
        kernels::dequantize_coeffs_with(Backend::Scalar, &want, step, &mut want_rec);
        for bk in simd_backends() {
            let mut got = vec![0i32; len];
            kernels::quantize_levels_with(bk, &coeffs, step, deadzone, &mut got);
            assert_eq!(got, want, "{bk:?} quantize");
            let mut rec = vec![0.0f64; len];
            kernels::dequantize_coeffs_with(bk, &want, step, &mut rec);
            let rb: Vec<u64> = rec.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u64> = want_rec.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, wb, "{bk:?} dequantize");
        }
    }

    /// Separable-transform passes: every even size up to the largest
    /// transform, bitwise f64 equality. The matrix pair is (rows,
    /// transposed rows) exactly as `transform.rs` feeds them.
    #[cases(256)]
    fn tx_passes_bitwise_match_scalar(rng) {
        let n = 2 * rng.gen_range(1usize..17);
        let m_rows: Vec<f64> = (0..n * n)
            .map(|_| rng.gen_range(-1_000_000i64..1_000_000) as f64 / 1_000_000.0)
            .collect();
        let mut m_cols = vec![0.0f64; n * n];
        for q in 0..n {
            for s in 0..n {
                m_cols[s * n + q] = m_rows[q * n + s];
            }
        }
        let input: Vec<f64> = (0..n * n)
            .map(|_| rng.gen_range(-255_000i64..255_000) as f64 / 1000.0)
            .collect();
        let mut want = vec![0.0f64; n * n];
        let mut got = vec![0.0f64; n * n];
        for contig in [false, true] {
            let run = if contig {
                kernels::tx_pass_contig_with
            } else {
                kernels::tx_pass_strided_with
            };
            run(Backend::Scalar, &m_rows, &m_cols, &input, n, &mut want);
            for bk in simd_backends() {
                got.fill(0.0);
                run(bk, &m_rows, &m_cols, &input, n, &mut got);
                let same = got.iter().zip(&want).all(|(g, w)| g.to_bits() == w.to_bits());
                assert!(same, "{bk:?} n={n} contig={contig}: tx output differs in bits");
            }
        }
    }
}

/// Pins the row-granular early-exit metering contract documented on
/// [`Plane::sad_block_thresholded`]: when the threshold trips, every
/// backend stops at the *same row boundary*, so `sad_pixels_examined`
/// is a whole-row multiple and identical across scalar and SIMD — the
/// property that keeps the chip timing model byte-identical no matter
/// which instruction set ran the search.
#[test]
fn early_exit_metering_is_row_granular_and_backend_invariant() {
    // Maximal per-pixel difference: each 16-wide row contributes
    // 16 * 255 = 4080 to the SAD.
    let a = vec![0u8; 16 * 16];
    let b = vec![255u8; 16 * 16];
    for (threshold, want_rows) in [
        (1, 1),          // trips after the first row
        (4080, 1),       // boundary: first row alone reaches it
        (4081, 2),       // needs one pixel of row 2 -> charges all of it
        (16 * 4080, 16), // trips exactly at the last row
        (u64::MAX, 16),  // never trips: full block
    ] {
        for bk in kernels::available_backends() {
            let (sad, examined) = kernels::sad_rows_thresholded_with(bk, &a, &b, 16, threshold);
            assert_eq!(
                examined,
                16 * want_rows,
                "{bk:?} threshold={threshold}: examined must be row-granular"
            );
            assert_eq!(sad, 4080 * want_rows, "{bk:?} threshold={threshold}");
        }
    }
}

/// Whole-encoder differential: the bitstream, per-frame sizes, and the
/// complete stats block (device *and* host work meters) must be
/// byte-identical whichever backend runs the pixel kernels, serial or
/// chunk-parallel.
#[test]
fn encode_is_byte_identical_across_backends() {
    let v = SynthSpec::new(Resolution::R144, 4, ContentClass::ugc(), 21).generate();
    let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32));
    let mut reference = None;
    for bk in kernels::available_backends() {
        kernels::set_backend(bk);
        let serial = encode(&cfg, &v).unwrap();
        let chunked1 = encode_parallel(&cfg.with_threads(1), &v, 2).unwrap();
        let chunked4 = encode_parallel(&cfg.with_threads(4), &v, 2).unwrap();
        assert_eq!(
            chunked1.bytes, chunked4.bytes,
            "{bk:?}: thread count changed bytes"
        );
        match &reference {
            None => reference = Some((serial, chunked4)),
            Some((want, want_chunked)) => {
                assert_eq!(serial.bytes, want.bytes, "{bk:?}: bitstream differs");
                assert_eq!(serial.frames, want.frames, "{bk:?}: frame records differ");
                assert_eq!(serial.stats, want.stats, "{bk:?}: stats differ");
                assert_eq!(
                    chunked4.bytes, want_chunked.bytes,
                    "{bk:?}: chunked bitstream differs"
                );
            }
        }
    }
}
