//! Golden bitstream pins: byte-level encoder regression tests.
//!
//! Every row asserts the container length, an FNV-1a 64 hash of the
//! full container, and the headline work-metering counters for one
//! (content class, configuration) pair. The values were captured from
//! the allocation-heavy reference implementation; the zero-alloc
//! kernels, the early-exit SAD, the fast transform path, and the
//! search-result cache are all required to reproduce them exactly.
//! A deliberate behavior change must re-capture these constants and
//! say so in the commit message.

use vcu_codec::{encode, CodingStats, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Resolution, Video};

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// One pinned encode: (config name, container bytes, container hash,
/// sad_pixels, transform_pixels, mc_pixels, bits).
struct Golden {
    config: &'static str,
    bytes: usize,
    hash: u64,
    sad: u64,
    tx: u64,
    mc: u64,
    bits: u64,
}

fn clip(content: &str) -> Video {
    let (class, seed) = match content {
        "ugc" => (ContentClass::ugc(), 13),
        "talking_head" => (ContentClass::talking_head(), 5),
        "high_motion" => (ContentClass::high_motion(), 77),
        other => panic!("unknown content class {other}"),
    };
    SynthSpec::new(Resolution::R144, 8, class, seed).generate()
}

fn config(name: &str) -> EncoderConfig {
    let qp = Qp::new(30);
    match name {
        "h264_sw" => EncoderConfig::const_qp(Profile::H264Sim, qp),
        "vp9_sw" => EncoderConfig::const_qp(Profile::Vp9Sim, qp),
        "vp9_hw_launch" => {
            EncoderConfig::const_qp(Profile::Vp9Sim, qp).with_hardware(TuningLevel::LAUNCH)
        }
        "vp9_hw_mature" => {
            EncoderConfig::const_qp(Profile::Vp9Sim, qp).with_hardware(TuningLevel::MATURE)
        }
        other => panic!("unknown config {other}"),
    }
}

fn check(content: &str, rows: &[Golden]) {
    let v = clip(content);
    for g in rows {
        let e = encode(&config(g.config), &v).unwrap();
        let ctx = format!("{content}/{}", g.config);
        assert_eq!(e.bytes.len(), g.bytes, "{ctx}: container size drifted");
        assert_eq!(
            fnv1a64(&e.bytes),
            g.hash,
            "{ctx}: bitstream bytes drifted (size matches — content differs)"
        );
        let CodingStats {
            sad_pixels,
            transform_pixels,
            mc_pixels,
            bits,
            ..
        } = e.stats;
        assert_eq!(
            sad_pixels, g.sad,
            "{ctx}: sad_pixels (device billing) drifted"
        );
        assert_eq!(transform_pixels, g.tx, "{ctx}: transform_pixels drifted");
        assert_eq!(mc_pixels, g.mc, "{ctx}: mc_pixels drifted");
        assert_eq!(bits, g.bits, "{ctx}: coded bits drifted");
    }
}

#[test]
fn golden_ugc() {
    check(
        "ugc",
        &[
            Golden {
                config: "h264_sw",
                bytes: 32528,
                hash: 0x2C282F5FF95CFC5B,
                sad: 22054656,
                tx: 884736,
                mc: 385920,
                bits: 259440,
            },
            Golden {
                config: "vp9_sw",
                bytes: 28572,
                hash: 0x73CC3ABCE0F5BB4B,
                sad: 106272768,
                tx: 995328,
                mc: 1066752,
                bits: 227712,
            },
            Golden {
                config: "vp9_hw_launch",
                bytes: 39494,
                hash: 0x88A21C590CED0883,
                sad: 43966464,
                tx: 884736,
                mc: 940032,
                bits: 315168,
            },
            Golden {
                config: "vp9_hw_mature",
                bytes: 28597,
                hash: 0x7141C4FFC38C4144,
                sad: 63219968,
                tx: 995328,
                mc: 1064320,
                bits: 227912,
            },
        ],
    );
}

#[test]
fn golden_talking_head() {
    check(
        "talking_head",
        &[
            Golden {
                config: "h264_sw",
                bytes: 8734,
                hash: 0x3BDC2DC5CC330D54,
                sad: 20507648,
                tx: 884736,
                mc: 387072,
                bits: 69088,
            },
            Golden {
                config: "vp9_sw",
                bytes: 10735,
                hash: 0x1E8353009B44168A,
                sad: 87413248,
                tx: 995328,
                mc: 1056896,
                bits: 85016,
            },
            Golden {
                config: "vp9_hw_launch",
                bytes: 16215,
                hash: 0x62634A479C7713EA,
                sad: 29301248,
                tx: 884736,
                mc: 911616,
                bits: 128936,
            },
            Golden {
                config: "vp9_hw_mature",
                bytes: 10735,
                hash: 0x1E8353009B44168A,
                sad: 44061184,
                tx: 995328,
                mc: 1056896,
                bits: 85016,
            },
        ],
    );
}

#[test]
fn golden_high_motion() {
    check(
        "high_motion",
        &[
            Golden {
                config: "h264_sw",
                bytes: 70917,
                hash: 0xFC3D768EA209DC8C,
                sad: 19790592,
                tx: 884736,
                mc: 304128,
                bits: 566552,
            },
            Golden {
                config: "vp9_sw",
                bytes: 65500,
                hash: 0x9D391751500D1ED9,
                sad: 94585600,
                tx: 884736,
                mc: 804480,
                bits: 523216,
            },
            Golden {
                config: "vp9_hw_launch",
                bytes: 72200,
                hash: 0x51A38E40CD86B14C,
                sad: 59500288,
                tx: 884736,
                mc: 948864,
                bits: 576816,
            },
            Golden {
                config: "vp9_hw_mature",
                bytes: 65605,
                hash: 0x0C14EC20625ACEEF,
                sad: 62134528,
                tx: 884736,
                mc: 802688,
                bits: 524056,
            },
        ],
    );
}
