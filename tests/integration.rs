//! Cross-crate integration tests: the full stack from pixels to fleet.

use vcu_chip::faults::{golden_expected, golden_test, FaultyVcu};
use vcu_chip::{System, TranscodeJob, VcuModel, WorkloadShape};
use vcu_cluster::tco::perf_per_tco_normalized;
use vcu_cluster::{
    ClusterConfig, ClusterSim, FaultInjection, FaultKind, JobSpec, Priority, SchedulerKind,
};
use vcu_codec::{decode, encode, EncoderConfig, PassMode, Profile, Qp, TuningLevel};
use vcu_media::quality::psnr_y_video;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;
use vcu_system::chunking::{assemble, encode_chunks, split, ChunkPlan};
use vcu_system::experiments::{bd, clip_rd_curve, fig8, mean, tuning_schedule};
use vcu_system::platform::{live_latency_s, Platform};
use vcu_telemetry::Registry;
use vcu_workloads::{suite, PopularityBucket, Request, SuiteScale, WorkloadFamily};

/// The headline claim: 20-33x perf/TCO over the CPU baseline.
#[test]
fn headline_perf_per_tco_band() {
    let shape = WorkloadShape::SotTwoPass;
    let h264 = perf_per_tco_normalized(System::VcuHost { vcus: 20 }, Profile::H264Sim, shape)
        .expect("h264 runs everywhere");
    let vp9 = perf_per_tco_normalized(System::VcuHost { vcus: 20 }, Profile::Vp9Sim, shape)
        .expect("vp9 runs on vcu");
    // Paper: 7.0x (H.264) and 33.3x (VP9); 8xVCU gives 4.4x / 20.8x.
    assert!((5.0..9.0).contains(&h264), "h264 perf/TCO {h264}");
    assert!((25.0..42.0).contains(&vp9), "vp9 perf/TCO {vp9}");
    let v8 = perf_per_tco_normalized(System::VcuHost { vcus: 8 }, Profile::Vp9Sim, shape).unwrap();
    assert!((15.0..28.0).contains(&v8), "8xVCU vp9 perf/TCO {v8}");
}

/// End-to-end upload: chunk, encode on "hardware", pass through a
/// faulty and a healthy VCU, decode, reassemble, verify.
#[test]
fn upload_end_to_end_with_fault_screening() {
    let video = SynthSpec::new(Resolution::R144, 12, ContentClass::talking_head(), 31).generate();
    let plan = ChunkPlan::uniform(12, 4);
    let chunks = split(&video, &plan);
    let cfg =
        EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)).with_hardware(TuningLevel::MATURE);
    let encoded = encode_chunks(&cfg, &chunks).expect("encode");

    // A corrupting VCU taints one chunk; the container checksum (the
    // §4.4 integrity check) must catch it.
    let mut bad_vcu = FaultyVcu::new(3);
    bad_vcu.inject_silent_corruption();
    assert!(!golden_test(&bad_vcu, golden_expected()));
    let tainted = bad_vcu.taint(encoded[1].bytes.clone());
    assert!(decode(&tainted).is_err(), "corruption must not decode");

    // Retry path: decode the clean copy, reassemble all chunks.
    let decoded: Vec<_> = encoded
        .iter()
        .map(|e| decode(&e.bytes).expect("clean chunk").video)
        .collect();
    let out = assemble(decoded, 12).expect("length check");
    let psnr = psnr_y_video(&video, &out);
    assert!(psnr > 30.0, "end-to-end quality {psnr}");
}

/// The platform expansion feeds the cluster and everything completes.
#[test]
fn platform_to_cluster_pipeline() {
    let platform = Platform::default();
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request {
            arrival_s: i as f64 * 2.0,
            family: WorkloadFamily::Upload,
            resolution: Resolution::R1080,
            fps: 30.0,
            duration_s: 20.0,
            popularity: PopularityBucket::Tail,
        })
        .collect();
    let jobs = platform.jobs_for_all(&reqs);
    assert!(!jobs.is_empty());
    let cfg = ClusterConfig {
        vcus: 4,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::new(cfg, jobs, vec![]).run();
    assert_eq!(report.failed, 0);
    assert!(report.completed > 0);
}

/// Fig. 7 band: VP9 software beats H.264 software on predictable
/// content by a healthy BD-rate margin.
#[test]
fn vp9_bd_rate_win_on_predictable_content() {
    let clip = &suite(SuiteScale::Quick)[0]; // presentation
    let v = clip.video();
    let qps = [18u8, 26, 34, 42];
    let h = clip_rd_curve(
        EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)),
        &v,
        &qps,
    )
    .expect("h264 curve");
    let g = clip_rd_curve(
        EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)),
        &v,
        &qps,
    )
    .expect("vp9 curve");
    let d = bd(&h, &g).expect("bd-rate");
    assert!(d < -25.0, "VP9 should save >25% on screen content: {d:.1}%");
}

/// Fig. 10 mechanism: hardware tuning monotonically closes the gap.
#[test]
fn tuning_closes_hardware_gap() {
    let v = SynthSpec::new(Resolution::R144, 16, ContentClass::talking_head(), 77).generate();
    let qps = [20u8, 28, 36, 44];
    let sw = clip_rd_curve(
        EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)),
        &v,
        &qps,
    )
    .expect("sw curve");
    let gap = |level: TuningLevel| {
        let hw = clip_rd_curve(
            EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)).with_hardware(level),
            &v,
            &qps,
        )
        .expect("hw curve");
        bd(&sw, &hw).expect("bd")
    };
    let launch = gap(TuningLevel::LAUNCH);
    let mature = gap(TuningLevel::MATURE);
    assert!(
        launch > mature,
        "tuning must reduce the gap: launch {launch:.1}% vs mature {mature:.1}%"
    );
    assert!(
        launch > 0.0,
        "launch hardware should trail software: {launch:.1}%"
    );
    assert_eq!(tuning_schedule(16).level(), 6);
}

/// Fig. 8 shape at integration scale.
#[test]
fn mot_beats_sot_at_fleet_scale() {
    let d = fig8(4, 300.0, 3);
    assert!(
        mean(&d.mot) > mean(&d.sot),
        "{} vs {}",
        mean(&d.mot),
        mean(&d.sot)
    );
}

/// §4.5 live latency claims.
#[test]
fn live_latency_enables_new_use_cases() {
    assert!(live_latency_s(2.0, 5.0, 6.0) > 20.0);
    assert!(live_latency_s(2.0, 0.4, 0.6) < 7.0);
    // Stadia fits one VCU.
    let model = VcuModel::new();
    let stadia = TranscodeJob::sot(
        Resolution::R2160,
        Resolution::R2160,
        Profile::Vp9Sim,
        60.0,
        1.0,
    )
    .low_latency_two_pass();
    assert!(model
        .job_demand(&stadia)
        .fits_in(vcu_chip::ResourceDemand::vcu_capacity()));
}

/// Multi-dimensional packing beats single-slot under a mixed load.
#[test]
fn bin_packing_outperforms_single_slot() {
    let jobs = |n: usize| -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                arrival_s: i as f64 * 0.05,
                job: if i % 2 == 0 {
                    TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 30.0, 5.0)
                } else {
                    TranscodeJob::sot(
                        Resolution::R720,
                        Resolution::R360,
                        Profile::H264Sim,
                        30.0,
                        5.0,
                    )
                },
                priority: Priority::Normal,
                video_id: 0,
            })
            .collect()
    };
    let run = |kind| {
        let cfg = ClusterConfig {
            vcus: 4,
            scheduler: kind,
            ..ClusterConfig::default()
        };
        ClusterSim::new(cfg, jobs(200), vec![]).run()
    };
    let multi = run(SchedulerKind::MultiDim);
    let single = run(SchedulerKind::SingleSlot { slots: 2 });
    assert!(
        multi.mean_wait_s < single.mean_wait_s,
        "bin packing should cut queueing: {} vs {}",
        multi.mean_wait_s,
        single.mean_wait_s
    );
}

/// One-pass low-latency encodes hit bitrate targets without altrefs —
/// the live-streaming configuration end to end.
#[test]
fn low_latency_bitrate_mode() {
    let v = SynthSpec::new(Resolution::R144, 24, ContentClass::gaming(), 5).generate();
    let cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 800_000, PassMode::OnePassLowLatency)
        .with_hardware(TuningLevel::MATURE);
    let e = encode(&cfg, &v).expect("encode");
    assert!(e.frames.iter().all(|f| f.kind.is_displayable()));
    let err = (e.bitrate_bps() - 800_000.0).abs() / 800_000.0;
    assert!(err < 0.5, "one-pass rate error {err:.2}");
    let d = decode(&e.bytes).expect("decode");
    assert_eq!(d.video.frames.len(), 24);
}

/// The report and the telemetry counters are two views of one tally:
/// `ClusterReport` fields are derived from the same single-site
/// bookkeeping that feeds the registry, so they can never disagree.
#[test]
fn report_agrees_with_telemetry_counters() {
    let platform = Platform::default();
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request {
            arrival_s: i as f64 * 1.5,
            family: WorkloadFamily::Upload,
            resolution: Resolution::R1080,
            fps: 30.0,
            duration_s: 20.0,
            popularity: PopularityBucket::Middle,
        })
        .collect();
    let reg = Registry::new();
    let cfg = ClusterConfig {
        vcus: 4,
        detection_rate: 0.7,
        seed: 11,
        ..ClusterConfig::default()
    };
    let faults = vec![FaultInjection {
        time_s: 3.0,
        worker: 2,
        kind: FaultKind::SilentCorruption,
    }];
    let report = ClusterSim::new(cfg, platform.jobs_for_all(&reqs), faults)
        .with_telemetry(reg.clone())
        .run();

    assert!(report.completed > 0);
    assert_eq!(reg.counter("cluster.jobs.completed"), report.completed);
    assert_eq!(reg.counter("cluster.jobs.failed"), report.failed);
    assert_eq!(reg.counter("cluster.retries"), report.retries);
    assert_eq!(reg.counter("cluster.sw_decode"), report.sw_decoded_jobs);
    assert_eq!(
        reg.counter("cluster.corruption.caught"),
        report.caught_corruptions
    );
    assert_eq!(
        reg.counter("cluster.corruption.escaped"),
        report.escaped_corruptions
    );
    assert_eq!(reg.counter("cluster.jobs.stranded"), report.stranded);
    let attempts: u64 = report.attempts_per_worker.iter().sum();
    assert_eq!(reg.counter("cluster.attempts"), attempts);
    // Queueing wait is observed once per *job* at its first placement
    // (retries don't re-enter), so the histogram counts placed jobs —
    // every resolved job here was placed at least once.
    let wait = reg.histogram("cluster.wait_s").expect("waits observed");
    assert_eq!(
        wait.count,
        report.completed + report.failed - report.stranded
    );
}

/// Black-holing + golden screening at integration scale.
#[test]
fn failure_management_containment() {
    let jobs: Vec<JobSpec> = (0..60)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.3,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        })
        .collect();
    let cfg = ClusterConfig {
        vcus: 4,
        detection_rate: 1.0,
        ..ClusterConfig::default()
    };
    let faults = vec![FaultInjection {
        time_s: 2.0,
        worker: 1,
        kind: FaultKind::SilentCorruption,
    }];
    let report = ClusterSim::new(cfg, jobs, faults).run();
    assert_eq!(report.escaped_corruptions, 0);
    assert_eq!(report.failed, 0, "retries must absorb the fault");
    assert!(report.caught_corruptions >= 1);
}
