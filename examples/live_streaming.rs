//! Live streaming: why VCUs turned 30-second VP9 live latency into ~5 s.
//!
//! §4.5: software VP9 could only serve live by encoding many short
//! chunks in parallel — a 2-second chunk took ~10 s to encode, so 5-6
//! chunks ran concurrently and camera-to-eyeball latency ballooned.
//! One VCU encodes the full MOT faster than real time, so a small
//! buffer suffices. This example computes both latency budgets and
//! runs a real low-latency two-pass encode to show the mode works.
//!
//! Run with: `cargo run --release --example live_streaming`
//! (set `VCU_SEED` to vary the generated content).

use vcu_chip::{TranscodeJob, VcuModel, WorkloadShape};
use vcu_codec::{decode, encode, EncoderConfig, PassMode, Profile, Qp, TuningLevel};
use vcu_media::quality::psnr_y_video;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;
use vcu_system::platform::live_latency_s;
use vcu_telemetry::json::JsonObj;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(3);
    let chunk_s = 2.0;

    // Software: VP9 encodes ~5x slower than real time on CPU; deep
    // buffering needed to ride out throughput variance (§4.5).
    let sw_latency = live_latency_s(chunk_s, 5.0, 6.0);
    // VCU: faster than real time, shallow buffer.
    let hw_latency = live_latency_s(chunk_s, 0.4, 0.6);
    println!("camera-to-eyeball latency, 1080p VP9 live:");
    println!("  software pipeline: {sw_latency:>5.1} s  (chunk-parallel, deep buffer)");
    println!("  VCU pipeline:      {hw_latency:>5.1} s  (single VCU, real-time MOT)");
    assert!(sw_latency > 20.0 && hw_latency < 7.0);

    // A single VCU really does fit the whole 1080p live MOT (§4.5).
    let model = VcuModel::new();
    let job =
        TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, chunk_s).low_latency_two_pass();
    let demand = model.job_demand(&job);
    let fits = demand.fits_in(vcu_chip::ResourceDemand::vcu_capacity());
    println!(
        "1080p30 VP9 live MOT on one VCU: {} (demand {:?})",
        if fits {
            "fits in real time"
        } else {
            "DOES NOT FIT"
        },
        demand
    );
    assert!(fits);
    let sustained = model.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::OnePass);
    println!("one-pass sustained rate per VCU: {sustained:.0} Mpix/s");

    // Run the actual low-latency two-pass encoder mode on a live-ish
    // clip: no altref (needs future frames), statistics from past only.
    let clip = SynthSpec::new(Resolution::R144, 30, ContentClass::gaming(), seed).generate();
    let cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 900_000, PassMode::TwoPassLowLatency)
        .with_hardware(TuningLevel::MATURE);
    let e = encode(&cfg, &clip)?;
    assert!(
        e.frames.iter().all(|f| f.kind.is_displayable()),
        "low-latency mode must not emit altrefs"
    );
    let d = decode(&e.bytes)?;
    let psnr = psnr_y_video(&clip, &d.video);
    println!(
        "low-latency two-pass encode: {:.0} kbps (target 900), Y-PSNR {psnr:.2} dB",
        e.bitrate_bps() / 1e3,
    );
    let _ = Qp::new(30); // silence unused import lint paths in minimal builds

    println!(
        "{}",
        JsonObj::new()
            .str("example", "live_streaming")
            .u64("seed", seed)
            .f64("sw_latency_s", sw_latency)
            .f64("hw_latency_s", hw_latency)
            .f64("bitrate_kbps", e.bitrate_bps() / 1e3)
            .f64("psnr_y_db", psnr)
            .finish()
    );
    Ok(())
}
