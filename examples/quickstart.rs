//! Quickstart: transcode a clip on the (simulated) VCU and verify it.
//!
//! Demonstrates the core loop every other example builds on: generate
//! raw video, encode with the hardware toolset, decode, measure quality
//! and bitrate, and run the golden self-test that production workers
//! perform before trusting a VCU.
//!
//! Run with: `cargo run --release --example quickstart`
//! (set `VCU_SEED` to vary the generated content).

use vcu_chip::faults::{golden_expected, golden_test, FaultyVcu};
use vcu_codec::{decode, encode, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::quality::psnr_y_video;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;
use vcu_telemetry::json::JsonObj;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(42);
    // 1. A 2-second 240p user-generated clip.
    let video = SynthSpec::new(Resolution::R240, 48, ContentClass::ugc(), seed).generate();
    println!(
        "source: {}x{} @ {} fps, {} frames",
        video.width(),
        video.height(),
        video.fps,
        video.frames.len()
    );

    // 2. Encode as VP9 on a mature-tuning VCU.
    let cfg =
        EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)).with_hardware(TuningLevel::MATURE);
    let encoded = encode(&cfg, &video)?;
    println!(
        "encoded: {} bytes, {:.0} kbps, {} coded frames ({} hidden altrefs)",
        encoded.size_bytes(),
        encoded.bitrate_bps() / 1e3,
        encoded.frames.len(),
        encoded
            .frames
            .iter()
            .filter(|f| !f.kind.is_displayable())
            .count(),
    );

    // 3. Decode and measure quality.
    let decoded = decode(&encoded.bytes)?;
    let psnr = psnr_y_video(&video, &decoded.video);
    println!(
        "decoded: {} frames, Y-PSNR {:.2} dB",
        decoded.video.frames.len(),
        psnr
    );
    assert_eq!(decoded.video.frames.len(), video.frames.len());

    // 4. The golden self-test every worker runs on attach (§4.4).
    let vcu = FaultyVcu::new(7);
    let ok = golden_test(&vcu, golden_expected());
    println!("golden self-test: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);

    // 5. Work metering feeds the fleet-level timing models.
    println!(
        "encode work: {:.1} Mpix, {:.1} M SAD-pixels, {:.2} bits/pixel",
        encoded.stats.pixels as f64 / 1e6,
        encoded.stats.sad_pixels as f64 / 1e6,
        encoded.stats.bits_per_pixel()
    );

    println!(
        "{}",
        JsonObj::new()
            .str("example", "quickstart")
            .u64("seed", seed)
            .u64("coded_frames", encoded.frames.len() as u64)
            .f64("bitrate_kbps", encoded.bitrate_bps() / 1e3)
            .f64("psnr_y_db", psnr)
            .bool("golden_pass", ok)
            .finish()
    );
    Ok(())
}
