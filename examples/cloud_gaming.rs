//! Cloud gaming (Stadia): 4K60 low-latency two-pass VP9 on one VCU.
//!
//! §4.5: "By using the low-latency two-pass VCU based VP9 encoding,
//! Stadia can achieve these goals and deliver 4K 60 FPS game play on
//! connections of 35 Mbps." This example checks the capacity math at
//! 2160p60, then runs the real encoder in the gaming configuration on
//! a downscaled clip and reports the per-frame latency budget and
//! bitrate against the 35 Mbps figure (scaled by resolution).
//!
//! Run with: `cargo run --release --example cloud_gaming`
//! (set `VCU_SEED` to vary the generated content).

use vcu_chip::{ResourceDemand, TranscodeJob, VcuModel};
use vcu_codec::{decode, encode, EncoderConfig, PassMode, Profile, Qp};
use vcu_media::quality::psnr_y_video;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;
use vcu_telemetry::json::JsonObj;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(17);
    // Capacity: a 2160p60 low-latency two-pass SOT stream on one VCU.
    let model = VcuModel::new();
    let job = TranscodeJob::sot(
        Resolution::R2160,
        Resolution::R2160,
        Profile::Vp9Sim,
        60.0,
        1.0,
    )
    .low_latency_two_pass();
    let demand = model.job_demand(&job);
    println!("Stadia stream demand on one VCU: {demand:?}");
    assert!(
        demand.fits_in(ResourceDemand::vcu_capacity()),
        "4K60 low-latency stream must fit a single VCU"
    );
    // Frame budget at 60 FPS.
    println!("frame budget at 60 FPS: 16.7 ms; VCU encodes 2160p60 in real time (§3.3.1)");

    // Real encode in the gaming configuration, scaled down so the
    // pixel-level codec runs quickly (bitrate scales with pixels).
    let res = Resolution::R240;
    let fps = 60.0;
    let clip = SynthSpec::new(res, 60, ContentClass::gaming(), seed).with_fps(fps);
    let video = clip.generate();
    // 35 Mbps at 2160p60 ≈ 35e6 × (240p pixels / 2160p pixels) here.
    let target = (35e6 * res.pixels() as f64 / Resolution::R2160.pixels() as f64) as u64;
    let cfg = EncoderConfig::bitrate(Profile::Vp9Sim, target, PassMode::TwoPassLowLatency)
        .with_hardware(vcu_codec::TuningLevel::MATURE);
    let e = encode(&cfg, &video)?;
    let d = decode(&e.bytes)?;
    let psnr = psnr_y_video(&video, &d.video);
    println!(
        "gaming encode at {res}{}fps: {:.2} Mbps (target {:.2}), Y-PSNR {:.2} dB",
        fps,
        e.bitrate_bps() / 1e6,
        target as f64 / 1e6,
        psnr
    );
    // Low-latency mode: every frame displayable, one pass of lookahead
    // only from the past.
    assert!(e.frames.iter().all(|f| f.kind.is_displayable()));
    let err = (e.bitrate_bps() - target as f64).abs() / target as f64;
    println!(
        "rate-control error vs target: {:.0}% ({})",
        err * 100.0,
        if err < 0.5 { "ok" } else { "out of band" }
    );
    let _ = Qp::new(30);

    println!(
        "{}",
        JsonObj::new()
            .str("example", "cloud_gaming")
            .u64("seed", seed)
            .f64("bitrate_mbps", e.bitrate_bps() / 1e6)
            .f64("target_mbps", target as f64 / 1e6)
            .f64("rc_error", err)
            .f64("psnr_y_db", psnr)
            .finish()
    );
    Ok(())
}
