//! Fleet observability drill: regenerate Fig. 9-shaped utilization
//! curves from the telemetry subsystem.
//!
//! §4.2/Fig. 9: the fleet dashboards plot encoder vs decoder
//! utilization over time; decode-heavy workloads (high-resolution
//! inputs transcoded to small outputs) saturate the hardware decoders
//! long before the encoders, and the Fig. 9c mitigation —
//! opportunistic software decode on the host CPU — moves that
//! bottleneck off the chip. This example runs the cluster simulator
//! twice (toggle off/on) with a telemetry [`Registry`] attached, dumps
//! the utilization time series as an aligned table under `results/`,
//! and writes the full deterministic snapshots next to it. A third
//! registry drills into one node: encoder-core pipeline occupancy and
//! per-frame codec metrics.
//!
//! Run with: `cargo run --release --example observe`
//! (set `VCU_SEED` to vary detection coin-flips and content).

use vcu_bench::timing::results_path;
use vcu_chip::encoder_core::PipelineSim;
use vcu_chip::TranscodeJob;
use vcu_cluster::{ClusterConfig, ClusterReport, ClusterSim, JobSpec, Priority};
use vcu_codec::{encode_traced, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;
use vcu_telemetry::json::JsonObj;
use vcu_telemetry::Registry;

/// Decode-heavy fleet: 2160p UGC inputs transcoded down to 240p.
/// Input pixel rate (decode demand) dwarfs output pixel rate (encode
/// demand), which is exactly the Fig. 9 hardware-decode bottleneck.
fn decode_heavy_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            // Arrivals far outpace service: each 2160p30 input needs
            // ~227 of 3,000 millidecode, so ~13 jobs pin one VCU's
            // decoders and the queue builds — the Fig. 9 regime.
            arrival_s: i as f64 * 0.1,
            job: TranscodeJob::sot(
                Resolution::R2160,
                Resolution::R240,
                Profile::Vp9Sim,
                30.0,
                8.0,
            ),
            priority: Priority::Normal,
            video_id: (i / 4) as u64,
        })
        .collect()
}

fn run_fleet(seed: u64, sw_offload: bool) -> (Registry, ClusterReport) {
    let reg = Registry::new();
    let cfg = ClusterConfig {
        vcus: 6,
        opportunistic_sw_decode: sw_offload,
        sample_period_s: 5.0,
        seed,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::new(cfg, decode_heavy_jobs(240), vec![])
        .with_telemetry(reg.clone())
        .run();
    (reg, report)
}

fn peak(series: &[(f64, f64)]) -> f64 {
    series.iter().map(|&(_, v)| v).fold(0.0, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(21);

    // ---- Fleet level: Fig. 9 utilization curves, toggle off vs on ----
    let (hw_reg, hw_report) = run_fleet(seed, false);
    let (sw_reg, sw_report) = run_fleet(seed, true);

    let series = |reg: &Registry, name: &str| reg.series(name).unwrap_or_default();
    let hw_enc = series(&hw_reg, "cluster.util.encode");
    let hw_dec = series(&hw_reg, "cluster.util.decode");
    let hw_queue = series(&hw_reg, "cluster.queue.depth");
    let sw_enc = series(&sw_reg, "cluster.util.encode");
    let sw_dec = series(&sw_reg, "cluster.util.decode");
    let sw_queue = series(&sw_reg, "cluster.queue.depth");

    println!("decode-heavy fleet (2160p in → 240p out), 6 VCUs, 240 chunks:");
    println!(
        "  hw-only:    peak encode {:.2}, peak decode {:.2}, peak queue {:.0}, {} done",
        peak(&hw_enc),
        peak(&hw_dec),
        peak(&hw_queue),
        hw_report.completed,
    );
    println!(
        "  sw-offload: peak encode {:.2}, peak decode {:.2}, peak queue {:.0}, {} done ({} sw-decoded)",
        peak(&sw_enc),
        peak(&sw_dec),
        peak(&sw_queue),
        sw_report.completed,
        sw_report.sw_decoded_jobs,
    );

    // The Fig. 9 shape: hardware decode pins at its ceiling while
    // encoders idle; the offload toggle visibly changes the curve.
    assert!(
        peak(&hw_dec) > 0.9,
        "decode must bottleneck: {}",
        peak(&hw_dec)
    );
    assert!(
        peak(&hw_dec) > peak(&hw_enc) + 0.2,
        "decode should lead encode by a wide margin"
    );
    assert!(sw_report.sw_decoded_jobs > 0, "offload must engage");
    assert_ne!(
        hw_dec, sw_dec,
        "toggling sw offload must change the decode curve"
    );

    // Aligned utilization-over-time table.
    let rows = hw_enc.len().min(sw_enc.len());
    let mut table = String::new();
    table.push_str(&format!("# decode-heavy fleet utilization, seed {seed}\n"));
    table.push_str("# t_s  enc_hw  dec_hw  queue_hw  enc_sw  dec_sw  queue_sw\n");
    for i in 0..rows {
        table.push_str(&format!(
            "{:>6.0} {:>7.3} {:>7.3} {:>9.0} {:>7.3} {:>7.3} {:>9.0}\n",
            hw_enc[i].0,
            hw_enc[i].1,
            hw_dec[i].1,
            hw_queue[i].1,
            sw_enc[i].1,
            sw_dec[i].1,
            sw_queue[i].1,
        ));
    }
    let table_path = results_path("observe_utilization.txt");
    std::fs::create_dir_all(std::path::Path::new(&table_path).parent().unwrap())?;
    std::fs::write(&table_path, &table)?;

    let seed_str = seed.to_string();
    hw_reg.write_snapshot(
        &results_path("observe_telemetry_hw.json"),
        &[("seed", seed_str.as_str()), ("mode", "hw_decode_only")],
    )?;
    sw_reg.write_snapshot(
        &results_path("observe_telemetry_sw_offload.json"),
        &[("seed", seed_str.as_str()), ("mode", "sw_offload")],
    )?;

    // ---- Node level: one VCU's pipeline + codec, same registry ----
    let node_reg = Registry::new();
    let pipeline = PipelineSim::new(4, 0.5);
    let rel = pipeline.relative_throughput_traced(4000, &node_reg);
    let clip = SynthSpec::new(Resolution::R144, 12, ContentClass::ugc(), seed).generate();
    let cfg =
        EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)).with_hardware(TuningLevel::MATURE);
    let encoded = encode_traced(&cfg, &clip, &node_reg)?;
    node_reg.write_snapshot(
        &results_path("observe_telemetry_node.json"),
        &[("seed", seed_str.as_str()), ("mode", "node_drilldown")],
    )?;
    let psnr = node_reg
        .histogram("codec.frame.psnr_y")
        .expect("traced encode records psnr");
    println!(
        "node drill-down: pipeline throughput {:.2} of ideal, {} coded frames, p50 Y-PSNR {:.1} dB",
        rel,
        encoded.frames.len(),
        psnr.p50,
    );

    println!("wrote {table_path} and 3 telemetry snapshots");

    println!(
        "{}",
        JsonObj::new()
            .str("example", "observe")
            .u64("seed", seed)
            .f64("peak_decode_util_hw", peak(&hw_dec))
            .f64("peak_encode_util_hw", peak(&hw_enc))
            .u64("sw_decoded_jobs", sw_report.sw_decoded_jobs)
            .u64("hw_completed", hw_report.completed)
            .u64("sw_completed", sw_report.completed)
            .f64("pipeline_rel_throughput", rel)
            .f64("psnr_y_p50_db", psnr.p50)
            .finish()
    );
    Ok(())
}
