//! Chaos drill: one of every fault kind, live, against a small fleet.
//!
//! Injects the full §4.4 fault menagerie — silent corruption, firmware
//! hang, a 16× slow core, a DRAM ECC storm, crash-looping firmware and
//! a hard death — into a 16-VCU fleet mid-run, with field repairs for
//! two of them, and shows the mitigation loop (watchdogs, backoff
//! retries, golden screening, health strikes, the degradation ladder)
//! absorbing the damage.
//!
//! Run with: `cargo run --release --example chaos`
//! (set `VCU_SEED` to vary detection coin-flips and fault timing).

use vcu_chip::TranscodeJob;
use vcu_cluster::{
    ClusterConfig, ClusterSim, DegradePolicy, FaultInjection, FaultKind, HealthPolicy, JobSpec,
    Priority, RetryPolicy, WatchdogPolicy,
};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_telemetry::json::JsonObj;

const VCUS: usize = 16;

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.35,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: match i % 4 {
                0 => Priority::Critical,
                3 => Priority::Batch,
                _ => Priority::Normal,
            },
            video_id: (i / 4) as u64,
        })
        .collect()
}

/// One of each fault kind on workers 0..=5, staggered through the run;
/// the hang and the death get field-repaired a minute later.
fn faults() -> Vec<FaultInjection> {
    let mut f = vec![
        FaultInjection {
            time_s: 5.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        },
        FaultInjection {
            time_s: 10.0,
            worker: 1,
            kind: FaultKind::FirmwareHang,
        },
        FaultInjection {
            time_s: 15.0,
            worker: 2,
            kind: FaultKind::SlowCore { factor_pct: 1600 },
        },
        FaultInjection {
            time_s: 20.0,
            worker: 3,
            kind: FaultKind::EccStorm {
                correctable_per_tick: 200,
            },
        },
        FaultInjection {
            time_s: 25.0,
            worker: 4,
            kind: FaultKind::CrashLoop,
        },
        FaultInjection {
            time_s: 30.0,
            worker: 5,
            kind: FaultKind::Dead,
        },
    ];
    f.push(FaultInjection {
        time_s: 70.0,
        worker: 1,
        kind: FaultKind::Repair,
    });
    f.push(FaultInjection {
        time_s: 90.0,
        worker: 5,
        kind: FaultKind::Repair,
    });
    f
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(11);
    let n_jobs = 400;
    let cfg = ClusterConfig {
        vcus: VCUS,
        detection_rate: 0.9,
        retry: RetryPolicy {
            base_s: 2.0,
            factor: 2.0,
            max_attempts: 5,
            jitter_frac: 0.1,
            ..RetryPolicy::default()
        },
        watchdog: WatchdogPolicy {
            grace_s: 5.0,
            service_factor: 4.0,
        },
        health: HealthPolicy {
            strike_threshold: 3,
            max_recoveries: 1,
            golden_period_s: 30.0,
        },
        degrade: DegradePolicy {
            enabled: true,
            ..DegradePolicy::default()
        },
        sample_period_s: 10.0,
        seed,
        ..ClusterConfig::default()
    };
    println!("chaos drill: {VCUS} VCUs, {n_jobs} chunks, six fault kinds injected mid-run\n");
    let r = ClusterSim::new(cfg, jobs(n_jobs), faults()).run();

    println!("{:<38} {:>10}", "metric", "value");
    for (name, v) in [
        ("completed", r.completed),
        ("failed", r.failed),
        ("  of which shed by the ladder", r.shed),
        ("  of which stranded", r.stranded),
        ("retries", r.retries),
        ("watchdog deadlines fired", r.watchdog_fired),
        ("crash-loop aborts", r.crash_aborts),
        ("corruptions caught", r.caught_corruptions),
        ("corruptions escaped", r.escaped_corruptions),
        ("field repairs applied", r.repairs),
        ("workers quarantined at end", r.quarantined_workers),
    ] {
        println!("{name:<38} {v:>10}");
    }
    println!("{:<38} {:>10.2}", "mean wait (s)", r.mean_wait_s);
    println!("{:<38} {:>10.2}", "p99 wait (s)", r.p99_wait_s);
    println!(
        "{:<38} {:>10.2}",
        "blast radius (VCUs/video)", r.mean_vcus_per_video
    );
    println!(
        "{:<38} [{:.2} {:.2} {:.2} {:.2}]",
        "degradation-ladder time fractions",
        r.degrade_time_frac[0],
        r.degrade_time_frac[1],
        r.degrade_time_frac[2],
        r.degrade_time_frac[3]
    );

    // Every job resolves, the watchdog rescued the hang, the crash loop
    // aborted attempts, and the fleet did not collapse: the drill's
    // whole point.
    assert_eq!(
        r.completed + r.failed,
        n_jobs as u64,
        "every chunk must resolve"
    );
    assert!(r.watchdog_fired > 0, "the hang must trip a watchdog");
    assert!(r.crash_aborts > 0, "the crash loop must abort attempts");
    assert!(r.repairs == 2, "both field repairs must apply");
    assert!(
        r.completed >= (n_jobs as u64) * 9 / 10,
        "mitigation must keep >=90% of chunks completing, got {}",
        r.completed
    );

    println!(
        "\n{}",
        JsonObj::new()
            .str("example", "chaos")
            .u64("seed", seed)
            .u64("completed", r.completed)
            .u64("failed", r.failed)
            .u64("watchdog_fired", r.watchdog_fired)
            .u64("crash_aborts", r.crash_aborts)
            .u64("repairs", r.repairs)
            .u64("quarantined_workers", r.quarantined_workers)
            .f64("p99_wait_s", r.p99_wait_s)
            .finish()
    );
    Ok(())
}
