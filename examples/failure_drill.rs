//! Failure-management drill: black-holing, golden screening, blast radius.
//!
//! Reproduces §4.4's operational story. A VCU develops silent output
//! corruption while getting *faster* (it skips real work), so the
//! first-fit scheduler keeps feeding it — "black-holing". With the
//! paper's mitigation (abort on failure + golden transcode screening)
//! the bad VCU is quarantined after its first detected failure.
//!
//! Run with: `cargo run --release --example failure_drill`
//! (set `VCU_SEED` to vary detection coin-flips).

use vcu_chip::TranscodeJob;
use vcu_cluster::{
    ClusterConfig, ClusterSim, FaultInjection, FaultKind, JobSpec, Priority, RetryPolicy,
};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_telemetry::json::JsonObj;

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.25,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        })
        .collect()
}

fn fault() -> Vec<FaultInjection> {
    vec![FaultInjection {
        time_s: 0.0,
        worker: 0,
        kind: FaultKind::SilentCorruption,
    }]
}

fn run(seed: u64, mitigation: bool, integrity: bool) -> vcu_cluster::ClusterReport {
    let cfg = ClusterConfig {
        vcus: 4,
        blackhole_mitigation: mitigation,
        integrity_checks: integrity,
        detection_rate: 0.9,
        retry: RetryPolicy {
            max_attempts: 11,
            ..RetryPolicy::default()
        },
        seed,
        ..ClusterConfig::default()
    };
    ClusterSim::new(cfg, jobs(80), fault()).run()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(5);
    println!("failure drill: worker 0 silently corrupts from t=0, 4 VCUs, 80 chunks\n");

    let naive = run(seed, false, false);
    let detected = run(seed, false, true);
    let mitigated = run(seed, true, true);

    let share = |r: &vcu_cluster::ClusterReport| {
        let total: u64 = r.attempts_per_worker.iter().sum();
        r.attempts_per_worker[0] as f64 / total as f64
    };

    println!(
        "{:<34} {:>8} {:>9} {:>9} {:>10}",
        "configuration", "retries", "escaped", "caught", "w0 share"
    );
    for (name, r) in [
        ("no checks, no mitigation", &naive),
        ("integrity checks only", &detected),
        ("checks + golden quarantine", &mitigated),
    ] {
        println!(
            "{:<34} {:>8} {:>9} {:>9} {:>9.0}%",
            name,
            r.retries,
            r.escaped_corruptions,
            r.caught_corruptions,
            share(r) * 100.0
        );
    }

    println!();
    println!(
        "blast radius without checks: {} corrupted chunks shipped to viewers",
        naive.escaped_corruptions
    );
    println!(
        "with integrity checks: {} caught, {} escaped (detection is probabilistic, as in production)",
        detected.caught_corruptions, detected.escaped_corruptions
    );
    println!(
        "with mitigation: worker 0 quarantined after first detection; retries drop {}x",
        (detected.retries.max(1)) / mitigated.retries.max(1)
    );

    assert!(naive.escaped_corruptions > 0);
    assert!(mitigated.retries < detected.retries);
    assert!(share(&detected) > share(&mitigated));

    println!(
        "{}",
        JsonObj::new()
            .str("example", "failure_drill")
            .u64("seed", seed)
            .u64("naive_escaped", naive.escaped_corruptions)
            .u64("detected_retries", detected.retries)
            .u64("mitigated_retries", mitigated.retries)
            .f64("blackhole_share", share(&detected))
            .f64("mitigated_share", share(&mitigated))
            .finish()
    );
    Ok(())
}
