//! Online serving quick-start: 10 000 concurrent viewers on 64 VCUs.
//!
//! Viewers arrive as a Poisson stream over a Zipf-popular catalog and
//! stream segment by segment. The popularity-protected segment cache
//! absorbs the head; misses become on-demand transcodes with
//! deadline-class priorities (first segment = Critical, prefetch =
//! Normal); admission control sheds sessions before the cluster's
//! degradation ladder would have to engage.
//!
//! Run with: `cargo run --release --example serve`
//! (set `VCU_SEED` to vary arrivals, catalog, and fleet noise).

use vcu_serve::{ServeConfig, ServeSim};
use vcu_telemetry::json::JsonObj;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(42);
    let cfg = ServeConfig {
        viewers: 10_000,
        horizon_s: 60.0,
        catalog_videos: 2_000,
        cache_segments: 4_096,
        vcus: 64,
        seed,
        ..ServeConfig::default()
    };
    println!(
        "online serving: target {} concurrent viewers, {} VCUs, {}-segment cache, seed {}\n",
        cfg.viewers, cfg.vcus, cfg.cache_segments, seed
    );

    let slots = cfg.slots_per_worker();
    let report = ServeSim::new(cfg).run();

    println!(
        "arrived   {:>8}  (shed {} at the door)",
        report.arrivals, report.shed_sessions
    );
    println!(
        "completed {:>8}  (aborted {})",
        report.completed_sessions, report.aborted_sessions
    );
    println!("peak concurrent viewers: {}", report.peak_concurrent);
    println!(
        "TTFF p50/p99: {:.3}s / {:.3}s   rebuffer ratio: {:.4}%",
        report.ttff_p50_s,
        report.ttff_p99_s,
        report.rebuffer_ratio * 100.0
    );
    println!(
        "cache: {:.1}% hit ratio ({} hits / {} misses); {} on-demand transcodes ({} slots/VCU)",
        report.hit_ratio * 100.0,
        report.cache_hits,
        report.cache_misses,
        report.transcodes,
        slots
    );
    println!(
        "cost: {:.2} GB egress = ${:.2}; transcode = ${:.4}",
        report.egress_gb, report.egress_cost_usd, report.transcode_cost_usd
    );

    assert_eq!(report.arrivals, report.admitted + report.shed_sessions);
    assert_eq!(
        report.admitted,
        report.completed_sessions + report.aborted_sessions
    );
    assert!(report.peak_concurrent > 0);
    assert!(report.hit_ratio > 0.0, "head traffic must hit the cache");

    println!(
        "{}",
        JsonObj::new()
            .str("example", "serve")
            .u64("seed", seed)
            .u64("arrivals", report.arrivals)
            .u64("peak_concurrent", report.peak_concurrent)
            .u64("shed", report.shed_sessions)
            .f64("ttff_p50_s", report.ttff_p50_s)
            .f64("ttff_p99_s", report.ttff_p99_s)
            .f64("rebuffer_ratio", report.rebuffer_ratio)
            .f64("hit_ratio", report.hit_ratio)
            .f64("egress_cost_usd", report.egress_cost_usd)
            .f64("transcode_cost_usd", report.transcode_cost_usd)
            .finish()
    );
    Ok(())
}
