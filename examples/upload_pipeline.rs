//! End-to-end upload pipeline: chunk → parallel MOT transcode →
//! assemble, with the cluster simulator carrying the fleet-scale view.
//!
//! Mirrors §2.2/§3.1: an upload is split into closed GOPs, each chunk
//! becomes a MOT step in a task graph, VCU workers process chunks in
//! parallel, and the platform reassembles and integrity-checks the
//! result. The pixel-level path runs the real codec; the fleet-scale
//! path runs the discrete-event cluster simulation on the same job
//! shapes.
//!
//! Run with: `cargo run --release --example upload_pipeline`
//! (set `VCU_SEED` to vary the generated content, `VCU_THREADS` to
//! fan chunk encodes across worker threads — the output bitstreams
//! are byte-identical at any thread count).

use vcu_cluster::{ClusterConfig, ClusterSim};
use vcu_codec::{decode, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::quality::psnr_y_video;
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Resolution, Video};
use vcu_system::chunking::{assemble, chunks_are_independent, encode_chunks, split, ChunkPlan};
use vcu_system::platform::Platform;
use vcu_telemetry::json::JsonObj;
use vcu_workloads::{PopularityBucket, Request, WorkloadFamily};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = vcu_rng::env_seed(9);
    // ---- Pixel-level path: one real upload through the real codec ----
    let upload: Video =
        SynthSpec::new(Resolution::R144, 18, ContentClass::talking_head(), seed).generate();
    let plan = ChunkPlan::uniform(upload.frames.len(), 6);
    let chunks = split(&upload, &plan);
    println!(
        "chunked {} frames into {} closed GOPs",
        upload.frames.len(),
        plan.len()
    );

    let threads = vcu_codec::env_threads();
    let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30))
        .with_hardware(TuningLevel::MATURE)
        .with_threads(threads);
    let enc_start = std::time::Instant::now();
    let encoded = encode_chunks(&cfg, &chunks)?;
    let enc_elapsed = enc_start.elapsed().as_secs_f64();
    let chunks_per_s = plan.len() as f64 / enc_elapsed.max(1e-9);
    println!(
        "encoded {} chunks on {threads} thread(s): {chunks_per_s:.2} chunks/s",
        plan.len()
    );
    assert!(
        chunks_are_independent(&encoded),
        "chunks must decode standalone"
    );

    // Chunks decode in parallel (here: any order), then reassemble.
    let mut decoded: Vec<Video> = Vec::new();
    for e in &encoded {
        decoded.push(decode(&e.bytes)?.video);
    }
    let assembled = assemble(decoded, upload.frames.len())?;
    let psnr = psnr_y_video(&upload, &assembled);
    println!("assembled output passes integrity check, Y-PSNR {psnr:.2} dB");

    // ---- Fleet-level path: the same request at warehouse scale ----
    let platform = Platform::default();
    let request = Request {
        arrival_s: 0.0,
        family: WorkloadFamily::Upload,
        resolution: Resolution::R1080,
        fps: 30.0,
        duration_s: 60.0,
        popularity: PopularityBucket::Middle,
    };
    let graph = platform.graph_for(&request);
    println!(
        "task graph: {} steps, {} parallel transcode waves",
        graph.len(),
        graph.waves().len()
    );

    let jobs = platform.jobs_for(&request);
    println!(
        "expanded into {} chunk-level VCU jobs (MOT, H.264+VP9)",
        jobs.len()
    );
    let cluster = ClusterConfig {
        vcus: 4,
        sample_period_s: 10.0,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::new(cluster, jobs, vec![]).run();
    println!(
        "cluster: {} jobs completed, 0 failed = {}, mean wait {:.2}s, {:.0} Mpix total",
        report.completed,
        report.failed == 0,
        report.mean_wait_s,
        report.total_output_mpix
    );
    assert_eq!(report.failed, 0);

    println!(
        "{}",
        JsonObj::new()
            .str("example", "upload_pipeline")
            .u64("seed", seed)
            .u64("chunks", plan.len() as u64)
            .u64("threads", threads as u64)
            .f64("chunks_per_s", chunks_per_s)
            .f64("psnr_y_db", psnr)
            .u64("cluster_jobs_completed", report.completed)
            .u64("cluster_jobs_failed", report.failed)
            .f64("mean_wait_s", report.mean_wait_s)
            .finish()
    );
    Ok(())
}
