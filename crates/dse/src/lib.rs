//! Chip design-space exploration: the co-design loop the paper runs
//! before tape-out (§3), reproduced as a deterministic sweep.
//!
//! The paper's central claim is that the VCU's configuration — ten
//! encoder cores, three decoder cores, a 4×LPDDR4 memory system and a
//! small on-chip reference store — was *chosen* by evaluating candidate
//! chips against production workloads on warehouse-scale models, not
//! picked by rule of thumb. This crate closes that loop in-repo:
//!
//! - [`campaign::DseConfig`] spans a grid over encoder cores × decoder
//!   cores × raw DRAM bandwidth × reference-store SRAM, each cell a
//!   [`vcu_chip::DesignPoint`] with area/power/cost and derated
//!   throughput models,
//! - every candidate is evaluated on the full [`vcu_cluster::ClusterSim`]
//!   (§3.3.3 scheduler, retries, watchdogs, degradation ladder) under a
//!   fixed offered load and again under the fault campaign's fault mix,
//! - [`pareto::frontier_flags`] extracts the non-dominated set over
//!   (steady perf/VCU, fault-campaign goodput, perf/TCO), and
//! - [`campaign::check_anchor`] gates the sweep on the shipped VCU
//!   landing on (or within tolerance of) its own frontier — if the
//!   model says a strictly better chip was left on the table, the model
//!   is broken, and CI fails.
//!
//! Determinism contract: same seed ⇒ byte-identical
//! [`campaign::render_dse_json`] output at any `VCU_THREADS` — the
//! candidate fan-out over [`vcu_exec::pool`] reassembles in index
//! order and every simulation seed derives from the campaign seed, not
//! from which thread ran the cell.

pub mod campaign;
pub mod pareto;

pub use campaign::{
    arrival_span_s, check_anchor, render_dse_json, run_dse, DseCandidate, DseConfig,
    DEFAULT_ANCHOR_TOL,
};
pub use pareto::{dominates, frontier_flags};
