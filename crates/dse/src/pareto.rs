//! Pareto dominance over maximize-objectives.
//!
//! The frontier computation is deliberately the O(n²) textbook
//! definition — candidate counts are in the hundreds, and the simple
//! form is what the property tests in `tests/properties.rs` and the
//! `check_bench.sh` artifact gate independently re-implement and
//! cross-check.

/// True if `a` Pareto-dominates `b`: at least as good on every
/// objective (all objectives maximize) and strictly better on at
/// least one.
///
/// # Panics
///
/// If the slices differ in length or any value is NaN — a NaN
/// objective would make dominance non-transitive and the frontier
/// order-dependent, so it is a bug upstream, not a comparison result.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        assert!(!x.is_nan() && !y.is_nan(), "NaN objective");
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// For each point, whether it is on the Pareto frontier (not
/// dominated by any other point). Duplicate points do not dominate
/// each other, so equal-objective candidates are all kept — ties are
/// reported, not silently dropped.
pub fn frontier_flags<P: AsRef<[f64]>>(points: &[P]) -> Vec<bool> {
    (0..points.len())
        .map(|i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p.as_ref(), points[i].as_ref()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_needs_strict_improvement() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 1.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal never dominates"
        );
        assert!(
            !dominates(&[2.0, 0.0], &[1.0, 1.0]),
            "trade-off never dominates"
        );
        assert!(dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn frontier_keeps_tradeoffs_and_ties() {
        let pts = vec![
            vec![1.0, 4.0], // frontier
            vec![4.0, 1.0], // frontier
            vec![1.0, 4.0], // duplicate of 0: also frontier
            vec![1.0, 1.0], // dominated by everything above
        ];
        assert_eq!(frontier_flags(&pts), vec![true, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_objectives_are_rejected() {
        dominates(&[f64::NAN], &[0.0]);
    }
}
