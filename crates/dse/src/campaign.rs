//! The design-space sweep: grid construction, candidate evaluation on
//! the cluster simulator, frontier extraction, anchor gate, and the
//! byte-stable JSON artifact.
//!
//! Methodology (the V&V-in-the-loop shape): every candidate chip is
//! evaluated against the *same* deterministic workload and fault
//! schedule on the full [`ClusterSim`] — scheduler, retries,
//! watchdogs, degradation ladder and all — never against a closed-form
//! proxy. Candidates differ **only** in their [`DesignPoint`]; the
//! offered load is fixed (sized against the shipped anchor's
//! capacity), so weaker silicon shows up as backlog, shedding and lost
//! goodput while stronger silicon saturates the offered load and pays
//! for capacity it cannot use. Four maximize-objectives span the
//! trade space:
//!
//! 1. delivered Mpix/s per VCU under steady offered load,
//! 2. goodput under the PR-5 fault campaign's fault mix,
//! 3. delivered Mpix/s per TCO dollar (fleet capex + 3-year power),
//! 4. queueing-latency headroom, `1 / (1 + p99 wait)` — the axis where
//!    overprovisioned silicon earns its cost back as tail latency.
//!
//! Every cell derives from the campaign seed via [`vcu_rng::mix64`]
//! and the candidate fan-out reassembles in index order, so the
//! artifact is byte-identical at any `VCU_THREADS`.

use crate::pareto;
use vcu_chip::{DesignPoint, ResourceDemand, TranscodeJob, VcuModel};
use vcu_cluster::tco::OPEX_PER_WATT_3YR;
use vcu_cluster::{
    cell_cluster_config, fault_schedule, vcu_host_tco_for, ClusterConfig, ClusterReport,
    ClusterSim, FaultInjection, JobSpec, Priority,
};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_rng::{mix64, Rng};

/// Default anchor tolerance: a frontier point may beat the shipped
/// design on *every* objective by up to this relative margin before
/// the anchor gate calls the model miscalibrated (overridable via
/// `VCU_DSE_ANCHOR_TOL` in the bench binary and artifact gate).
pub const DEFAULT_ANCHOR_TOL: f64 = 0.02;

/// Offered load as a fraction of the shipped anchor's steady capacity
/// on its most-loaded dimension: right at saturation. The anchor is by
/// construction the chip *sized for this demand* — undersized designs
/// shed and backlog superlinearly, oversized designs tie on delivered
/// pixels (the offered load caps them) and pay for idle silicon, and
/// the fault leg is where headroom earns its keep: capacity dips push
/// a right-sized fleet past saturation while overprovisioned fleets
/// absorb them.
const OFFERED_LOAD: f64 = 1.02;

/// Design-space sweep configuration. The grid is the cross product of
/// the four axis vectors and must contain the shipped point.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Campaign seed; cluster seeds and the fault schedule mix out of
    /// this (identically for every candidate — candidates differ only
    /// in silicon).
    pub seed: u64,
    /// Fleet size every candidate is evaluated at.
    pub vcus: usize,
    /// Jobs offered per VCU over the run.
    pub jobs_per_vcu: usize,
    /// Fraction of the fleet faulted in the fault leg.
    pub fault_rate: f64,
    /// Mean time to repair in the fault leg, seconds.
    pub mttr_s: f64,
    /// Encoder-core axis (shipped: 10).
    pub encoder_cores: Vec<usize>,
    /// Decoder-core axis (shipped: 3).
    pub decoder_cores: Vec<usize>,
    /// Raw DRAM bandwidth axis in GiB/s (shipped: 36.0).
    pub dram_gib_s: Vec<f64>,
    /// Reference-store axis in pixels (shipped: 147,456).
    pub refstore_pixels: Vec<usize>,
}

impl DseConfig {
    /// The full sweep `results/dse_frontier.json` pins: 320 candidates
    /// over a 32-VCU fleet.
    pub fn full(seed: u64) -> Self {
        DseConfig {
            seed,
            vcus: 32,
            jobs_per_vcu: 120,
            fault_rate: 0.30,
            mttr_s: 600.0,
            encoder_cores: vec![6, 8, 10, 12, 14],
            decoder_cores: vec![1, 2, 3, 4],
            dram_gib_s: vec![18.0, 27.0, 36.0, 45.0],
            refstore_pixels: vec![36_864, 73_728, 147_456, 294_912],
        }
    }

    /// The seconds-long CI smoke sweep: a 3×3 (encoder cores × DRAM
    /// bandwidth) slice through the shipped point on a 16-VCU fleet.
    pub fn smoke(seed: u64) -> Self {
        DseConfig {
            seed,
            vcus: 16,
            jobs_per_vcu: 56,
            fault_rate: 0.40,
            mttr_s: 600.0,
            encoder_cores: vec![8, 10, 12],
            decoder_cores: vec![3],
            dram_gib_s: vec![27.0, 36.0, 45.0],
            refstore_pixels: vec![147_456],
        }
    }

    /// The candidate grid in deterministic axis-major order.
    ///
    /// # Panics
    ///
    /// If the grid does not contain the shipped design point — a sweep
    /// without its validation anchor cannot be gated.
    pub fn design_grid(&self) -> Vec<DesignPoint> {
        let mut grid = Vec::new();
        for &enc in &self.encoder_cores {
            for &dec in &self.decoder_cores {
                for &bw in &self.dram_gib_s {
                    for &rs in &self.refstore_pixels {
                        grid.push(DesignPoint::new(enc, dec, bw, rs));
                    }
                }
            }
        }
        assert!(
            grid.iter().any(|d| d.is_shipped()),
            "design grid must contain the shipped anchor (10e/3d/36G/144K)"
        );
        grid
    }
}

/// One evaluated candidate: the design, its cost model, and the
/// workload-loop metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCandidate {
    /// The silicon configuration.
    pub design: DesignPoint,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Card (2 VCUs) active power, watts.
    pub card_power_w: f64,
    /// Card capital cost, dollars.
    pub card_capex_usd: f64,
    /// Fleet TCO (capex + 3-year power) in dollars, priced as full
    /// 20-VCU hosts.
    pub fleet_tco_usd: f64,
    /// Motion-search DRAM traffic vs the shipped reference store.
    pub traffic_factor: f64,
    /// Worst-case §3.3.1 bandwidth envelope over usable bandwidth.
    pub bandwidth_pressure: f64,
    /// Mean encoder-millicore utilization in the steady leg.
    pub util_steady: f64,
    /// (completed − escaped-corrupt) / offered, steady leg.
    pub goodput_steady: f64,
    /// Same under the fault-campaign leg.
    pub goodput_fault: f64,
    /// p99 queueing wait in the steady leg, seconds.
    pub p99_wait_s: f64,
    /// Objective 1: delivered output Mpix/s per VCU, steady leg.
    pub perf_mpix_s_per_vcu: f64,
    /// Objective 3: delivered fleet Mpix/s per thousand TCO dollars.
    pub perf_per_tco: f64,
    /// True for the shipped anchor.
    pub anchor: bool,
    /// True if no other candidate dominates this one.
    pub on_frontier: bool,
}

impl DseCandidate {
    /// The maximize-objective vector the frontier is computed over:
    /// steady delivered perf per VCU, goodput under the fault campaign,
    /// perf per TCO dollar, and queueing-latency headroom. The latency
    /// axis enters as `1/(1 + p99_wait_s)` — a strictly monotone
    /// transform of "minimize p99 wait", so the frontier is identical
    /// to the one over raw p99 while every objective stays a positive
    /// maximize value (which keeps the anchor gate's relative-tolerance
    /// inflation meaningful on all axes).
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.perf_mpix_s_per_vcu,
            self.goodput_fault,
            self.perf_per_tco,
            1.0 / (1.0 + self.p99_wait_s),
        ]
    }
}

/// The four-shape workload mix every candidate is scored on, cycled in
/// order. Index `i % 4` also fixes the priority class (the §3.3.3
/// 1 Critical : 2 Normal : 1 Batch mix), so the shapes land as:
/// live one-pass → Critical, decode-heavy SOT and the 1080p MOT →
/// Normal, the 4K MOT → Batch (the first work the ladder sheds).
fn job_mix() -> [TranscodeJob; 4] {
    [
        // Live 1080p30 one-pass: latency-critical, light.
        TranscodeJob::sot(
            Resolution::R1080,
            Resolution::R1080,
            Profile::Vp9Sim,
            30.0,
            2.0,
        )
        .low_latency(),
        // 2160p60 decode to a thumbnail-sized output: the *decode*-bound
        // shape — input pixel rate dwarfs output, so decoder cores are
        // the binding axis for this job.
        TranscodeJob::sot(
            Resolution::R2160,
            Resolution::R360,
            Profile::Vp9Sim,
            60.0,
            12.0,
        ),
        // 2160p30 MOT: heavyweight on encode millicores *and* DRAM
        // footprint. Rides as Normal priority — it carries most of the
        // mix's output pixels, so it must degrade gradually, not be the
        // first thing the ladder sheds.
        TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 30.0, 5.0),
        // The PR-5 campaign chunk: 1080p30 MOT, encoder-bound. Slot 3 is
        // the Batch class: the first work shed under overload.
        TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
    ]
}

/// VCU-seconds of work one pass through the mix puts on each §3.3.3
/// scheduler dimension of the *anchor*: Σ duration × demand/capacity.
fn mix_dim_work(model: &VcuModel) -> [f64; 4] {
    let cap = ResourceDemand::vcu_capacity();
    let mut work = [0.0f64; 4];
    for job in &job_mix() {
        let d = model.job_demand(job);
        work[0] += job.duration_s * d.millidecode as f64 / cap.millidecode as f64;
        work[1] += job.duration_s * d.milliencode as f64 / cap.milliencode as f64;
        work[2] += job.duration_s * d.dram_mib as f64 / cap.dram_mib as f64;
        work[3] += job.duration_s * d.host_mcpu as f64 / cap.host_mcpu as f64;
    }
    work
}

/// Arrival span that offers [`OFFERED_LOAD`] of the *shipped anchor's*
/// capacity on its most-loaded scheduler dimension (encode millicores
/// for this mix) — identical for every candidate, so the sweep compares
/// designs against one fixed demand, not demand scaled to flatter each
/// chip. Jobs binding on different dimensions pack complementarily, so
/// the load that matters is per-dimension aggregate, not the sum of
/// per-job binding maxima.
pub fn arrival_span_s(cfg: &DseConfig) -> f64 {
    let work = mix_dim_work(&VcuModel::new());
    let agg = work.iter().cloned().fold(0.0, f64::max);
    cfg.jobs_per_vcu as f64 * agg / (job_mix().len() as f64 * OFFERED_LOAD)
}

/// Deterministic job list shared by every candidate.
fn dse_jobs(cfg: &DseConfig) -> Vec<JobSpec> {
    let mix = job_mix();
    let total = cfg.vcus * cfg.jobs_per_vcu;
    let span = arrival_span_s(cfg);
    (0..total)
        .map(|i| JobSpec {
            arrival_s: i as f64 * span / total as f64,
            job: mix[i % mix.len()].clone(),
            priority: match i % 4 {
                0 => Priority::Critical,
                3 => Priority::Batch,
                _ => Priority::Normal,
            },
            video_id: (i / 4) as u64,
        })
        .collect()
}

/// The cluster configuration a candidate runs under: the PR-5 cell
/// policies (backoff, watchdogs, screening, degradation ladder) with
/// the candidate's silicon substituted.
fn candidate_config(cfg: &DseConfig, design: DesignPoint, leg_seed: u64) -> ClusterConfig {
    ClusterConfig {
        model: VcuModel::for_design(design),
        // Finer than the cell default: the report horizon snaps to the
        // sampling grid, and candidate runs differ by queueing tails
        // smaller than the 15 s fleet cadence.
        sample_period_s: 5.0,
        ..cell_cluster_config(cfg.vcus, leg_seed)
    }
}

fn goodput(report: &ClusterReport, offered: u64) -> f64 {
    (report.completed.saturating_sub(report.escaped_corruptions)) as f64 / offered as f64
}

/// Quantizes a metric to the artifact's published 6-decimal precision
/// (the exact value a reader parses back out of the JSON). Every
/// candidate metric is quantized *before* frontier and anchor
/// computation so the committed `on_frontier` flags are reproducible
/// from the artifact alone: full-precision f64 near-ties that collapse
/// at 6 decimals would otherwise make the published frontier
/// unverifiable by downstream gates.
fn q6(x: f64) -> f64 {
    if x.is_finite() {
        format!("{x:.6}").parse().expect("q6 round-trip")
    } else {
        x
    }
}

/// Evaluates one candidate: a steady leg and a fault leg over the
/// shared workload, then the cost model.
fn evaluate_candidate(
    cfg: &DseConfig,
    design: DesignPoint,
    jobs: &[JobSpec],
    faults: &[FaultInjection],
) -> DseCandidate {
    let offered = jobs.len() as u64;
    let steady = ClusterSim::new(
        candidate_config(cfg, design, mix64(cfg.seed, 1)),
        jobs.to_vec(),
        Vec::new(),
    )
    .run();
    let faulted = ClusterSim::new(
        candidate_config(cfg, design, mix64(cfg.seed, 2)),
        jobs.to_vec(),
        faults.to_vec(),
    )
    .run();

    let util_steady = if steady.samples.is_empty() {
        0.0
    } else {
        steady.samples.iter().map(|s| s.encode_util).sum::<f64>() / steady.samples.len() as f64
    };
    // Fleets are priced as full 20-VCU hosts (the shipped packaging);
    // partial hosts round up identically for every candidate.
    let hosts = cfg.vcus.div_ceil(vcu_chip::calib::VCUS_PER_HOST);
    let fleet_tco_usd = hosts as f64
        * vcu_host_tco_for(&design, vcu_chip::calib::VCUS_PER_HOST, OPEX_PER_WATT_3YR).total();
    let perf_mpix_s_per_vcu = steady.mean_mpix_s_per_vcu(cfg.vcus);
    DseCandidate {
        design,
        area_mm2: q6(design.silicon_area_mm2()),
        card_power_w: q6(design.card_power_w()),
        card_capex_usd: q6(design.card_capex_usd()),
        fleet_tco_usd: q6(fleet_tco_usd),
        traffic_factor: q6(design.refstore_traffic_factor()),
        bandwidth_pressure: q6(design.bandwidth_pressure(true)),
        util_steady: q6(util_steady),
        goodput_steady: q6(goodput(&steady, offered)),
        goodput_fault: q6(goodput(&faulted, offered)),
        p99_wait_s: q6(steady.p99_wait_s),
        perf_mpix_s_per_vcu: q6(perf_mpix_s_per_vcu),
        perf_per_tco: q6(perf_mpix_s_per_vcu * cfg.vcus as f64 / (fleet_tco_usd / 1_000.0)),
        anchor: design.is_shipped(),
        on_frontier: false,
    }
}

/// Runs the sweep: evaluates every grid candidate (fanned out over the
/// `vcu-exec` pool at the given parallelism, reassembled in index
/// order) and marks the Pareto frontier. Output is independent of
/// `parallelism`.
pub fn run_dse(cfg: &DseConfig, parallelism: usize) -> Vec<DseCandidate> {
    let designs = cfg.design_grid();
    let jobs = dse_jobs(cfg);
    // One fault schedule, shared: every candidate sees the same
    // workers fault at the same times with the same kinds.
    let mut fault_rng = Rng::seed_from_u64(mix64(cfg.seed, 3));
    let faults = fault_schedule(
        cfg.vcus,
        arrival_span_s(cfg),
        cfg.fault_rate,
        cfg.mttr_s,
        &mut fault_rng,
    );
    let mut candidates: Vec<DseCandidate> = vcu_exec::pool().run_batch(
        parallelism,
        designs
            .into_iter()
            .map(|d| {
                let (cfg, jobs, faults) = (&*cfg, &jobs[..], &faults[..]);
                move || evaluate_candidate(cfg, d, jobs, faults)
            })
            .collect(),
    );
    let objectives: Vec<[f64; 4]> = candidates.iter().map(|c| c.objectives()).collect();
    for (c, flag) in candidates
        .iter_mut()
        .zip(pareto::frontier_flags(&objectives))
    {
        c.on_frontier = flag;
    }
    candidates
}

/// Checks the sweep's two structural gates:
///
/// 1. exactly one anchor (the shipped point) is present, and
/// 2. no candidate dominates the anchor even after inflating the
///    anchor's objectives by `(1 + tol)` — i.e. the shipped VCU lands
///    on (or within tolerance of) the frontier. A violation means the
///    cost/performance model thinks a strictly better chip was left on
///    the table, which is a calibration bug, not a discovery.
pub fn check_anchor(candidates: &[DseCandidate], tol: f64) -> Result<(), String> {
    assert!(tol >= 0.0 && tol.is_finite(), "tolerance must be ≥ 0");
    let anchors: Vec<&DseCandidate> = candidates.iter().filter(|c| c.anchor).collect();
    if anchors.len() != 1 {
        return Err(format!(
            "expected exactly 1 anchor, found {}",
            anchors.len()
        ));
    }
    let inflated: Vec<f64> = anchors[0]
        .objectives()
        .iter()
        .map(|o| o * (1.0 + tol))
        .collect();
    for c in candidates.iter().filter(|c| !c.anchor) {
        if pareto::dominates(&c.objectives(), &inflated) {
            return Err(format!(
                "candidate {} dominates the shipped anchor beyond tol {tol}: {:?} vs anchor {:?}",
                c.design.label(),
                c.objectives(),
                anchors[0].objectives()
            ));
        }
    }
    Ok(())
}

/// Fixed-precision float for byte-stable JSON ({:.6} is lossless at
/// the magnitudes involved and avoids shortest-repr jitter).
fn f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Renders the sweep as deterministic JSON: stable key order, one
/// candidate per line. Two same-seed runs are byte-identical.
pub fn render_dse_json(cfg: &DseConfig, candidates: &[DseCandidate]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"campaign\": {{\"seed\": {}, \"vcus\": {}, \"jobs_per_vcu\": {}, \"load\": {}, \
         \"fault_rate\": {}, \"mttr_s\": {}, \"candidates\": {}}},\n",
        cfg.seed,
        cfg.vcus,
        cfg.jobs_per_vcu,
        f(OFFERED_LOAD),
        f(cfg.fault_rate),
        f(cfg.mttr_s),
        candidates.len()
    ));
    out.push_str("  \"candidates\": [\n");
    for (i, c) in candidates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"encoder_cores\": {}, \"decoder_cores\": {}, \"dram_gib_s\": {}, \
             \"refstore_kpix\": {}, \"area_mm2\": {}, \"card_power_w\": {}, \
             \"card_capex_usd\": {}, \"fleet_tco_usd\": {}, \"traffic_factor\": {}, \
             \"bandwidth_pressure\": {}, \"util_steady\": {}, \"goodput_steady\": {}, \
             \"goodput_fault\": {}, \"p99_wait_s\": {}, \"perf_mpix_s_per_vcu\": {}, \
             \"perf_per_tco\": {}, \"anchor\": {}, \"on_frontier\": {}}}{}\n",
            c.design.encoder_cores,
            c.design.decoder_cores,
            f(c.design.dram_raw_gib_s),
            c.design.refstore_pixels / 1024,
            f(c.area_mm2),
            f(c.card_power_w),
            f(c.card_capex_usd),
            f(c.fleet_tco_usd),
            f(c.traffic_factor),
            f(c.bandwidth_pressure),
            f(c.util_steady),
            f(c.goodput_steady),
            f(c.goodput_fault),
            f(c.p99_wait_s),
            f(c.perf_mpix_s_per_vcu),
            f(c.perf_per_tco),
            u8::from(c.anchor),
            u8::from(c.on_frontier),
            if i + 1 == candidates.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DseConfig {
        DseConfig {
            seed: 7,
            vcus: 8,
            jobs_per_vcu: 12,
            fault_rate: 0.25,
            mttr_s: 15.0,
            encoder_cores: vec![8, 10],
            decoder_cores: vec![3],
            dram_gib_s: vec![27.0, 36.0],
            refstore_pixels: vec![147_456],
        }
    }

    #[test]
    fn grid_is_axis_major_and_contains_anchor() {
        let grid = tiny().design_grid();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].label(), "8e3d27G144K");
        assert_eq!(grid[3].label(), "10e3d36G144K");
        assert_eq!(grid.iter().filter(|d| d.is_shipped()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "shipped anchor")]
    fn grid_without_anchor_panics() {
        DseConfig {
            encoder_cores: vec![8],
            ..tiny()
        }
        .design_grid();
    }

    #[test]
    fn smoke_sweep_passes_its_own_gates() {
        let cfg = DseConfig::smoke(42);
        let cands = run_dse(&cfg, 1);
        assert_eq!(cands.len(), 9);
        check_anchor(&cands, DEFAULT_ANCHOR_TOL).unwrap();
        // The frontier flags must be exactly the non-dominated set.
        let objs: Vec<[f64; 4]> = cands.iter().map(|c| c.objectives()).collect();
        for (c, expect) in cands.iter().zip(pareto::frontier_flags(&objs)) {
            assert_eq!(c.on_frontier, expect, "{}", c.design.label());
        }
        // The anchor itself must sit on the frontier, not merely
        // within tolerance of it: the shipped point is supposed to be
        // the perf/TCO sweet spot of its own model.
        let anchor = cands.iter().find(|c| c.anchor).unwrap();
        assert!(anchor.on_frontier, "anchor off frontier: {anchor:?}");
    }

    #[test]
    fn weaker_and_stronger_designs_bracket_the_anchor() {
        // The smoke grid (not `tiny()`): its load is heavy enough that
        // a bandwidth-starved design visibly sheds at the published
        // 6-decimal precision, not just in f64 dust.
        let cfg = DseConfig::smoke(42);
        let cands = run_dse(&cfg, 1);
        let anchor = cands.iter().find(|c| c.anchor).unwrap();
        let starved = cands
            .iter()
            .find(|c| c.design.label() == "10e3d27G144K")
            .unwrap();
        // Less bandwidth than the envelope → stalls → less delivered
        // work under the same offered load.
        assert!(starved.perf_mpix_s_per_vcu < anchor.perf_mpix_s_per_vcu);
        assert!(starved.bandwidth_pressure > anchor.bandwidth_pressure);
    }

    #[test]
    fn render_is_stable_and_parallelism_invariant() {
        let cfg = tiny();
        let a = render_dse_json(&cfg, &run_dse(&cfg, 1));
        let b = render_dse_json(&cfg, &run_dse(&cfg, 4));
        assert_eq!(a, b, "candidate fan-out must reassemble in index order");
        assert!(a.contains("\"anchor\": 1"));
    }

    #[test]
    fn seed_steers_the_campaign() {
        let cfg_a = tiny();
        let cfg_b = DseConfig { seed: 8, ..tiny() };
        let a = render_dse_json(&cfg_a, &run_dse(&cfg_a, 1));
        let b = render_dse_json(&cfg_b, &run_dse(&cfg_b, 1));
        assert_ne!(a, b, "different seeds must produce different campaigns");
    }

    #[test]
    fn check_anchor_rejects_dominating_candidates() {
        let cfg = tiny();
        let mut cands = run_dse(&cfg, 1);
        // Forge a candidate strictly better than the anchor everywhere.
        let anchor = cands.iter().find(|c| c.anchor).unwrap().clone();
        let mut forged = anchor.clone();
        forged.anchor = false;
        forged.perf_mpix_s_per_vcu *= 2.0;
        forged.goodput_fault = (forged.goodput_fault * 1.5).max(0.01);
        forged.perf_per_tco *= 2.0;
        forged.p99_wait_s = 0.0;
        cands.push(forged);
        assert!(check_anchor(&cands, DEFAULT_ANCHOR_TOL).is_err());
        // And a missing anchor is its own failure.
        cands.retain(|c| !c.anchor);
        assert!(check_anchor(&cands, DEFAULT_ANCHOR_TOL).is_err());
    }
}
