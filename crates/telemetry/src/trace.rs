//! Structured trace events.
//!
//! A [`TraceEvent`] is either a point event (`start_s == end_s`) or a
//! span; both carry a [`Scope`] keying them to the job / video / VCU
//! they describe, which is what lets blast-radius and per-core health
//! questions ("which chunks did VCU 3 touch?") be answered from a
//! snapshot instead of ad-hoc struct fields.

/// What a trace event is about: any combination of job, video and VCU
/// identifiers. Unset ids render as `null` in snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    /// Job (chunk) identifier.
    pub job: Option<u64>,
    /// Source video identifier.
    pub video: Option<u64>,
    /// VCU / worker identifier.
    pub vcu: Option<u32>,
}

impl Scope {
    /// An empty scope (system-wide event).
    pub fn none() -> Self {
        Scope::default()
    }

    /// Scope keyed by a job id.
    pub fn job(id: u64) -> Self {
        Scope {
            job: Some(id),
            ..Scope::default()
        }
    }

    /// Scope keyed by a VCU id.
    pub fn vcu(id: u32) -> Self {
        Scope {
            vcu: Some(id),
            ..Scope::default()
        }
    }

    /// Adds a video id.
    pub fn with_video(mut self, id: u64) -> Self {
        self.video = Some(id);
        self
    }

    /// Adds a VCU id.
    pub fn with_vcu(mut self, id: u32) -> Self {
        self.vcu = Some(id);
        self
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name, e.g. `"cluster.job"` or `"cluster.quarantine"`.
    pub name: String,
    /// What the event is about.
    pub scope: Scope,
    /// Span start (simulation seconds). Point events: `start_s == end_s`.
    pub start_s: f64,
    /// Span end (simulation seconds).
    pub end_s: f64,
    /// Free payload (attempt count, magnitude, 1.0 for markers…).
    pub value: f64,
}

impl TraceEvent {
    /// True when this is a point event rather than a span.
    pub fn is_point(&self) -> bool {
        self.start_s == self.end_s
    }

    /// Span duration in seconds (0 for point events).
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_builders() {
        let s = Scope::job(7).with_video(9).with_vcu(2);
        assert_eq!(s.job, Some(7));
        assert_eq!(s.video, Some(9));
        assert_eq!(s.vcu, Some(2));
        assert_eq!(Scope::none(), Scope::default());
        assert_eq!(Scope::vcu(3).vcu, Some(3));
    }

    #[test]
    fn point_vs_span() {
        let p = TraceEvent {
            name: "mark".into(),
            scope: Scope::none(),
            start_s: 2.0,
            end_s: 2.0,
            value: 1.0,
        };
        assert!(p.is_point());
        assert_eq!(p.duration_s(), 0.0);
        let s = TraceEvent {
            name: "job".into(),
            start_s: 1.0,
            end_s: 4.5,
            ..p.clone()
        };
        assert!(!s.is_point());
        assert!((s.duration_s() - 3.5).abs() < 1e-12);
    }
}
