//! Sim-clock time-series ring buffers.
//!
//! A [`TimeSeries`] holds `(time_s, value)` points in a fixed-capacity
//! ring: recording is O(1), memory is bounded, and when the ring wraps
//! the *oldest* points are dropped (a fleet dashboard cares about the
//! recent window; the drop count is reported so truncation is never
//! silent). Time comes from the caller's simulation clock — this crate
//! never reads wall-clock time.

/// Default ring capacity (points) for registry-created series.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// A bounded time-series of `(time_s, value)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Ring storage, `head` is the index of the oldest point once full.
    points: Vec<(f64, f64)>,
    head: usize,
    capacity: usize,
    /// Total points ever recorded (≥ `len`).
    recorded: u64,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "time series needs capacity");
        TimeSeries {
            points: Vec::new(),
            head: 0,
            capacity,
            recorded: 0,
        }
    }

    /// Records a point at simulation time `time_s`.
    pub fn record(&mut self, time_s: f64, value: f64) {
        self.recorded += 1;
        if self.points.len() < self.capacity {
            self.points.push((time_s, value));
        } else {
            self.points[self.head] = (time_s, value);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are held.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.points.len() as u64
    }

    /// Iterates points oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| self.points[(self.head + i) % n.max(1)])
    }

    /// The points oldest → newest as a vector.
    pub fn to_vec(&self) -> Vec<(f64, f64)> {
        self.iter().collect()
    }

    /// Largest value in the window, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.iter().map(|(_, v)| v).reduce(f64::max)
    }

    /// Mean value over the window, if any.
    pub fn mean_value(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.iter().map(|(_, v)| v).sum::<f64>() / self.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut s = TimeSeries::new(8);
        for i in 0..5 {
            s.record(i as f64, (i * 10) as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.dropped(), 0);
        let v = s.to_vec();
        assert_eq!(v[0], (0.0, 0.0));
        assert_eq!(v[4], (4.0, 40.0));
    }

    #[test]
    fn ring_drops_oldest() {
        let mut s = TimeSeries::new(4);
        for i in 0..10 {
            s.record(i as f64, i as f64);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        let v = s.to_vec();
        assert_eq!(v.first().unwrap().0, 6.0, "oldest surviving point");
        assert_eq!(v.last().unwrap().0, 9.0, "newest point");
    }

    #[test]
    fn window_stats() {
        let mut s = TimeSeries::new(16);
        s.record(0.0, 1.0);
        s.record(1.0, 3.0);
        assert_eq!(s.max_value(), Some(3.0));
        assert_eq!(s.mean_value(), Some(2.0));
        assert_eq!(TimeSeries::new(4).max_value(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        TimeSeries::new(0);
    }
}
