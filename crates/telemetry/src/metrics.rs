//! Fixed-memory metric primitives: counters and gauges live as plain
//! map entries in the registry; this module provides the log-bucketed
//! [`Histogram`] behind `observe()`.

/// Sub-buckets per power-of-two octave. More sub-buckets → tighter
/// quantile error (relative error ≤ 1/SUB_BUCKETS within an octave).
const SUB_BUCKETS: usize = 8;
/// Octaves covered (the full `u64` range of scaled values).
const OCTAVES: usize = 64;
/// Fixed-point scale applied to observed `f64` values before
/// bucketing, so sub-unit observations (utilizations, seconds) still
/// resolve. One part per million.
const SCALE: f64 = 1e6;

/// A log-bucketed histogram with exact count/sum/min/max and
/// approximate quantiles (HdrHistogram-style, ~9% relative error).
///
/// Memory is fixed at construction: 64 octaves × 8 sub-buckets of
/// `u64` counts (4 KiB) regardless of how many values are recorded.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; OCTAVES * SUB_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; OCTAVES * SUB_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Negative and non-finite values clamp
    /// to zero (observability must never panic a hot path).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.counts[Self::bucket_of(Self::scale(v))] += 1;
    }

    fn scale(v: f64) -> u64 {
        // Saturating fixed-point conversion.
        let s = v * SCALE;
        if s >= u64::MAX as f64 {
            u64::MAX
        } else {
            s as u64
        }
    }

    fn bucket_of(u: u64) -> usize {
        if u == 0 {
            return 0;
        }
        let octave = (63 - u.leading_zeros()) as usize;
        let sub = if octave >= 3 {
            ((u >> (octave - 3)) & 0x7) as usize
        } else {
            0
        };
        octave * SUB_BUCKETS + sub
    }

    /// Lower bound of a bucket in observed (unscaled) units.
    fn bucket_value(idx: usize) -> f64 {
        let octave = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        let base = 1u64 << octave;
        let width = base >> 3; // zero below octave 3: buckets collapse
        (base + sub * width) as f64 / SCALE
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Approximate value at quantile `q` in `[0, 1]`; exact `min` /
    /// `max` are substituted at the extremes. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Clamp the bucket estimate into the exact envelope.
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The summary rendered into snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            p50: self.quantile(0.50).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            p999: self.quantile(0.999).unwrap_or(0.0),
        }
    }
}

/// Snapshot-ready digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum.
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Exact mean (0 when empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Approximate 99.9th percentile.
    pub p999: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn quantiles_land_within_relative_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!((p50 / 5000.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p99 / 9900.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!((p999 / 9990.0 - 1.0).abs() < 0.15, "p999 {p999}");
    }

    #[test]
    fn sub_unit_values_resolve() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(0.25);
        }
        for _ in 0..100 {
            h.record(0.75);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.2..0.4).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((0.6..0.8).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn hostile_values_never_panic() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-5.0);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn quantiles_respect_min_max_envelope() {
        let mut h = Histogram::new();
        h.record(123.456);
        let s = h.summary();
        assert_eq!(s.p50, 123.456, "single value: every quantile is it");
        assert_eq!(s.p999, 123.456);
    }
}
