//! Deterministic JSON snapshot rendering.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "telemetry_version": 1,
//!   "meta":       {"<key>": "<value>", ...},
//!   "counters":   {"<name>": <u64>, ...},
//!   "gauges":     {"<name>": <f64>, ...},
//!   "histograms": {"<name>": {"count", "sum", "min", "max", "mean",
//!                             "p50", "p99", "p999"}, ...},
//!   "series":     {"<name>": {"dropped": <u64>,
//!                             "points": [[t_s, value], ...]}, ...},
//!   "events":     [{"name", "job", "video", "vcu",
//!                   "start_s", "end_s", "value"}, ...],
//!   "dropped_events": <u64>
//! }
//! ```
//!
//! Determinism: map sections iterate in `BTreeMap` (sorted) order,
//! `meta` is sorted by key before rendering, events render in
//! recording order (which is itself deterministic under the sim
//! clock), and every float goes through [`crate::json::fmt_f64`]. Two
//! same-seed runs therefore produce byte-identical files — the
//! property `tests/determinism.rs` locks in.

use crate::json::{escape, fmt_f64};
use crate::registry::Store;

/// Schema version stamped into every snapshot.
pub const SNAPSHOT_VERSION: u32 = 1;

pub(crate) fn render(store: &Store, meta: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"telemetry_version\": {SNAPSHOT_VERSION},\n"));

    // meta, sorted by key for stability regardless of caller order.
    let mut meta: Vec<(&str, &str)> = meta.to_vec();
    meta.sort();
    out.push_str("  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
    }
    out.push_str("},\n");

    out.push_str("  \"counters\": {");
    for (i, (k, v)) in store.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", escape(k)));
    }
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    for (i, (k, v)) in store.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", escape(k), fmt_f64(*v)));
    }
    out.push_str("},\n");

    out.push_str("  \"histograms\": {\n");
    for (i, (k, h)) in store.histograms.iter().enumerate() {
        let s = h.summary();
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
            escape(k),
            s.count,
            fmt_f64(s.sum),
            fmt_f64(s.min),
            fmt_f64(s.max),
            fmt_f64(s.mean),
            fmt_f64(s.p50),
            fmt_f64(s.p99),
            fmt_f64(s.p999),
        ));
        out.push_str(if i + 1 < store.histograms.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  },\n");

    out.push_str("  \"series\": {\n");
    for (i, (k, ts)) in store.series.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"dropped\": {}, \"points\": [",
            escape(k),
            ts.dropped()
        ));
        for (j, (t, v)) in ts.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{}, {}]", fmt_f64(t), fmt_f64(v)));
        }
        out.push_str("]}");
        out.push_str(if i + 1 < store.series.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  },\n");

    out.push_str("  \"events\": [\n");
    for (i, e) in store.events.iter().enumerate() {
        let id = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"job\": {}, \"video\": {}, \"vcu\": {}, \
             \"start_s\": {}, \"end_s\": {}, \"value\": {}}}",
            escape(&e.name),
            id(e.scope.job),
            id(e.scope.video),
            id(e.scope.vcu.map(u64::from)),
            fmt_f64(e.start_s),
            fmt_f64(e.end_s),
            fmt_f64(e.value),
        ));
        out.push_str(if i + 1 < store.events.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");

    out.push_str(&format!("  \"dropped_events\": {}\n", store.dropped_events));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Registry, Scope};

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter_add("jobs.completed", 12);
        r.counter_add("jobs.failed", 1);
        r.gauge_set("util.encode", 0.875);
        r.observe("wait_s", 1.5);
        r.observe("wait_s", 2.5);
        r.series_record("util", 60.0, 0.5);
        r.series_record("util", 120.0, 0.75);
        r.span(
            "job",
            Scope::job(3).with_video(1).with_vcu(0),
            0.0,
            4.0,
            1.0,
        );
        r.event("quarantine", Scope::vcu(2), 9.0, 1.0);
        r
    }

    #[test]
    fn snapshot_is_reproducible() {
        let a = populated().snapshot_json(&[("seed", "42"), ("run", "x")]);
        let b = populated().snapshot_json(&[("run", "x"), ("seed", "42")]);
        assert_eq!(a, b, "same data + same meta (any order) → same bytes");
    }

    #[test]
    fn snapshot_contains_all_sections() {
        let s = populated().snapshot_json(&[("seed", "42")]);
        for needle in [
            "\"telemetry_version\": 1",
            "\"meta\": {\"seed\": \"42\"}",
            "\"jobs.completed\": 12",
            "\"util.encode\": 0.875",
            "\"wait_s\"",
            "\"p999\"",
            "[60, 0.5], [120, 0.75]",
            "\"quarantine\"",
            "\"vcu\": 2",
            "\"dropped_events\": 0",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn snapshot_is_valid_enough_json() {
        // No serde in-tree: sanity-check bracket balance and that the
        // file parses as a single object by a tiny structural scan.
        let s = populated().snapshot_json(&[]);
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced brackets");
        assert!(!in_str, "unterminated string");
        assert!(s.trim_start().starts_with('{') && s.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let s = Registry::new().snapshot_json(&[]);
        assert!(s.contains("\"counters\": {}"));
        assert!(s.contains("\"events\": [\n  ]"));
    }
}
