//! Deterministic fleet-observability subsystem.
//!
//! The paper's deployment story (§4) rests on fleet observability:
//! utilization time-series (Fig. 9), per-core health screening,
//! blast-radius accounting, and throughput/power reporting. This crate
//! is the instrumentation spine the chip, cluster and codec layers
//! report through:
//!
//! - [`metrics`]: fixed-memory counters, gauges, and log-bucketed
//!   histograms with p50/p99/p999,
//! - [`series`]: sim-clock time-series ring buffers (bounded memory,
//!   oldest points dropped first),
//! - [`trace`]: structured trace events and spans keyed by
//!   job/video/VCU id,
//! - [`registry`]: the cheap [`Registry`] handle everything records
//!   through — a no-op when disabled, so hot paths pay one branch,
//! - [`snapshot`]: a deterministic JSON snapshot writer.
//!
//! # Determinism contract
//!
//! Everything is driven by the caller's simulation clock, never
//! wall-clock. All map keys iterate in sorted (`BTreeMap`) order, all
//! floats render through one shortest-round-trip formatter, and no
//! capacity decision depends on allocation addresses — so two runs
//! with the same seed produce **byte-identical** snapshots.
//!
//! # Example
//!
//! ```
//! use vcu_telemetry::{Registry, Scope};
//!
//! let reg = Registry::new();
//! reg.counter_add("jobs.completed", 1);
//! reg.gauge_set("util.encode", 0.83);
//! reg.observe("frame.psnr_y", 41.7);
//! reg.series_record("util.encode", 60.0, 0.83);
//! reg.span("job", Scope::job(7).with_vcu(2), 0.0, 5.5, 1.0);
//! let json = reg.snapshot_json(&[("seed", "42")]);
//! assert!(json.contains("jobs.completed"));
//!
//! // Disabled handles are free: every record call is a no-op.
//! let off = Registry::disabled();
//! off.counter_add("jobs.completed", 1);
//! assert_eq!(off.counter("jobs.completed"), 0);
//! ```

pub mod json;
pub mod metrics;
pub mod registry;
pub mod series;
pub mod snapshot;
pub mod trace;

pub use metrics::{Histogram, HistogramSummary};
pub use registry::Registry;
pub use series::TimeSeries;
pub use trace::{Scope, TraceEvent};
