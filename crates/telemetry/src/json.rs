//! Hand-rolled deterministic JSON building blocks (the workspace is
//! dependency-free by design).
//!
//! Everything snapshot-shaped in this repo renders through
//! [`fmt_f64`] / [`escape`] so float formatting and string escaping
//! are byte-stable across runs, and through [`JsonObj`] for the
//! one-line machine-readable summaries the example binaries print.

/// Renders an `f64` deterministically: Rust's shortest-round-trip
/// `Display`, with non-finite values mapped to `null` (JSON has no
/// NaN/inf) and negative zero normalized to `0`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let v = if v == 0.0 { 0.0 } else { v }; // collapse -0.0
    let s = format!("{v}");
    // `Display` omits ".0" for integral floats; that is still valid
    // JSON and stable, so keep it as-is.
    s
}

/// Escapes a string for embedding in JSON (quotes added by callers'
/// format strings are *not* included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A tiny ordered JSON-object builder for one-line summaries:
/// fields render in insertion order, floats through [`fmt_f64`].
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), fmt_f64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the object on one line.
    pub fn finish(self) -> String {
        let body: Vec<String> = self
            .fields
            .into_iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(&k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(-0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let line = JsonObj::new()
            .str("example", "quickstart")
            .u64("seed", 42)
            .f64("psnr_db", 38.25)
            .bool("ok", true)
            .finish();
        assert_eq!(
            line,
            "{\"example\": \"quickstart\", \"seed\": 42, \"psnr_db\": 38.25, \"ok\": true}"
        );
    }
}
