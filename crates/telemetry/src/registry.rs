//! The [`Registry`] handle every layer records through.
//!
//! A `Registry` is a cheap clonable handle (one `Option<Arc>`): clones
//! share the same store, so a cluster simulation, the chip models it
//! drives, and the codec below them can all report into one snapshot.
//! [`Registry::disabled`] carries no store at all — every record call
//! is a single branch and returns, which is what lets instrumentation
//! live permanently on hot paths (the bench gate: disabled telemetry
//! must cost < 5% on the cluster-sim benchmark).
//!
//! Metric names are plain `&str`; the store allocates a key once on
//! first use and never again on the hot path (lookups borrow).

use crate::metrics::{Histogram, HistogramSummary};
use crate::series::{TimeSeries, DEFAULT_SERIES_CAPACITY};
use crate::trace::{Scope, TraceEvent};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Bound on retained trace events (fixed memory; overflow counts as
/// `dropped_events` in the snapshot instead of growing).
const MAX_EVENTS: usize = 1 << 16;

#[derive(Debug, Default)]
pub(crate) struct Store {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Histogram>,
    pub(crate) series: BTreeMap<String, TimeSeries>,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) dropped_events: u64,
}

/// The observability handle. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Mutex<Store>>>,
}

impl Registry {
    /// An enabled registry with an empty store.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Mutex::new(Store::default()))),
        }
    }

    /// A disabled handle: every record call is a no-op. This is also
    /// the `Default`, so embedding a `Registry` in a model struct
    /// costs nothing until a caller attaches a real one.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_store<R>(&self, f: impl FnOnce(&mut Store) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().expect("telemetry store poisoned")))
    }

    // ---- counters -------------------------------------------------

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with_store(|s| match s.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        });
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Reads a counter (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_store(|s| s.counters.get(name).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    // ---- gauges ---------------------------------------------------

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_store(|s| match s.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                s.gauges.insert(name.to_string(), value);
            }
        });
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_store(|s| s.gauges.get(name).copied()).flatten()
    }

    // ---- histograms -----------------------------------------------

    /// Records an observation into a log-bucketed histogram.
    pub fn observe(&self, name: &str, value: f64) {
        self.with_store(|s| match s.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                s.histograms.insert(name.to_string(), h);
            }
        });
    }

    /// Summarizes a histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.with_store(|s| s.histograms.get(name).map(|h| h.summary()))
            .flatten()
    }

    // ---- time series ----------------------------------------------

    /// Appends a `(time_s, value)` point to a sim-clock time-series
    /// ring buffer (capacity [`DEFAULT_SERIES_CAPACITY`], oldest
    /// points dropped on overflow).
    pub fn series_record(&self, name: &str, time_s: f64, value: f64) {
        self.with_store(|s| match s.series.get_mut(name) {
            Some(ts) => ts.record(time_s, value),
            None => {
                let mut ts = TimeSeries::new(DEFAULT_SERIES_CAPACITY);
                ts.record(time_s, value);
                s.series.insert(name.to_string(), ts);
            }
        });
    }

    /// A series' points, oldest → newest.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        self.with_store(|s| s.series.get(name).map(|ts| ts.to_vec()))
            .flatten()
    }

    /// Names of all recorded series (sorted).
    pub fn series_names(&self) -> Vec<String> {
        self.with_store(|s| s.series.keys().cloned().collect())
            .unwrap_or_default()
    }

    // ---- traces ---------------------------------------------------

    /// Records a point trace event at `time_s`.
    pub fn event(&self, name: &str, scope: Scope, time_s: f64, value: f64) {
        self.push_trace(TraceEvent {
            name: name.to_string(),
            scope,
            start_s: time_s,
            end_s: time_s,
            value,
        });
    }

    /// Records a span from `start_s` to `end_s` carrying an arbitrary
    /// `value` payload (e.g. attempt count, bytes, quality score).
    pub fn span(&self, name: &str, scope: Scope, start_s: f64, end_s: f64, value: f64) {
        self.push_trace(TraceEvent {
            name: name.to_string(),
            scope,
            start_s,
            end_s,
            value,
        });
    }

    fn push_trace(&self, ev: TraceEvent) {
        self.with_store(|s| {
            if s.events.len() < MAX_EVENTS {
                s.events.push(ev);
            } else {
                s.dropped_events += 1;
            }
        });
    }

    /// All retained trace events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.with_store(|s| s.events.clone()).unwrap_or_default()
    }

    /// Events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<TraceEvent> {
        self.with_store(|s| {
            s.events
                .iter()
                .filter(|e| e.name == name)
                .cloned()
                .collect()
        })
        .unwrap_or_default()
    }

    // ---- snapshots ------------------------------------------------

    /// Renders the deterministic JSON snapshot; see
    /// [`crate::snapshot`] for the schema. `meta` key/value pairs are
    /// embedded under `"meta"` (sorted by key).
    pub fn snapshot_json(&self, meta: &[(&str, &str)]) -> String {
        self.with_store(|s| crate::snapshot::render(s, meta))
            .unwrap_or_else(|| crate::snapshot::render(&Store::default(), meta))
    }

    /// Writes the snapshot to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_snapshot(&self, path: &str, meta: &[(&str, &str)]) -> std::io::Result<()> {
        let body = self.snapshot_json(meta);
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        r.counter_add("c", 5);
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        r.series_record("s", 0.0, 1.0);
        r.event("e", Scope::none(), 0.0, 1.0);
        assert_eq!(r.counter("c"), 0);
        assert_eq!(r.gauge("g"), None);
        assert_eq!(r.histogram("h"), None);
        assert_eq!(r.series("s"), None);
        assert!(r.events().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Registry::default().is_enabled());
    }

    #[test]
    fn clones_share_one_store() {
        let a = Registry::new();
        let b = a.clone();
        a.counter_inc("jobs");
        b.counter_add("jobs", 2);
        assert_eq!(a.counter("jobs"), 3);
        b.gauge_set("u", 0.5);
        assert_eq!(a.gauge("u"), Some(0.5));
    }

    #[test]
    fn metrics_round_trip() {
        let r = Registry::new();
        r.observe("lat", 10.0);
        r.observe("lat", 20.0);
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30.0);
        r.series_record("util", 60.0, 0.8);
        r.series_record("util", 120.0, 0.9);
        assert_eq!(r.series("util").unwrap().len(), 2);
        assert_eq!(r.series_names(), vec!["util".to_string()]);
    }

    #[test]
    fn events_filter_by_name() {
        let r = Registry::new();
        r.span("job", Scope::job(1), 0.0, 2.0, 1.0);
        r.event("quarantine", Scope::vcu(3), 5.0, 1.0);
        assert_eq!(r.events().len(), 2);
        let q = r.events_named("quarantine");
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].scope.vcu, Some(3));
        assert!(q[0].is_point());
    }

    #[test]
    fn event_cap_counts_drops() {
        let r = Registry::new();
        for i in 0..(MAX_EVENTS + 10) {
            r.event("e", Scope::none(), i as f64, 1.0);
        }
        assert_eq!(r.events().len(), MAX_EVENTS);
        let snap = r.snapshot_json(&[]);
        assert!(
            snap.contains("\"dropped_events\": 10"),
            "snapshot records drops"
        );
    }
}
