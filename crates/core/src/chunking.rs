//! Video chunking: closed GOPs for parallel transcoding.
//!
//! §2.1: "Transcoders can also shard the video into chunks (also known
//! as closed Groups of Pictures, or GOPs) that can each be processed in
//! parallel"; the platform "breaks the video into chunks, sending
//! them to parallel transcoder worker services, and assembling the
//! results into playable videos" (§2.2). Chunk boundaries land on
//! keyframes, so each chunk decodes independently.

use vcu_codec::{encode_batch, CodecError, EncoderConfig, FrameKind};
use vcu_media::Video;

/// A chunk boundary plan for a video of a given length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Start frame (inclusive) of each chunk.
    pub starts: Vec<usize>,
    /// Total frames.
    pub total_frames: usize,
}

impl ChunkPlan {
    /// Plans chunks of at most `chunk_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_frames` is zero or `total_frames` is zero.
    pub fn uniform(total_frames: usize, chunk_frames: usize) -> Self {
        assert!(chunk_frames > 0, "chunk length must be positive");
        assert!(total_frames > 0, "video must have frames");
        ChunkPlan {
            starts: (0..total_frames).step_by(chunk_frames).collect(),
            total_frames,
        }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True if the plan has no chunks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Frame range `[start, end)` of chunk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn range(&self, i: usize) -> (usize, usize) {
        let start = self.starts[i];
        let end = self.starts.get(i + 1).copied().unwrap_or(self.total_frames);
        (start, end)
    }
}

/// Splits a raw video into independently encodable chunk videos.
pub fn split(video: &Video, plan: &ChunkPlan) -> Vec<Video> {
    assert_eq!(plan.total_frames, video.frames.len(), "plan/video mismatch");
    (0..plan.len())
        .map(|i| {
            let (s, e) = plan.range(i);
            Video::new(video.frames[s..e].to_vec(), video.fps)
        })
        .collect()
}

/// Encodes every chunk independently (each chunk starts with its own
/// keyframe because the encoder always keys frame 0) and returns the
/// per-chunk containers. Chunks fan out across `cfg.threads` worker
/// threads; results are in chunk order and byte-identical for every
/// thread count.
///
/// # Errors
///
/// Propagates encoder configuration errors.
pub fn encode_chunks(
    cfg: &EncoderConfig,
    chunks: &[Video],
) -> Result<Vec<vcu_codec::Encoded>, CodecError> {
    encode_batch(cfg, chunks)
}

/// Reassembles decoded chunks into one video and runs the §4.4
/// integrity check ("video length must match the input").
///
/// # Errors
///
/// Returns [`CodecError::CorruptBitstream`] when the assembled length
/// differs from `expected_frames` — the blast-radius containment check.
pub fn assemble(decoded_chunks: Vec<Video>, expected_frames: usize) -> Result<Video, CodecError> {
    let fps = decoded_chunks
        .first()
        .map(|v| v.fps)
        .ok_or(CodecError::CorruptBitstream("no chunks to assemble"))?;
    let frames: Vec<_> = decoded_chunks.into_iter().flat_map(|v| v.frames).collect();
    if frames.len() != expected_frames {
        return Err(CodecError::CorruptBitstream(
            "assembled length does not match input",
        ));
    }
    Ok(Video::new(frames, fps))
}

/// End-to-end check that a chunked encode round-trips: every chunk's
/// first coded frame must be a keyframe (decode independence).
pub fn chunks_are_independent(encoded: &[vcu_codec::Encoded]) -> bool {
    encoded.iter().all(|e| {
        e.frames
            .first()
            .map(|f| f.kind == FrameKind::Key)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_codec::{decode, Profile, Qp};
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::Resolution;

    fn clip(frames: usize) -> Video {
        SynthSpec::new(Resolution::R144, frames, ContentClass::talking_head(), 4).generate()
    }

    #[test]
    fn plan_covers_everything_once() {
        let p = ChunkPlan::uniform(100, 30);
        assert_eq!(p.len(), 4);
        assert_eq!(p.range(0), (0, 30));
        assert_eq!(p.range(3), (90, 100));
        let total: usize = (0..p.len()).map(|i| p.range(i).1 - p.range(i).0).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_and_assemble_is_identity() {
        let v = clip(10);
        let plan = ChunkPlan::uniform(10, 4);
        let chunks = split(&v, &plan);
        assert_eq!(chunks.len(), 3);
        let back = assemble(chunks, 10).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn assemble_detects_length_mismatch() {
        let v = clip(10);
        let plan = ChunkPlan::uniform(10, 5);
        let mut chunks = split(&v, &plan);
        chunks.pop(); // lose a chunk (a failed VCU ate it)
        assert!(assemble(chunks, 10).is_err());
    }

    #[test]
    fn chunked_encode_round_trips() {
        let v = clip(9);
        let plan = ChunkPlan::uniform(9, 3);
        let chunks = split(&v, &plan);
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        let encoded = encode_chunks(&cfg, &chunks).unwrap();
        assert!(chunks_are_independent(&encoded));
        let decoded: Vec<Video> = encoded
            .iter()
            .map(|e| decode(&e.bytes).unwrap().video)
            .collect();
        let out = assemble(decoded, 9).unwrap();
        assert_eq!(out.frames.len(), 9);
    }

    #[test]
    fn chunks_decode_in_any_order() {
        // Closed GOPs: decoding chunk 2 must not need chunk 1.
        let v = clip(8);
        let plan = ChunkPlan::uniform(8, 4);
        let chunks = split(&v, &plan);
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        let encoded = encode_chunks(&cfg, &chunks).unwrap();
        // Decode only the second chunk.
        let d = decode(&encoded[1].bytes).unwrap();
        assert_eq!(d.video.frames.len(), 4);
    }
}
