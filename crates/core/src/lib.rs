//! The warehouse-scale video acceleration system (ASPLOS'21 VCU
//! reproduction) — the paper's contribution as a public API.
//!
//! This crate is the top of the stack: it turns platform requests into
//! [`graph::TaskGraph`]s and chunk-level cluster jobs ([`platform`]),
//! shards videos into closed GOPs and reassembles them with integrity
//! checks ([`chunking`]), reproduces the Appendix-A provisioning math
//! ([`balance`]), and drives the production experiments of §4
//! ([`experiments`]).
//!
//! # Quickstart
//!
//! ```
//! use vcu_system::platform::Platform;
//! use vcu_workloads::{Request, WorkloadFamily, PopularityBucket};
//! use vcu_media::Resolution;
//!
//! let platform = Platform::default();
//! let req = Request {
//!     arrival_s: 0.0,
//!     family: WorkloadFamily::Upload,
//!     resolution: Resolution::R1080,
//!     fps: 30.0,
//!     duration_s: 10.0,
//!     popularity: PopularityBucket::Middle,
//! };
//! let jobs = platform.jobs_for(&req);
//! assert!(!jobs.is_empty());
//! ```
pub mod balance;
pub mod chunking;
pub mod experiments;
pub mod graph;
pub mod mot;
pub mod platform;

pub use chunking::ChunkPlan;
pub use graph::{StepKind, TaskGraph};
pub use platform::{Platform, PlatformConfig};
