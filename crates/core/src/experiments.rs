//! Experiment drivers for the paper's production figures.
//!
//! Each function produces the data series behind one figure; the
//! `vcu-bench` harness binaries print them, and the integration tests
//! assert their shape. Everything is deterministic in its seed.

use vcu_chip::TranscodeJob;
use vcu_cluster::{ClusterConfig, ClusterSim, JobSpec, Priority};
use vcu_codec::{decode, encode, EncoderConfig, Profile, Qp, RateControl, TuningLevel};
use vcu_media::bdrate::{bd_rate, BdRateError, RdPoint};
use vcu_media::quality::psnr_y_video;
use vcu_media::{Resolution, Video};
use vcu_workloads::{PopularityBucket, Request, WorkloadFamily};

/// Generates a saturating production-like chunk-job stream for `vcus`
/// workers over `horizon_s` seconds.
///
/// Chunk jobs are emitted directly (rather than expanding full upload
/// requests through [`Platform`]) so the simulated population stays
/// bounded; the mix follows the upload resolution distribution.
fn saturating_jobs(vcus: usize, horizon_s: f64, mot: bool, seed: u64) -> Vec<JobSpec> {
    // Offered load ≈ 1.3× the fleet's sustainable rate so queues stay
    // non-empty (measuring capacity, not arrival luck).
    let chunk_s = 5.0;
    let resolutions = [
        Resolution::R2160,
        Resolution::R1080,
        Resolution::R1080,
        Resolution::R720,
        Resolution::R720,
        Resolution::R480,
    ];
    // Mean output Mpix/s of a chunk job under this mix.
    let mean_rate: f64 = resolutions
        .iter()
        .map(|r| {
            if mot {
                TranscodeJob::mot(*r, Profile::Vp9Sim, 30.0, chunk_s).output_mpix_s()
            } else {
                let rung = r.ladder().get(1).copied().unwrap_or(*r);
                TranscodeJob::sot(*r, rung, Profile::Vp9Sim, 30.0, chunk_s).output_mpix_s()
            }
        })
        .sum::<f64>()
        / resolutions.len() as f64;
    let per_vcu_mpix = if mot { 950.0 } else { 700.0 };
    let jobs_per_s = 1.3 * vcus as f64 * per_vcu_mpix / (mean_rate * chunk_s);

    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut i = 0usize;
    while t < horizon_s {
        let r = resolutions[(i + seed as usize) % resolutions.len()];
        let profile = if i.is_multiple_of(2) {
            Profile::Vp9Sim
        } else {
            Profile::H264Sim
        };
        let job = if mot {
            TranscodeJob::mot(r, profile, 30.0, chunk_s)
        } else {
            let rung = r.ladder().get(1).copied().unwrap_or(r);
            TranscodeJob::sot(r, rung, profile, 30.0, chunk_s)
        };
        out.push(JobSpec {
            arrival_s: t,
            job,
            priority: Priority::Normal,
            video_id: 0,
        });
        i += 1;
        t += 1.0 / jobs_per_s.max(0.05);
    }
    out
}

/// Figure 8: per-VCU production throughput, MOT vs SOT workers.
#[derive(Debug, Clone)]
pub struct Fig8Data {
    /// Per-sample MOT throughput (Mpix/s per VCU).
    pub mot: Vec<f64>,
    /// Per-sample SOT throughput (Mpix/s per VCU).
    pub sot: Vec<f64>,
}

/// Runs the Fig. 8 experiment.
pub fn fig8(vcus: usize, horizon_s: f64, seed: u64) -> Fig8Data {
    let run = |mot: bool| {
        let cfg = ClusterConfig {
            vcus,
            sample_period_s: horizon_s / 12.0,
            seed,
            ..ClusterConfig::default()
        };
        let jobs = saturating_jobs(vcus, horizon_s, mot, seed);
        let report = ClusterSim::new(cfg, jobs, vec![]).run();
        report
            .samples
            .iter()
            .filter(|s| s.time_s <= horizon_s * 1.05)
            .skip(1) // warm-up
            .map(|s| s.mpix_s_per_vcu)
            .collect::<Vec<f64>>()
    };
    Fig8Data {
        mot: run(true),
        sot: run(false),
    }
}

/// Mean of a series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Coefficient of variation of a series.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 || xs.len() < 2 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt() / m
}

/// One month of the Fig. 9a/9b ramp.
#[derive(Debug, Clone, Copy)]
pub struct RampPoint {
    /// Month since launch (1-based).
    pub month: usize,
    /// Normalized total VCU throughput (month 1 = 1.0 for 9a's VCU
    /// series).
    pub normalized_throughput: f64,
}

/// Figure 9a: chunked upload workload scaling post-launch.
///
/// Drivers of the ramp, per §4.3: fleet growth, the share of the
/// workload moved onto VCUs (50% at launch → 100% in month 7), and
/// software-stack fixes (NUMA-aware scheduling: +16–25%).
pub fn fig9a(months: usize, seed: u64) -> Vec<RampPoint> {
    let mut out = Vec::new();
    let mut baseline = None;
    for m in 1..=months {
        // Fleet grows as racks land.
        let vcus = 2 + m * 2;
        // Fraction of the upload workload enabled on VCU.
        let share = (0.5 + 0.5 * (m as f64 - 1.0) / 6.0).min(1.0);
        // Stack overhead: pre-NUMA-fix until month 4.
        let stf = if m < 4 { 1.22 } else { 1.0 };
        let horizon = 600.0;
        let cfg = ClusterConfig {
            vcus,
            service_time_factor: stf,
            sample_period_s: horizon / 6.0,
            seed: seed + m as u64,
            ..ClusterConfig::default()
        };
        let mut jobs = saturating_jobs(vcus, horizon, true, seed + m as u64);
        // Only `share` of the workload is VCU-enabled.
        let keep = (jobs.len() as f64 * share) as usize;
        jobs.truncate(keep);
        let report = ClusterSim::new(cfg, jobs, vec![]).run();
        let total = report.total_output_mpix / report.horizon_s.max(1.0);
        let base = *baseline.get_or_insert(total.max(1e-9));
        out.push(RampPoint {
            month: m,
            normalized_throughput: total / base,
        });
    }
    out
}

/// Figure 9b: live transcoding on VCU vs the fixed software fleet.
#[derive(Debug, Clone, Copy)]
pub struct LivePoint {
    /// Month since launch.
    pub month: usize,
    /// Normalized VCU live throughput.
    pub vcu: f64,
    /// Normalized software live throughput (flat: the software fleet
    /// stopped growing once VCUs landed).
    pub software: f64,
}

/// Runs the Fig. 9b ramp.
pub fn fig9b(months: usize, seed: u64) -> Vec<LivePoint> {
    let mut out = Vec::new();
    let mut base = None;
    for m in 1..=months {
        let vcus = 1 + m;
        let horizon = 400.0;
        let cfg = ClusterConfig {
            vcus,
            sample_period_s: horizon / 4.0,
            seed: seed + m as u64,
            ..ClusterConfig::default()
        };
        // Live sessions arrive evenly over the horizon; offered load
        // grows with the landed fleet.
        let n_jobs = vcus * 40;
        let spacing = horizon / n_jobs as f64;
        let jobs: Vec<JobSpec> = (0..n_jobs)
            .map(|i| JobSpec {
                arrival_s: i as f64 * spacing,
                job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 4.0)
                    .low_latency_two_pass(),
                priority: Priority::Critical,
                video_id: 0,
            })
            .collect();
        let report = ClusterSim::new(cfg, jobs, vec![]).run();
        let total = report.total_output_mpix / horizon;
        let b = *base.get_or_insert(total.max(1e-9));
        out.push(LivePoint {
            month: m,
            vcu: total / b,
            software: 1.0,
        });
    }
    out
}

/// One month of the Fig. 9c decode-offload experiment.
#[derive(Debug, Clone, Copy)]
pub struct DecodePoint {
    /// Month since launch.
    pub month: usize,
    /// Mean hardware-decoder utilization in 0..=1.
    pub hw_decode_util: f64,
    /// Per-VCU throughput (Mpix/s).
    pub mpix_s_per_vcu: f64,
}

/// Figure 9c: opportunistic software decoding lands in month 6.
///
/// The workload mixes decode-heavy SOT steps (low-resolution outputs
/// from high-resolution inputs) with MOT work, saturating the hardware
/// decoders; from `switch_month` on, the scheduler may shift decode to
/// the host CPU.
pub fn fig9c(months: usize, switch_month: usize, seed: u64) -> Vec<DecodePoint> {
    let vcus = 8;
    let horizon = 500.0;
    let mut out = Vec::new();
    for m in 1..=months {
        let cfg = ClusterConfig {
            vcus,
            opportunistic_sw_decode: m >= switch_month,
            sample_period_s: horizon / 8.0,
            seed: seed + m as u64,
            ..ClusterConfig::default()
        };
        // Decode-heavy mix: 2160p inputs producing only a 240p rung
        // (re-processing old popular videos at a new low-rate point),
        // plus normal 1080p MOTs.
        let mut jobs = Vec::new();
        let mut t = 0.0;
        let mut i = 0usize;
        while t < horizon {
            let job = if i.is_multiple_of(4) {
                TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0)
            } else {
                TranscodeJob::sot(
                    Resolution::R2160,
                    Resolution::R240,
                    Profile::H264Sim,
                    30.0,
                    5.0,
                )
            };
            jobs.push(JobSpec {
                arrival_s: t,
                job,
                priority: Priority::Normal,
                video_id: 0,
            });
            i += 1;
            t += 0.03; // heavily offered, decode-bound load
        }
        let report = ClusterSim::new(cfg, jobs, vec![]).run();
        let samples: Vec<_> = report
            .samples
            .iter()
            .skip(1)
            .filter(|s| s.time_s <= horizon)
            .collect();
        let util = mean(&samples.iter().map(|s| s.decode_util).collect::<Vec<_>>());
        let thr = mean(&samples.iter().map(|s| s.mpix_s_per_vcu).collect::<Vec<_>>());
        out.push(DecodePoint {
            month: m,
            hw_decode_util: util,
            mpix_s_per_vcu: thr,
        });
    }
    out
}

/// One point of the Fig. 10 tuning trajectory.
#[derive(Debug, Clone, Copy)]
pub struct TuningPoint {
    /// Month since launch.
    pub month: usize,
    /// Hardware tuning level active that month.
    pub level: u8,
    /// BD-rate of hardware vs software for H.264, percent (positive =
    /// hardware spends more bits at iso quality).
    pub h264_delta_pct: f64,
    /// Same for VP9.
    pub vp9_delta_pct: f64,
}

/// The tuning level deployed in a given month (two-month cadence,
/// mirroring Fig. 10's ~16-month convergence).
pub fn tuning_schedule(month: usize) -> TuningLevel {
    TuningLevel::new(((month.saturating_sub(1)) / 2).min(6) as u8)
}

/// Computes an RD curve for a config over a set of clips (rates summed,
/// PSNR pooled — a corpus-level curve).
///
/// # Errors
///
/// Propagates encode failures (invalid config).
pub fn corpus_rd_curve(
    base: EncoderConfig,
    clips: &[Video],
    qps: &[u8],
) -> Result<Vec<RdPoint>, vcu_codec::CodecError> {
    let mut points = Vec::new();
    for &qp in qps {
        let mut cfg = base;
        cfg.rc = RateControl::ConstQp(Qp::new(qp));
        let mut bits = 0.0;
        let mut psnr_acc = 0.0;
        for v in clips {
            let e = encode(&cfg, v)?;
            let d = decode(&e.bytes).expect("own bitstream must decode");
            bits += e.bitrate_bps();
            psnr_acc += psnr_y_video(v, &d.video);
        }
        points.push(RdPoint::new(
            bits / clips.len() as f64,
            psnr_acc / clips.len() as f64,
        ));
    }
    Ok(points)
}

/// Runs the Fig. 10 experiment over `months` months on `clips`.
///
/// # Errors
///
/// Propagates encode/BD-rate failures.
pub fn fig10(
    months: usize,
    clips: &[Video],
    qps: &[u8],
) -> Result<Vec<TuningPoint>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    let sw_h264 = corpus_rd_curve(
        EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)),
        clips,
        qps,
    )?;
    let sw_vp9 = corpus_rd_curve(
        EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)),
        clips,
        qps,
    )?;
    let mut cache: Vec<Option<(f64, f64)>> = vec![None; 7];
    for m in 1..=months {
        let level = tuning_schedule(m);
        let li = level.level() as usize;
        if cache[li].is_none() {
            let hw_h264 = corpus_rd_curve(
                EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)).with_hardware(level),
                clips,
                qps,
            )?;
            let hw_vp9 = corpus_rd_curve(
                EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)).with_hardware(level),
                clips,
                qps,
            )?;
            let d264 = bd_rate(&sw_h264, &hw_h264)?;
            let dvp9 = bd_rate(&sw_vp9, &hw_vp9)?;
            cache[li] = Some((d264, dvp9));
        }
        let (h264_delta_pct, vp9_delta_pct) = cache[li].expect("just filled");
        out.push(TuningPoint {
            month: m,
            level: level.level(),
            h264_delta_pct,
            vp9_delta_pct,
        });
    }
    Ok(out)
}

/// Per-clip RD curves for Fig. 7.
///
/// # Errors
///
/// Propagates encode/decode failures.
pub fn clip_rd_curve(
    base: EncoderConfig,
    video: &Video,
    qps: &[u8],
) -> Result<Vec<RdPoint>, vcu_codec::CodecError> {
    let mut points = Vec::new();
    for &qp in qps {
        let mut cfg = base;
        cfg.rc = RateControl::ConstQp(Qp::new(qp));
        let e = encode(&cfg, video)?;
        let d = decode(&e.bytes).expect("own bitstream must decode");
        points.push(RdPoint::new(e.bitrate_bps(), psnr_y_video(video, &d.video)));
    }
    Ok(points)
}

/// BD-rate with a readable error context.
///
/// # Errors
///
/// Propagates [`BdRateError`].
pub fn bd(anchor: &[RdPoint], test: &[RdPoint]) -> Result<f64, BdRateError> {
    bd_rate(anchor, test)
}

/// A one-pass low-latency request shaped like §4.5's Stadia workload:
/// 2160p60 low-latency two-pass VP9.
pub fn stadia_request() -> Request {
    Request {
        arrival_s: 0.0,
        family: WorkloadFamily::Gaming,
        resolution: Resolution::R2160,
        fps: 60.0,
        duration_s: 60.0,
        popularity: PopularityBucket::Head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_mot_beats_sot() {
        let data = fig8(4, 400.0, 11);
        let mot = mean(&data.mot);
        let sot = mean(&data.sot);
        assert!(
            mot > sot * 1.1,
            "MOT {mot:.0} should beat SOT {sot:.0} per VCU"
        );
        // The paper highlights MOT's low variance.
        assert!(cov(&data.mot) < 0.35, "MOT cov {}", cov(&data.mot));
    }

    #[test]
    fn fig9a_ramps_up() {
        let ramp = fig9a(8, 5);
        assert!((ramp[0].normalized_throughput - 1.0).abs() < 1e-9);
        let last = ramp.last().unwrap().normalized_throughput;
        assert!(last > 3.0, "ramp should grow severalfold: {last}");
        // Mostly monotone.
        let increases = ramp
            .windows(2)
            .filter(|w| w[1].normalized_throughput >= w[0].normalized_throughput * 0.95)
            .count();
        assert!(increases >= ramp.len() - 2, "ramp too noisy");
    }

    #[test]
    fn fig9c_offload_reduces_decode_util() {
        let pts = fig9c(4, 3, 9);
        let before = pts[..2].iter().map(|p| p.hw_decode_util).sum::<f64>() / 2.0;
        let after = pts[2..].iter().map(|p| p.hw_decode_util).sum::<f64>() / 2.0;
        assert!(
            after < before - 0.02,
            "decode util should drop: {before:.3} -> {after:.3}"
        );
        let thr_before = pts[..2].iter().map(|p| p.mpix_s_per_vcu).sum::<f64>() / 2.0;
        let thr_after = pts[2..].iter().map(|p| p.mpix_s_per_vcu).sum::<f64>() / 2.0;
        assert!(
            thr_after >= thr_before,
            "offload must not hurt throughput: {thr_before:.0} -> {thr_after:.0}"
        );
    }

    #[test]
    fn tuning_schedule_reaches_mature() {
        assert_eq!(tuning_schedule(1).level(), 0);
        assert_eq!(tuning_schedule(13).level(), 6);
        assert_eq!(tuning_schedule(16).level(), 6);
    }
}
