//! Acyclic task-dependency graphs for video processing.
//!
//! §2.2: "Based on the required output variants, an acyclic task
//! dependency graph is generated to capture the work to be performed.
//! The graph is placed into a global work queue system, where each
//! operation is a variable-sized 'step'". This module builds those
//! graphs — analyze → chunk transcodes (MOT or SOTs) → assemble →
//! post-processing steps — and provides ready-order iteration for the
//! scheduler.

use std::collections::VecDeque;

/// Kind of work a step performs (the worker types of §3.3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Probe the input, pick output variants and chunk boundaries.
    Analyze,
    /// Transcode one chunk (the VCU-eligible step).
    TranscodeChunk {
        /// Chunk index.
        chunk: usize,
        /// Whether this step produces the full ladder (MOT) or one
        /// output (SOT).
        mot: bool,
    },
    /// Stitch chunk outputs into playable files, run integrity checks.
    Assemble,
    /// Thumbnail extraction (CPU worker).
    Thumbnail,
    /// Search-signal / fingerprint generation (CPU worker).
    Fingerprint,
    /// Notify serving systems the video is ready.
    Notify,
}

impl StepKind {
    /// Whether the step can run on a VCU worker.
    pub fn vcu_eligible(&self) -> bool {
        matches!(self, StepKind::TranscodeChunk { .. })
    }
}

/// One node of the dependency graph.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step id (index into the graph).
    pub id: usize,
    /// What the step does.
    pub kind: StepKind,
    /// Ids of steps that must complete first.
    pub deps: Vec<usize>,
}

/// An acyclic task-dependency graph.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    steps: Vec<Step>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a step with dependencies, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency id does not exist yet (which also
    /// guarantees acyclicity by construction).
    pub fn add(&mut self, kind: StepKind, deps: Vec<usize>) -> usize {
        let id = self.steps.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} does not exist yet");
        }
        self.steps.push(Step { id, kind, deps });
        id
    }

    /// All steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the graph has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns step ids in a valid execution order (topological).
    pub fn topo_order(&self) -> Vec<usize> {
        // Construction guarantees deps point backwards, so identity
        // order is already topological; keep the explicit check cheap.
        (0..self.steps.len()).collect()
    }

    /// Returns the "waves" of steps that can run concurrently: wave 0
    /// has no dependencies, wave k+1 depends only on waves ≤ k. This is
    /// the parallelism the chunked pipeline exploits.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.steps.len()];
        for s in &self.steps {
            level[s.id] = s.deps.iter().map(|&d| level[d] + 1).max().unwrap_or(0);
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut waves = vec![Vec::new(); max_level + 1];
        for (id, &l) in level.iter().enumerate() {
            waves[l].push(id);
        }
        waves
    }

    /// Builds the standard upload-processing graph: analyze, then one
    /// transcode step per chunk (MOT, or one SOT per ladder rung when
    /// `mot` is false and `outputs` > 1), then assemble + auxiliary
    /// steps, then notify.
    pub fn upload(chunks: usize, mot: bool, outputs: usize) -> TaskGraph {
        assert!(chunks > 0, "need at least one chunk");
        assert!(outputs > 0, "need at least one output");
        let mut g = TaskGraph::new();
        let analyze = g.add(StepKind::Analyze, vec![]);
        let mut transcodes = Vec::new();
        for c in 0..chunks {
            if mot {
                transcodes.push(g.add(
                    StepKind::TranscodeChunk {
                        chunk: c,
                        mot: true,
                    },
                    vec![analyze],
                ));
            } else {
                for _ in 0..outputs {
                    transcodes.push(g.add(
                        StepKind::TranscodeChunk {
                            chunk: c,
                            mot: false,
                        },
                        vec![analyze],
                    ));
                }
            }
        }
        let assemble = g.add(StepKind::Assemble, transcodes.clone());
        let thumb = g.add(StepKind::Thumbnail, vec![analyze]);
        let fp = g.add(StepKind::Fingerprint, vec![analyze]);
        g.add(StepKind::Notify, vec![assemble, thumb, fp]);
        g
    }

    /// Simulates ready-order execution with unbounded workers, checking
    /// that every step's dependencies complete first. Returns the
    /// number of sequential waves (critical-path length in steps).
    pub fn execute_check(&self) -> usize {
        let mut done = vec![false; self.steps.len()];
        let mut remaining: VecDeque<usize> = self.topo_order().into();
        let mut waves = 0;
        while !remaining.is_empty() {
            let mut progressed = Vec::new();
            for &id in &remaining {
                if self.steps[id].deps.iter().all(|&d| done[d]) {
                    progressed.push(id);
                }
            }
            assert!(!progressed.is_empty(), "graph wedged — cycle?");
            for id in &progressed {
                done[*id] = true;
            }
            remaining.retain(|id| !done[*id]);
            waves += 1;
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_graph_shape_mot() {
        let g = TaskGraph::upload(4, true, 6);
        // analyze + 4 transcodes + assemble + thumb + fp + notify = 9.
        assert_eq!(g.len(), 9);
        let transcodes = g.steps().iter().filter(|s| s.kind.vcu_eligible()).count();
        assert_eq!(transcodes, 4);
    }

    #[test]
    fn upload_graph_shape_sot_multiplies() {
        let g = TaskGraph::upload(4, false, 6);
        let transcodes = g.steps().iter().filter(|s| s.kind.vcu_eligible()).count();
        assert_eq!(transcodes, 24, "one SOT step per chunk per rung");
    }

    #[test]
    fn chunks_run_in_one_wave() {
        let g = TaskGraph::upload(8, true, 6);
        let waves = g.waves();
        // Wave 0: analyze. Wave 1: all transcodes (+thumb+fp). Wave 2:
        // assemble. Wave 3: notify.
        assert_eq!(waves.len(), 4);
        let transcode_wave: Vec<_> = waves[1]
            .iter()
            .filter(|&&id| g.steps()[id].kind.vcu_eligible())
            .collect();
        assert_eq!(transcode_wave.len(), 8, "all chunks parallel");
    }

    #[test]
    fn execution_respects_dependencies() {
        let g = TaskGraph::upload(5, true, 6);
        assert_eq!(g.execute_check(), 4);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_deps_rejected() {
        let mut g = TaskGraph::new();
        g.add(StepKind::Analyze, vec![3]);
    }

    #[test]
    fn notify_is_last() {
        let g = TaskGraph::upload(2, true, 4);
        let last = g.steps().last().unwrap();
        assert_eq!(last.kind, StepKind::Notify);
        assert!(!last.deps.is_empty());
    }
}
