//! Appendix-A system balance analytics.
//!
//! Closed-form reproductions of the host-level provisioning math:
//! the network-bound transcoding ceiling (A.2), host CPU / DRAM
//! bandwidth scaling (Table 2), VCU DRAM capacity sizing (A.4), and
//! the aggregate attachment limits (A.5).

use vcu_chip::calib;

/// Appendix A.2's upload-bitrate assumption: pixels per bit across the
/// recommended upload ladder ("an average of 6.1 pixels-per-bit").
pub const PIXELS_PER_BIT: f64 = 6.1;

/// Network-bound transcoding ceiling of a host in Gpix/s.
///
/// A.2: 100 Gbps NIC × 6.1 pix/bit ≈ 610 Gpix/s raw; allowing 2×
/// upload headroom and 50% RPC/unrelated-traffic overhead gives
/// ~153 Gpix/s.
pub fn network_ceiling_gpix_s() -> f64 {
    let raw = calib::HOST_NIC_GBPS * 1e9 * PIXELS_PER_BIT / 1e9; // Gpix/s
    raw / 2.0 / 2.0
}

/// Table 2: host resources scaled to a target throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostScaling {
    /// Logical cores for transcoding overheads (mux/demux, audio,
    /// process management, accelerator ops).
    pub transcode_cores: f64,
    /// Logical cores for network + RPC.
    pub network_cores: f64,
    /// Host DRAM bandwidth for transcoding overheads, Gbps.
    pub transcode_dram_gbps: f64,
    /// Host DRAM bandwidth for network (six accesses/byte), Gbps.
    pub network_dram_gbps: f64,
}

impl HostScaling {
    /// Total logical cores.
    pub fn total_cores(&self) -> f64 {
        self.transcode_cores + self.network_cores
    }

    /// Total host DRAM bandwidth, Gbps.
    pub fn total_dram_gbps(&self) -> f64 {
        self.transcode_dram_gbps + self.network_dram_gbps
    }
}

/// Scales host resource needs to a target throughput in Gpix/s.
///
/// Anchored to Table 2 at 153 Gpix/s: 42 + 13 logical cores and
/// 214 + 300 Gbps of DRAM bandwidth.
pub fn host_scaling(target_gpix_s: f64) -> HostScaling {
    let f = target_gpix_s / calib::HOST_NET_CEILING_GPIX_S;
    // Network side (A.2 footnote 12): 25 Gbps sustained with six DRAM
    // accesses per network byte → 300 Gbps at full target, and 13
    // cores of RPC handling.
    HostScaling {
        transcode_cores: 42.0 * f,
        network_cores: 13.0 * f,
        transcode_dram_gbps: 214.0 * f,
        network_dram_gbps: 300.0 * f,
    }
}

/// A.4: worst-case VCU DRAM demand for a host at the network ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSizing {
    /// GiB needed for low-latency SOT across the host.
    pub sot_low_latency_gib: f64,
    /// GiB needed for offline two-pass across the host.
    pub offline_two_pass_gib: f64,
    /// GiB available from `vcus` × 8 GiB.
    pub available_gib: f64,
}

/// Sizes VCU DRAM for a host driving `target_gpix_s` of 2160p-like
/// streams on `vcus` VCUs (A.4's arithmetic).
pub fn dram_sizing(target_gpix_s: f64, vcus: usize) -> DramSizing {
    // One 2160p60 stream is ~0.5 Gpix/s and needs ~500 MiB (SOT) /
    // ~700 MiB (MOT); lagged/offline two-pass keeps ~15 extra frames,
    // scaling the SOT footprint by ~5x (A.4: 150 GiB vs 750 GiB at the
    // network limit).
    let streams = target_gpix_s / (calib::REF_STREAM_MPIX_S / 1e3);
    let sot = streams * 500.0 / 1024.0;
    let offline = streams * 2500.0 / 1024.0;
    DramSizing {
        sot_low_latency_gib: sot,
        offline_two_pass_gib: offline,
        available_gib: vcus as f64 * calib::dram::CAPACITY_GIB,
    }
}

/// A.2/A.5: encoder-throughput-based VCU count ceilings per host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttachmentLimits {
    /// VCUs per host for real-time (one-pass) work at the network
    /// ceiling (A.2: "a ceiling of 30 VCUs per host for real-time").
    pub realtime_vcus: f64,
    /// VCUs for offline two-pass ("or 150 VCUs for offline two-pass").
    pub offline_vcus: f64,
    /// The conservative production choice.
    pub chosen: usize,
}

/// Computes attachment limits at the network ceiling.
pub fn attachment_limits() -> AttachmentLimits {
    let ceiling_mpix_s = calib::HOST_NET_CEILING_GPIX_S * 1e3;
    // A VCU's encoder silicon sustains ~0.5 Gpix/s per core × 10 ≈
    // 5 Gpix/s one-pass; the paper's A.2 uses the per-VCU "equivalent
    // to ~0.5 Gpixel/s" *system-level sustained* number.
    let per_vcu_realtime = 5_000.0; // Mpix/s silicon peak, one-pass
    let per_vcu_offline = 1_000.0; // with two passes and derates
    AttachmentLimits {
        realtime_vcus: ceiling_mpix_s / per_vcu_realtime,
        offline_vcus: ceiling_mpix_s / per_vcu_offline,
        chosen: calib::VCUS_PER_HOST,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_ceiling_near_153() {
        let c = network_ceiling_gpix_s();
        assert!((140.0..170.0).contains(&c), "ceiling {c}");
    }

    #[test]
    fn table2_totals() {
        // Table 2: 55 logical cores and 514 Gbps at 153 Gpix/s —
        // "about half of what the target host system provides".
        let h = host_scaling(153.0);
        assert!(
            (50.0..60.0).contains(&h.total_cores()),
            "{}",
            h.total_cores()
        );
        assert!(
            (480.0..550.0).contains(&h.total_dram_gbps()),
            "{}",
            h.total_dram_gbps()
        );
        assert!(h.total_cores() < calib::cpu::LOGICAL_CORES as f64 * 0.6);
        assert!(h.total_dram_gbps() < 1600.0 * 0.4);
    }

    #[test]
    fn scaling_is_linear() {
        let h1 = host_scaling(153.0);
        let h2 = host_scaling(76.5);
        assert!((h1.total_cores() / h2.total_cores() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dram_sizing_matches_a4() {
        // A.4: 150 GiB (low-latency SOT) / 750 GiB (offline) at the
        // network limit; 8 GiB per VCU suffices, 4 GiB would not.
        let s = dram_sizing(153.0, 150);
        assert!(
            (120.0..180.0).contains(&s.sot_low_latency_gib),
            "sot {}",
            s.sot_low_latency_gib
        );
        assert!(
            (600.0..900.0).contains(&s.offline_two_pass_gib),
            "offline {}",
            s.offline_two_pass_gib
        );
        assert!(s.available_gib >= s.offline_two_pass_gib);
        // Halving per-VCU DRAM to 4 GiB breaks the offline case.
        assert!(s.available_gib / 2.0 < s.offline_two_pass_gib);
    }

    #[test]
    fn attachment_limits_match_a2() {
        let l = attachment_limits();
        assert!(
            (25.0..35.0).contains(&l.realtime_vcus),
            "{}",
            l.realtime_vcus
        );
        assert!(
            (120.0..180.0).contains(&l.offline_vcus),
            "{}",
            l.offline_vcus
        );
        // Production choice (20) is comfortably under both.
        assert!((l.chosen as f64) < l.realtime_vcus * 1.5);
        assert!((l.chosen as f64) < l.offline_vcus);
    }
}
