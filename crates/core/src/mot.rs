//! Pixel-level multiple-output transcoding (MOT).
//!
//! Figure 2b's pipeline on real pixels: decode the input once,
//! downscale the raw frames to every ladder rung, and encode each rung
//! — against Figure 2a's SOT alternative, which decodes the input once
//! *per output*. The work metering makes the paper's "reduces the
//! decoding overheads" argument measurable on the real codec.

use vcu_codec::{decode, encode, CodecError, CodingStats, Encoded, EncoderConfig};
use vcu_media::scale::scale_frame;
use vcu_media::{Resolution, Video};

/// Output bundle of a MOT run.
#[derive(Debug)]
pub struct MotOutputs {
    /// One encoded stream per ladder rung (largest first).
    pub outputs: Vec<(Resolution, Encoded)>,
    /// Total work performed, including the single decode and all
    /// scales/encodes.
    pub stats: CodingStats,
    /// Number of input decodes performed (always 1 for MOT).
    pub decodes: u32,
}

/// Transcodes an encoded input into the full ladder at and below
/// `max_out`, decoding the input exactly once (MOT, Figure 2b).
///
/// # Errors
///
/// Propagates decode failures on the input and encode failures.
pub fn transcode_mot(
    input: &[u8],
    max_out: Resolution,
    cfg: &EncoderConfig,
) -> Result<MotOutputs, CodecError> {
    let decoded = decode(input)?;
    let mut stats = decoded.stats;
    let mut outputs = Vec::new();
    for rung in max_out.ladder() {
        let (w, h) = rung.dims();
        let scaled = if (w, h) == (decoded.video.width(), decoded.video.height()) {
            decoded.video.clone()
        } else {
            Video::new(
                decoded
                    .video
                    .frames
                    .iter()
                    .map(|f| scale_frame(f, w, h))
                    .collect(),
                decoded.video.fps,
            )
        };
        let e = encode(cfg, &scaled)?;
        stats += e.stats;
        outputs.push((rung, e));
    }
    Ok(MotOutputs {
        outputs,
        stats,
        decodes: 1,
    })
}

/// The SOT alternative: one task per output, each decoding the input
/// again (Figure 2a). Returns the same outputs plus the duplicated
/// decode work.
///
/// # Errors
///
/// Propagates decode/encode failures.
pub fn transcode_sot_fan(
    input: &[u8],
    max_out: Resolution,
    cfg: &EncoderConfig,
) -> Result<MotOutputs, CodecError> {
    let mut stats = CodingStats::new();
    let mut outputs = Vec::new();
    let mut decodes = 0;
    for rung in max_out.ladder() {
        let decoded = decode(input)?; // re-decoded per output
        decodes += 1;
        stats += decoded.stats;
        let (w, h) = rung.dims();
        let scaled = if (w, h) == (decoded.video.width(), decoded.video.height()) {
            decoded.video
        } else {
            Video::new(
                decoded
                    .video
                    .frames
                    .iter()
                    .map(|f| scale_frame(f, w, h))
                    .collect(),
                decoded.video.fps,
            )
        };
        let e = encode(cfg, &scaled)?;
        stats += e.stats;
        outputs.push((rung, e));
    }
    Ok(MotOutputs {
        outputs,
        stats,
        decodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_codec::{Profile, Qp};
    use vcu_media::synth::{ContentClass, SynthSpec};

    fn encoded_input() -> Vec<u8> {
        let v = SynthSpec::new(Resolution::R240, 4, ContentClass::talking_head(), 8).generate();
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(24));
        encode(&cfg, &v).expect("input encode").bytes
    }

    #[test]
    fn mot_produces_full_ladder() {
        let input = encoded_input();
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32));
        let out = transcode_mot(&input, Resolution::R240, &cfg).expect("mot");
        let rungs: Vec<_> = out.outputs.iter().map(|(r, _)| *r).collect();
        assert_eq!(rungs, vec![Resolution::R240, Resolution::R144]);
        assert_eq!(out.decodes, 1);
        // Every output decodes.
        for (r, e) in &out.outputs {
            let d = decode(&e.bytes).expect("output decodes");
            assert_eq!(d.video.width(), r.width());
        }
    }

    #[test]
    fn mot_does_less_work_than_sot_fan() {
        let input = encoded_input();
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32));
        let mot = transcode_mot(&input, Resolution::R240, &cfg).expect("mot");
        let sot = transcode_sot_fan(&input, Resolution::R240, &cfg).expect("sot");
        assert_eq!(sot.decodes, 2);
        assert!(
            mot.stats.work_units() < sot.stats.work_units(),
            "MOT {} should beat SOT fan {}",
            mot.stats.work_units(),
            sot.stats.work_units()
        );
        // Identical outputs either way (same codec, same inputs).
        assert_eq!(mot.outputs.len(), sot.outputs.len());
        for ((_, a), (_, b)) in mot.outputs.iter().zip(&sot.outputs) {
            assert_eq!(
                a.bytes, b.bytes,
                "MOT and SOT must produce identical streams"
            );
        }
    }
}
