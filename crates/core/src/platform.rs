//! The video processing platform: requests → task graphs → cluster jobs.
//!
//! Ties the stack together the way §2.2/§3.1 describe: an arriving
//! video is analyzed (popularity → treatment, formats, ladder), chunked
//! into closed GOPs, expressed as a task graph, and the VCU-eligible
//! steps become [`vcu_cluster::JobSpec`]s for the cluster simulator.

use crate::graph::TaskGraph;
use vcu_chip::TranscodeJob;
use vcu_cluster::{JobSpec, Priority};
use vcu_codec::Profile;
use vcu_workloads::{PopularityModel, Request, WorkloadFamily};

/// Chunk length used by the platform, in seconds (the paper's examples
/// use 2–5 s chunks).
pub const CHUNK_SECONDS: f64 = 5.0;

/// Platform-level policy configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Produce MOT jobs (true, the VCU-era default) or per-rung SOTs
    /// (the legacy CPU-era shape).
    pub mot: bool,
    /// Produce VP9 in addition to H.264 where treatment allows.
    pub vp9_enabled: bool,
    /// Popularity model used for treatment decisions.
    pub popularity: PopularityModel,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            mot: true,
            vp9_enabled: true,
            popularity: PopularityModel::default(),
        }
    }
}

/// The platform front-end.
#[derive(Debug, Clone, Default)]
pub struct Platform {
    /// Policy knobs.
    pub cfg: PlatformConfig,
}

impl Platform {
    /// A platform with default policy.
    pub fn new(cfg: PlatformConfig) -> Self {
        Platform { cfg }
    }

    /// Task graph for a request (used by tests and the scheduler's
    /// step accounting).
    pub fn graph_for(&self, req: &Request) -> TaskGraph {
        let chunks = self.chunk_count(req);
        let outputs = req.resolution.ladder().len();
        TaskGraph::upload(chunks, self.cfg.mot, outputs)
    }

    fn chunk_count(&self, req: &Request) -> usize {
        (req.duration_s / CHUNK_SECONDS).ceil().max(1.0) as usize
    }

    /// Priority for a workload family.
    pub fn priority_for(family: WorkloadFamily) -> Priority {
        match family {
            WorkloadFamily::Live | WorkloadFamily::Gaming => Priority::Critical,
            WorkloadFamily::Upload => Priority::Normal,
            WorkloadFamily::Archival => Priority::Batch,
        }
    }

    /// Stable video identifier for a request (used by consistent-hash
    /// placement and blast-radius accounting).
    pub fn video_id(req: &Request) -> u64 {
        let a = req.arrival_s.to_bits();
        let r = req.resolution.pixels();
        a.rotate_left(21) ^ r.wrapping_mul(0x9E3779B97F4A7C15) ^ (req.duration_s.to_bits() >> 1)
    }

    /// Expands a request into chunk-level cluster jobs. Each chunk
    /// becomes one MOT job per enabled format (or a fan of SOT jobs in
    /// legacy mode).
    pub fn jobs_for(&self, req: &Request) -> Vec<JobSpec> {
        let chunks = self.chunk_count(req);
        let chunk_s = req.duration_s / chunks as f64;
        let treatment = self.cfg.popularity.treatment_with_vcu(req.popularity);
        let mut profiles = vec![Profile::H264Sim];
        if self.cfg.vp9_enabled && treatment.vp9 {
            profiles.push(Profile::Vp9Sim);
        }
        let priority = Self::priority_for(req.family);
        let video_id = Self::video_id(req);
        let live = matches!(req.family, WorkloadFamily::Live | WorkloadFamily::Gaming);

        let mut out = Vec::new();
        for c in 0..chunks {
            // Live chunks arrive as the stream progresses; uploads are
            // all available at request arrival.
            let arrival = if live {
                req.arrival_s + c as f64 * chunk_s
            } else {
                req.arrival_s
            };
            for &profile in &profiles {
                if self.cfg.mot {
                    let mut job = TranscodeJob::mot(req.resolution, profile, req.fps, chunk_s);
                    if live {
                        job = job.low_latency_two_pass();
                    }
                    out.push(JobSpec {
                        arrival_s: arrival,
                        job,
                        priority,
                        video_id,
                    });
                } else {
                    for rung in req.resolution.ladder() {
                        let mut job =
                            TranscodeJob::sot(req.resolution, rung, profile, req.fps, chunk_s);
                        if live {
                            job = job.low_latency_two_pass();
                        }
                        out.push(JobSpec {
                            arrival_s: arrival,
                            job,
                            priority,
                            video_id,
                        });
                    }
                }
            }
        }
        out
    }

    /// Expands a whole request stream.
    pub fn jobs_for_all(&self, reqs: &[Request]) -> Vec<JobSpec> {
        let mut jobs: Vec<JobSpec> = reqs.iter().flat_map(|r| self.jobs_for(r)).collect();
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        jobs
    }
}

/// End-to-end latency estimate for a live stream under a given
/// per-chunk encode-speed factor (encode time = chunk length ×
/// factor). The paper's §4.5 example: software VP9 encoded a 2-second
/// chunk in 10 seconds (factor 5), forcing 5-6 chunks in flight and
/// ~30 s camera-to-eyeball delays; the VCU encodes faster than real
/// time (factor < 1), enabling ~5 s.
pub fn live_latency_s(chunk_s: f64, encode_speed_factor: f64, buffer_chunks: f64) -> f64 {
    // Pipeline: ingest one chunk + encode it (parallelism across chunks
    // hides throughput, not latency) + client buffer.
    let encode_latency = chunk_s * encode_speed_factor.max(0.0);
    chunk_s + encode_latency + buffer_chunks * chunk_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_media::Resolution;
    use vcu_workloads::PopularityBucket;

    fn upload_req(duration_s: f64) -> Request {
        Request {
            arrival_s: 10.0,
            family: WorkloadFamily::Upload,
            resolution: Resolution::R1080,
            fps: 30.0,
            duration_s,
            popularity: PopularityBucket::Middle,
        }
    }

    #[test]
    fn mot_platform_emits_one_job_per_chunk_per_format() {
        let p = Platform::default();
        let jobs = p.jobs_for(&upload_req(12.0)); // 3 chunks
                                                  // 3 chunks × 2 formats (H.264 + VP9).
        assert_eq!(jobs.len(), 6);
        assert!(jobs.iter().all(|j| j.job.is_mot()));
        assert!(jobs.iter().all(|j| j.arrival_s == 10.0));
    }

    #[test]
    fn legacy_sot_mode_fans_out() {
        let p = Platform::new(PlatformConfig {
            mot: false,
            ..PlatformConfig::default()
        });
        let jobs = p.jobs_for(&upload_req(4.0)); // 1 chunk
                                                 // 1 chunk × 2 formats × 6 ladder rungs.
        assert_eq!(jobs.len(), 12);
        assert!(jobs.iter().all(|j| !j.job.is_mot()));
    }

    #[test]
    fn live_chunks_arrive_progressively() {
        let p = Platform::default();
        let req = Request {
            family: WorkloadFamily::Live,
            duration_s: 15.0,
            ..upload_req(15.0)
        };
        let jobs = p.jobs_for(&req);
        let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival_s).collect();
        assert!(arrivals.iter().any(|&a| a > req.arrival_s));
        assert!(jobs.iter().all(|j| j.priority == Priority::Critical));
    }

    #[test]
    fn graph_matches_job_fanout() {
        let p = Platform::default();
        let req = upload_req(12.0);
        let g = p.graph_for(&req);
        let transcode_steps = g.steps().iter().filter(|s| s.kind.vcu_eligible()).count();
        assert_eq!(transcode_steps, 3, "3 chunks → 3 MOT steps");
    }

    #[test]
    fn live_latency_matches_paper_examples() {
        // Software VP9: 2 s chunks encoded in 10 s, 2 chunks buffered →
        // tens of seconds.
        let sw = live_latency_s(2.0, 5.0, 6.0);
        assert!(sw >= 20.0, "software latency {sw}");
        // VCU: faster than real time, small buffer → ~5 s (§4.5).
        let hw = live_latency_s(2.0, 0.4, 0.6);
        assert!((3.0..7.0).contains(&hw), "hardware latency {hw}");
    }

    #[test]
    fn jobs_for_all_sorted() {
        let p = Platform::default();
        let reqs = vec![upload_req(6.0), {
            let mut r = upload_req(6.0);
            r.arrival_s = 1.0;
            r
        }];
        let jobs = p.jobs_for_all(&reqs);
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }
}
