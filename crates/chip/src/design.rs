//! Chip design points: the axes the DSE driver sweeps.
//!
//! The shipped VCU fixes one point in a four-dimensional space —
//! encoder cores × decoder cores × DRAM bandwidth × reference-store
//! SRAM (§3.3.1 sizes each axis against the worst-case workload
//! envelope). [`DesignPoint`] makes that space explicit: every axis is
//! a parameter, performance derates are derived from the same
//! calibrated sub-models the shipped configuration uses
//! ([`PipelineSim`], [`RefStore`], the §3.3.1 bandwidth envelope), and
//! a cost/area/power model prices each candidate so `vcu-dse` can
//! trade performance against TCO.
//!
//! Calibration invariant: [`DesignPoint::shipped`] must reproduce the
//! production model bit-for-bit — same core rate, same sustained
//! throughput, and exactly the $2,200 card capex / 100 W card power
//! that `vcu-cluster::tco` prices `System::VcuHost` with. Every derate
//! in this module is expressed *relative to the shipped point* and
//! short-circuits to exactly 1.0 there, so adding the design axis
//! changed no committed artifact byte.

use crate::calib::{self, dram, stage_cycles};
use crate::encoder_core::PipelineSim;
use crate::refstore::{simulate_frame_search, RefStore, STORE_PIXELS};
use std::sync::OnceLock;
use vcu_codec::Profile;

/// Area model, mm² in a 7 nm-class process. Absolute values only
/// matter through the shipped-point calibration below; the *relative*
/// costs (an encoder core ≈ 3× a decoder core, SRAM and PHYs are
/// cheap but not free) are what shape the frontier.
mod area {
    /// Control processor, firmware SRAM, host interface, I/O ring.
    pub const BASE_MM2: f64 = 30.0;
    /// One encoder core (motion search arrays dominate; Figure 5a).
    pub const ENCODER_CORE_MM2: f64 = 6.0;
    /// One decoder core (~10× cheaper than encode; §3.3.1).
    pub const DECODER_CORE_MM2: f64 = 2.0;
    /// One shipped-size (144K-pixel) reference store, per encoder core.
    pub const REFSTORE_MM2: f64 = 1.0;
    /// One 32-bit LPDDR4 channel PHY + controller.
    pub const DRAM_CHANNEL_MM2: f64 = 4.0;
}

/// Power model, watts per VCU under transcode load.
mod power {
    /// Control, firmware CPU, I/O.
    pub const BASE_W: f64 = 9.0;
    /// One encoder core, active.
    pub const ENCODER_CORE_W: f64 = 3.0;
    /// One decoder core, active.
    pub const DECODER_CORE_W: f64 = 1.0;
    /// One LPDDR4 channel (PHY + device).
    pub const DRAM_CHANNEL_W: f64 = 2.0;
}

/// Cost model, dollars per card.
mod cost {
    /// Board, packaging, passives, host interface — per card (2 VCUs).
    pub const CARD_BOARD_USD: f64 = 376.0;
    /// One LPDDR4 channel's DRAM devices.
    pub const DRAM_CHANNEL_USD: f64 = 45.0;
    /// Die cost of the shipped 122 mm² VCU — chosen so a shipped card
    /// prices at exactly the $2,200 `VCU_CARD_CAPEX` in
    /// `vcu-cluster::tco`: 376 + 2×732 + 2×4×$45 = 2,200.
    pub const SHIPPED_DIE_USD: f64 = 732.0;
    /// Yield roll-off scale: die cost grows ∝ area·e^(Δarea/A₀)
    /// (Poisson defect yield), so big dies cost superlinearly — the
    /// pressure that keeps "just add cores" from dominating.
    pub const YIELD_AREA_MM2: f64 = 60.0;
}

/// Raw bandwidth of one 32-bit LPDDR4-3200 channel in GiB/s (§3.3.1:
/// four channels ≈ 36 GiB/s).
pub const DRAM_CHANNEL_GIB_S: f64 = 9.0;

/// FIFO depth / variability / blocks for the pipeline-interaction
/// probe: the production FIFO depth with moderate content variability,
/// long enough for the steady state to dominate warm-up.
const PIPE_FIFO_DEPTH: usize = 4;
const PIPE_VARIABILITY: f64 = 0.5;
const PIPE_BLOCKS: u64 = 2048;

/// Fixed frame geometry for the reference-store traffic probe: one
/// 640×360 frame searched in 512-pixel tile columns with ±64 search
/// range (the refstore unit-test geometry). The probe only produces a
/// *ratio* of DRAM bytes vs the shipped store, so the absolute frame
/// size cancels out.
const PROBE_FRAME: (usize, usize, usize, usize, usize) = (640, 360, 512, 64, 64);

/// One point in the VCU design space.
///
/// Construct via [`DesignPoint::new`] (which derives the cached
/// performance factors) or [`DesignPoint::shipped`]. The derived
/// fields are private so a point can never carry factors inconsistent
/// with its axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Encoder cores per VCU (shipped: 10).
    pub encoder_cores: usize,
    /// Decoder cores per VCU (shipped: 3).
    pub decoder_cores: usize,
    /// Raw DRAM bandwidth in GiB/s (shipped: 36.0 = 4 channels).
    pub dram_raw_gib_s: f64,
    /// Reference-store SRAM per encoder core, pixels (shipped: 147,456).
    pub refstore_pixels: usize,
    /// Motion-search DRAM traffic relative to the shipped store
    /// (derived from an LRU [`RefStore`] probe; 1.0 at shipped).
    traffic_factor: f64,
    /// Pipeline throughput relative to shipped once DMA slows under
    /// bandwidth pressure (derived from [`PipelineSim`]; 1.0 at
    /// shipped).
    pipeline_eff: f64,
}

impl Default for DesignPoint {
    fn default() -> Self {
        Self::shipped()
    }
}

/// DRAM bytes the traffic probe reads through a store of `pixels`.
fn probe_traffic_bytes(pixels: usize) -> u64 {
    let (w, h, tile, mb, range) = PROBE_FRAME;
    let mut store = RefStore::new(pixels);
    simulate_frame_search(&mut store, w, h, tile, mb, range);
    store.dram_bytes_read
}

/// Probe traffic of the shipped store, computed once.
fn shipped_traffic_bytes() -> u64 {
    static BYTES: OnceLock<u64> = OnceLock::new();
    *BYTES.get_or_init(|| probe_traffic_bytes(STORE_PIXELS))
}

/// Pipeline relative throughput at a given DMA slowdown, production
/// FIFO depth. The shipped baseline (slowdown 1.0) is cached.
fn pipeline_throughput(dma_slowdown: f64) -> f64 {
    PipelineSim::with_dma_pressure(PIPE_FIFO_DEPTH, PIPE_VARIABILITY, dma_slowdown)
        .relative_throughput(PIPE_BLOCKS)
}

fn shipped_pipeline_throughput() -> f64 {
    static EFF: OnceLock<f64> = OnceLock::new();
    *EFF.get_or_init(|| pipeline_throughput(1.0))
}

impl DesignPoint {
    /// The production VCU: 10 encoder cores, 3 decoder cores, 4 LPDDR4
    /// channels (36 GiB/s), a 144K-pixel reference store per core.
    pub fn shipped() -> Self {
        DesignPoint {
            encoder_cores: calib::ENCODER_CORES_PER_VCU,
            decoder_cores: calib::DECODER_CORES_PER_VCU,
            dram_raw_gib_s: dram::RAW_GIB_S,
            refstore_pixels: STORE_PIXELS,
            traffic_factor: 1.0,
            pipeline_eff: 1.0,
        }
    }

    /// A candidate design. Derives the reference-store traffic factor
    /// (one LRU probe per distinct store size) and the
    /// pipeline-under-pressure factor; both are exactly 1.0 when the
    /// corresponding axis matches the shipped value.
    pub fn new(
        encoder_cores: usize,
        decoder_cores: usize,
        dram_raw_gib_s: f64,
        refstore_pixels: usize,
    ) -> Self {
        assert!(encoder_cores >= 1, "at least one encoder core");
        assert!(decoder_cores >= 1, "at least one decoder core");
        assert!(
            dram_raw_gib_s > 0.0 && dram_raw_gib_s.is_finite(),
            "DRAM bandwidth must be positive and finite, got {dram_raw_gib_s}"
        );
        let traffic_factor = if refstore_pixels == STORE_PIXELS {
            1.0
        } else {
            probe_traffic_bytes(refstore_pixels) as f64 / shipped_traffic_bytes() as f64
        };
        let mut point = DesignPoint {
            encoder_cores,
            decoder_cores,
            dram_raw_gib_s,
            refstore_pixels,
            traffic_factor,
            pipeline_eff: 1.0,
        };
        // DMA slows in proportion to how far this design's §3.3.1
        // pressure exceeds the shipped envelope; prefetch hides it
        // entirely below that (the calib::stage_cycles::DMA comment).
        let slowdown = point.dma_slowdown();
        if slowdown > 1.0 {
            point.pipeline_eff =
                (pipeline_throughput(slowdown) / shipped_pipeline_throughput()).min(1.0);
        }
        point
    }

    /// Compact display label, e.g. `10e3d36G144K`.
    pub fn label(&self) -> String {
        format!(
            "{}e{}d{:.0}G{}K",
            self.encoder_cores,
            self.decoder_cores,
            self.dram_raw_gib_s,
            self.refstore_pixels / 1024
        )
    }

    /// True if this point has the shipped axes.
    pub fn is_shipped(&self) -> bool {
        *self == Self::shipped()
    }

    /// Motion-search DRAM traffic multiplier vs the shipped store.
    pub fn refstore_traffic_factor(&self) -> f64 {
        self.traffic_factor
    }

    /// Worst-case DRAM demand in GiB/s (the §3.3.1 envelope): every
    /// encoder core streaming a 2160p60 worst case (scaled by this
    /// store's traffic factor) plus every decoder core at 2.2 GiB/s.
    pub fn dram_demand_gib_s(&self, refcomp: bool) -> f64 {
        let enc_anchor = if refcomp {
            dram::ENCODE_2160P60_REFCOMP_GIB_S
        } else {
            dram::ENCODE_2160P60_GIB_S
        };
        self.encoder_cores as f64 * enc_anchor * self.traffic_factor
            + self.decoder_cores as f64 * dram::DECODE_2160P60_GIB_S
    }

    /// Worst-case demand over usable bandwidth. The shipped point sits
    /// just under 1.0 with reference compression on — the paper sized
    /// four channels to exactly this envelope.
    pub fn bandwidth_pressure(&self, refcomp: bool) -> f64 {
        self.dram_demand_gib_s(refcomp) / (self.dram_raw_gib_s * dram::EFFICIENCY)
    }

    /// How much slower each DMA transfer runs than on the shipped
    /// design (≥ 1; exactly 1 when pressure is at or below shipped).
    fn dma_slowdown(&self) -> f64 {
        (self.bandwidth_pressure(true) / Self::shipped().bandwidth_pressure(true)).max(1.0)
    }

    /// Chip-level memory stall derate in (0, 1]: when this design's
    /// worst-case envelope exceeds the shipped pressure the calibrated
    /// `SYSTEM_DERATE` already absorbs, cross-stream contention eats
    /// sustained throughput proportionally. Extra bandwidth beyond the
    /// envelope buys nothing (exactly the §3.3.1 sizing argument).
    pub fn mem_stall_factor(&self, refcomp: bool) -> f64 {
        let shipped = Self::shipped().bandwidth_pressure(refcomp);
        (shipped / self.bandwidth_pressure(refcomp)).min(1.0)
    }

    /// Closed-form single-core one-pass rate in Mpix/s for this design:
    /// the Figure 4 bottleneck stage with DMA under pressure, scaled by
    /// the FIFO-decoupled pipeline's efficiency relative to shipped.
    pub fn core_rate_mpix_s(&self, profile: Profile) -> f64 {
        let dma = stage_cycles::DMA as f64 * self.dma_slowdown();
        let bottleneck = (stage_cycles::MOTION_RDO as f64)
            .max(stage_cycles::ENTROPY as f64)
            .max(stage_cycles::LOOPFILTER as f64)
            .max(dma);
        let base = calib::CORE_CLOCK_HZ / bottleneck * 256.0 / 1e6;
        let rate = match profile {
            Profile::H264Sim => base,
            Profile::Vp9Sim => base * calib::VP9_HW_EFFICIENCY,
        };
        rate * self.pipeline_eff
    }

    /// LPDDR4 channels needed for this bandwidth (9 GiB/s each).
    pub fn dram_channels(&self) -> usize {
        (self.dram_raw_gib_s / DRAM_CHANNEL_GIB_S).ceil() as usize
    }

    /// Die area in mm².
    pub fn silicon_area_mm2(&self) -> f64 {
        let refstore_frac = self.refstore_pixels as f64 / STORE_PIXELS as f64;
        area::BASE_MM2
            + self.encoder_cores as f64 * area::ENCODER_CORE_MM2
            + self.decoder_cores as f64 * area::DECODER_CORE_MM2
            + self.encoder_cores as f64 * refstore_frac * area::REFSTORE_MM2
            + self.dram_channels() as f64 * area::DRAM_CHANNEL_MM2
    }

    /// Die cost in dollars: linear in area, times a Poisson-yield
    /// roll-off that makes large dies superlinearly expensive.
    pub fn die_cost_usd(&self) -> f64 {
        let area = self.silicon_area_mm2();
        let shipped_area = Self::shipped().silicon_area_mm2();
        cost::SHIPPED_DIE_USD
            * (area / shipped_area)
            * ((area - shipped_area) / cost::YIELD_AREA_MM2).exp()
    }

    /// Card (2 VCUs) capital cost in dollars. Exactly $2,200 at the
    /// shipped point — the constant `vcu-cluster::tco` uses.
    pub fn card_capex_usd(&self) -> f64 {
        cost::CARD_BOARD_USD
            + calib::VCUS_PER_CARD as f64 * self.die_cost_usd()
            + calib::VCUS_PER_CARD as f64 * self.dram_channels() as f64 * cost::DRAM_CHANNEL_USD
    }

    /// Active power of one VCU in watts.
    pub fn vcu_power_w(&self) -> f64 {
        power::BASE_W
            + self.encoder_cores as f64 * power::ENCODER_CORE_W
            + self.decoder_cores as f64 * power::DECODER_CORE_W
            + self.dram_channels() as f64 * power::DRAM_CHANNEL_W
    }

    /// Active power of one card (2 VCUs) in watts. Exactly 100 W at
    /// the shipped point — `calib::VCU_CARD_POWER_W`.
    pub fn card_power_w(&self) -> f64 {
        calib::VCUS_PER_CARD as f64 * self.vcu_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_reproduces_production_constants() {
        let s = DesignPoint::shipped();
        assert!(s.is_shipped());
        assert_eq!(s.silicon_area_mm2(), 122.0);
        assert_eq!(s.die_cost_usd(), cost::SHIPPED_DIE_USD);
        // The exact card constants the TCO model prices VcuHost with.
        assert_eq!(s.card_capex_usd(), 2_200.0);
        assert_eq!(s.card_power_w(), calib::VCU_CARD_POWER_W);
        assert_eq!(s.dram_channels(), 4);
        // All derates are exactly 1 — the shipped point is the anchor.
        assert_eq!(s.refstore_traffic_factor(), 1.0);
        assert_eq!(s.mem_stall_factor(true), 1.0);
        assert_eq!(s.mem_stall_factor(false), 1.0);
    }

    #[test]
    fn new_with_shipped_axes_is_bitwise_shipped() {
        let built = DesignPoint::new(10, 3, 36.0, STORE_PIXELS);
        assert_eq!(built, DesignPoint::shipped());
        assert_eq!(
            built.core_rate_mpix_s(Profile::Vp9Sim),
            crate::encoder_core::core_rate_mpix_s(Profile::Vp9Sim),
            "design-aware core rate must equal the production closed form"
        );
    }

    #[test]
    fn shipped_sits_at_the_envelope_knee() {
        // §3.3.1: the envelope (~27 GiB/s typical demand) fits in four
        // channels' usable bandwidth, with little to spare.
        let p = DesignPoint::shipped().bandwidth_pressure(true);
        assert!((0.75..1.0).contains(&p), "shipped pressure {p}");
        // Without reference compression the same chip would be over
        // budget — the paper's argument for building refcomp at all.
        assert!(DesignPoint::shipped().bandwidth_pressure(false) > 1.0);
    }

    #[test]
    fn starved_bandwidth_derates_smoothly() {
        let half = DesignPoint::new(10, 3, 18.0, STORE_PIXELS);
        let stall = half.mem_stall_factor(true);
        assert!((0.3..0.8).contains(&stall), "stall {stall}");
        // Sustained rate scales with the stall; the per-core closed
        // form also feels DMA pressure once it exceeds the bottleneck.
        assert!(
            half.core_rate_mpix_s(Profile::H264Sim) <= {
                let s = DesignPoint::shipped();
                s.core_rate_mpix_s(Profile::H264Sim)
            }
        );
    }

    #[test]
    fn extra_bandwidth_buys_nothing_but_costs() {
        let fat = DesignPoint::new(10, 3, 54.0, STORE_PIXELS);
        let s = DesignPoint::shipped();
        assert_eq!(fat.mem_stall_factor(true), 1.0);
        assert_eq!(
            fat.core_rate_mpix_s(Profile::Vp9Sim),
            s.core_rate_mpix_s(Profile::Vp9Sim)
        );
        assert!(fat.card_capex_usd() > s.card_capex_usd());
        assert!(fat.card_power_w() > s.card_power_w());
    }

    #[test]
    fn smaller_refstore_raises_traffic_and_pressure() {
        let small = DesignPoint::new(10, 3, 36.0, STORE_PIXELS / 4);
        let big = DesignPoint::new(10, 3, 36.0, STORE_PIXELS * 2);
        assert!(
            small.refstore_traffic_factor() > 1.2,
            "quarter store traffic {}",
            small.refstore_traffic_factor()
        );
        assert!(big.refstore_traffic_factor() <= 1.0);
        assert!(small.bandwidth_pressure(true) > big.bandwidth_pressure(true));
        // More misses → more demand → deeper stall on the same DRAM.
        assert!(small.mem_stall_factor(true) < 1.0);
    }

    #[test]
    fn cost_model_is_monotone_in_every_axis() {
        let s = DesignPoint::shipped();
        for bigger in [
            DesignPoint::new(12, 3, 36.0, STORE_PIXELS),
            DesignPoint::new(10, 4, 36.0, STORE_PIXELS),
            DesignPoint::new(10, 3, 45.0, STORE_PIXELS),
            DesignPoint::new(10, 3, 36.0, STORE_PIXELS * 2),
        ] {
            assert!(
                bigger.silicon_area_mm2() > s.silicon_area_mm2(),
                "{}",
                bigger.label()
            );
            assert!(
                bigger.card_capex_usd() > s.card_capex_usd(),
                "{}",
                bigger.label()
            );
        }
    }

    #[test]
    fn yield_rolloff_makes_big_dies_superlinear() {
        let s = DesignPoint::shipped();
        let big = DesignPoint::new(20, 3, 36.0, STORE_PIXELS);
        let area_ratio = big.silicon_area_mm2() / s.silicon_area_mm2();
        let cost_ratio = big.die_cost_usd() / s.die_cost_usd();
        assert!(
            cost_ratio > area_ratio * 1.5,
            "yield roll-off too shallow: area ×{area_ratio:.2}, cost ×{cost_ratio:.2}"
        );
    }

    #[test]
    fn label_is_compact() {
        assert_eq!(DesignPoint::shipped().label(), "10e3d36G144K");
    }
}
