//! VCU fault model: health state machine, ECC accounting, golden
//! self-test, and output corruption.
//!
//! §4.4's failure-management machinery needs hardware that can actually
//! fail: a [`FaultyVcu`] tracks ECC error rates, can be silently
//! *corrupting* (the dangerous "fast but wrong" black-hole mode), and
//! supports the worker-attach golden transcode — a short deterministic
//! encode whose output checksum is compared against a known-good value,
//! "relying on the core's deterministic behavior".

use vcu_codec::{encode, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;

/// Health state of one VCU (§4.4: the VCU is the lowest level of fault
/// management; failed VCUs are disabled while the host stays in service).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// Producing corrupt output while still accepting work at full
    /// speed — the "black-holing" hazard (§4.4).
    SilentlyCorrupting,
    /// Disabled by fault management; takes no work.
    Disabled,
}

/// Fault/telemetry state of one VCU.
#[derive(Debug, Clone)]
pub struct FaultyVcu {
    state: HealthState,
    /// Correctable ECC errors observed.
    pub correctable_ecc: u64,
    /// Uncorrectable ECC errors observed.
    pub uncorrectable_ecc: u64,
    /// Telemetry: resets performed.
    pub resets: u64,
    /// Seed making this VCU's corruption pattern deterministic.
    corruption_seed: u64,
}

/// Correctable-ECC threshold that trips the repair flow (§4.4: "high
/// levels of correctable or uncorrectable faults will result in
/// disabling the VCU").
pub const CORRECTABLE_ECC_LIMIT: u64 = 1000;
/// Uncorrectable-ECC threshold.
pub const UNCORRECTABLE_ECC_LIMIT: u64 = 3;

impl FaultyVcu {
    /// A healthy VCU.
    pub fn new(seed: u64) -> Self {
        FaultyVcu {
            state: HealthState::Healthy,
            correctable_ecc: 0,
            uncorrectable_ecc: 0,
            resets: 0,
            corruption_seed: seed,
        }
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Injects a silent-corruption fault (e.g. a stuck SRAM bit that
    /// double-error-detect misses).
    pub fn inject_silent_corruption(&mut self) {
        if self.state == HealthState::Healthy {
            self.state = HealthState::SilentlyCorrupting;
        }
    }

    /// Records ECC events from telemetry; may disable the VCU.
    pub fn record_ecc(&mut self, correctable: u64, uncorrectable: u64) {
        self.correctable_ecc += correctable;
        self.uncorrectable_ecc += uncorrectable;
        if self.correctable_ecc >= CORRECTABLE_ECC_LIMIT
            || self.uncorrectable_ecc >= UNCORRECTABLE_ECC_LIMIT
        {
            self.state = HealthState::Disabled;
        }
    }

    /// Administratively disables the VCU (fault-management decision).
    pub fn disable(&mut self) {
        self.state = HealthState::Disabled;
    }

    /// Functional reset performed by a newly attached worker (§4.4).
    /// Resets clear transient state but not persistent silicon faults.
    pub fn functional_reset(&mut self) {
        self.resets += 1;
    }

    /// Whether the VCU accepts work.
    pub fn accepts_work(&self) -> bool {
        self.state != HealthState::Disabled
    }

    /// Passes encoded output through the (possibly faulty) hardware:
    /// a corrupting VCU deterministically flips bytes in the payload.
    pub fn taint(&self, mut payload: Vec<u8>) -> Vec<u8> {
        if self.state == HealthState::SilentlyCorrupting && !payload.is_empty() {
            // Deterministic corruption pattern derived from the seed.
            let step = (self.corruption_seed % 97 + 50) as usize;
            let mut i = (self.corruption_seed % 31) as usize;
            while i < payload.len() {
                payload[i] ^= 0x5A;
                i += step;
            }
        }
        payload
    }
}

/// The golden transcode: a short, deterministic hardware-toolset encode
/// of a fixed synthetic clip. Both the expected checksum and the check
/// itself use the real codec, so any corruption in the data path shows.
pub fn golden_transcode_bytes() -> Vec<u8> {
    let video = SynthSpec::new(Resolution::R144, 2, ContentClass::screen_content(), 0x601D)
        .generate();
    let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(32))
        .with_hardware(TuningLevel::MATURE);
    encode(&cfg, &video).expect("golden encode cannot fail").bytes
}

/// FNV-1a checksum of a byte stream (matches the container checksum
/// primitive).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Runs the golden self-test against a VCU: encodes the golden clip,
/// passes the result through the VCU's data path, and compares
/// checksums. Returns `true` if the VCU is clean.
pub fn golden_test(vcu: &FaultyVcu, expected: u64) -> bool {
    if !vcu.accepts_work() {
        return false;
    }
    let out = vcu.taint(golden_transcode_bytes());
    checksum(&out) == expected
}

/// Computes the expected golden checksum on known-good hardware.
pub fn golden_expected() -> u64 {
    checksum(&golden_transcode_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_vcu_passes_golden() {
        let vcu = FaultyVcu::new(7);
        assert!(golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn corrupting_vcu_fails_golden() {
        let mut vcu = FaultyVcu::new(7);
        vcu.inject_silent_corruption();
        assert_eq!(vcu.state(), HealthState::SilentlyCorrupting);
        assert!(vcu.accepts_work(), "black-hole VCUs still accept work");
        assert!(!golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn disabled_vcu_rejects_work() {
        let mut vcu = FaultyVcu::new(1);
        vcu.disable();
        assert!(!vcu.accepts_work());
        assert!(!golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn ecc_thresholds_disable() {
        let mut vcu = FaultyVcu::new(1);
        vcu.record_ecc(CORRECTABLE_ECC_LIMIT - 1, 0);
        assert!(vcu.accepts_work());
        vcu.record_ecc(1, 0);
        assert_eq!(vcu.state(), HealthState::Disabled);

        let mut vcu2 = FaultyVcu::new(2);
        vcu2.record_ecc(0, UNCORRECTABLE_ECC_LIMIT);
        assert_eq!(vcu2.state(), HealthState::Disabled);
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = FaultyVcu::new(99);
        let mut b = FaultyVcu::new(99);
        a.inject_silent_corruption();
        b.inject_silent_corruption();
        let payload = vec![1u8; 500];
        assert_eq!(a.taint(payload.clone()), b.taint(payload.clone()));
        assert_ne!(a.taint(payload.clone()), payload);
    }

    #[test]
    fn golden_transcode_is_stable() {
        // Same bytes every time — determinism is the whole point.
        assert_eq!(golden_expected(), golden_expected());
    }

    #[test]
    fn reset_does_not_heal_silicon() {
        let mut vcu = FaultyVcu::new(3);
        vcu.inject_silent_corruption();
        vcu.functional_reset();
        assert_eq!(vcu.state(), HealthState::SilentlyCorrupting);
        assert_eq!(vcu.resets, 1);
    }
}
