//! VCU fault model: health state machine, ECC accounting, golden
//! self-test, and output corruption.
//!
//! §4.4's failure-management machinery needs hardware that can actually
//! fail: a [`FaultyVcu`] tracks ECC error rates, can be silently
//! *corrupting* (the dangerous "fast but wrong" black-hole mode), and
//! supports the worker-attach golden transcode — a short deterministic
//! encode whose output checksum is compared against a known-good value,
//! "relying on the core's deterministic behavior".

use vcu_codec::{encode, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::Resolution;

/// Health state of one VCU (§4.4: the VCU is the lowest level of fault
/// management; failed VCUs are disabled while the host stays in service).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// Producing corrupt output while still accepting work at full
    /// speed — the "black-holing" hazard (§4.4).
    SilentlyCorrupting,
    /// Disabled by fault management; takes no work.
    Disabled,
}

/// Fault/telemetry state of one VCU.
#[derive(Debug, Clone)]
pub struct FaultyVcu {
    state: HealthState,
    /// Correctable ECC errors observed.
    pub correctable_ecc: u64,
    /// Uncorrectable ECC errors observed.
    pub uncorrectable_ecc: u64,
    /// Telemetry: resets performed.
    pub resets: u64,
    /// Seed making this VCU's corruption pattern deterministic.
    corruption_seed: u64,
    /// Firmware wedged: accepted jobs never complete (only a watchdog
    /// notices). Cleared by a functional reset.
    hung: bool,
    /// Cycle-cost multiplier for a degraded (slow) core; 1.0 = nominal.
    /// Survives resets — clock-gating faults live in silicon.
    slow_factor: f64,
    /// Firmware crash-loops: jobs abort partway and the core resets
    /// itself over and over. Cleared only by repair.
    crash_loop: bool,
}

/// Correctable-ECC threshold that trips the repair flow (§4.4: "high
/// levels of correctable or uncorrectable faults will result in
/// disabling the VCU").
pub const CORRECTABLE_ECC_LIMIT: u64 = 1000;
/// Uncorrectable-ECC threshold.
pub const UNCORRECTABLE_ECC_LIMIT: u64 = 3;

impl FaultyVcu {
    /// A healthy VCU.
    pub fn new(seed: u64) -> Self {
        FaultyVcu {
            state: HealthState::Healthy,
            correctable_ecc: 0,
            uncorrectable_ecc: 0,
            resets: 0,
            corruption_seed: seed,
            hung: false,
            slow_factor: 1.0,
            crash_loop: false,
        }
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Injects a silent-corruption fault (e.g. a stuck SRAM bit that
    /// double-error-detect misses).
    pub fn inject_silent_corruption(&mut self) {
        if self.state == HealthState::Healthy {
            self.state = HealthState::SilentlyCorrupting;
        }
    }

    /// Records ECC events from telemetry; may disable the VCU.
    pub fn record_ecc(&mut self, correctable: u64, uncorrectable: u64) {
        self.correctable_ecc += correctable;
        self.uncorrectable_ecc += uncorrectable;
        if self.correctable_ecc >= CORRECTABLE_ECC_LIMIT
            || self.uncorrectable_ecc >= UNCORRECTABLE_ECC_LIMIT
        {
            self.state = HealthState::Disabled;
        }
    }

    /// Administratively disables the VCU (fault-management decision).
    pub fn disable(&mut self) {
        self.state = HealthState::Disabled;
    }

    /// Functional reset performed by a newly attached worker (§4.4).
    /// Resets clear transient state but not persistent silicon faults:
    /// a firmware hang clears, silent corruption / slow cores /
    /// crash-loops do not.
    pub fn functional_reset(&mut self) {
        self.resets += 1;
        self.hung = false;
    }

    /// Whether the VCU accepts work.
    pub fn accepts_work(&self) -> bool {
        self.state != HealthState::Disabled
    }

    /// Injects a firmware hang: accepted jobs never complete until a
    /// functional reset clears the wedge.
    pub fn inject_hang(&mut self) {
        self.hung = true;
    }

    /// Whether the firmware is currently wedged.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Injects a slow-core fault: every job on this VCU costs
    /// `factor`× the nominal cycles (tail-latency degradation, §4.4).
    /// Factors below 1.0 are clamped to nominal.
    pub fn inject_slow(&mut self, factor: f64) {
        self.slow_factor = factor.max(1.0);
    }

    /// Current cycle-cost multiplier (1.0 when nominal).
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }

    /// Injects a crash-loop: firmware aborts jobs partway and resets
    /// itself repeatedly until repaired.
    pub fn inject_crash_loop(&mut self) {
        self.crash_loop = true;
    }

    /// Whether the firmware is crash-looping.
    pub fn is_crash_looping(&self) -> bool {
        self.crash_loop
    }

    /// Full repair (board swap / firmware reflash): clears every fault,
    /// including the persistent ones a functional reset cannot touch,
    /// and re-enables the VCU. ECC counters restart from zero on the
    /// fresh part.
    pub fn repair(&mut self) {
        self.state = HealthState::Healthy;
        self.correctable_ecc = 0;
        self.uncorrectable_ecc = 0;
        self.hung = false;
        self.slow_factor = 1.0;
        self.crash_loop = false;
    }

    /// Cheap periodic screening check against pre-computed golden
    /// bytes: passes the cached golden payload through this VCU's data
    /// path and compares checksums. Unlike [`golden_test`] this does
    /// not re-encode the golden clip, so a cluster can screen thousands
    /// of workers on a cadence. A hung or crash-looping VCU fails
    /// screening outright — the probe job would never return cleanly.
    pub fn screen(&self, golden: &[u8], expected: u64) -> bool {
        if !self.accepts_work() || self.hung || self.crash_loop {
            return false;
        }
        checksum(&self.taint(golden.to_vec())) == expected
    }

    /// Passes encoded output through the (possibly faulty) hardware:
    /// a corrupting VCU deterministically flips bytes in the payload.
    pub fn taint(&self, mut payload: Vec<u8>) -> Vec<u8> {
        if self.state == HealthState::SilentlyCorrupting && !payload.is_empty() {
            // Deterministic corruption pattern derived from the seed.
            let step = (self.corruption_seed % 97 + 50) as usize;
            let mut i = (self.corruption_seed % 31) as usize;
            while i < payload.len() {
                payload[i] ^= 0x5A;
                i += step;
            }
        }
        payload
    }
}

/// The golden transcode: a short, deterministic hardware-toolset encode
/// of a fixed synthetic clip. Both the expected checksum and the check
/// itself use the real codec, so any corruption in the data path shows.
pub fn golden_transcode_bytes() -> Vec<u8> {
    let video =
        SynthSpec::new(Resolution::R144, 2, ContentClass::screen_content(), 0x601D).generate();
    let cfg =
        EncoderConfig::const_qp(Profile::H264Sim, Qp::new(32)).with_hardware(TuningLevel::MATURE);
    encode(&cfg, &video)
        .expect("golden encode cannot fail")
        .bytes
}

/// FNV-1a checksum of a byte stream (matches the container checksum
/// primitive).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Runs the golden self-test against a VCU: encodes the golden clip,
/// passes the result through the VCU's data path, and compares
/// checksums. Returns `true` if the VCU is clean.
pub fn golden_test(vcu: &FaultyVcu, expected: u64) -> bool {
    if !vcu.accepts_work() {
        return false;
    }
    let out = vcu.taint(golden_transcode_bytes());
    checksum(&out) == expected
}

/// Computes the expected golden checksum on known-good hardware.
pub fn golden_expected() -> u64 {
    checksum(&golden_transcode_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_vcu_passes_golden() {
        let vcu = FaultyVcu::new(7);
        assert!(golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn corrupting_vcu_fails_golden() {
        let mut vcu = FaultyVcu::new(7);
        vcu.inject_silent_corruption();
        assert_eq!(vcu.state(), HealthState::SilentlyCorrupting);
        assert!(vcu.accepts_work(), "black-hole VCUs still accept work");
        assert!(!golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn disabled_vcu_rejects_work() {
        let mut vcu = FaultyVcu::new(1);
        vcu.disable();
        assert!(!vcu.accepts_work());
        assert!(!golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn ecc_thresholds_disable() {
        let mut vcu = FaultyVcu::new(1);
        vcu.record_ecc(CORRECTABLE_ECC_LIMIT - 1, 0);
        assert!(vcu.accepts_work());
        vcu.record_ecc(1, 0);
        assert_eq!(vcu.state(), HealthState::Disabled);

        let mut vcu2 = FaultyVcu::new(2);
        vcu2.record_ecc(0, UNCORRECTABLE_ECC_LIMIT);
        assert_eq!(vcu2.state(), HealthState::Disabled);
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = FaultyVcu::new(99);
        let mut b = FaultyVcu::new(99);
        a.inject_silent_corruption();
        b.inject_silent_corruption();
        let payload = vec![1u8; 500];
        assert_eq!(a.taint(payload.clone()), b.taint(payload.clone()));
        assert_ne!(a.taint(payload.clone()), payload);
    }

    #[test]
    fn golden_transcode_is_stable() {
        // Same bytes every time — determinism is the whole point.
        assert_eq!(golden_expected(), golden_expected());
    }

    #[test]
    fn reset_does_not_heal_silicon() {
        let mut vcu = FaultyVcu::new(3);
        vcu.inject_silent_corruption();
        vcu.functional_reset();
        assert_eq!(vcu.state(), HealthState::SilentlyCorrupting);
        assert_eq!(vcu.resets, 1);
    }

    #[test]
    fn reset_clears_hang_but_not_slow_or_crash_loop() {
        let mut vcu = FaultyVcu::new(4);
        vcu.inject_hang();
        vcu.inject_slow(3.0);
        vcu.inject_crash_loop();
        assert!(vcu.is_hung() && vcu.is_crash_looping());
        vcu.functional_reset();
        assert!(!vcu.is_hung(), "reset unwedges firmware");
        assert_eq!(vcu.slow_factor(), 3.0, "slow core survives reset");
        assert!(vcu.is_crash_looping(), "crash-loop survives reset");
    }

    #[test]
    fn repair_heals_everything() {
        let mut vcu = FaultyVcu::new(5);
        vcu.inject_silent_corruption();
        vcu.inject_hang();
        vcu.inject_slow(2.5);
        vcu.inject_crash_loop();
        vcu.record_ecc(CORRECTABLE_ECC_LIMIT, UNCORRECTABLE_ECC_LIMIT);
        assert!(!vcu.accepts_work());
        vcu.repair();
        assert_eq!(vcu.state(), HealthState::Healthy);
        assert!(vcu.accepts_work());
        assert!(!vcu.is_hung() && !vcu.is_crash_looping());
        assert_eq!(vcu.slow_factor(), 1.0);
        assert_eq!(vcu.correctable_ecc, 0);
        assert_eq!(vcu.uncorrectable_ecc, 0);
        assert!(golden_test(&vcu, golden_expected()));
    }

    #[test]
    fn slow_factor_clamps_to_nominal() {
        let mut vcu = FaultyVcu::new(6);
        vcu.inject_slow(0.25);
        assert_eq!(vcu.slow_factor(), 1.0, "a fault cannot speed the core up");
    }

    #[test]
    fn screen_matches_golden_test_without_reencoding() {
        let golden = golden_transcode_bytes();
        let expected = checksum(&golden);
        let healthy = FaultyVcu::new(7);
        assert!(healthy.screen(&golden, expected));

        let mut corrupting = FaultyVcu::new(7);
        corrupting.inject_silent_corruption();
        assert!(!corrupting.screen(&golden, expected));

        let mut hung = FaultyVcu::new(8);
        hung.inject_hang();
        assert!(
            !hung.screen(&golden, expected),
            "probe never returns from a hung core"
        );

        let mut looping = FaultyVcu::new(9);
        looping.inject_crash_loop();
        assert!(!looping.screen(&golden, expected));

        let mut slow = FaultyVcu::new(10);
        slow.inject_slow(4.0);
        assert!(
            slow.screen(&golden, expected),
            "slow output is still correct output"
        );
    }
}
