//! Reference-store SRAM model.
//!
//! §3.2: "a key element of our design is an SRAM array reference store
//! that holds the motion search window. A reference store of 144K
//! pixels can support each pixel in a tile column to be loaded exactly
//! once during that column's processing … The reference store supports
//! LRU eviction." This module models that cache: motion-search accesses
//! against reference frames either hit the store or cost DRAM reads,
//! and the ablation bench compares DRAM traffic with and without it.

use std::collections::VecDeque;

/// Reference-store geometry (paper footnote 4): 768 × 192 pixels =
/// 144K pixels, covering a 512-pixel tile column plus a ±128 horizontal
/// search margin, and a 64-pixel macroblock plus two 64-pixel vertical
/// windows.
pub const STORE_WIDTH: usize = 768;
/// Store height in pixels.
pub const STORE_HEIGHT: usize = 192;
/// Total capacity in pixels.
pub const STORE_PIXELS: usize = STORE_WIDTH * STORE_HEIGHT;

/// Cache line granularity: one 64×64 superblock row strip of 64×16
/// pixels (the H.264 raster-store configuration of footnote 5).
const LINE_W: usize = 64;
const LINE_H: usize = 16;
/// Pixels per cache line.
pub const LINE_PIXELS: usize = LINE_W * LINE_H;

/// A line address within the reference frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LineAddr {
    lx: usize,
    ly: usize,
}

/// LRU reference store: tracks which reference-frame lines are
/// resident and meters DRAM traffic for misses.
#[derive(Debug, Clone)]
pub struct RefStore {
    /// Capacity in lines.
    capacity_lines: usize,
    /// Resident lines in LRU order (front = least recent).
    resident: VecDeque<LineAddr>,
    /// DRAM bytes read due to misses.
    pub dram_bytes_read: u64,
    /// Access counts.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
}

impl Default for RefStore {
    fn default() -> Self {
        Self::new(STORE_PIXELS)
    }
}

impl RefStore {
    /// Creates a store with a pixel capacity (use [`STORE_PIXELS`] for
    /// the production geometry; 0 disables caching entirely).
    pub fn new(capacity_pixels: usize) -> Self {
        RefStore {
            capacity_lines: capacity_pixels / LINE_PIXELS,
            resident: VecDeque::new(),
            dram_bytes_read: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches the window of reference pixels needed to search a
    /// macroblock at `(x, y)` with a `±range` search window; counts
    /// hits/misses and DRAM traffic per missed line.
    pub fn access_search_window(&mut self, x: usize, y: usize, mb: usize, range: usize) {
        let x0 = x.saturating_sub(range);
        let y0 = y.saturating_sub(range);
        let x1 = x + mb + range;
        let y1 = y + mb + range;
        let mut ly = y0 / LINE_H;
        while ly * LINE_H < y1 {
            let mut lx = x0 / LINE_W;
            while lx * LINE_W < x1 {
                self.touch(LineAddr { lx, ly });
                lx += 1;
            }
            ly += 1;
        }
    }

    fn touch(&mut self, addr: LineAddr) {
        if self.capacity_lines == 0 {
            self.misses += 1;
            self.dram_bytes_read += LINE_PIXELS as u64;
            return;
        }
        if let Some(pos) = self.resident.iter().position(|&a| a == addr) {
            self.hits += 1;
            // Move to most-recent.
            let a = self.resident.remove(pos).expect("position valid");
            self.resident.push_back(a);
            return;
        }
        self.misses += 1;
        self.dram_bytes_read += LINE_PIXELS as u64;
        if self.resident.len() >= self.capacity_lines {
            self.resident.pop_front();
        }
        self.resident.push_back(addr);
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Simulates the motion search of one frame of `width x height` luma
/// against one reference, processed in tile columns of `tile_w` pixels
/// (§3.2's processing order), returning the store after the run.
pub fn simulate_frame_search(
    store: &mut RefStore,
    width: usize,
    height: usize,
    tile_w: usize,
    mb: usize,
    range: usize,
) {
    let mut col = 0;
    while col < width {
        let col_end = (col + tile_w).min(width);
        let mut y = 0;
        while y < height {
            let mut x = col;
            while x < col_end {
                store.access_search_window(x, y, mb, range);
                x += mb;
            }
            y += mb;
        }
        col += tile_w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_144k() {
        assert_eq!(STORE_PIXELS, 147_456); // 144K pixels (K = 1024)
    }

    #[test]
    fn store_achieves_high_hit_rate_in_column_order() {
        let mut store = RefStore::default();
        simulate_frame_search(&mut store, 1280, 720, 512, 64, 64);
        // §3.2: each pixel loaded about once per column — overlapping
        // search windows mean most accesses hit.
        assert!(store.hit_rate() > 0.8, "hit rate {}", store.hit_rate());
    }

    #[test]
    fn no_store_means_dram_per_access() {
        let mut none = RefStore::new(0);
        let mut full = RefStore::default();
        simulate_frame_search(&mut none, 640, 360, 512, 64, 64);
        simulate_frame_search(&mut full, 640, 360, 512, 64, 64);
        assert!(
            none.dram_bytes_read > full.dram_bytes_read * 4,
            "store should slash DRAM reads: {} vs {}",
            none.dram_bytes_read,
            full.dram_bytes_read
        );
    }

    #[test]
    fn dram_reads_bounded_by_twice_frame() {
        // §3.2: "a maximum of twice during the frame's processing".
        let (w, h) = (1280usize, 720usize);
        let mut store = RefStore::default();
        simulate_frame_search(&mut store, w, h, 512, 64, 64);
        let frame_pixels = (w * h) as u64;
        // Search margins reach past frame edges, so allow the bound on
        // the padded frame.
        let padded = ((w + 128) * (h + 128)) as u64;
        assert!(
            store.dram_bytes_read <= padded * 2,
            "reads {} exceed 2x padded frame {}",
            store.dram_bytes_read,
            padded * 2
        );
        assert!(
            store.dram_bytes_read >= frame_pixels,
            "must read frame at least once"
        );
    }

    #[test]
    fn smaller_store_lower_hit_rate() {
        let mut small = RefStore::new(STORE_PIXELS / 8);
        let mut full = RefStore::default();
        simulate_frame_search(&mut small, 1280, 720, 512, 64, 64);
        simulate_frame_search(&mut full, 1280, 720, 512, 64, 64);
        assert!(small.hit_rate() < full.hit_rate());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut store = RefStore::new(LINE_PIXELS * 2); // 2 lines
        store.access_search_window(0, 0, 8, 0); // line (0,0)
        store.access_search_window(64, 0, 8, 0); // line (1,0)
        store.access_search_window(0, 0, 8, 0); // hit, refreshes (0,0)
        store.access_search_window(128, 0, 8, 0); // evicts (1,0)
        let misses_before = store.misses;
        store.access_search_window(0, 0, 8, 0); // still resident
        assert_eq!(store.misses, misses_before);
        store.access_search_window(64, 0, 8, 0); // was evicted: miss
        assert_eq!(store.misses, misses_before + 1);
    }
}
