//! Functional + timing model of the Video Coding Unit (VCU) ASIC and
//! the baseline systems it is compared against.
//!
//! Two complementary layers:
//!
//! - **Functional**: the real `vcu-codec` encoder with the hardware
//!   toolset produces real bitstreams, and [`faults`] can corrupt them
//!   the way failing silicon would — this is what quality experiments
//!   and golden-test screening run on.
//! - **Timing**: closed-form capacity models calibrated once in
//!   [`calib`] from numbers the paper states — encoder-core pipeline
//!   ([`encoder_core`]), DRAM bandwidth/footprints ([`dram`]),
//!   whole-chip capacity and the §3.3.3 millicore resource mapping
//!   ([`vcu`]), firmware queue dispatch ([`firmware`]), and the
//!   Table-1 contender systems ([`devices`]).
//!
//! The timing layer is parameterized by a [`DesignPoint`] (encoder
//! cores × decoder cores × DRAM bandwidth × reference-store SRAM,
//! plus a cost/area/power model), so `vcu-dse` can sweep the design
//! space while the shipped configuration stays bit-identical.
pub mod calib;
pub mod design;
pub mod devices;
pub mod dram;
pub mod encoder_core;
pub mod faults;
pub mod firmware;
pub mod job;
pub mod refstore;
pub mod vcu;

pub use design::DesignPoint;
pub use devices::System;
pub use job::{OutputVariant, TranscodeJob};
pub use vcu::{ResourceDemand, VcuModel, WorkloadShape};
