//! Whole-VCU capacity model and scheduler resource mapping.
//!
//! Combines the encoder-core, decoder-core and DRAM models into the
//! per-VCU numbers the rest of the system uses: sustained Mpix/s by
//! workload shape, and the millicore resource demands (§3.3.3) the
//! cluster's bin-packing scheduler packs against.

use crate::calib::{self, millicores};
use crate::design::DesignPoint;
use crate::dram::{job_footprint_mib, DramModel};
use crate::job::TranscodeJob;
use vcu_codec::Profile;

/// Workload shape for capacity queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// Single-output, offline two-pass (Table 1's benchmark shape):
    /// every output frame is encoded twice at output resolution.
    SotTwoPass,
    /// Multiple-output two-pass: the first pass runs once on the
    /// *input* and is shared across the ladder (§3.1), so per output
    /// pixel the encoder does `1 + input/output ≈ 1.55` passes instead
    /// of 2 — the structural source of the paper's 1.2–1.3× MOT win.
    MotTwoPass,
    /// One-pass low latency (live, gaming).
    OnePass,
}

impl WorkloadShape {
    /// Encoder passes per output pixel for this shape.
    pub fn passes_per_output_pixel(self) -> f64 {
        match self {
            WorkloadShape::SotTwoPass => 2.0,
            WorkloadShape::MotTwoPass => {
                // input/output pixel ratio for a full ladder ≈ 0.55.
                1.0 + 0.55
            }
            WorkloadShape::OnePass => 1.0,
        }
    }
}

/// Static capacity model of one VCU.
#[derive(Debug, Clone)]
pub struct VcuModel {
    /// Reference-frame compression enabled (ablation knob).
    pub refcomp: bool,
    /// Stateless core dispatch (ablation knob): stateless cores let
    /// firmware run any stream on any idle core; sticky cores strand
    /// capacity when their stream stalls (§3.2 "Control and Stateless
    /// Operation").
    pub stateless: bool,
    /// Silicon configuration. Defaults to [`DesignPoint::shipped`],
    /// which reproduces the production model bit-for-bit; the DSE
    /// driver sweeps candidates here.
    pub design: DesignPoint,
}

impl Default for VcuModel {
    fn default() -> Self {
        VcuModel {
            refcomp: true,
            stateless: true,
            design: DesignPoint::shipped(),
        }
    }
}

impl VcuModel {
    /// Production configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A production-featured VCU built on a candidate design point.
    pub fn for_design(design: DesignPoint) -> Self {
        VcuModel {
            design,
            ..Self::default()
        }
    }

    /// Peak silicon encode rate (one-pass) in Mpix/s.
    pub fn peak_encode_mpix_s(&self, profile: Profile) -> f64 {
        self.design.encoder_cores as f64 * self.design.core_rate_mpix_s(profile)
    }

    /// Hardware decode capacity in Mpix/s (input pixels). Decoder
    /// cores share the DRAM bus, so a bandwidth-starved design stalls
    /// them by the same envelope factor as the encoders.
    pub fn decode_capacity_mpix_s(&self) -> f64 {
        self.design.decoder_cores as f64
            * calib::DECODER_CORE_MPIX_S
            * self.design.mem_stall_factor(self.refcomp)
    }

    /// Sustained system-level encode rate in Mpix/s of output for a
    /// workload shape — includes the pass structure, the loaded-system
    /// derate, the stateless-dispatch factor, and (off the shipped
    /// design point) the chip-level memory stall.
    pub fn sustained_mpix_s(&self, profile: Profile, shape: WorkloadShape) -> f64 {
        let stateless_factor = if self.stateless { 1.0 } else { 0.72 };
        self.peak_encode_mpix_s(profile)
            * calib::SYSTEM_DERATE
            * stateless_factor
            * self.design.mem_stall_factor(self.refcomp)
            / shape.passes_per_output_pixel()
    }

    /// Millicore demand of a job (the §3.3.3 resource mapping): how
    /// much of this VCU's decode/encode capacity the job consumes,
    /// expressed in the scheduler's units (3,000 millidecode / 10,000
    /// milliencode per VCU).
    pub fn job_demand(&self, job: &TranscodeJob) -> ResourceDemand {
        let profile = job.outputs[0].profile;
        let shape = match (job.is_mot(), job.two_pass) {
            (true, true) => WorkloadShape::MotTwoPass,
            (false, true) => WorkloadShape::SotTwoPass,
            (_, false) => WorkloadShape::OnePass,
        };
        // Real-time factor: the job must process duration_s of video in
        // duration_s (live) — batch jobs consume capacity at full rate
        // while running, so demand is the fraction of the VCU they use.
        let encode_frac = job.output_mpix_s() / self.sustained_mpix_s(profile, shape);
        let decode_frac = job.input_mpix_s() / self.decode_capacity_mpix_s();
        ResourceDemand {
            millidecode: (decode_frac * millicores::DECODE_PER_VCU as f64).ceil() as u32,
            milliencode: (encode_frac * millicores::ENCODE_PER_VCU as f64).ceil() as u32,
            dram_mib: job_footprint_mib(job).ceil() as u32,
            host_mcpu: (job.output_mpix_s() * 0.15).ceil() as u32,
        }
    }

    /// A DRAM model matching this VCU's configuration.
    pub fn dram(&self) -> DramModel {
        DramModel::with_bandwidth(self.refcomp, self.design.dram_raw_gib_s)
    }
}

/// Scheduler-visible resource demand of one transcode step, in the
/// named scalar dimensions of §3.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceDemand {
    /// Milli decoder cores (3,000 per VCU).
    pub millidecode: u32,
    /// Milli encoder cores (10,000 per VCU).
    pub milliencode: u32,
    /// VCU DRAM megabytes.
    pub dram_mib: u32,
    /// Host milli-CPU (synthetic dimension; §3.3.3).
    pub host_mcpu: u32,
}

impl ResourceDemand {
    /// The all-zero demand: identity for [`ResourceDemand::plus`] and
    /// [`ResourceDemand::component_max`], and the value a non-accepting
    /// worker contributes to an availability index.
    pub const ZERO: ResourceDemand = ResourceDemand {
        millidecode: 0,
        milliencode: 0,
        dram_mib: 0,
        host_mcpu: 0,
    };

    /// Component-wise maximum. The scheduler's segment-tree
    /// availability index aggregates worker capacities with this: a
    /// demand that does not fit a subtree's component-wise max cannot
    /// fit any worker in that subtree, which is what lets `place_from`
    /// prune whole subtrees instead of scanning workers one by one.
    pub fn component_max(self, other: ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            millidecode: self.millidecode.max(other.millidecode),
            milliencode: self.milliencode.max(other.milliencode),
            dram_mib: self.dram_mib.max(other.dram_mib),
            host_mcpu: self.host_mcpu.max(other.host_mcpu),
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            millidecode: self.millidecode + other.millidecode,
            milliencode: self.milliencode + other.milliencode,
            dram_mib: self.dram_mib + other.dram_mib,
            host_mcpu: self.host_mcpu + other.host_mcpu,
        }
    }

    /// True if `self` fits within `capacity`.
    pub fn fits_in(self, capacity: ResourceDemand) -> bool {
        self.millidecode <= capacity.millidecode
            && self.milliencode <= capacity.milliencode
            && self.dram_mib <= capacity.dram_mib
            && self.host_mcpu <= capacity.host_mcpu
    }

    /// Component-wise saturating subtraction.
    pub fn minus(self, other: ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            millidecode: self.millidecode.saturating_sub(other.millidecode),
            milliencode: self.milliencode.saturating_sub(other.milliencode),
            dram_mib: self.dram_mib.saturating_sub(other.dram_mib),
            host_mcpu: self.host_mcpu.saturating_sub(other.host_mcpu),
        }
    }

    /// The full capacity of one VCU worker (plus a host CPU share).
    pub fn vcu_capacity() -> ResourceDemand {
        ResourceDemand {
            millidecode: millicores::DECODE_PER_VCU,
            milliencode: millicores::ENCODE_PER_VCU,
            dram_mib: (calib::dram::CAPACITY_GIB * 1024.0) as u32,
            host_mcpu: 5_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_media::Resolution;

    #[test]
    fn sot_two_pass_lands_near_table1() {
        // Table 1: 14,932 Mpix/s for 20 VCUs → ~747 per VCU (H.264).
        let v = VcuModel::new();
        let per_vcu = v.sustained_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass);
        assert!(
            (650.0..850.0).contains(&per_vcu),
            "per-VCU SOT rate {per_vcu}"
        );
        let vp9 = v.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::SotTwoPass);
        assert!(vp9 > per_vcu, "VP9 hardware rate should be ≥ H.264");
    }

    #[test]
    fn mot_is_1_2_to_1_3x_sot() {
        let v = VcuModel::new();
        let sot = v.sustained_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass);
        let mot = v.sustained_mpix_s(Profile::H264Sim, WorkloadShape::MotTwoPass);
        let ratio = mot / sot;
        assert!((1.15..1.35).contains(&ratio), "MOT/SOT ratio {ratio}");
    }

    #[test]
    fn one_pass_doubles_two_pass() {
        let v = VcuModel::new();
        let one = v.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::OnePass);
        let two = v.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::SotTwoPass);
        assert!((one / two - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sticky_cores_strand_capacity() {
        let sticky = VcuModel {
            stateless: false,
            ..VcuModel::new()
        };
        let stateless = VcuModel::new();
        assert!(
            sticky.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::MotTwoPass)
                < stateless.sustained_mpix_s(Profile::Vp9Sim, WorkloadShape::MotTwoPass) * 0.8
        );
    }

    #[test]
    fn single_vcu_handles_1080p_mot_in_realtime() {
        // §4.5: "today, a single VCU can handle this MOT in real time".
        let v = VcuModel::new();
        let job =
            TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 2.0).low_latency_two_pass();
        let d = v.job_demand(&job);
        assert!(
            d.fits_in(ResourceDemand::vcu_capacity()),
            "1080p MOT demand {d:?} exceeds one VCU"
        );
    }

    #[test]
    fn demand_scales_with_resolution() {
        let v = VcuModel::new();
        let small = v.job_demand(&TranscodeJob::mot(
            Resolution::R360,
            Profile::Vp9Sim,
            30.0,
            5.0,
        ));
        let big = v.job_demand(&TranscodeJob::mot(
            Resolution::R2160,
            Profile::Vp9Sim,
            30.0,
            5.0,
        ));
        assert!(big.milliencode > small.milliencode * 10);
        assert!(big.millidecode > small.millidecode);
    }

    #[test]
    fn demand_arithmetic() {
        let a = ResourceDemand {
            millidecode: 100,
            milliencode: 200,
            dram_mib: 50,
            host_mcpu: 10,
        };
        let cap = ResourceDemand::vcu_capacity();
        assert!(a.fits_in(cap));
        assert!(!cap.plus(a).fits_in(cap));
        assert_eq!(cap.minus(cap), ResourceDemand::default());
    }

    #[test]
    fn component_max_is_per_dimension() {
        let a = ResourceDemand {
            millidecode: 100,
            milliencode: 5,
            dram_mib: 50,
            host_mcpu: 1,
        };
        let b = ResourceDemand {
            millidecode: 2,
            milliencode: 300,
            dram_mib: 50,
            host_mcpu: 9,
        };
        let m = a.component_max(b);
        assert_eq!(m.millidecode, 100);
        assert_eq!(m.milliencode, 300);
        assert_eq!(m.dram_mib, 50);
        assert_eq!(m.host_mcpu, 9);
        // ZERO is the identity, and the max dominates both inputs —
        // the pruning property the availability index relies on.
        assert_eq!(a.component_max(ResourceDemand::ZERO), a);
        assert!(a.fits_in(m) && b.fits_in(m));
    }

    #[test]
    fn paper_example_fig6_fits() {
        // Figure 6's example request: {D 500, E 3,750} fits a fresh
        // VCU worker but not one with only {D 0 / D 1,000 partially}.
        let req = ResourceDemand {
            millidecode: 500,
            milliencode: 3750,
            dram_mib: 100,
            host_mcpu: 100,
        };
        let worker0 = ResourceDemand {
            millidecode: 0,
            milliencode: 7000,
            dram_mib: 8000,
            host_mcpu: 5000,
        };
        let worker1 = ResourceDemand {
            millidecode: 1000,
            milliencode: 7000,
            dram_mib: 8000,
            host_mcpu: 5000,
        };
        assert!(!req.fits_in(worker0));
        assert!(req.fits_in(worker1));
    }
}
