//! Transcode job descriptions (device-independent).
//!
//! A [`TranscodeJob`] is the unit the paper's work scheduler moves
//! around: decode one input, produce one output (SOT) or a ladder of
//! outputs (MOT), under a latency class (§2.1). Device models consume
//! jobs and report time/throughput; the cluster scheduler consumes
//! their resource demands.

use vcu_codec::{PassMode, Profile};
use vcu_media::Resolution;

/// One output variant of a transcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputVariant {
    /// Output resolution.
    pub resolution: Resolution,
    /// Output coding profile.
    pub profile: Profile,
}

/// A transcode work item.
#[derive(Debug, Clone, PartialEq)]
pub struct TranscodeJob {
    /// Input resolution.
    pub input: Resolution,
    /// Input frame rate.
    pub fps: f64,
    /// Length of the chunk in seconds.
    pub duration_s: f64,
    /// Outputs to produce. One element = SOT; several = MOT.
    pub outputs: Vec<OutputVariant>,
    /// Whether a second encoding pass runs (offline/lagged two-pass).
    pub two_pass: bool,
    /// Latency class of the request.
    pub pass_mode: PassMode,
}

impl TranscodeJob {
    /// A single-output transcode (SOT).
    pub fn sot(
        input: Resolution,
        output: Resolution,
        profile: Profile,
        fps: f64,
        duration_s: f64,
    ) -> Self {
        TranscodeJob {
            input,
            fps,
            duration_s,
            outputs: vec![OutputVariant {
                resolution: output,
                profile,
            }],
            two_pass: true,
            pass_mode: PassMode::TwoPassOffline,
        }
    }

    /// A multiple-output transcode (MOT) over the standard ladder at
    /// and below the input resolution (paper §3.1).
    pub fn mot(input: Resolution, profile: Profile, fps: f64, duration_s: f64) -> Self {
        TranscodeJob {
            input,
            fps,
            duration_s,
            outputs: input
                .ladder()
                .into_iter()
                .map(|r| OutputVariant {
                    resolution: r,
                    profile,
                })
                .collect(),
            two_pass: true,
            pass_mode: PassMode::TwoPassOffline,
        }
    }

    /// Sets one-pass low-latency mode (live/gaming).
    pub fn low_latency(mut self) -> Self {
        self.two_pass = false;
        self.pass_mode = PassMode::OnePassLowLatency;
        self
    }

    /// Sets low-latency two-pass mode (the Stadia/4K60 configuration,
    /// §4.5).
    pub fn low_latency_two_pass(mut self) -> Self {
        self.two_pass = true;
        self.pass_mode = PassMode::TwoPassLowLatency;
        self
    }

    /// True if this is a multiple-output transcode.
    pub fn is_mot(&self) -> bool {
        self.outputs.len() > 1
    }

    /// Output pixel rate in Mpix/s — the paper's throughput unit
    /// (footnote 7: sum over outputs of fps × width × height).
    pub fn output_mpix_s(&self) -> f64 {
        self.outputs
            .iter()
            .map(|o| o.resolution.pixels() as f64)
            .sum::<f64>()
            * self.fps
            / 1e6
    }

    /// Input (decode) pixel rate in Mpix/s. SOT decodes the input once
    /// per output variant produced by separate tasks; within one job
    /// the input is decoded exactly once.
    pub fn input_mpix_s(&self) -> f64 {
        self.input.pixels() as f64 * self.fps / 1e6
    }

    /// Total output pixels over the job's duration.
    pub fn output_pixels(&self) -> f64 {
        self.output_mpix_s() * 1e6 * self.duration_s
    }

    /// Frames in the chunk.
    pub fn frames(&self) -> usize {
        (self.fps * self.duration_s).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mot_ladder_outputs() {
        let j = TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0);
        assert!(j.is_mot());
        assert_eq!(j.outputs.len(), 6);
        assert_eq!(j.outputs[0].resolution, Resolution::R1080);
        assert_eq!(j.outputs[5].resolution, Resolution::R144);
    }

    #[test]
    fn mot_output_rate_roughly_doubles_input() {
        // Paper §3.1 fn 2: ladder sum ≈ 2× top rung.
        let j = TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0);
        let ratio = j.output_mpix_s() / j.input_mpix_s();
        assert!((1.6..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sot_counts_one_output() {
        let j = TranscodeJob::sot(
            Resolution::R1080,
            Resolution::R480,
            Profile::H264Sim,
            30.0,
            5.0,
        );
        assert!(!j.is_mot());
        let expect = 854.0 * 480.0 * 30.0 / 1e6;
        assert!((j.output_mpix_s() - expect).abs() < 1e-9);
    }

    #[test]
    fn latency_modes() {
        let j = TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 2.0).low_latency();
        assert!(!j.two_pass);
        assert_eq!(j.pass_mode, PassMode::OnePassLowLatency);
        let s = TranscodeJob::sot(
            Resolution::R2160,
            Resolution::R2160,
            Profile::Vp9Sim,
            60.0,
            1.0,
        )
        .low_latency_two_pass();
        assert!(s.two_pass);
    }

    #[test]
    fn frame_count() {
        let j = TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0);
        assert_eq!(j.frames(), 150);
    }
}
