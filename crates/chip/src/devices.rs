//! System-level device models: the three Table-1 contenders.
//!
//! Each system reports sustained transcoding throughput for a workload
//! shape plus its power draw; cost lives in `vcu-cluster`'s TCO model.
//! CPU and GPU rates are anchored to Table 1's measurements; the VCU
//! system's rate comes out of the chip model in [`crate::vcu`].

use crate::calib::{self, cpu, gpu};
use crate::vcu::{VcuModel, WorkloadShape};
use vcu_codec::Profile;

/// A transcoding system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Dual-socket Skylake server, software encoding (Table 1 row 1).
    SkylakeCpu,
    /// The same server with 4 Nvidia T4 GPUs (Table 1 row 2).
    GpuT4x4,
    /// VCU host with `vcus` VCUs (Table 1 rows 3–4: 8 and 20).
    VcuHost {
        /// Number of VCUs attached.
        vcus: usize,
    },
}

impl System {
    /// Table 1's four systems in row order.
    pub fn table1() -> [System; 4] {
        [
            System::SkylakeCpu,
            System::GpuT4x4,
            System::VcuHost { vcus: 8 },
            System::VcuHost { vcus: 20 },
        ]
    }

    /// Human-readable row label.
    pub fn label(&self) -> String {
        match self {
            System::SkylakeCpu => "Skylake".to_string(),
            System::GpuT4x4 => "4xNvidia T4".to_string(),
            System::VcuHost { vcus } => format!("{vcus}xVCU"),
        }
    }

    /// Whether the system can encode `profile` at all (the GPU's VP9
    /// encode gap is Table 1's dash).
    pub fn supports_encode(&self, profile: Profile) -> bool {
        match (self, profile) {
            (System::GpuT4x4, Profile::Vp9Sim) => gpu::SUPPORTS_VP9_ENCODE,
            _ => true,
        }
    }

    /// Sustained transcoding throughput in Mpix/s of output for the
    /// given profile and workload shape. Returns `None` where the
    /// system cannot run the workload (GPU VP9 encode).
    pub fn throughput_mpix_s(&self, profile: Profile, shape: WorkloadShape) -> Option<f64> {
        if !self.supports_encode(profile) {
            return None;
        }
        Some(match self {
            System::SkylakeCpu => {
                let base = match profile {
                    Profile::H264Sim => cpu::H264_MPIX_S,
                    Profile::Vp9Sim => cpu::VP9_MPIX_S,
                };
                match shape {
                    WorkloadShape::SotTwoPass => base,
                    WorkloadShape::MotTwoPass => base * cpu::MOT_FACTOR / 0.5 * 0.645,
                    // One-pass skips the second encode and the stats
                    // pass; measured software speedups land near 1.8×.
                    WorkloadShape::OnePass => base * 1.8,
                }
            }
            System::GpuT4x4 => {
                let base = gpu::H264_MPIX_S_PER_GPU * gpu::GPUS_PER_SYSTEM as f64;
                match shape {
                    WorkloadShape::SotTwoPass => base,
                    // The GPU baseline never supported MOT (§4.1).
                    WorkloadShape::MotTwoPass => return None,
                    WorkloadShape::OnePass => base * 1.6,
                }
            }
            System::VcuHost { vcus } => {
                let v = VcuModel::new();
                *vcus as f64 * v.sustained_mpix_s(profile, shape)
            }
        })
    }

    /// Active power draw in watts under transcode load.
    pub fn power_w(&self) -> f64 {
        match self {
            System::SkylakeCpu => cpu::ACTIVE_POWER_W,
            // The paper collected no GPU active power; we model the
            // host plus 70 W per T4 for completeness.
            System::GpuT4x4 => cpu::ACTIVE_POWER_W + 70.0 * gpu::GPUS_PER_SYSTEM as f64,
            System::VcuHost { vcus } => {
                let cards = (*vcus as f64 / calib::VCUS_PER_CARD as f64).ceil();
                calib::VCU_HOST_BASE_POWER_W + cards * calib::VCU_CARD_POWER_W
            }
        }
    }

    /// Perf/watt in Mpix/s per watt, if the workload is supported.
    pub fn perf_per_watt(&self, profile: Profile, shape: WorkloadShape) -> Option<f64> {
        Some(self.throughput_mpix_s(profile, shape)? / self.power_w())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_h264_throughput_shape() {
        let cpu = System::SkylakeCpu
            .throughput_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let gpu = System::GpuT4x4
            .throughput_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let v8 = System::VcuHost { vcus: 8 }
            .throughput_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let v20 = System::VcuHost { vcus: 20 }
            .throughput_mpix_s(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        // Paper: 714 / 2,484 / 5,973 / 14,932 → ratios 3.5x / 8.4x / 20.9x.
        assert!((3.0..4.0).contains(&(gpu / cpu)), "gpu/cpu {}", gpu / cpu);
        assert!((7.0..10.0).contains(&(v8 / cpu)), "v8/cpu {}", v8 / cpu);
        assert!((17.0..25.0).contains(&(v20 / cpu)), "v20/cpu {}", v20 / cpu);
    }

    #[test]
    fn table1_vp9_two_orders_of_magnitude() {
        let cpu = System::SkylakeCpu
            .throughput_mpix_s(Profile::Vp9Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let v20 = System::VcuHost { vcus: 20 }
            .throughput_mpix_s(Profile::Vp9Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        // Paper: 99.4x.
        let ratio = v20 / cpu;
        assert!((80.0..120.0).contains(&ratio), "vp9 ratio {ratio}");
    }

    #[test]
    fn gpu_cannot_encode_vp9() {
        assert!(System::GpuT4x4
            .throughput_mpix_s(Profile::Vp9Sim, WorkloadShape::SotTwoPass)
            .is_none());
        assert!(!System::GpuT4x4.supports_encode(Profile::Vp9Sim));
    }

    #[test]
    fn perf_per_watt_h264_sot() {
        // Paper: "6.7x better perf/watt than the CPU baseline for
        // single output H.264".
        let cpu = System::SkylakeCpu
            .perf_per_watt(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let vcu = System::VcuHost { vcus: 20 }
            .perf_per_watt(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
        let ratio = vcu / cpu;
        assert!((5.0..9.0).contains(&ratio), "perf/W ratio {ratio}");
    }

    #[test]
    fn perf_per_watt_vp9_mot() {
        // Paper: "68.9x higher perf/watt on multi-output VP9".
        let cpu = System::SkylakeCpu
            .perf_per_watt(Profile::Vp9Sim, WorkloadShape::MotTwoPass)
            .unwrap();
        let vcu = System::VcuHost { vcus: 20 }
            .perf_per_watt(Profile::Vp9Sim, WorkloadShape::MotTwoPass)
            .unwrap();
        let ratio = vcu / cpu;
        assert!(
            (50.0..90.0).contains(&ratio),
            "VP9 MOT perf/W ratio {ratio}"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(System::VcuHost { vcus: 20 }.label(), "20xVCU");
        assert_eq!(System::SkylakeCpu.label(), "Skylake");
    }
}
