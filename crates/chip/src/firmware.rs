//! On-chip management firmware model: userspace queues and stateless
//! core dispatch.
//!
//! §3.3.2: the firmware exposes four commands (run-on-core,
//! copy-to-device, copy-from-device, wait-for-done) on userspace-mapped
//! queues; `run-on-core` deliberately does *not* name a core — the
//! firmware schedules work round-robin across queues onto any idle
//! core, which is what makes cores interchangeable ("stateless")
//! resources. This module is a discrete-time simulation of that
//! dispatch policy, used to demonstrate fairness and utilization under
//! the process-per-transcode model.

use std::collections::VecDeque;
use vcu_telemetry::Registry;

/// A firmware command (§3.3.2's four-verb interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Run one operation (encode/decode/scale of one frame) on any
    /// idle core; payload is the operation's duration in ticks.
    RunOnCore {
        /// Execution time in firmware ticks.
        ticks: u32,
    },
    /// DMA host → device (host-side, does not occupy a codec core).
    CopyToDevice {
        /// Transfer time in ticks.
        ticks: u32,
    },
    /// DMA device → host.
    CopyFromDevice {
        /// Transfer time in ticks.
        ticks: u32,
    },
    /// Barrier: the queue makes no progress past this until all its
    /// earlier `RunOnCore` operations completed.
    WaitForDone,
}

/// One userspace queue (one process-per-transcode client).
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    pending: VecDeque<Command>,
    /// Operations issued to cores and not yet completed.
    in_flight: usize,
    /// Completed RunOnCore operations.
    pub completed_ops: u64,
    /// Ticks this queue spent with work pending but no core granted.
    pub starved_ticks: u64,
}

impl CommandQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a command.
    pub fn push(&mut self, cmd: Command) {
        self.pending.push_back(cmd);
    }

    /// True if every submitted command has fully completed.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }
}

/// The firmware scheduler: round-robin over queues, dispatching to a
/// fixed pool of interchangeable cores.
#[derive(Debug)]
pub struct Firmware {
    queues: Vec<CommandQueue>,
    /// Remaining ticks per busy core (0 = idle).
    cores: Vec<u32>,
    /// Which queue each busy core is serving (for completion credit).
    core_owner: Vec<Option<usize>>,
    /// Round-robin cursor.
    next_queue: usize,
    /// Total core-ticks spent busy (for utilization).
    busy_ticks: u64,
    /// Total ticks simulated.
    ticks: u64,
    /// Observability sink (disabled by default: zero cost).
    telemetry: Registry,
}

impl Firmware {
    /// Creates a firmware instance managing `cores` codec cores and
    /// `queues` userspace queues.
    pub fn new(cores: usize, queues: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Firmware {
            queues: (0..queues).map(|_| CommandQueue::new()).collect(),
            cores: vec![0; cores],
            core_owner: vec![None; cores],
            next_queue: 0,
            busy_ticks: 0,
            ticks: 0,
            telemetry: Registry::disabled(),
        }
    }

    /// Attaches a telemetry registry; every tick then feeds the
    /// `chip.firmware.queue_depth` histogram and `run_to_completion`
    /// publishes the final `chip.firmware.utilization` gauge.
    pub fn attach_telemetry(&mut self, telemetry: Registry) {
        self.telemetry = telemetry;
    }

    /// Access a queue.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn queue_mut(&mut self, q: usize) -> &mut CommandQueue {
        &mut self.queues[q]
    }

    /// Borrow queues (for inspection).
    pub fn queues(&self) -> &[CommandQueue] {
        &self.queues
    }

    /// Advances the simulation one tick: completes finishing
    /// operations, then dispatches from queues round-robin onto idle
    /// cores (the §3.3.2 fairness policy).
    pub fn tick(&mut self) {
        self.ticks += 1;
        // Progress busy cores.
        for c in 0..self.cores.len() {
            if self.cores[c] > 0 {
                self.cores[c] -= 1;
                self.busy_ticks += 1;
                if self.cores[c] == 0 {
                    if let Some(q) = self.core_owner[c].take() {
                        self.queues[q].in_flight -= 1;
                        self.queues[q].completed_ops += 1;
                    }
                }
            }
        }
        // Dispatch round-robin: each pass starts from a rotating cursor
        // so no queue systematically wins ties.
        let nq = self.queues.len();
        if nq == 0 {
            return;
        }
        for c in 0..self.cores.len() {
            if self.cores[c] != 0 {
                continue;
            }
            // Find the next queue with a dispatchable command.
            let mut dispatched = false;
            for off in 0..nq {
                let qi = (self.next_queue + off) % nq;
                if let Some(cmd) = self.queues[qi].pending.front().copied() {
                    match cmd {
                        Command::RunOnCore { ticks } => {
                            self.queues[qi].pending.pop_front();
                            self.queues[qi].in_flight += 1;
                            self.cores[c] = ticks.max(1);
                            self.core_owner[c] = Some(qi);
                            self.next_queue = (qi + 1) % nq;
                            dispatched = true;
                            break;
                        }
                        Command::CopyToDevice { .. } | Command::CopyFromDevice { .. } => {
                            // DMA does not occupy a codec core; model it
                            // as instantaneous at this granularity.
                            self.queues[qi].pending.pop_front();
                        }
                        Command::WaitForDone => {
                            if self.queues[qi].in_flight == 0 {
                                self.queues[qi].pending.pop_front();
                            }
                            // Blocked queue: try the next one.
                        }
                    }
                }
            }
            if !dispatched {
                break; // no dispatchable work anywhere
            }
        }
        // Starvation accounting.
        for q in &mut self.queues {
            if q.pending
                .front()
                .map(|c| matches!(c, Command::RunOnCore { .. }))
                .unwrap_or(false)
            {
                q.starved_ticks += 1;
            }
        }
        if self.telemetry.is_enabled() {
            let depth: usize = self
                .queues
                .iter()
                .map(|q| q.pending.len() + q.in_flight)
                .sum();
            self.telemetry
                .observe("chip.firmware.queue_depth", depth as f64);
        }
    }

    /// Runs until all queues drain or `max_ticks` elapse; returns the
    /// number of ticks taken.
    pub fn run_to_completion(&mut self, max_ticks: u64) -> u64 {
        let start = self.ticks;
        while self.queues.iter().any(|q| !q.is_drained()) {
            if self.ticks - start >= max_ticks {
                break;
            }
            self.tick();
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge_set("chip.firmware.utilization", self.utilization());
        }
        self.ticks - start
    }

    /// Core utilization over the simulated interval, in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.busy_ticks as f64 / (self.ticks as f64 * self.cores.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_queue(fw: &mut Firmware, q: usize, ops: usize, ticks: u32) {
        for _ in 0..ops {
            fw.queue_mut(q).push(Command::RunOnCore { ticks });
        }
        fw.queue_mut(q).push(Command::WaitForDone);
    }

    #[test]
    fn single_queue_drains() {
        let mut fw = Firmware::new(2, 1);
        load_queue(&mut fw, 0, 10, 5);
        let t = fw.run_to_completion(10_000);
        assert!(fw.queues()[0].is_drained());
        assert_eq!(fw.queues()[0].completed_ops, 10);
        // 10 ops × 5 ticks on 2 cores ≈ 25 ticks + dispatch slack.
        assert!((25..40).contains(&(t as usize)), "took {t}");
    }

    #[test]
    fn round_robin_is_fair() {
        // Two identical queues on one core should finish with similar
        // completed counts throughout, not one monopolizing.
        let mut fw = Firmware::new(1, 2);
        load_queue(&mut fw, 0, 50, 3);
        load_queue(&mut fw, 1, 50, 3);
        for _ in 0..200 {
            fw.tick();
        }
        let a = fw.queues()[0].completed_ops as i64;
        let b = fw.queues()[1].completed_ops as i64;
        assert!((a - b).abs() <= 2, "unfair: {a} vs {b}");
    }

    #[test]
    fn multiple_processes_saturate_the_chip() {
        // §3.3.2: "multiple userspace processes would be needed to
        // reach peak utilization". One queue with serialized waits
        // cannot keep 10 cores busy; four can do much better.
        let serial_util = {
            let mut fw = Firmware::new(10, 1);
            for _ in 0..40 {
                fw.queue_mut(0).push(Command::RunOnCore { ticks: 8 });
                fw.queue_mut(0).push(Command::WaitForDone);
            }
            fw.run_to_completion(100_000);
            fw.utilization()
        };
        let parallel_util = {
            let mut fw = Firmware::new(10, 8);
            for q in 0..8 {
                for _ in 0..5 {
                    fw.queue_mut(q).push(Command::RunOnCore { ticks: 8 });
                    fw.queue_mut(q).push(Command::WaitForDone);
                }
            }
            fw.run_to_completion(100_000);
            fw.utilization()
        };
        assert!(
            parallel_util > serial_util * 3.0,
            "parallel {parallel_util} vs serial {serial_util}"
        );
    }

    #[test]
    fn wait_for_done_is_a_barrier() {
        let mut fw = Firmware::new(4, 1);
        fw.queue_mut(0).push(Command::RunOnCore { ticks: 10 });
        fw.queue_mut(0).push(Command::WaitForDone);
        fw.queue_mut(0).push(Command::RunOnCore { ticks: 1 });
        // After 5 ticks the first op is still running; the second op
        // must not have started (completed_ops stays 0 until t=10).
        for _ in 0..5 {
            fw.tick();
        }
        assert_eq!(fw.queues()[0].completed_ops, 0);
        fw.run_to_completion(1000);
        assert_eq!(fw.queues()[0].completed_ops, 2);
    }

    #[test]
    fn telemetry_tracks_queue_depth_and_utilization() {
        let reg = Registry::new();
        let mut fw = Firmware::new(2, 2);
        fw.attach_telemetry(reg.clone());
        load_queue(&mut fw, 0, 10, 5);
        load_queue(&mut fw, 1, 10, 5);
        fw.run_to_completion(10_000);
        let depth = reg
            .histogram("chip.firmware.queue_depth")
            .expect("queue depth histogram recorded");
        assert!(depth.count > 0);
        assert!(
            depth.max >= 1.0,
            "some tick saw pending work: {}",
            depth.max
        );
        let util = reg
            .gauge("chip.firmware.utilization")
            .expect("utilization gauge");
        assert!((0.0..=1.0).contains(&util));
        assert!((util - fw.utilization()).abs() < 1e-12);
    }

    #[test]
    fn dma_does_not_occupy_cores() {
        let mut fw = Firmware::new(1, 1);
        fw.queue_mut(0).push(Command::CopyToDevice { ticks: 100 });
        fw.queue_mut(0).push(Command::RunOnCore { ticks: 2 });
        fw.queue_mut(0).push(Command::CopyFromDevice { ticks: 100 });
        let t = fw.run_to_completion(1000);
        assert!(t < 10, "DMA shouldn't serialize with core time: {t}");
    }
}
