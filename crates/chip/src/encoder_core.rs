//! Encoder-core pipeline timing model.
//!
//! Two granularities:
//!
//! - [`core_rate_mpix_s`]: the closed-form rate (bottleneck stage of
//!   the Figure 4 pipeline) used by system-level capacity math.
//! - [`PipelineSim`]: a cycle-accurate-ish queue simulation of the
//!   four pipeline stages with FIFO decoupling and backpressure,
//!   exercising §3.2's claim that "the wide variety of blocks and
//!   modes can lead to significant variability. To address this, the
//!   pipeline stages are decoupled with FIFOs" — the ablation bench
//!   measures exactly that effect.

use crate::calib::{self, stage_cycles};
use vcu_codec::Profile;
use vcu_telemetry::Registry;

/// Pipeline stages of Figure 4, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Motion estimation, partitioning, rate-distortion optimization.
    MotionRdo,
    /// Entropy coding, macroblock decode, temporal filter.
    Entropy,
    /// Loop filter and frame-buffer compression.
    LoopFilter,
    /// DRAM read/write.
    Dma,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [
        Stage::MotionRdo,
        Stage::Entropy,
        Stage::LoopFilter,
        Stage::Dma,
    ];

    /// Mean cycles per 16×16 macroblock for this stage.
    pub fn mean_cycles(self) -> u32 {
        match self {
            Stage::MotionRdo => stage_cycles::MOTION_RDO,
            Stage::Entropy => stage_cycles::ENTROPY,
            Stage::LoopFilter => stage_cycles::LOOPFILTER,
            Stage::Dma => stage_cycles::DMA,
        }
    }

    /// Telemetry-stable stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::MotionRdo => "motion_rdo",
            Stage::Entropy => "entropy",
            Stage::LoopFilter => "loop_filter",
            Stage::Dma => "dma",
        }
    }

    /// Telemetry metric name for this stage's occupancy gauge.
    fn occupancy_metric(self) -> &'static str {
        match self {
            Stage::MotionRdo => "chip.pipeline.occupancy.motion_rdo",
            Stage::Entropy => "chip.pipeline.occupancy.entropy",
            Stage::LoopFilter => "chip.pipeline.occupancy.loop_filter",
            Stage::Dma => "chip.pipeline.occupancy.dma",
        }
    }
}

/// Closed-form single-core throughput in Mpix/s for one-pass encoding.
pub fn core_rate_mpix_s(profile: Profile) -> f64 {
    let bottleneck = Stage::ALL
        .iter()
        .map(|s| s.mean_cycles())
        .max()
        .expect("stages non-empty") as f64;
    let base = calib::CORE_CLOCK_HZ / bottleneck * 256.0 / 1e6;
    match profile {
        Profile::H264Sim => base,
        Profile::Vp9Sim => base * calib::VP9_HW_EFFICIENCY,
    }
}

/// Per-macroblock cycle simulation of the 4-stage pipeline.
///
/// Each stage's per-block service time varies deterministically around
/// its mean (block content variability). Stages are connected by FIFOs
/// of configurable depth; a full downstream FIFO backpressures the
/// producer, and depth 0 degenerates to lock-step operation where every
/// stage waits for the slowest stage on *each block*.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    /// FIFO capacity between adjacent stages (blocks).
    pub fifo_depth: usize,
    /// Variability amplitude: stage time = mean × (1 ± amplitude).
    pub variability: f64,
    /// DMA service-time multiplier (≥ 1): how much slower DRAM
    /// transfers run than the calibrated budget. 1.0 is the shipped
    /// design, where prefetch hides DMA entirely; design-space
    /// candidates with less bandwidth than the §3.3.1 envelope push
    /// this up until DMA intermittently becomes the bottleneck.
    pub dma_pressure: f64,
}

impl PipelineSim {
    /// A simulator with the production FIFO depth.
    pub fn new(fifo_depth: usize, variability: f64) -> Self {
        Self::with_dma_pressure(fifo_depth, variability, 1.0)
    }

    /// A simulator whose DMA stage runs `dma_pressure`× slower than
    /// the calibrated budget (bandwidth-starved design candidates).
    pub fn with_dma_pressure(fifo_depth: usize, variability: f64, dma_pressure: f64) -> Self {
        assert!((0.0..1.0).contains(&variability), "variability in [0,1)");
        assert!(dma_pressure >= 1.0, "dma_pressure is a slowdown (≥ 1)");
        PipelineSim {
            fifo_depth,
            variability,
            dma_pressure,
        }
    }

    /// Deterministic per-block service time for `stage` on block `i`.
    fn service_cycles(&self, stage: Stage, block: u64) -> f64 {
        // The wobble hash keys on the *calibrated* mean so the same
        // block sees the same content variability at any pressure.
        let pressure = if stage == Stage::Dma {
            self.dma_pressure
        } else {
            1.0
        };
        let mean = stage.mean_cycles() as f64 * pressure;
        // Deterministic pseudo-random wobble per (stage, block).
        let h = block
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stage.mean_cycles() as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        mean * (1.0 + self.variability * (2.0 * u - 1.0))
    }

    /// Simulates `blocks` macroblocks through the pipeline and returns
    /// achieved throughput in macroblocks per mean-bottleneck-period
    /// (1.0 = ideal: the pipeline sustains the bottleneck stage's mean
    /// rate despite variability).
    pub fn relative_throughput(&self, blocks: u64) -> f64 {
        self.simulate::<false>(blocks).relative_throughput
    }

    /// Like [`PipelineSim::relative_throughput`], additionally
    /// recording per-stage occupancy (busy fraction of the makespan)
    /// and throughput into `telemetry` — the encoder-core half of the
    /// Fig. 9-style fleet dashboards.
    pub fn relative_throughput_traced(&self, blocks: u64, telemetry: &Registry) -> f64 {
        let outcome = self.simulate::<true>(blocks);
        if telemetry.is_enabled() {
            for (si, st) in Stage::ALL.iter().enumerate() {
                telemetry.gauge_set(
                    st.occupancy_metric(),
                    outcome.busy_cycles[si] / outcome.makespan_cycles.max(1.0),
                );
            }
            telemetry.gauge_set(
                "chip.pipeline.relative_throughput",
                outcome.relative_throughput,
            );
            telemetry.counter_add("chip.pipeline.blocks", blocks);
        }
        outcome.relative_throughput
    }

    /// `TRACK_BUSY` gates the per-stage occupancy accumulation so the
    /// untraced hot path keeps the original inner loop bit-for-bit.
    fn simulate<const TRACK_BUSY: bool>(&self, blocks: u64) -> PipelineOutcome {
        assert!(blocks > 0, "must simulate at least one block");
        let stages = Stage::ALL;
        let n = blocks as usize;
        // starts[s][b] = cycle when block b begins service at stage s.
        let mut starts: Vec<Vec<f64>> = vec![Vec::with_capacity(n); stages.len()];
        // finish[s] = cycle when stage s finished its latest block.
        let mut finish = [0.0f64; 4];
        let mut busy = [0.0f64; 4];
        let mut last_done = 0.0f64;
        for b in 0..n {
            let mut t_avail = 0.0f64; // when the block reaches stage 0
            for (si, st) in stages.iter().enumerate() {
                // Block b can start at stage si when: it has arrived,
                // the stage is free, and — backpressure — the FIFO
                // between si and si+1 has room, i.e. block
                // `b - 1 - fifo_depth` has already *entered* stage si+1
                // (otherwise block b would finish into a full FIFO and
                // stall the stage anyway; we model the stall as a
                // delayed start).
                let mut start = t_avail.max(finish[si]);
                if si + 1 < stages.len() {
                    if let Some(gate_block) = b.checked_sub(1 + self.fifo_depth) {
                        start = start.max(starts[si + 1][gate_block]);
                    }
                }
                let service = self.service_cycles(*st, b as u64);
                let done = start + service;
                if TRACK_BUSY {
                    busy[si] += service;
                }
                starts[si].push(start);
                finish[si] = done;
                t_avail = done;
            }
            last_done = t_avail;
        }
        let bottleneck = stages.iter().map(|s| s.mean_cycles()).max().unwrap() as f64;
        PipelineOutcome {
            relative_throughput: (blocks as f64 * bottleneck) / last_done,
            busy_cycles: busy,
            makespan_cycles: last_done,
        }
    }
}

/// Raw result of one pipeline simulation.
#[derive(Debug, Clone, Copy)]
struct PipelineOutcome {
    relative_throughput: f64,
    /// Cycles each stage spent in service (occupancy numerator).
    busy_cycles: [f64; 4],
    /// Total cycles from first block in to last block out.
    makespan_cycles: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_rate_covers_2160p60() {
        let r = core_rate_mpix_s(Profile::H264Sim);
        assert!(r >= calib::REF_STREAM_MPIX_S, "rate {r}");
    }

    #[test]
    fn vp9_slightly_faster_per_pixel() {
        assert!(core_rate_mpix_s(Profile::Vp9Sim) > core_rate_mpix_s(Profile::H264Sim));
    }

    #[test]
    fn no_variability_no_fifo_needed() {
        let sim0 = PipelineSim::new(0, 0.0);
        let sim4 = PipelineSim::new(4, 0.0);
        let t0 = sim0.relative_throughput(2000);
        let t4 = sim4.relative_throughput(2000);
        assert!((t0 - t4).abs() < 0.02, "t0 {t0} t4 {t4}");
        assert!(t0 > 0.95, "deterministic pipeline should hit ~1.0: {t0}");
    }

    #[test]
    fn fifos_recover_variability_loss() {
        // With variability, a lock-step pipeline (depth 0) loses
        // throughput; FIFO decoupling recovers most of it (§3.2).
        let lockstep = PipelineSim::new(0, 0.6).relative_throughput(4000);
        let decoupled = PipelineSim::new(6, 0.6).relative_throughput(4000);
        assert!(
            decoupled > lockstep * 1.05,
            "decoupled {decoupled} vs lockstep {lockstep}"
        );
        assert!(decoupled > 0.85, "decoupled too slow: {decoupled}");
    }

    #[test]
    fn deeper_fifos_monotone() {
        let t1 = PipelineSim::new(1, 0.6).relative_throughput(3000);
        let t8 = PipelineSim::new(8, 0.6).relative_throughput(3000);
        assert!(t8 >= t1 * 0.999, "t1 {t1} t8 {t8}");
    }

    #[test]
    fn deterministic_simulation() {
        let a = PipelineSim::new(4, 0.5).relative_throughput(1000);
        let b = PipelineSim::new(4, 0.5).relative_throughput(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_records_stage_occupancy() {
        let reg = Registry::new();
        let sim = PipelineSim::new(4, 0.5);
        let traced = sim.relative_throughput_traced(2000, &reg);
        assert_eq!(
            traced,
            sim.relative_throughput(2000),
            "tracing is observation-only"
        );
        for st in Stage::ALL {
            let occ = reg
                .gauge(st.occupancy_metric())
                .unwrap_or_else(|| panic!("missing occupancy gauge for {}", st.name()));
            assert!((0.0..=1.0).contains(&occ), "{}: {occ}", st.name());
        }
        // The bottleneck stage (largest mean cycles) must show the
        // highest occupancy of the four.
        let bottleneck = Stage::ALL
            .iter()
            .copied()
            .max_by_key(|s| s.mean_cycles())
            .unwrap();
        let b_occ = reg.gauge(bottleneck.occupancy_metric()).unwrap();
        for st in Stage::ALL {
            assert!(b_occ >= reg.gauge(st.occupancy_metric()).unwrap() - 1e-12);
        }
        assert!(
            b_occ > 0.9,
            "bottleneck stage should be nearly saturated: {b_occ}"
        );
        assert_eq!(reg.counter("chip.pipeline.blocks"), 2000);
    }

    #[test]
    fn disabled_registry_skips_recording() {
        let reg = Registry::disabled();
        PipelineSim::new(4, 0.5).relative_throughput_traced(500, &reg);
        assert_eq!(reg.counter("chip.pipeline.blocks"), 0);
    }
}
