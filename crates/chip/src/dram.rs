//! VCU DRAM bandwidth and capacity model.
//!
//! Scales the paper's 2160p60 anchor numbers (§3.3.1) to arbitrary
//! stream shapes, models the lossless reference-compression saving, and
//! computes per-job DRAM footprints (Appendix A.4) that the scheduler
//! treats as a resource dimension.

use crate::calib::{self, dram};
use crate::job::TranscodeJob;
use vcu_telemetry::Registry;

/// Per-stream encoder DRAM bandwidth in GiB/s for a stream of
/// `mpix_s` (output pixel rate), with or without reference-frame
/// compression.
pub fn encode_stream_bw_gib_s(mpix_s: f64, refcomp: bool) -> f64 {
    let anchor = if refcomp {
        dram::ENCODE_2160P60_REFCOMP_GIB_S
    } else {
        dram::ENCODE_2160P60_GIB_S
    };
    anchor * mpix_s / calib::REF_STREAM_MPIX_S
}

/// Per-stream decoder DRAM bandwidth in GiB/s.
pub fn decode_stream_bw_gib_s(mpix_s: f64) -> f64 {
    dram::DECODE_2160P60_GIB_S * mpix_s / calib::REF_STREAM_MPIX_S
}

/// DRAM footprint of a job in MiB (Appendix A.4: ~700 MiB per 2160p
/// MOT, ~500 MiB per 2160p SOT, scaling with input resolution).
pub fn job_footprint_mib(job: &TranscodeJob) -> f64 {
    let anchor = if job.is_mot() {
        dram::MOT_2160P_FOOTPRINT_MIB
    } else {
        dram::SOT_2160P_FOOTPRINT_MIB
    };
    let scale = job.input.pixels() as f64 / (3840.0 * 2160.0);
    // Buffers have fixed overheads; don't scale below 10% of anchor.
    anchor * scale.max(0.1)
}

/// Aggregate DRAM state of one VCU.
#[derive(Debug, Clone)]
pub struct DramModel {
    /// Whether reference-frame compression is enabled (ablation knob;
    /// production hardware always enables it).
    pub refcomp: bool,
    /// Raw DRAM bandwidth in GiB/s (shipped: 36.0; design-space
    /// candidates vary the channel count).
    pub raw_gib_s: f64,
    streams_bw_gib_s: f64,
    used_mib: f64,
    /// Observability sink (disabled by default: zero cost).
    telemetry: Registry,
}

impl DramModel {
    /// A fresh DRAM model with the shipped four-channel bandwidth.
    pub fn new(refcomp: bool) -> Self {
        Self::with_bandwidth(refcomp, dram::RAW_GIB_S)
    }

    /// A DRAM model with an explicit raw bandwidth (design-space
    /// candidates with more or fewer LPDDR4 channels).
    pub fn with_bandwidth(refcomp: bool, raw_gib_s: f64) -> Self {
        assert!(
            raw_gib_s > 0.0 && raw_gib_s.is_finite(),
            "raw bandwidth must be positive and finite, got {raw_gib_s}"
        );
        DramModel {
            refcomp,
            raw_gib_s,
            streams_bw_gib_s: 0.0,
            used_mib: 0.0,
            telemetry: Registry::disabled(),
        }
    }

    /// Attaches a telemetry registry; admissions and releases then
    /// keep `chip.dram.*` gauges/counters current.
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.telemetry = telemetry;
        self.publish();
        self
    }

    fn publish(&self) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge_set("chip.dram.bandwidth_gib_s", self.streams_bw_gib_s);
            self.telemetry
                .gauge_set("chip.dram.bandwidth_util", self.bandwidth_utilization());
            self.telemetry
                .gauge_set("chip.dram.used_mib", self.used_mib);
        }
    }

    /// Usable bandwidth budget in GiB/s.
    pub fn bandwidth_budget_gib_s(&self) -> f64 {
        self.raw_gib_s * dram::EFFICIENCY
    }

    /// Capacity budget in MiB.
    pub fn capacity_budget_mib(&self) -> f64 {
        dram::CAPACITY_GIB * 1024.0
    }

    /// Attempts to admit a job's DRAM demands (bandwidth for all its
    /// encode outputs + one decode stream, plus footprint). Returns
    /// `false` (without reserving) if either budget would be exceeded.
    pub fn admit(&mut self, job: &TranscodeJob) -> bool {
        let bw = self.job_bandwidth_gib_s(job);
        let mib = job_footprint_mib(job);
        if self.streams_bw_gib_s + bw > self.bandwidth_budget_gib_s()
            || self.used_mib + mib > self.capacity_budget_mib()
        {
            self.telemetry.counter_inc("chip.dram.rejected");
            return false;
        }
        self.streams_bw_gib_s += bw;
        self.used_mib += mib;
        self.telemetry.counter_inc("chip.dram.admitted");
        self.publish();
        true
    }

    /// Releases a previously admitted job.
    pub fn release(&mut self, job: &TranscodeJob) {
        self.streams_bw_gib_s = (self.streams_bw_gib_s - self.job_bandwidth_gib_s(job)).max(0.0);
        self.used_mib = (self.used_mib - job_footprint_mib(job)).max(0.0);
        self.publish();
    }

    /// Total DRAM bandwidth a job needs on this VCU.
    pub fn job_bandwidth_gib_s(&self, job: &TranscodeJob) -> f64 {
        let enc: f64 = job
            .outputs
            .iter()
            .map(|o| {
                encode_stream_bw_gib_s(o.resolution.pixels() as f64 * job.fps / 1e6, self.refcomp)
            })
            .sum();
        enc + decode_stream_bw_gib_s(job.input_mpix_s())
    }

    /// Current bandwidth utilization in [0, 1].
    pub fn bandwidth_utilization(&self) -> f64 {
        self.streams_bw_gib_s / self.bandwidth_budget_gib_s()
    }

    /// Current capacity utilization in [0, 1].
    pub fn capacity_utilization(&self) -> f64 {
        self.used_mib / self.capacity_budget_mib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_codec::Profile;
    use vcu_media::Resolution;

    #[test]
    fn anchor_rates_match_paper() {
        // 2160p60 stream: 3.5 GiB/s uncompressed, 2.0 with refcomp.
        let r = calib::REF_STREAM_MPIX_S;
        assert!((encode_stream_bw_gib_s(r, false) - 3.5).abs() < 1e-9);
        assert!((encode_stream_bw_gib_s(r, true) - 2.0).abs() < 1e-9);
        assert!((decode_stream_bw_gib_s(r) - 2.2).abs() < 1e-9);
    }

    #[test]
    fn refcomp_roughly_halves_encode_bw() {
        let bw_on = encode_stream_bw_gib_s(500.0, true);
        let bw_off = encode_stream_bw_gib_s(500.0, false);
        let saving = 1.0 - bw_on / bw_off;
        assert!((0.35..0.55).contains(&saving), "saving {saving}");
    }

    #[test]
    fn footprints_match_appendix() {
        let mot = TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 30.0, 5.0);
        let sot = TranscodeJob::sot(
            Resolution::R2160,
            Resolution::R2160,
            Profile::Vp9Sim,
            30.0,
            5.0,
        );
        assert!((job_footprint_mib(&mot) - 700.0).abs() < 1.0);
        assert!((job_footprint_mib(&sot) - 500.0).abs() < 1.0);
        // 8 GiB VCU fits ~11 2160p MOTs; 4 GiB would not fit the
        // Appendix-A worst case mix comfortably.
        let per_vcu = DramModel::new(true).capacity_budget_mib() / 700.0;
        assert!(per_vcu > 10.0);
    }

    #[test]
    fn admission_enforces_budgets() {
        let mut d = DramModel::new(true);
        let big = TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 60.0, 5.0);
        let mut admitted = 0;
        while d.admit(&big) {
            admitted += 1;
            assert!(admitted < 100, "admission never saturates");
        }
        assert!(
            admitted >= 2,
            "should fit at least a couple of 2160p60 MOTs"
        );
        assert!(d.bandwidth_utilization() <= 1.0);
        // Releasing restores headroom.
        d.release(&big);
        assert!(d.admit(&big));
    }

    #[test]
    fn without_refcomp_fewer_streams_fit() {
        let job = TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 60.0, 5.0);
        let count = |refcomp: bool| {
            let mut d = DramModel::new(refcomp);
            let mut n = 0;
            while d.admit(&job) {
                n += 1;
            }
            n
        };
        assert!(
            count(true) > count(false),
            "refcomp {} vs none {}",
            count(true),
            count(false)
        );
    }
}
