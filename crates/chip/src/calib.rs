//! Calibration constants for every device timing model.
//!
//! All free parameters of the reproduction live here, set **once**
//! from numbers the paper states (cited inline) or first-principles
//! estimates — the experiment harnesses then *measure* against these
//! models. Nothing elsewhere in the workspace re-tunes per table cell.
//!
//! Paper anchors used:
//! - "Each encoder core can encode 2160p in real-time, up to 60 FPS
//!   using three reference frames" (§3.3.1) → ~498 Mpix/s per core,
//!   one-pass.
//! - "At 2160p, each raw frame is 11.9 MiB, giving an average DRAM
//!   bandwidth of 3.5 GiB/s … lossless reference compression reduces
//!   the worst-case bandwidth to ~3 GiB/s and typical to 2 GiB/s. The
//!   decoder consistently uses 2.2 GiB/s, so the VCU needs ~27-37
//!   GiB/s … four 32b LPDDR4-3200 channels (~36 GiB/s raw)" (§3.3.1).
//! - Table 1 throughput/perf-TCO ratios (see `tco` in `vcu-cluster`).
//! - "3,000 millidecode cores and 10,000 milliencode cores" (§3.3.3).

/// Encoder cores per VCU ASIC (§3.3.1, Figure 5a).
pub const ENCODER_CORES_PER_VCU: usize = 10;

/// Decoder cores per VCU ASIC (Figure 3b).
pub const DECODER_CORES_PER_VCU: usize = 3;

/// VCUs per card (Figure 5b) and cards/hosts (§3.3.1).
pub const VCUS_PER_CARD: usize = 2;
/// Cards per accelerator tray.
pub const CARDS_PER_TRAY: usize = 5;
/// Trays per host machine.
pub const TRAYS_PER_HOST: usize = 2;
/// VCUs per host machine (= 2 trays × 5 cards × 2 VCUs).
pub const VCUS_PER_HOST: usize = VCUS_PER_CARD * CARDS_PER_TRAY * TRAYS_PER_HOST;

/// Encoder core clock in Hz (chosen so the cycle budget below hits the
/// paper's real-time 2160p60 rate).
pub const CORE_CLOCK_HZ: f64 = 800e6;

/// Pipeline stage cycle budgets per 16×16 macroblock (H.264 profile).
/// The bottleneck stage sets the core's throughput:
/// 800 MHz / 410 cycles/MB × 256 px/MB ≈ 500 Mpix/s ≈ 2160p60.
pub mod stage_cycles {
    /// Motion estimation + partitioning + RDO (the memory-heavy first
    /// stage of Figure 4).
    pub const MOTION_RDO: u32 = 410;
    /// Entropy coding + macroblock decode + temporal filter.
    pub const ENTROPY: u32 = 360;
    /// Loop filter + lossless frame-buffer compression.
    pub const LOOPFILTER: u32 = 240;
    /// DRAM reader/writer (hidden behind prefetch when bandwidth holds).
    pub const DMA: u32 = 180;
}

/// VP9 per-pixel cycle efficiency relative to H.264 on the VCU.
/// Larger superblocks amortize control overhead, so the hardware
/// encodes VP9 slightly *faster* per pixel (Table 1: 15,306 vs 14,932
/// Mpix/s for the 20-VCU system).
pub const VP9_HW_EFFICIENCY: f64 = 1.025;

/// Throughput multiplier for two-pass encoding on the VCU: every
/// output frame passes through an encoder core twice.
pub const TWO_PASS_FACTOR: f64 = 0.5;

/// Fraction of peak core throughput reachable in a loaded system
/// (queueing, stream switch overheads, host I/O) — calibrated so a
/// 20-VCU host lands near Table 1's 14.9 Gpix/s for offline two-pass
/// SOT vbench rather than the 50 Gpix/s silicon peak.
pub const SYSTEM_DERATE: f64 = 0.30;

/// Decoder core throughput in Mpix/s (a decoder core comfortably
/// outruns an encoder core; decode is ~10× cheaper than encode).
pub const DECODER_CORE_MPIX_S: f64 = 1100.0;

/// DRAM subsystem.
pub mod dram {
    /// Raw LPDDR4-3200 bandwidth, 4 × 32-bit channels (§3.3.1).
    pub const RAW_GIB_S: f64 = 36.0;
    /// Usable fraction of raw bandwidth (refresh, bank conflicts).
    pub const EFFICIENCY: f64 = 0.85;
    /// Usable VCU DRAM capacity in GiB (§3.3.1: "8 GiB usable").
    pub const CAPACITY_GIB: f64 = 8.0;
    /// Encoder stream bandwidth at 2160p60 with 3 refs, no reference
    /// compression (§3.3.1: "average DRAM bandwidth of 3.5 GiB/s").
    pub const ENCODE_2160P60_GIB_S: f64 = 3.5;
    /// Same with lossless reference-frame compression ("typical
    /// bandwidth to 2 GiB/s").
    pub const ENCODE_2160P60_REFCOMP_GIB_S: f64 = 2.0;
    /// Decoder stream bandwidth ("the decoder consistently uses
    /// 2.2 GiB/s").
    pub const DECODE_2160P60_GIB_S: f64 = 2.2;
    /// DRAM footprint of a 2160p MOT job in MiB (Appendix A.4).
    pub const MOT_2160P_FOOTPRINT_MIB: f64 = 700.0;
    /// DRAM footprint of a 2160p SOT job in MiB (Appendix A.4).
    pub const SOT_2160P_FOOTPRINT_MIB: f64 = 500.0;
}

/// Reference pixel rate of a 2160p60 stream (Mpix/s) used to scale
/// per-stream DRAM bandwidth to other resolutions/frame rates.
pub const REF_STREAM_MPIX_S: f64 = 3840.0 * 2160.0 * 60.0 / 1e6;

/// Scheduler resource dimensions (§3.3.3, Figure 6).
pub mod millicores {
    /// Milli-decode cores per VCU.
    pub const DECODE_PER_VCU: u32 = 3_000;
    /// Milli-encode cores per VCU.
    pub const ENCODE_PER_VCU: u32 = 10_000;
}

/// CPU baseline: dual-socket Skylake, both sockets (Table 1 note 8).
pub mod cpu {
    /// Usable logical cores (Appendix A: "~100 usable logical cores").
    pub const LOGICAL_CORES: usize = 100;
    /// Offline two-pass H.264 software encode throughput of the whole
    /// machine (Table 1: 714 Mpix/s).
    pub const H264_MPIX_S: f64 = 714.0;
    /// Offline two-pass VP9 software throughput (Table 1: 154 Mpix/s).
    pub const VP9_MPIX_S: f64 = 154.0;
    /// CPU MOT derate: chunk-parallel MOT on CPU runs slower per pixel
    /// than SOT due to memory pressure and load imbalance (derived from
    /// the paper's 68.9× VP9-MOT perf/watt claim; §4.1).
    pub const MOT_FACTOR: f64 = 0.56;
    /// Active power draw of the dual-socket host under transcode load,
    /// watts (idle subtracted, as the paper's perf/W comparison does).
    pub const ACTIVE_POWER_W: f64 = 400.0;
    /// Software decode throughput per logical core, Mpix/s. Decode is
    /// roughly 10× cheaper than encode.
    pub const DECODE_MPIX_S_PER_CORE: f64 = 60.0;
}

/// GPU baseline: Nvidia T4 with NVENC-style fixed-function encoders.
pub mod gpu {
    /// H.264 encode throughput per T4 (Table 1: 4 GPUs = 2,484 Mpix/s).
    pub const H264_MPIX_S_PER_GPU: f64 = 621.0;
    /// T4s per baseline system.
    pub const GPUS_PER_SYSTEM: usize = 4;
    /// VP9 encoding support: none (Table 1's dash).
    pub const SUPPORTS_VP9_ENCODE: bool = false;
}

/// VCU host power (active), watts: host CPU + trays; calibrated so the
/// 20-VCU system reproduces the paper's 6.7× H.264-SOT perf/W claim.
pub const VCU_HOST_BASE_POWER_W: f64 = 250.0;
/// Active power per VCU card (2 VCUs), watts.
pub const VCU_CARD_POWER_W: f64 = 100.0;

/// Host network interface (Appendix A.2): 100 Gbps.
pub const HOST_NIC_GBPS: f64 = 100.0;
/// Network-bound transcoding ceiling per host (Appendix A.2:
/// "~153 Gpixel/s for each accelerator host").
pub const HOST_NET_CEILING_GPIX_S: f64 = 153.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_core_hits_2160p60() {
        let bottleneck = [
            stage_cycles::MOTION_RDO,
            stage_cycles::ENTROPY,
            stage_cycles::LOOPFILTER,
            stage_cycles::DMA,
        ]
        .into_iter()
        .max()
        .unwrap();
        let mpix_s = CORE_CLOCK_HZ / bottleneck as f64 * 256.0 / 1e6;
        // Must cover 2160p60 (≈ 498 Mpix/s) with a little headroom.
        assert!(
            mpix_s >= REF_STREAM_MPIX_S,
            "core rate {mpix_s:.0} below 2160p60 {REF_STREAM_MPIX_S:.0}"
        );
        assert!(
            mpix_s < REF_STREAM_MPIX_S * 1.2,
            "core unrealistically fast"
        );
    }

    #[test]
    fn dram_budget_matches_paper_envelope() {
        // §3.3.1: "the VCU needs ~27-37 GiB/s of DRAM bandwidth".
        let enc_typ = dram::ENCODE_2160P60_REFCOMP_GIB_S;
        let dec = dram::DECODE_2160P60_GIB_S;
        // 10 encoder streams + a few decodes in flight.
        let demand = 10.0 * enc_typ + 3.0 * dec;
        assert!(demand > 25.0 && demand < 38.0, "demand {demand}");
        assert!(dram::RAW_GIB_S * dram::EFFICIENCY > demand * 0.8);
    }

    #[test]
    fn table1_cpu_ratio() {
        // VP9 is 4-5x slower than H.264 in software (Table 1).
        let ratio = cpu::H264_MPIX_S / cpu::VP9_MPIX_S;
        assert!((4.0..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn host_has_twenty_vcus() {
        assert_eq!(VCUS_PER_HOST, 20);
    }
}
