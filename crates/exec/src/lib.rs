//! `vcu-exec`: the persistent work-stealing executor behind every
//! multi-core path in the workspace (chunk-parallel encoding, the
//! fault-campaign cell sweep, bench repetitions).
//!
//! The paper's fleet throughput comes from keeping a fixed worker set
//! saturated with independent chunks (§3), not from spawning threads
//! per request. This crate is that discipline in miniature: a process
//! lives with one [`Pool`] of persistent workers, callers submit
//! *batches* of independent tasks, and the pool returns results in
//! task-index order — so output is byte-identical to sequential
//! execution for any worker count, while wall-clock tracks the
//! critical path instead of the worst static share.
//!
//! # Architecture
//!
//! A batch of `n` tasks at parallelism `p` is seeded round-robin into
//! `p` *lane* deques (task `i` starts in lane `i % p` — the old static
//! assignment survives only as the initial distribution). The batch is
//! then published to the shared injector, where idle workers claim
//! lanes. Each participant pops its own lane **LIFO** (back) and, when
//! empty, steals **FIFO** (front) from sibling lanes — oldest-first
//! stealing moves the biggest remaining prefix of work, which is what
//! erases the tail imbalance of static round-robin (the last partial
//! chunk, the variable-cost fault-campaign cell).
//!
//! The submitting thread always participates as lane 0, which makes
//! the pool deadlock-free by construction: even with zero free
//! workers the caller drains its whole batch by stealing. It also
//! means parallelism 1 never crosses a thread boundary.
//!
//! # Determinism
//!
//! Tasks share nothing and every result lands in its own index-ordered
//! slot, so scheduling order — however steal-heavy — cannot perturb
//! what the caller observes. Panics are *joined*: the batch always
//! runs to completion, then the panic of the lowest-index failed task
//! is re-raised via [`std::panic::resume_unwind`].
//!
//! # Telemetry
//!
//! The pool meters itself (push/steal counters, queue-depth samples,
//! per-worker busy time, wall-clock `exec.tasks` spans) into internal
//! buffers. These are wall-clock facts and therefore *not*
//! deterministic, so they are never written into a caller's registry
//! implicitly; call [`Pool::record_telemetry`] to dump them into a
//! registry whose snapshot is allowed to vary run-to-run (the bench
//! harness does this for every `*_telemetry.json` sibling).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;
use vcu_telemetry::{Registry, Scope};

/// Hard ceiling on spawned worker threads (the caller thread is free).
const MAX_WORKERS: usize = 64;
/// Cap on detailed telemetry samples (spans, busy stints, depth
/// samples) retained per pool; counters keep counting past it.
const DETAIL_CAP: usize = 4096;

/// Reads the `VCU_THREADS` environment variable: the fleet-style
/// parallelism knob shared by chunk-parallel encoding, the campaign
/// sweep, and bench repetitions. Unset, empty, unparsable, or zero all
/// fall back to 1 (sequential).
pub fn env_threads() -> usize {
    std::env::var("VCU_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The process-wide pool. Workers are spawned lazily up to the highest
/// parallelism ever requested and then persist for the process
/// lifetime, parked on a condvar between batches.
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// An erased, lifetime-laundered task plus its pool-lifetime id (used
/// only to label telemetry spans).
type Job = (u64, Box<dyn FnOnce() + Send + 'static>);

/// One published batch: `p` lane deques plus completion bookkeeping.
struct BatchCore {
    /// Per-participant deques; own pops are LIFO, steals FIFO.
    lanes: Vec<Mutex<VecDeque<Job>>>,
    /// Tasks not yet finished.
    remaining: AtomicUsize,
    /// Completion latch the submitter blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl BatchCore {
    fn new(p: usize, n: usize) -> Self {
        BatchCore {
            lanes: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Marks one task finished; the last one flips the latch. The
    /// AcqRel RMW chain on `remaining` is what publishes every task's
    /// slot write to the submitter before it reads results.
    fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("done latch") = true;
            self.done_cv.notify_all();
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().expect("done latch");
        while !*done {
            done = self.done_cv.wait(done).expect("done latch");
        }
    }
}

/// A batch sitting in the shared injector with lanes still unclaimed.
struct Pending {
    batch: Arc<BatchCore>,
    next_lane: usize,
}

struct PoolState {
    /// The shared injector: batches whose lanes workers can still claim.
    injector: VecDeque<Pending>,
    /// Spawned worker threads (the submitting thread is id 0).
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    shutdown: bool,
}

/// Pool-lifetime scheduler metering. Counters are cheap atomics on the
/// per-task path; the detailed buffers are bounded by [`DETAIL_CAP`].
struct Stats {
    pushes: AtomicU64,
    steals: AtomicU64,
    own_pops: AtomicU64,
    tasks: AtomicU64,
    batches: AtomicU64,
    next_task_id: AtomicU64,
    /// Tasks pushed but not yet started, across all live batches.
    queued: AtomicUsize,
    detail: Mutex<Detail>,
}

#[derive(Default)]
struct Detail {
    /// (worker, busy ms) per lane stint.
    busy_ms: Vec<(usize, f64)>,
    /// (elapsed s since pool creation, queued tasks) at task starts.
    depth: Vec<(f64, f64)>,
    /// (task id, worker, start s, end s) wall-clock execution spans.
    spans: Vec<(u64, usize, f64, f64)>,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    epoch: Instant,
    stats: Stats,
}

/// A persistent work-stealing worker pool. Most code should use the
/// process-wide [`pool()`]; tests construct private instances.
pub struct Pool {
    shared: Arc<Shared>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

/// Writes `Some(result)` into a result slot it does not own by Rust
/// lifetime rules; soundness is the batch barrier (see `run_batch`).
struct SlotPtr<T>(*const Mutex<Option<std::thread::Result<T>>>);
// Safety: the pointee is only accessed by the one task holding the
// pointer (unique index) and by the submitter strictly after the
// completion latch, so sending the pointer across threads is safe
// whenever the result itself is.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// Blocks until the batch completes, *even if the submitting frame
/// unwinds* — the borrows captured by still-running tasks must not be
/// invalidated by an early return.
struct WaitGuard<'a> {
    batch: &'a BatchCore,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.batch.wait_done();
    }
}

impl Pool {
    /// Creates an empty pool; workers spawn lazily on first demand.
    pub fn new() -> Self {
        Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    injector: VecDeque::new(),
                    workers: 0,
                    handles: Vec::new(),
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                epoch: Instant::now(),
                stats: Stats {
                    pushes: AtomicU64::new(0),
                    steals: AtomicU64::new(0),
                    own_pops: AtomicU64::new(0),
                    tasks: AtomicU64::new(0),
                    batches: AtomicU64::new(0),
                    next_task_id: AtomicU64::new(0),
                    queued: AtomicUsize::new(0),
                    detail: Mutex::new(Detail::default()),
                },
            }),
        }
    }

    /// Runs `tasks` at the given parallelism and returns their results
    /// **in task-index order**, exactly as a sequential
    /// `tasks.into_iter().map(|t| t()).collect()` would — scheduling
    /// can never reorder or perturb what the caller observes.
    ///
    /// `parallelism` bounds concurrency for this batch only (clamped to
    /// `1..=tasks.len()`); the submitting thread always participates,
    /// so parallelism `p` occupies the caller plus at most `p - 1`
    /// pool workers. At parallelism 1 the batch runs inline on the
    /// caller with no queues or locks touched.
    ///
    /// # Panics
    ///
    /// If tasks panic, the batch still runs to completion (all sibling
    /// tasks finish — nothing is cancelled or leaked mid-scope), then
    /// the panic payload of the *lowest-index* failed task is re-raised
    /// on the caller. At parallelism 1 a panic propagates immediately,
    /// matching plain sequential iteration.
    pub fn run_batch<T, F>(&self, parallelism: usize, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let p = parallelism.max(1).min(n);
        if p == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        self.ensure_workers(p - 1);
        let stats = &self.shared.stats;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.pushes.fetch_add(n as u64, Ordering::Relaxed);
        stats.queued.fetch_add(n, Ordering::Relaxed);
        let base_id = stats.next_task_id.fetch_add(n as u64, Ordering::Relaxed);

        type Slot<T> = Mutex<Option<std::thread::Result<T>>>;
        let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let batch = Arc::new(BatchCore::new(p, n));
        for (i, task) in tasks.into_iter().enumerate() {
            let slot = SlotPtr(&slots[i] as *const Slot<T>);
            let core = Arc::clone(&batch);
            // Completion is signalled by `run_lane` (not here) so that
            // per-task metering lands before the batch latch flips —
            // otherwise a telemetry dump could race lagging samples.
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Capture the whole wrapper, not its raw-pointer field
                // (disjoint capture would sidestep SlotPtr's Send).
                let slot = slot;
                let _core = core; // keep the batch alive through the task
                let result = catch_unwind(AssertUnwindSafe(task));
                // Safety: unique writer (one task per slot); the
                // submitter reads only after the completion latch.
                unsafe {
                    *(*slot.0).lock().expect("result slot") = Some(result);
                }
            });
            // Safety: `WaitGuard` below guarantees this frame does not
            // return (normally or by unwinding) until every job has run
            // and dropped, so the non-'static borrows captured by
            // `task` and `slot` strictly outlive all uses.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + '_>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            batch.lanes[i % p]
                .lock()
                .expect("lane")
                .push_back((base_id + i as u64, job));
        }

        {
            let _barrier = WaitGuard { batch: &batch };
            {
                let mut st = self.shared.state.lock().expect("pool state");
                st.injector.push_back(Pending {
                    batch: Arc::clone(&batch),
                    next_lane: 1, // lane 0 is the submitter's
                });
            }
            self.shared.work_cv.notify_all();
            run_lane(&self.shared, &batch, 0, 0);
            // `_barrier` drops here, blocking until `remaining == 0`.
        }

        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot
                .into_inner()
                .expect("result slot")
                .expect("batch barrier guarantees every task ran")
            {
                Ok(v) => out.push(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }

    /// Spawns workers until `needed` are alive (capped at
    /// [`MAX_WORKERS`]). Idle workers park on the injector condvar, so
    /// over-provisioning costs memory, not CPU.
    fn ensure_workers(&self, needed: usize) {
        let needed = needed.min(MAX_WORKERS);
        let mut st = self.shared.state.lock().expect("pool state");
        while st.workers < needed {
            st.workers += 1;
            let id = st.workers; // submitter is 0, workers are 1..
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("vcu-exec-{id}"))
                .spawn(move || worker_main(&shared, id))
                .expect("spawn vcu-exec worker");
            st.handles.push(handle);
        }
    }

    /// Worker threads currently alive (not counting submitters).
    pub fn workers_spawned(&self) -> usize {
        self.shared.state.lock().expect("pool state").workers
    }

    /// Total tasks the pool has executed.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.stats.tasks.load(Ordering::Relaxed)
    }

    /// Tasks obtained by stealing from a sibling lane.
    pub fn tasks_stolen(&self) -> u64 {
        self.shared.stats.steals.load(Ordering::Relaxed)
    }

    /// Dumps the pool's scheduler metering into `reg`:
    /// `exec.{pushes,steals,pops.own,tasks.completed,batches}`
    /// counters, an `exec.workers` gauge, the `exec.worker.busy_ms`
    /// per-stint busy-time histogram, the `exec.queue.depth` series
    /// (sampled at task starts, seconds since pool creation), and
    /// wall-clock `exec.tasks` spans scoped by task id and worker.
    ///
    /// These are wall-clock measurements — **not** deterministic across
    /// runs — which is why they are pulled explicitly instead of being
    /// written into the registries that deterministic paths snapshot.
    pub fn record_telemetry(&self, reg: &Registry) {
        if !reg.is_enabled() {
            return;
        }
        let s = &self.shared.stats;
        reg.counter_add("exec.pushes", s.pushes.load(Ordering::Relaxed));
        reg.counter_add("exec.steals", s.steals.load(Ordering::Relaxed));
        reg.counter_add("exec.pops.own", s.own_pops.load(Ordering::Relaxed));
        reg.counter_add("exec.tasks.completed", s.tasks.load(Ordering::Relaxed));
        reg.counter_add("exec.batches", s.batches.load(Ordering::Relaxed));
        reg.gauge_set("exec.workers", self.workers_spawned() as f64);
        let d = s.detail.lock().expect("stats detail");
        for &(_, ms) in &d.busy_ms {
            reg.observe("exec.worker.busy_ms", ms);
        }
        for &(t, v) in &d.depth {
            reg.series_record("exec.queue.depth", t, v);
        }
        for &(id, worker, start, end) in &d.spans {
            reg.span(
                "exec.tasks",
                Scope::job(id).with_vcu(worker as u32),
                start,
                end,
                1.0,
            );
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let handles = {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            std::mem::take(&mut st.handles)
        };
        self.shared.work_cv.notify_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Claims the next unclaimed lane from the injector, pruning batches
/// that already completed.
fn claim_lane(st: &mut PoolState) -> Option<(Arc<BatchCore>, usize)> {
    while let Some(front) = st.injector.front_mut() {
        if front.batch.remaining.load(Ordering::Acquire) == 0 {
            st.injector.pop_front();
            continue;
        }
        let lane = front.next_lane;
        front.next_lane += 1;
        let batch = Arc::clone(&front.batch);
        if front.next_lane >= batch.lanes.len() {
            st.injector.pop_front();
        }
        return Some((batch, lane));
    }
    None
}

fn worker_main(shared: &Arc<Shared>, worker_id: usize) {
    loop {
        let (batch, lane) = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(claim) = claim_lane(&mut st) {
                    break claim;
                }
                st = shared.work_cv.wait(st).expect("pool state");
            }
        };
        run_lane(shared, &batch, lane, worker_id);
    }
}

/// Works one lane of a batch to exhaustion: own lane LIFO, then steal
/// FIFO from sibling lanes in cyclic order. Returns when no queued
/// task remains anywhere in the batch (tasks still *running* on other
/// participants are theirs to finish).
fn run_lane(shared: &Shared, batch: &BatchCore, lane: usize, worker_id: usize) {
    let p = batch.lanes.len();
    let stint = Instant::now();
    let mut ran = 0u64;
    loop {
        let mut job = batch.lanes[lane].lock().expect("lane").pop_back();
        if job.is_some() {
            shared.stats.own_pops.fetch_add(1, Ordering::Relaxed);
        } else {
            for victim in (lane + 1..p).chain(0..lane) {
                if let Some(j) = batch.lanes[victim].lock().expect("lane").pop_front() {
                    shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                    job = Some(j);
                    break;
                }
            }
        }
        let Some((task_id, job)) = job else { break };
        let depth = shared.stats.queued.fetch_sub(1, Ordering::Relaxed) - 1;
        let start_s = shared.epoch.elapsed().as_secs_f64();
        job();
        let end_s = shared.epoch.elapsed().as_secs_f64();
        ran += 1;
        {
            let mut d = shared.stats.detail.lock().expect("stats detail");
            if d.depth.len() < DETAIL_CAP {
                d.depth.push((start_s, depth as f64));
            }
            if d.spans.len() < DETAIL_CAP {
                d.spans.push((task_id, worker_id, start_s, end_s));
            }
        }
        shared.stats.tasks.fetch_add(1, Ordering::Relaxed);
        // Everything above must precede this: the submitter may return
        // (and dump telemetry) the moment the last task finishes.
        batch.finish_one();
    }
    if ran > 0 {
        let mut d = shared.stats.detail.lock().expect("stats detail");
        if d.busy_ms.len() < DETAIL_CAP {
            d.busy_ms
                .push((worker_id, stint.elapsed().as_secs_f64() * 1e3));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_index_order() {
        let pool = Pool::new();
        let tasks: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Later tasks finish first, so execution order and
                    // result order genuinely decouple.
                    std::thread::sleep(Duration::from_micros((64 - i) as u64 * 10));
                    i * i
                }
            })
            .collect();
        let out = pool.run_batch(4, tasks);
        assert_eq!(out, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_one_runs_inline_on_the_caller() {
        let pool = Pool::new();
        let caller = std::thread::current().id();
        let out = pool.run_batch(
            1,
            (0..5)
                .map(|i| move || (i, std::thread::current().id()))
                .collect(),
        );
        assert!(out.iter().all(|&(_, tid)| tid == caller));
        assert_eq!(pool.workers_spawned(), 0, "no threads for sequential work");
    }

    #[test]
    fn parallelism_exceeding_task_count_is_clamped() {
        let pool = Pool::new();
        let out = pool.run_batch(8, (0..3usize).map(|i| move || i + 1).collect());
        assert_eq!(out, vec![1, 2, 3]);
        assert!(pool.workers_spawned() <= 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = Pool::new();
        let out: Vec<u32> = pool.run_batch(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_survive_the_batch() {
        // Tasks borrow caller-stack data; the barrier keeps it alive.
        let pool = Pool::new();
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(13).collect();
        let sums = pool.run_batch(
            3,
            chunks
                .iter()
                .map(|c| move || c.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn panic_joins_all_siblings_then_propagates_lowest_index() {
        let pool = Pool::new();
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(
                4,
                (0..8usize)
                    .map(|i| {
                        let completed = &completed;
                        move || {
                            if i == 2 {
                                std::panic::panic_any("boom-2");
                            }
                            if i == 5 {
                                // Panics *before* task 2 does, but task
                                // 2 wins propagation by index.
                                std::panic::panic_any("boom-5");
                            }
                            std::thread::sleep(Duration::from_millis(5));
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                    .collect(),
            )
        }));
        let payload = result.expect_err("batch must re-raise the panic");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "boom-2");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            6,
            "every non-panicking sibling must run to completion first"
        );
    }

    #[test]
    fn steal_heavy_schedules_do_not_perturb_results() {
        // Many tiny tasks across many workers: maximal scheduling
        // nondeterminism, identical observable output every time.
        let pool = Pool::new();
        let reference: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for round in 0..5 {
            let out = pool.run_batch(
                8,
                (0..200u64)
                    .map(|i| move || i.wrapping_mul(0x9E37))
                    .collect(),
            );
            assert_eq!(out, reference, "round {round} diverged");
        }
        assert_eq!(pool.tasks_executed(), 1000);
    }

    #[test]
    fn unbalanced_batch_tracks_critical_path_not_static_share() {
        // Thirteen tasks at parallelism 4: task 12 is 4x the others and
        // pins lane 0 (LIFO pops it first), leaving three small tasks
        // queued behind it. Static round-robin would serialize lane 0
        // at 400 + 3x100 = 700 ms; stealing must redistribute the
        // queued smalls so wall-clock tracks the ~400 ms critical
        // path. Sleep-based work parallelizes even on a 1-core host,
        // so this regression test is host-independent.
        let pool = Pool::new();
        let t0 = Instant::now();
        pool.run_batch(
            4,
            (0..13u64)
                .map(|i| {
                    move || {
                        let ms = if i == 12 { 400 } else { 100 };
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                })
                .collect(),
        );
        let wall = t0.elapsed();
        assert!(
            wall >= Duration::from_millis(400),
            "critical path is a lower bound"
        );
        assert!(
            wall < Duration::from_millis(550),
            "wall-clock {wall:?} tracks the static share (~700 ms), not \
             the critical path: lane 0's queued tasks were never stolen"
        );
        assert!(pool.tasks_stolen() > 0, "the fix-up must be actual steals");
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = pool(); // the global pool, shared workers
        let out = pool.run_batch(
            2,
            (0..2u64)
                .map(|i| {
                    move || {
                        super::pool()
                            .run_batch(2, (0..4u64).map(|j| move || i * 10 + j).collect())
                            .iter()
                            .sum::<u64>()
                    }
                })
                .collect(),
        );
        assert_eq!(out, vec![6, 46]);
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = Pool::new();
        pool.run_batch(3, (0..6u32).map(|i| move || i).collect());
        let after_first = pool.workers_spawned();
        assert_eq!(after_first, 2);
        for _ in 0..10 {
            pool.run_batch(3, (0..6u32).map(|i| move || i).collect());
        }
        assert_eq!(
            pool.workers_spawned(),
            after_first,
            "batches reuse the persistent worker set"
        );
    }

    #[test]
    fn telemetry_dump_carries_scheduler_metering() {
        let pool = Pool::new();
        pool.run_batch(
            4,
            (0..32u64)
                .map(|i| {
                    move || {
                        std::thread::sleep(Duration::from_millis(1 + i % 3));
                    }
                })
                .collect(),
        );
        let reg = Registry::new();
        pool.record_telemetry(&reg);
        assert_eq!(reg.counter("exec.pushes"), 32);
        assert_eq!(reg.counter("exec.tasks.completed"), 32);
        assert_eq!(reg.counter("exec.batches"), 1);
        assert_eq!(
            reg.counter("exec.pops.own") + reg.counter("exec.steals"),
            32,
            "every task was either an own pop or a steal"
        );
        let busy = reg.histogram("exec.worker.busy_ms").unwrap();
        assert!(busy.count >= 1 && busy.sum > 0.0);
        let depth = reg.series("exec.queue.depth").unwrap();
        assert_eq!(depth.len(), 32, "one depth sample per task start");
        assert_eq!(reg.events_named("exec.tasks").len(), 32);
        // Disabled registries cost nothing and record nothing.
        pool.record_telemetry(&Registry::disabled());
    }

    #[test]
    fn env_threads_parses_and_defaults() {
        // Only read, never set: tests in this binary run concurrently
        // and the variable is process-global.
        let n = env_threads();
        assert!(n >= 1);
    }
}
