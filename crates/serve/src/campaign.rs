//! The serving campaign: a sweep of [`ServeSim`] cells over cache
//! size and fleet scale, rendered as byte-stable JSON.
//!
//! Mirrors the fault-campaign harness in `vcu_cluster::faultsim`: each
//! cell derives everything from `mix64(campaign_seed, cell_idx)` and
//! runs independently, so the sweep fans out across the process-wide
//! work-stealing pool and returns in cell-index order — byte-identical
//! output for every `VCU_THREADS` value. `results/serve_campaign.json`
//! pins the full sweep in CI; the smoke variant runs in seconds.
//!
//! The full sweep answers the headline questions:
//!
//! - **cache sweep** (fixed viewers/fleet, growing cache): TTFF p99
//!   and the egress-vs-transcode cost split as the hit ratio climbs;
//! - **scale sweep** (growing everything): does the co-designed stack
//!   hold TTFF and rebuffer rate at ≥ 1M concurrent viewers?

use crate::sim::{ServeConfig, ServeSim};
use vcu_rng::mix64;

/// One cell of the sweep: a viewer population against a fleet + cache.
#[derive(Debug, Clone, Copy)]
pub struct ServeCellSpec {
    /// Target steady-state concurrent viewers.
    pub viewers: usize,
    /// Transcode fleet size.
    pub vcus: usize,
    /// Segment-cache capacity, segments.
    pub cache_segments: usize,
    /// Catalog size, videos.
    pub catalog_videos: usize,
    /// Arrival window, seconds.
    pub horizon_s: f64,
}

/// Campaign configuration: a seed and the cell list.
#[derive(Debug, Clone)]
pub struct ServeCampaignConfig {
    /// Campaign seed; cell `i` runs with `mix64(seed, i)`.
    pub seed: u64,
    /// Cells, run in order.
    pub cells: Vec<ServeCellSpec>,
}

impl ServeCampaignConfig {
    /// The full sweep behind `results/serve_campaign.json`: a cache
    /// sweep at fixed scale, then a scale sweep up to 1.2M target
    /// concurrent viewers (≥ 1M observed peak).
    pub fn full(seed: u64) -> Self {
        let cache_sweep = [8_192usize, 32_768, 131_072]
            .into_iter()
            .map(|cache| ServeCellSpec {
                viewers: 100_000,
                vcus: 1_024,
                cache_segments: cache,
                catalog_videos: 20_000,
                horizon_s: 60.0,
            });
        let scale_sweep = [
            (250_000usize, 2_048usize, 98_304usize, 30_000usize),
            (500_000, 4_096, 196_608, 40_000),
            (1_200_000, 8_192, 393_216, 60_000),
        ]
        .into_iter()
        .map(|(viewers, vcus, cache, catalog)| ServeCellSpec {
            viewers,
            vcus,
            cache_segments: cache,
            catalog_videos: catalog,
            horizon_s: 60.0,
        });
        ServeCampaignConfig {
            seed,
            cells: cache_sweep.chain(scale_sweep).collect(),
        }
    }

    /// A seconds-scale sweep with the same shape (cache sweep + one
    /// larger cell) for CI smoke and tests.
    pub fn smoke(seed: u64) -> Self {
        ServeCampaignConfig {
            seed,
            cells: vec![
                ServeCellSpec {
                    viewers: 1_500,
                    vcus: 32,
                    cache_segments: 256,
                    catalog_videos: 600,
                    horizon_s: 30.0,
                },
                ServeCellSpec {
                    viewers: 1_500,
                    vcus: 32,
                    cache_segments: 1_024,
                    catalog_videos: 600,
                    horizon_s: 30.0,
                },
                ServeCellSpec {
                    viewers: 3_000,
                    vcus: 64,
                    cache_segments: 2_048,
                    catalog_videos: 1_000,
                    horizon_s: 30.0,
                },
            ],
        }
    }
}

/// Reduced metrics of one serve cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCampaignCell {
    /// Target concurrent viewers of the cell.
    pub viewers: u64,
    /// Fleet size.
    pub vcus: u64,
    /// Cache capacity, segments.
    pub cache_segments: u64,
    /// Sessions that arrived.
    pub arrivals: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions shed by admission control.
    pub shed: u64,
    /// Sessions that watched to the end.
    pub completed: u64,
    /// Sessions aborted on permanent transcode failure.
    pub aborted: u64,
    /// Peak concurrent in-playback sessions.
    pub peak_concurrent: u64,
    /// TTFF p50, seconds.
    pub ttff_p50_s: f64,
    /// TTFF p99, seconds.
    pub ttff_p99_s: f64,
    /// Stall time / watch time.
    pub rebuffer_ratio: f64,
    /// Late mid-stream deliveries.
    pub rebuffer_events: u64,
    /// Cache hits / lookups.
    pub hit_ratio: f64,
    /// On-demand transcodes injected.
    pub transcodes: u64,
    /// Transcodes that failed permanently.
    pub transcode_failures: u64,
    /// Segments delivered.
    pub segments_served: u64,
    /// Delivered bytes, GB.
    pub egress_gb: f64,
    /// Egress cost, USD.
    pub egress_cost_usd: f64,
    /// Amortized transcode cost, USD.
    pub transcode_cost_usd: f64,
    /// Fraction of cluster samples above degradation rung 0 (admission
    /// should keep this at zero).
    pub degraded_frac: f64,
}

/// Runs one cell; everything derives from `mix64(cfg.seed, cell)`.
pub fn run_serve_cell(
    cfg: &ServeCampaignConfig,
    spec: &ServeCellSpec,
    cell: u64,
) -> ServeCampaignCell {
    let report = ServeSim::new(ServeConfig {
        viewers: spec.viewers,
        horizon_s: spec.horizon_s,
        catalog_videos: spec.catalog_videos,
        cache_segments: spec.cache_segments,
        vcus: spec.vcus,
        seed: mix64(cfg.seed, cell),
        ..ServeConfig::default()
    })
    .run();
    ServeCampaignCell {
        viewers: spec.viewers as u64,
        vcus: spec.vcus as u64,
        cache_segments: spec.cache_segments as u64,
        arrivals: report.arrivals,
        admitted: report.admitted,
        shed: report.shed_sessions,
        completed: report.completed_sessions,
        aborted: report.aborted_sessions,
        peak_concurrent: report.peak_concurrent,
        ttff_p50_s: report.ttff_p50_s,
        ttff_p99_s: report.ttff_p99_s,
        rebuffer_ratio: report.rebuffer_ratio,
        rebuffer_events: report.rebuffer_events,
        hit_ratio: report.hit_ratio,
        transcodes: report.transcodes,
        transcode_failures: report.transcode_failures,
        segments_served: report.segments_served,
        egress_gb: report.egress_gb,
        egress_cost_usd: report.egress_cost_usd,
        transcode_cost_usd: report.transcode_cost_usd,
        degraded_frac: 1.0 - report.cluster.degrade_time_frac[0],
    }
}

/// Runs the sweep across the work-stealing pool; results come back in
/// cell-index order regardless of `VCU_THREADS`.
pub fn run_serve_campaign(cfg: &ServeCampaignConfig) -> Vec<ServeCampaignCell> {
    vcu_exec::pool().run_batch(
        vcu_exec::env_threads(),
        cfg.cells
            .iter()
            .enumerate()
            .map(|(i, spec)| move || run_serve_cell(cfg, spec, i as u64))
            .collect(),
    )
}

/// Fixed-precision float for byte-stable JSON ({:.6} is lossless at
/// the magnitudes involved and avoids shortest-repr jitter).
fn f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Renders the sweep as deterministic JSON: stable key order, one cell
/// per line. Two same-seed runs are byte-identical.
pub fn render_serve_json(cfg: &ServeCampaignConfig, cells: &[ServeCampaignCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"campaign\": {{\"seed\": {}, \"cells\": {}}},\n",
        cfg.seed,
        cells.len()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"viewers\": {}, \"vcus\": {}, \"cache_segments\": {}, \"arrivals\": {}, \
             \"admitted\": {}, \"shed\": {}, \"completed\": {}, \"aborted\": {}, \
             \"peak_concurrent\": {}, \"ttff_p50_s\": {}, \"ttff_p99_s\": {}, \
             \"rebuffer_ratio\": {}, \"rebuffer_events\": {}, \"hit_ratio\": {}, \
             \"transcodes\": {}, \"transcode_failures\": {}, \"segments_served\": {}, \
             \"egress_gb\": {}, \"egress_cost_usd\": {}, \"transcode_cost_usd\": {}, \
             \"degraded_frac\": {}}}{}\n",
            c.viewers,
            c.vcus,
            c.cache_segments,
            c.arrivals,
            c.admitted,
            c.shed,
            c.completed,
            c.aborted,
            c.peak_concurrent,
            f(c.ttff_p50_s),
            f(c.ttff_p99_s),
            f(c.rebuffer_ratio),
            c.rebuffer_events,
            f(c.hit_ratio),
            c.transcodes,
            c.transcode_failures,
            c.segments_served,
            f(c.egress_gb),
            f(c.egress_cost_usd),
            f(c.transcode_cost_usd),
            f(c.degraded_frac),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeCampaignConfig {
        ServeCampaignConfig {
            seed: 11,
            cells: vec![
                ServeCellSpec {
                    viewers: 300,
                    vcus: 16,
                    cache_segments: 128,
                    catalog_videos: 200,
                    horizon_s: 20.0,
                },
                ServeCellSpec {
                    viewers: 300,
                    vcus: 16,
                    cache_segments: 512,
                    catalog_videos: 200,
                    horizon_s: 20.0,
                },
            ],
        }
    }

    #[test]
    fn campaign_is_byte_deterministic() {
        let cfg = tiny();
        let a = render_serve_json(&cfg, &run_serve_campaign(&cfg));
        let b = render_serve_json(&cfg, &run_serve_campaign(&cfg));
        assert_eq!(a, b, "same-seed campaigns must be byte-identical");
        assert!(a.contains("\"ttff_p99_s\""));
    }

    #[test]
    fn seed_steers_the_campaign() {
        let a = run_serve_campaign(&tiny());
        let b = run_serve_campaign(&ServeCampaignConfig { seed: 12, ..tiny() });
        assert_ne!(a, b, "a different seed must move some metric");
    }

    #[test]
    fn cells_account_exactly() {
        for c in run_serve_campaign(&tiny()) {
            assert_eq!(c.arrivals, c.admitted + c.shed);
            assert_eq!(c.admitted, c.completed + c.aborted);
            assert!(c.segments_served > 0);
            assert!(c.peak_concurrent > 0);
        }
    }

    #[test]
    fn hit_ratio_rises_across_the_cache_sweep() {
        let cells = run_serve_campaign(&tiny());
        assert!(
            cells[1].hit_ratio >= cells[0].hit_ratio,
            "4x cache should not hit less: {} vs {}",
            cells[1].hit_ratio,
            cells[0].hit_ratio
        );
    }
}
