//! `vcu-serve`: the online transcode-on-demand serving layer.
//!
//! The batch half of the repo answers "how fast can the fleet chew
//! through a queue"; this crate answers the viewer-facing question the
//! paper's deployment actually ships: what TTFF, rebuffer rate, and
//! egress-vs-transcode cost does a fleet of VCUs deliver to a
//! population of *live* viewers?
//!
//! - [`cache`]: capacity-bounded segment cache — slab-backed LRU with
//!   a popularity-protected tier so scans of the cold tail cannot
//!   evict the head,
//! - [`sim`]: the serving simulator — Poisson viewer arrivals over a
//!   Zipf catalog, per-segment playback with deadline tracking,
//!   deadline-class transcode priorities, miss coalescing, and
//!   admission control that sheds load *before* the cluster's
//!   graceful-degradation ladder arms,
//! - [`campaign`]: the deterministic cache-size × fleet-scale sweep
//!   behind `results/serve_campaign.json`.
//!
//! Everything is a function of the seed: same seed → byte-identical
//! campaign JSON and telemetry snapshots, for any `VCU_THREADS`.

pub mod cache;
pub mod campaign;
pub mod sim;

pub use cache::{key_video, seg_key, SegmentCache};
pub use campaign::{
    render_serve_json, run_serve_campaign, run_serve_cell, ServeCampaignCell, ServeCampaignConfig,
    ServeCellSpec,
};
pub use sim::{AdmissionPolicy, ServeConfig, ServeReport, ServeSim};
