//! Capacity-bounded segment cache with a popularity-protected tier.
//!
//! Two *independent* pure-LRU tiers over transcoded segments:
//!
//! - the **protected** tier holds only segments of popularity-head
//!   videos (the catalog fixes head membership at generation time), so
//!   the head working set — most of the watch time per §2.2 — cannot
//!   be flushed by a scan of one-off tail requests;
//! - the **main** tier holds everything else.
//!
//! A segment's tier is a pure function of its video (never of request
//! history), each tier runs strict LRU, and both tier capacities grow
//! monotonically with the total capacity. Each tier is therefore a
//! stack algorithm — a larger cache's content is a superset of a
//! smaller one's at every point of any fixed trace — which gives the
//! property the gate tests lean on: **hit count is monotone in
//! capacity** at a fixed trace. A plain SLRU with history-dependent
//! promotion would not guarantee that.
//!
//! Implementation: slab-backed intrusive doubly-linked lists (no
//! per-entry allocation after warmup) + one `HashMap` for lookup.

use std::collections::HashMap;

/// Packs a (video, segment) pair into the cache key.
pub fn seg_key(video: u32, segment: u32) -> u64 {
    ((video as u64) << 32) | segment as u64
}

/// Video id of a packed key.
pub fn key_video(key: u64) -> u32 {
    (key >> 32) as u32
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: u32,
    next: u32,
}

/// One slab-backed LRU list: head = most recent, tail = eviction
/// candidate.
#[derive(Debug, Default)]
struct Lru {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl Lru {
    fn new() -> Self {
        Lru {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn push_front(&mut self, key: u64) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    key,
                    prev: NIL,
                    next: self.head,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: self.head,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        idx
    }

    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.len -= 1;
    }

    /// Moves `idx` to the front (most-recently-used position).
    fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        let key = self.nodes[idx as usize].key;
        self.nodes[idx as usize] = Node {
            key,
            prev: NIL,
            next: self.head,
        };
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
    }

    /// Evicts the least-recently-used entry, returning its key.
    fn pop_back(&mut self) -> Option<u64> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        self.free.push(idx);
        Some(self.nodes[idx as usize].key)
    }

    fn remove(&mut self, idx: u32) {
        self.unlink(idx);
        self.free.push(idx);
    }
}

/// The segment cache. Capacity is in segments (uniform-duration
/// segments make bytes proportional to count).
#[derive(Debug)]
pub struct SegmentCache {
    protected_cap: usize,
    main_cap: usize,
    protected: Lru,
    main: Lru,
    /// key → (is_protected_tier, node index within that tier).
    map: HashMap<u64, (bool, u32)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SegmentCache {
    /// A cache of `capacity` total segments, `protected_frac` of which
    /// (rounded up, but always leaving ≥ 1 main slot when capacity
    /// allows) are reserved for popularity-head segments.
    ///
    /// Both tier capacities are non-decreasing in `capacity` (the
    /// protected share gains at most one slot per added slot), which
    /// the monotone-hit-ratio property requires.
    pub fn new(capacity: usize, protected_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&protected_frac),
            "protected_frac must be in [0, 1], got {protected_frac}"
        );
        let protected_cap =
            ((capacity as f64 * protected_frac).ceil() as usize).min(capacity.saturating_sub(1));
        SegmentCache {
            protected_cap,
            main_cap: capacity - protected_cap,
            protected: Lru::new(),
            main: Lru::new(),
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency
    /// on hit.
    pub fn lookup(&mut self, key: u64) -> bool {
        match self.map.get(&key) {
            Some(&(protected, idx)) => {
                if protected {
                    self.protected.touch(idx);
                } else {
                    self.main.touch(idx);
                }
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts a freshly transcoded segment. `head` selects the
    /// protected tier (when one exists); the tier's LRU entry is
    /// evicted if it is full. Re-inserting a present key only
    /// refreshes its recency.
    pub fn insert(&mut self, key: u64, head: bool) {
        if let Some(&(protected, idx)) = self.map.get(&key) {
            if protected {
                self.protected.touch(idx);
            } else {
                self.main.touch(idx);
            }
            return;
        }
        let protected = head && self.protected_cap > 0;
        let cap = if protected {
            self.protected_cap
        } else {
            self.main_cap
        };
        if cap == 0 {
            return; // zero-capacity tier: uncacheable
        }
        let tier_len = if protected {
            self.protected.len
        } else {
            self.main.len
        };
        if tier_len >= cap {
            let evicted = if protected {
                self.protected.pop_back()
            } else {
                self.main.pop_back()
            }
            .expect("full tier has a tail");
            self.map.remove(&evicted);
            self.evictions += 1;
        }
        let idx = if protected {
            self.protected.push_front(key)
        } else {
            self.main.push_front(key)
        };
        self.map.insert(key, (protected, idx));
    }

    /// Drops `key` if present (segment invalidation).
    pub fn invalidate(&mut self, key: u64) {
        if let Some((protected, idx)) = self.map.remove(&key) {
            if protected {
                self.protected.remove(idx);
            } else {
                self.main.remove(idx);
            }
        }
    }

    /// Presence check without touching recency or counters.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Cached segments across both tiers.
    pub fn len(&self) -> usize {
        self.protected.len + self.main.len
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in segments.
    pub fn capacity(&self) -> usize {
        self.protected_cap + self.main_cap
    }

    /// Protected-tier capacity.
    pub fn protected_capacity(&self) -> usize {
        self.protected_cap
    }

    /// Segments currently in the protected tier.
    pub fn protected_len(&self) -> usize {
        self.protected.len
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hits / lookups (0 before any lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays `trace` against a fresh cache of `capacity`: lookup,
    /// then insert on miss (the serving layer's pattern, minus the
    /// transcode latency). Returns the cache.
    fn replay(capacity: usize, frac: f64, trace: &[(u64, bool)]) -> SegmentCache {
        let mut c = SegmentCache::new(capacity, frac);
        for &(key, head) in trace {
            if !c.lookup(key) {
                c.insert(key, head);
            }
        }
        c
    }

    #[test]
    fn never_exceeds_capacity() {
        let trace: Vec<(u64, bool)> = (0..10_000u64).map(|i| (i % 321, i % 7 == 0)).collect();
        for cap in [1, 2, 3, 8, 64, 100] {
            let c = replay(cap, 0.25, &trace);
            assert!(c.len() <= cap, "cap {cap}: len {}", c.len());
            assert!(c.protected_len() <= c.protected_capacity());
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SegmentCache::new(2, 0.0);
        c.insert(1, false);
        c.insert(2, false);
        c.lookup(1); // 1 is now MRU
        c.insert(3, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn protected_survives_scan() {
        // Head segments go in, then a huge one-shot tail scan; the
        // protected tier must keep every head segment.
        let mut c = SegmentCache::new(100, 0.2); // 20 protected + 80 main
        for k in 0..20u64 {
            c.insert(seg_key(1, k as u32), true);
        }
        for k in 0..5_000u64 {
            let key = seg_key(1000 + k as u32, 0);
            assert!(!c.lookup(key));
            c.insert(key, false);
        }
        for k in 0..20u64 {
            assert!(
                c.contains(seg_key(1, k as u32)),
                "head segment {k} flushed by the scan"
            );
        }
        assert!(c.len() <= 100);
    }

    #[test]
    fn hits_monotone_in_capacity() {
        // Stack property: on a fixed trace, a bigger cache never hits
        // less. Zipf-ish synthetic trace mixing head and tail.
        let mut rng = vcu_rng::Rng::seed_from_u64(11);
        let trace: Vec<(u64, bool)> = (0..30_000)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    (
                        seg_key(rng.gen_range(0u32..40), rng.gen_range(0u32..6)),
                        true,
                    )
                } else {
                    (
                        seg_key(rng.gen_range(1000u32..9000), rng.gen_range(0u32..6)),
                        false,
                    )
                }
            })
            .collect();
        let mut last_hits = 0u64;
        for cap in [16, 64, 256, 1024, 4096] {
            let c = replay(cap, 0.2, &trace);
            assert!(
                c.hits() >= last_hits,
                "cap {cap}: hits {} < smaller cache's {last_hits}",
                c.hits()
            );
            last_hits = c.hits();
        }
    }

    #[test]
    fn tiny_caches_work() {
        // capacity 1 → all main; capacity 0 → nothing cacheable.
        let mut c = SegmentCache::new(1, 0.5);
        assert_eq!(c.protected_capacity(), 0);
        c.insert(7, true); // head falls back to the main tier
        assert!(c.contains(7));
        c.insert(8, false);
        assert!(!c.contains(7), "capacity-1 cache holds exactly one");

        let mut z = SegmentCache::new(0, 0.5);
        z.insert(7, true);
        assert!(!z.contains(7));
        assert_eq!(z.len(), 0);
    }

    #[test]
    fn invalidate_frees_space() {
        let mut c = SegmentCache::new(2, 0.0);
        c.insert(1, false);
        c.insert(2, false);
        c.invalidate(1);
        assert_eq!(c.len(), 1);
        c.insert(3, false);
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn counters_track_lookups() {
        let mut c = SegmentCache::new(4, 0.0);
        assert!(!c.lookup(1));
        c.insert(1, false);
        assert!(c.lookup(1));
        assert!(c.lookup(1));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
