//! The viewer-facing serving simulation.
//!
//! Viewers arrive as a Poisson stream sized by Little's law, pick a
//! video from the popularity-weighted catalog, and play it back as a
//! sequence of fixed-duration segment requests:
//!
//! - **cache hit** → the segment is delivered after a small edge
//!   latency;
//! - **cache miss** → an on-demand transcode job is injected into the
//!   open-world [`ClusterSim`] with a deadline-class priority
//!   (TTFF-critical first segment → `Critical`, steady-state prefetch
//!   → `Normal`); concurrent misses for the same segment coalesce onto
//!   the one in-flight job;
//! - **admission control** → when outstanding transcode work exceeds
//!   the fleet's near-term capacity, new sessions are shed at the door
//!   — deliberately *before* the cluster's graceful-degradation ladder
//!   would engage (the admission threshold sits below the ladder's
//!   first backlog rung), so overload degrades the edge metric
//!   (sessions turned away) instead of the fleet's health machinery.
//!
//! The two event queues — the serve queue and the cluster's — advance
//! in lockstep by always processing the earlier next event, cluster
//! first on ties so a transcode resolving at time `t` is visible to
//! every serve event at `t`. Everything is deterministic in the seed;
//! the campaign layer fans independent cells out across threads
//! without breaking byte-identity.

use crate::cache::{key_video, seg_key, SegmentCache};
use std::collections::HashMap;
use vcu_chip::{ResourceDemand, System, TranscodeJob, VcuModel};
use vcu_cluster::des::EventQueue;
use vcu_cluster::sim::{
    ClusterConfig, ClusterReport, ClusterSim, JobResolution, JobSpec, Priority,
};
use vcu_cluster::tco::system_tco;
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_rng::{mix64, Rng};
use vcu_telemetry::{Registry, Scope};
use vcu_workloads::{Catalog, PopularityModel, ViewerSessions};

/// Seconds in the TCO model's 3-year amortization window.
const THREE_YEARS_S: f64 = 3.0 * 365.25 * 24.0 * 3600.0;

/// Egress price, $/GB (public-cloud CDN ballpark).
const EGRESS_USD_PER_GB: f64 = 0.02;

/// Encoded bits per output pixel (≈2.5 Mb/s at 720p30).
const BITS_PER_PIXEL: f64 = 0.09;

/// Admission control: shed arriving sessions while the transcode
/// backlog exceeds what the fleet can clear promptly.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Master switch; disabled, overload falls through to the
    /// cluster's degradation ladder instead.
    pub enabled: bool,
    /// Outstanding transcodes allowed per VCU *beyond* its concurrent
    /// slots before arrivals shed. Must sit below the degradation
    /// ladder's first backlog rung (4.0 queued per worker by default)
    /// for shed-before-degrade to hold.
    pub max_queued_per_worker: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            enabled: true,
            max_queued_per_worker: 2.0,
        }
    }
}

/// Serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target steady-state concurrent viewers (Little's law sizes the
    /// arrival rate).
    pub viewers: usize,
    /// Arrival window, seconds: sessions arrive in `[0, horizon_s)`
    /// and the sim drains every admitted session afterwards.
    pub horizon_s: f64,
    /// Segment duration, seconds.
    pub segment_s: f64,
    /// Catalog size in videos.
    pub catalog_videos: usize,
    /// Segment count per video, inclusive range.
    pub seg_min: u32,
    /// Upper bound of the per-video segment count.
    pub seg_max: u32,
    /// Segment-cache capacity in segments.
    pub cache_segments: usize,
    /// Fraction of the cache reserved for popularity-head segments.
    pub protected_frac: f64,
    /// Transcode fleet size (VCUs).
    pub vcus: usize,
    /// Admission control policy.
    pub admission: AdmissionPolicy,
    /// Edge delivery latency on a cache hit, seconds.
    pub hit_latency_s: f64,
    /// Output resolution of on-demand transcodes.
    pub resolution: Resolution,
    /// Output frame rate.
    pub fps: f64,
    /// Telemetry sampling period, seconds.
    pub sample_period_s: f64,
    /// Seed; catalog, arrivals, and cluster all derive from it.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            viewers: 10_000,
            horizon_s: 60.0,
            segment_s: 4.0,
            catalog_videos: 2_000,
            seg_min: 4,
            seg_max: 8,
            cache_segments: 4_096,
            protected_frac: 0.2,
            vcus: 64,
            admission: AdmissionPolicy::default(),
            hit_latency_s: 0.05,
            resolution: Resolution::R720,
            fps: 30.0,
            sample_period_s: 5.0,
            seed: 42,
        }
    }
}

impl ServeConfig {
    /// The uniform on-demand transcode job a cache miss injects.
    pub fn transcode_job(&self) -> TranscodeJob {
        TranscodeJob::mot(self.resolution, Profile::Vp9Sim, self.fps, self.segment_s)
    }

    /// Concurrent transcode jobs one healthy VCU fits (the binding
    /// scheduler dimension), for capacity and cost math.
    pub fn slots_per_worker(&self) -> u64 {
        let d = VcuModel::new().job_demand(&self.transcode_job());
        let cap = ResourceDemand::vcu_capacity();
        [
            cap.millidecode / d.millidecode.max(1),
            cap.milliencode / d.milliencode.max(1),
            cap.dram_mib / d.dram_mib.max(1),
            cap.host_mcpu / d.host_mcpu.max(1),
        ]
        .into_iter()
        .min()
        .unwrap()
        .max(1) as u64
    }
}

/// End-of-run report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions that arrived during the window.
    pub arrivals: u64,
    /// Sessions admitted (`arrivals - shed_sessions`).
    pub admitted: u64,
    /// Sessions shed by admission control.
    pub shed_sessions: u64,
    /// Admitted sessions that received every segment.
    pub completed_sessions: u64,
    /// Admitted sessions aborted by a permanently failed transcode.
    pub aborted_sessions: u64,
    /// Maximum concurrent in-playback sessions observed.
    pub peak_concurrent: u64,
    /// Sim time of the first admission shed, if any.
    pub first_shed_s: Option<f64>,
    /// Time-to-first-frame percentiles over admitted sessions that got
    /// a first segment, seconds.
    pub ttff_p50_s: f64,
    /// TTFF p99, seconds.
    pub ttff_p99_s: f64,
    /// Mean TTFF, seconds.
    pub ttff_mean_s: f64,
    /// Mid-stream deliveries that arrived after their playback
    /// deadline.
    pub rebuffer_events: u64,
    /// Total stall time / total watch time.
    pub rebuffer_ratio: f64,
    /// Segment-cache hits.
    pub cache_hits: u64,
    /// Segment-cache misses.
    pub cache_misses: u64,
    /// Hits / lookups.
    pub hit_ratio: f64,
    /// On-demand transcode jobs injected.
    pub transcodes: u64,
    /// Transcode jobs that failed permanently.
    pub transcode_failures: u64,
    /// Segments delivered to viewers.
    pub segments_served: u64,
    /// Delivered bytes, GB.
    pub egress_gb: f64,
    /// Egress cost at [`EGRESS_USD_PER_GB`].
    pub egress_cost_usd: f64,
    /// VCU time spent transcoding, amortized against the fleet's TCO.
    pub transcode_cost_usd: f64,
    /// The underlying cluster's report.
    pub cluster: ClusterReport,
}

impl ServeReport {
    /// First sample time at which the cluster's degradation ladder sat
    /// above rung 0, if it ever engaged.
    pub fn first_degrade_s(&self) -> Option<f64> {
        self.cluster
            .samples
            .iter()
            .find(|s| s.degrade_level > 0)
            .map(|s| s.time_s)
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// One viewer arrives (chains the next arrival).
    Arrival,
    /// Segment `segment` reaches session `session`.
    Deliver { session: u32, segment: u32 },
    /// Session `session` finishes playing its last segment and leaves.
    Finish { session: u32 },
    /// Telemetry sampling tick.
    Sample,
}

#[derive(Debug, Clone, Copy)]
struct Session {
    video: u32,
    arrival_s: f64,
    /// Playback deadline of the next segment (valid once segment 0
    /// delivered).
    next_due_s: f64,
    delivered: u32,
    total: u32,
    stall_s: f64,
}

/// A transcode in flight for one segment; later misses for the same
/// segment coalesce here instead of injecting duplicate jobs.
#[derive(Debug)]
struct InFlight {
    waiters: Vec<u32>,
}

/// The serving simulator. Build with [`ServeSim::new`], optionally
/// attach telemetry, then [`ServeSim::run`].
pub struct ServeSim {
    cfg: ServeConfig,
    catalog: Catalog,
    arrivals_model: ViewerSessions,
    cache: SegmentCache,
    cluster: ClusterSim,
    queue: EventQueue<Ev>,
    rng: Rng,
    sessions: Vec<Session>,
    free_slots: Vec<u32>,
    in_flight: HashMap<u64, InFlight>,
    /// Cluster job index → segment key.
    job_seg: HashMap<usize, u64>,
    /// Transcodes injected but not yet resolved.
    outstanding: u64,
    /// Admission threshold in absolute outstanding transcodes.
    admit_limit: f64,
    more_arrivals: bool,
    // Tallies.
    arrivals: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    aborted: u64,
    active: u64,
    peak_concurrent: u64,
    first_shed_s: Option<f64>,
    ttff: Vec<f64>,
    ttff_sum: f64,
    rebuffer_events: u64,
    stall_s_total: f64,
    watch_s_total: f64,
    segments_served: u64,
    transcodes: u64,
    transcode_failures: u64,
    telemetry: Registry,
}

impl ServeSim {
    /// Builds the simulator: catalog, cache, and an open-world cluster,
    /// all seeded from `cfg.seed`.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.viewers > 0, "no viewers");
        assert!(cfg.horizon_s > 0.0, "empty horizon");
        assert!(cfg.segment_s > 0.0, "zero-length segments");
        let catalog = Catalog::generate(
            cfg.catalog_videos,
            &PopularityModel::default(),
            cfg.seg_min,
            cfg.seg_max,
            mix64(cfg.seed, 1),
        );
        let arrivals_model = ViewerSessions {
            target_concurrent: cfg.viewers as f64,
            mean_session_s: catalog.mean_segments() * cfg.segment_s,
        };
        let cluster = ClusterSim::new(
            ClusterConfig {
                vcus: cfg.vcus,
                sample_period_s: cfg.sample_period_s,
                degrade: vcu_cluster::DegradePolicy {
                    enabled: true,
                    ..vcu_cluster::DegradePolicy::default()
                },
                seed: mix64(cfg.seed, 2),
                ..ClusterConfig::default()
            },
            Vec::new(),
            Vec::new(),
        )
        .open_world();
        let cache = SegmentCache::new(cfg.cache_segments, cfg.protected_frac);
        let rng = Rng::seed_from_u64(mix64(cfg.seed, 3));
        let slots = cfg.slots_per_worker() as f64;
        let admit_limit = cfg.vcus as f64 * (slots + cfg.admission.max_queued_per_worker);
        ServeSim {
            cfg,
            catalog,
            arrivals_model,
            cache,
            cluster,
            queue: EventQueue::new(),
            rng,
            sessions: Vec::new(),
            free_slots: Vec::new(),
            in_flight: HashMap::new(),
            job_seg: HashMap::new(),
            outstanding: 0,
            admit_limit,
            more_arrivals: true,
            arrivals: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            aborted: 0,
            active: 0,
            peak_concurrent: 0,
            first_shed_s: None,
            ttff: Vec::new(),
            ttff_sum: 0.0,
            rebuffer_events: 0,
            stall_s_total: 0.0,
            watch_s_total: 0.0,
            segments_served: 0,
            transcodes: 0,
            transcode_failures: 0,
            telemetry: Registry::disabled(),
        }
    }

    /// Attaches a telemetry registry (shared with the inner cluster):
    /// TTFF and rebuffer histograms, concurrency / hit-ratio / backlog
    /// series, shed counters and events — all on the DES sim clock, so
    /// same-seed snapshots are byte-identical.
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.cluster.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Runs to completion: arrivals stop at the horizon, every
    /// admitted session drains (all segments delivered or the session
    /// aborted on a failed transcode), and the report closes over both
    /// layers.
    pub fn run(mut self) -> ServeReport {
        let t0 = self.arrivals_model.next_interarrival_s(&mut self.rng);
        if t0 < self.cfg.horizon_s {
            self.queue.schedule(t0, Ev::Arrival);
        } else {
            self.more_arrivals = false;
        }
        if self.telemetry.is_enabled() {
            self.queue.schedule(self.cfg.sample_period_s, Ev::Sample);
        }
        loop {
            let ts = self.queue.next_time();
            let tc = self.cluster.next_event_time();
            // Process the earlier queue; the cluster wins ties so a
            // transcode resolving at `t` is cached before any serve
            // event at `t` looks for it.
            let step_cluster = match (ts, tc) {
                (Some(s), Some(c)) => c <= s,
                // Only the cluster's recurring samples remain; step it
                // only while it still owes us resolutions.
                (None, Some(_)) => self.outstanding > 0,
                (Some(_), None) => false,
                (None, None) => false,
            };
            if step_cluster {
                self.cluster.step();
                for r in self.cluster.drain_resolutions() {
                    self.on_resolution(r);
                }
            } else if let Some(ev) = self.queue.pop() {
                match ev.event {
                    Ev::Arrival => self.handle_arrival(ev.time),
                    Ev::Deliver { session, segment } => {
                        self.handle_deliver(ev.time, session, segment)
                    }
                    Ev::Finish { session } => self.handle_finish(session),
                    Ev::Sample => self.handle_sample(ev.time),
                }
            } else {
                break;
            }
        }
        self.finish()
    }

    fn handle_arrival(&mut self, now: f64) {
        self.arrivals += 1;
        // Chain the next arrival first so the arrival process never
        // depends on admission state.
        let gap = self.arrivals_model.next_interarrival_s(&mut self.rng);
        if now + gap < self.cfg.horizon_s {
            self.queue.schedule(now + gap, Ev::Arrival);
        } else {
            self.more_arrivals = false;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("serve.sessions.arrived");
        }
        // Admission control: shed before the fleet's own ladder would
        // have to react.
        if self.cfg.admission.enabled && self.outstanding as f64 > self.admit_limit {
            self.shed += 1;
            self.first_shed_s.get_or_insert(now);
            if self.telemetry.is_enabled() {
                self.telemetry.counter_inc("serve.shed");
                self.telemetry
                    .event("serve.shed", Scope::none(), now, self.outstanding as f64);
            }
            return;
        }
        self.admitted += 1;
        self.active += 1;
        self.peak_concurrent = self.peak_concurrent.max(self.active);
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("serve.sessions.admitted");
        }
        let video = self.catalog.sample(&mut self.rng);
        let session = Session {
            video,
            arrival_s: now,
            next_due_s: f64::INFINITY,
            delivered: 0,
            total: self.catalog.segments(video),
            stall_s: 0.0,
        };
        let sid = match self.free_slots.pop() {
            Some(i) => {
                self.sessions[i as usize] = session;
                i
            }
            None => {
                self.sessions.push(session);
                (self.sessions.len() - 1) as u32
            }
        };
        self.request_segment(now, sid, 0);
    }

    /// Issues the request for `segment` of session `sid`: cache hit →
    /// delivery after the edge latency; miss → coalesce onto (or
    /// inject) the transcode.
    fn request_segment(&mut self, now: f64, sid: u32, segment: u32) {
        let video = self.sessions[sid as usize].video;
        let key = seg_key(video, segment);
        if self.cache.lookup(key) {
            self.queue.schedule(
                now + self.cfg.hit_latency_s,
                Ev::Deliver {
                    session: sid,
                    segment,
                },
            );
            return;
        }
        if let Some(fl) = self.in_flight.get_mut(&key) {
            fl.waiters.push(sid);
            return;
        }
        // Deadline classes: the first segment gates TTFF (Critical);
        // the rest are prefetches running one segment ahead of
        // playback (Normal).
        let priority = if segment == 0 {
            Priority::Critical
        } else {
            Priority::Normal
        };
        let job = self.cluster.inject_job(JobSpec {
            arrival_s: now,
            job: self.cfg.transcode_job(),
            priority,
            video_id: video as u64,
        });
        self.in_flight.insert(key, InFlight { waiters: vec![sid] });
        self.job_seg.insert(job, key);
        self.outstanding += 1;
        self.transcodes += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("serve.transcodes");
        }
    }

    fn handle_deliver(&mut self, now: f64, sid: u32, segment: u32) {
        self.segments_served += 1;
        let s = &mut self.sessions[sid as usize];
        if segment == 0 {
            let ttff = now - s.arrival_s;
            s.next_due_s = now + self.cfg.segment_s;
            self.ttff.push(ttff);
            self.ttff_sum += ttff;
            if self.telemetry.is_enabled() {
                self.telemetry.observe("serve.ttff_s", ttff);
            }
        } else {
            // The segment was due when its predecessor finished
            // playing; a late delivery is a rebuffer stall.
            if now > s.next_due_s {
                let stall = now - s.next_due_s;
                s.stall_s += stall;
                self.rebuffer_events += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.observe("serve.rebuffer_s", stall);
                }
            }
            s.next_due_s = now.max(s.next_due_s) + self.cfg.segment_s;
        }
        s.delivered = segment + 1;
        if s.delivered == s.total {
            // All segments buffered; the viewer stays until the last
            // one finishes *playing* (that's what "concurrent
            // viewers" measures), which is exactly `next_due_s`.
            let end = s.next_due_s;
            self.queue.schedule(end, Ev::Finish { session: sid });
        } else {
            self.request_segment(now, sid, segment + 1);
        }
    }

    fn handle_finish(&mut self, sid: u32) {
        let s = self.sessions[sid as usize];
        self.watch_s_total += s.total as f64 * self.cfg.segment_s;
        self.stall_s_total += s.stall_s;
        self.completed += 1;
        self.active -= 1;
        self.free_slots.push(sid);
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("serve.sessions.completed");
        }
    }

    /// Applies one cluster job resolution: cache + deliver to all
    /// coalesced waiters on success; abort the waiting sessions on
    /// permanent failure.
    fn on_resolution(&mut self, r: JobResolution) {
        let Some(key) = self.job_seg.remove(&r.job) else {
            return; // not ours (cannot happen: all jobs are injected here)
        };
        self.outstanding -= 1;
        let fl = self
            .in_flight
            .remove(&key)
            .expect("resolution without in-flight entry");
        if r.completed {
            self.cache.insert(key, self.catalog.is_head(key_video(key)));
            for sid in fl.waiters {
                self.queue.schedule(
                    r.time_s + self.cfg.hit_latency_s,
                    Ev::Deliver {
                        session: sid,
                        segment: key as u32,
                    },
                );
            }
        } else {
            self.transcode_failures += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.counter_inc("serve.transcode.failed");
            }
            for sid in fl.waiters {
                self.abort_session(r.time_s, sid);
            }
        }
    }

    /// Ends a session whose segment can never be produced. The partial
    /// watch still counts toward watch time (its stalls were real).
    fn abort_session(&mut self, now: f64, sid: u32) {
        let s = self.sessions[sid as usize];
        self.watch_s_total += s.delivered as f64 * self.cfg.segment_s;
        self.stall_s_total += s.stall_s;
        self.aborted += 1;
        self.active -= 1;
        self.free_slots.push(sid);
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("serve.sessions.aborted");
            self.telemetry
                .event("serve.session.aborted", Scope::none(), now, 1.0);
        }
    }

    fn handle_sample(&mut self, now: f64) {
        self.telemetry
            .series_record("serve.concurrent", now, self.active as f64);
        self.telemetry
            .series_record("serve.cache.hit_ratio", now, self.cache.hit_ratio());
        self.telemetry.series_record(
            "serve.backlog_per_worker",
            now,
            self.outstanding as f64 / self.cfg.vcus.max(1) as f64,
        );
        if self.more_arrivals || self.active > 0 {
            self.queue.schedule_in(self.cfg.sample_period_s, Ev::Sample);
        }
    }

    fn finish(mut self) -> ServeReport {
        assert_eq!(
            self.arrivals,
            self.admitted + self.shed,
            "arrival accounting broke"
        );
        assert_eq!(
            self.admitted,
            self.completed + self.aborted,
            "session accounting broke: {} admitted vs {} completed + {} aborted",
            self.admitted,
            self.completed,
            self.aborted
        );
        assert_eq!(self.active, 0, "sessions still live at drain");
        assert_eq!(self.outstanding, 0, "transcodes still in flight at drain");
        self.ttff.sort_by(f64::total_cmp);
        let pct = |v: &[f64], p: f64| -> f64 {
            if v.is_empty() {
                return 0.0;
            }
            let idx = ((v.len() as f64 * p).ceil() as usize).clamp(1, v.len());
            v[idx - 1]
        };
        let ttff_p50_s = pct(&self.ttff, 0.50);
        let ttff_p99_s = pct(&self.ttff, 0.99);
        let ttff_mean_s = if self.ttff.is_empty() {
            0.0
        } else {
            self.ttff_sum / self.ttff.len() as f64
        };
        let rebuffer_ratio = if self.watch_s_total > 0.0 {
            self.stall_s_total / self.watch_s_total
        } else {
            0.0
        };
        // Cost model. Egress: every delivered segment ships its
        // encoded bytes. Transcode: each job holds 1/slots of a VCU
        // for the segment's real-time duration; a VCU-second costs its
        // share of the host's 3-year TCO.
        let seg_bytes = self.cfg.transcode_job().output_pixels() * BITS_PER_PIXEL / 8.0;
        let egress_gb = self.segments_served as f64 * seg_bytes / 1e9;
        let egress_cost_usd = egress_gb * EGRESS_USD_PER_GB;
        let vcus_per_host = 20usize;
        let usd_per_vcu_s = system_tco(System::VcuHost {
            vcus: vcus_per_host,
        })
        .total()
            / vcus_per_host as f64
            / THREE_YEARS_S;
        let transcode_cost_usd = self.transcodes as f64 * self.cfg.segment_s
            / self.cfg.slots_per_worker() as f64
            * usd_per_vcu_s;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("serve.cache.hits", self.cache.hits());
            self.telemetry
                .counter_add("serve.cache.misses", self.cache.misses());
            self.telemetry
                .counter_add("serve.segments.served", self.segments_served);
            self.telemetry
                .counter_add("serve.rebuffer.events", self.rebuffer_events);
            self.telemetry
                .gauge_set("serve.peak_concurrent", self.peak_concurrent as f64);
            self.telemetry.gauge_set("serve.egress_gb", egress_gb);
        }
        ServeReport {
            arrivals: self.arrivals,
            admitted: self.admitted,
            shed_sessions: self.shed,
            completed_sessions: self.completed,
            aborted_sessions: self.aborted,
            peak_concurrent: self.peak_concurrent,
            first_shed_s: self.first_shed_s,
            ttff_p50_s,
            ttff_p99_s,
            ttff_mean_s,
            rebuffer_events: self.rebuffer_events,
            rebuffer_ratio,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            hit_ratio: self.cache.hit_ratio(),
            transcodes: self.transcodes,
            transcode_failures: self.transcode_failures,
            segments_served: self.segments_served,
            egress_gb,
            egress_cost_usd,
            transcode_cost_usd,
            cluster: self.cluster.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> ServeConfig {
        ServeConfig {
            viewers: 400,
            horizon_s: 40.0,
            catalog_videos: 300,
            cache_segments: 512,
            vcus: 16,
            seed,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthy_run_accounts_exactly() {
        let r = ServeSim::new(small(5)).run();
        assert!(r.arrivals > 0);
        assert_eq!(r.arrivals, r.admitted + r.shed_sessions);
        assert_eq!(r.admitted, r.completed_sessions + r.aborted_sessions);
        assert_eq!(r.transcode_failures, 0, "healthy fleet fails nothing");
        assert_eq!(r.aborted_sessions, 0);
        assert!(r.hit_ratio > 0.0, "repeat traffic must hit the cache");
        assert!(r.ttff_p50_s > 0.0);
        assert!(r.ttff_p99_s >= r.ttff_p50_s);
        assert!(r.peak_concurrent > 0);
        assert!(r.segments_served > 0);
        assert!(r.egress_gb > 0.0);
        assert!(r.transcode_cost_usd > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ServeSim::new(small(9)).run();
        let b = ServeSim::new(small(9)).run();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.segments_served, b.segments_served);
        assert_eq!(a.ttff_p99_s, b.ttff_p99_s);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.rebuffer_events, b.rebuffer_events);
    }

    #[test]
    fn seeds_diverge() {
        let a = ServeSim::new(small(1)).run();
        let b = ServeSim::new(small(2)).run();
        assert!(
            a.arrivals != b.arrivals || a.segments_served != b.segments_served,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn bigger_cache_never_hits_less() {
        // End-to-end echo of the cache's stack property: same seed,
        // growing cache, monotone hit count. (The request *trace*
        // itself is identical across cache sizes until transcode
        // queueing shifts delivery times; hits compare on totals.)
        let run = |cache: usize| {
            ServeSim::new(ServeConfig {
                cache_segments: cache,
                ..small(33)
            })
            .run()
        };
        let small_c = run(128);
        let big_c = run(1024);
        assert!(
            big_c.hit_ratio >= small_c.hit_ratio,
            "hit ratio fell with a bigger cache: {} vs {}",
            big_c.hit_ratio,
            small_c.hit_ratio
        );
    }

    #[test]
    fn overload_sheds_before_ladder_engages() {
        // An arrival rate far beyond the fleet's transcode capacity
        // with a cold tiny cache: admission must shed, and because its
        // threshold sits below the ladder's first rung, the cluster
        // must never leave rung 0.
        let reg = Registry::new();
        let overload = ServeConfig {
            viewers: 4_000,
            horizon_s: 30.0,
            catalog_videos: 4_000, // cold: nearly every request is a new segment
            cache_segments: 64,
            vcus: 4,
            sample_period_s: 2.0,
            seed: 17,
            ..ServeConfig::default()
        };
        let r = ServeSim::new(overload.clone())
            .with_telemetry(reg.clone())
            .run();
        assert!(r.shed_sessions > 0, "overload must shed");
        assert!(reg.counter("serve.shed") == r.shed_sessions);
        let first_shed = r.first_shed_s.expect("shed recorded");
        match r.first_degrade_s() {
            None => {} // ladder never engaged: shed-before-degrade holds trivially
            Some(t) => assert!(
                first_shed < t,
                "shed at {first_shed} must precede degrade at {t}"
            ),
        }
        // The same ordering is visible in telemetry: the first
        // serve.shed trace event precedes the first nonzero point of
        // the cluster's degrade-level series.
        let shed_events = reg.events_named("serve.shed");
        assert!(!shed_events.is_empty());
        let first_shed_ev = shed_events
            .iter()
            .map(|e| e.start_s)
            .fold(f64::INFINITY, f64::min);
        if let Some(series) = reg.series("cluster.degrade.level") {
            if let Some(&(t, _)) = series.iter().find(|&&(_, v)| v > 0.0) {
                assert!(
                    first_shed_ev < t,
                    "serve.shed at {first_shed_ev} must precede cluster degrade at {t}"
                );
            }
        }

        // Companion: admission off, same offered load → the ladder has
        // to engage instead, and harder than admission ever allowed.
        let r2 = ServeSim::new(ServeConfig {
            admission: AdmissionPolicy {
                enabled: false,
                ..AdmissionPolicy::default()
            },
            ..overload
        })
        .run();
        assert_eq!(r2.shed_sessions, 0);
        let degraded_with_admission: f64 = r.cluster.degrade_time_frac[1..].iter().sum();
        let degraded_without: f64 = r2.cluster.degrade_time_frac[1..].iter().sum();
        assert!(
            degraded_without > 0.0,
            "without admission the ladder must engage: {:?}",
            r2.cluster.degrade_time_frac
        );
        assert!(
            degraded_with_admission < degraded_without,
            "admission must keep the fleet healthier: {degraded_with_admission} vs {degraded_without}"
        );
    }

    #[test]
    fn telemetry_snapshot_is_deterministic() {
        let snap = |seed: u64| {
            let reg = Registry::new();
            ServeSim::new(small(seed)).with_telemetry(reg.clone()).run();
            reg.snapshot_json(&[("run", "serve-test")])
        };
        assert_eq!(snap(4), snap(4), "same-seed snapshots must be identical");
        assert_ne!(snap(4), snap(5));
    }
}
