//! Logical compute pools and worker reallocation (§3.3.3).
//!
//! "Each cluster has multiple logical 'pools' of computing defined by
//! use case (upload, live) and priority (critical, normal, batch) that
//! trade-off resources based on each pool's demand … workers become
//! idle when pool-level usage drops, at which point they may be
//! stopped and reallocated to other pools in the cluster, maximizing
//! cluster-wide VCU utilization. Another part of the scheduler sizes
//! the workers based on workload mix demand."

use crate::sim::{Priority, Sample};
use std::collections::BTreeMap;

/// Use case served by a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UseCase {
    /// Upload processing.
    Upload,
    /// Live streaming.
    Live,
    /// Batch reprocessing / archival.
    Batch,
}

/// A pool identity: use case × priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId {
    /// Use case.
    pub use_case: UseCase,
    /// Priority class.
    pub priority: Priority,
}

/// Pool manager: tracks per-pool demand and reassigns whole workers
/// between pools proportionally to demand, never leaving a pool with
/// outstanding demand completely dry while another pool idles.
#[derive(Debug, Clone)]
pub struct PoolManager {
    /// Workers assigned to each pool.
    assignment: BTreeMap<PoolId, usize>,
    /// Latest demand estimate per pool (queued + running jobs).
    demand: BTreeMap<PoolId, f64>,
    total_workers: usize,
}

impl PoolManager {
    /// Creates a manager over `total_workers` workers, initially split
    /// evenly across `pools`.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    pub fn new(total_workers: usize, pools: &[PoolId]) -> Self {
        assert!(!pools.is_empty(), "need at least one pool");
        let mut assignment = BTreeMap::new();
        let base = total_workers / pools.len();
        let mut rem = total_workers % pools.len();
        for &p in pools {
            let extra = if rem > 0 {
                rem -= 1;
                1
            } else {
                0
            };
            assignment.insert(p, base + extra);
        }
        let demand = pools.iter().map(|&p| (p, 1.0)).collect();
        PoolManager {
            assignment,
            demand,
            total_workers,
        }
    }

    /// Updates a pool's demand estimate.
    ///
    /// # Panics
    ///
    /// Panics if the pool does not exist or demand is negative/NaN.
    pub fn report_demand(&mut self, pool: PoolId, demand: f64) {
        assert!(demand >= 0.0 && demand.is_finite(), "invalid demand");
        assert!(self.assignment.contains_key(&pool), "unknown pool");
        self.demand.insert(pool, demand);
    }

    /// Updates the demand estimate of every pool in a priority class.
    /// Pools within a class share its queue depth signal; unlike
    /// [`PoolManager::report_demand`] this is a no-op (not a panic) for
    /// classes with no pool, so it can be fed straight from cluster
    /// samples.
    pub fn report_class_demand(&mut self, priority: Priority, demand: f64) {
        assert!(demand >= 0.0 && demand.is_finite(), "invalid demand");
        for (&p, d) in self.demand.iter_mut() {
            if p.priority == priority {
                *d = demand;
            }
        }
    }

    /// Feeds one cluster [`Sample`]'s per-class queue depths into the
    /// demand estimates (§3.3.3: "sizes the workers based on workload
    /// mix demand"). Call [`PoolManager::rebalance`] afterwards.
    pub fn report_sample(&mut self, s: &Sample) {
        for p in Priority::ALL {
            self.report_class_demand(p, s.queued_per_pool[p.index()] as f64);
        }
    }

    /// Current worker count of a pool.
    pub fn workers_of(&self, pool: PoolId) -> usize {
        self.assignment.get(&pool).copied().unwrap_or(0)
    }

    /// Rebalances workers proportionally to demand. Pools with zero
    /// demand surrender all workers (they are "stopped and reallocated");
    /// any pool with positive demand keeps at least one worker. Returns
    /// the number of workers that moved.
    pub fn rebalance(&mut self) -> usize {
        let total_demand: f64 = self.demand.values().sum();
        let before = self.assignment.clone();
        if total_demand <= 0.0 {
            // Nobody wants capacity; leave assignment alone.
            return 0;
        }
        // Ideal fractional shares → largest-remainder rounding with a
        // 1-worker floor for demanding pools.
        let pools: Vec<PoolId> = self.assignment.keys().copied().collect();
        let mut shares: Vec<(PoolId, f64)> = pools
            .iter()
            .map(|&p| {
                (
                    p,
                    self.demand[&p] / total_demand * self.total_workers as f64,
                )
            })
            .collect();
        let mut granted: BTreeMap<PoolId, usize> = shares
            .iter()
            .map(|&(p, s)| {
                let floor = if self.demand[&p] > 0.0 { 1 } else { 0 };
                (p, (s as usize).max(floor).min(self.total_workers))
            })
            .collect();
        // Distribute leftovers by largest remainder.
        let mut used: usize = granted.values().sum();
        shares.sort_by(|a, b| {
            let ra = a.1 - a.1.floor();
            let rb = b.1 - b.1.floor();
            rb.total_cmp(&ra)
        });
        let mut idx = 0;
        while used < self.total_workers && !shares.is_empty() {
            let p = shares[idx % shares.len()].0;
            if self.demand[&p] > 0.0 {
                *granted.get_mut(&p).expect("pool exists") += 1;
                used += 1;
            }
            idx += 1;
            if idx > shares.len() * (self.total_workers + 2) {
                break; // all demand zero-guarded
            }
        }
        // Shed overshoot (floors can overcommit) from the largest pools.
        while used > self.total_workers {
            let (&p, _) = granted.iter().max_by_key(|(_, &n)| n).expect("non-empty");
            *granted.get_mut(&p).expect("pool exists") -= 1;
            used -= 1;
        }
        self.assignment = granted;
        // Count moves.
        self.assignment
            .iter()
            .map(|(p, &n)| n.abs_diff(before[p]))
            .sum::<usize>()
            / 2
    }

    /// Total workers under management.
    pub fn total_workers(&self) -> usize {
        self.total_workers
    }
}

/// Graceful-degradation ladder (§4.4): when faults shrink the usable
/// fleet or backlog outruns it, the cluster steps service quality down
/// one rung at a time instead of collapsing:
///
/// * level 0 — full hardware path;
/// * level 1 — HW decode + SW encode (encode is the scarcer resource:
///   a VCU has 10 Mpix/s of encode against 30 of decode);
/// * level 2 — full software fallback (host CPUs carry the codec);
/// * level 3 — additionally shed Batch-priority work.
///
/// The ladder is driven by live backlog per *usable* worker, so a
/// quarantine wave and a demand spike both push it the same direction,
/// and it steps at most one rung per sample in either direction —
/// hysteresis by construction, no oscillation between distant rungs.
#[derive(Debug, Clone)]
pub struct DegradePolicy {
    /// Master switch; disabled ladders never leave level 0.
    pub enabled: bool,
    /// Backlog-per-usable-worker thresholds that arm levels 1..=3.
    /// Must be non-decreasing.
    pub backlog_per_worker: [f64; 3],
    /// Service-time multiplier for SW-encode attempts (level ≥ 1).
    pub sw_encode_service_factor: f64,
    /// Service-time multiplier for full-SW attempts (level ≥ 2).
    pub sw_full_service_factor: f64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            enabled: false,
            backlog_per_worker: [4.0, 8.0, 16.0],
            sw_encode_service_factor: 2.5,
            sw_full_service_factor: 4.0,
        }
    }
}

impl DegradePolicy {
    /// The rung the ladder is pulling toward for the observed backlog
    /// pressure. The caller moves one step toward this per sample.
    pub fn target_level(&self, backlog_per_worker: f64) -> u8 {
        if !self.enabled {
            return 0;
        }
        self.backlog_per_worker
            .iter()
            .take_while(|&&t| backlog_per_worker >= t)
            .count() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<PoolId> {
        vec![
            PoolId {
                use_case: UseCase::Live,
                priority: Priority::Critical,
            },
            PoolId {
                use_case: UseCase::Upload,
                priority: Priority::Normal,
            },
            PoolId {
                use_case: UseCase::Batch,
                priority: Priority::Batch,
            },
        ]
    }

    #[test]
    fn initial_split_is_even() {
        let m = PoolManager::new(10, &pools());
        let counts: Vec<usize> = pools().iter().map(|&p| m.workers_of(p)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn demand_shifts_workers() {
        let ps = pools();
        let mut m = PoolManager::new(12, &ps);
        m.report_demand(ps[0], 10.0); // live surge
        m.report_demand(ps[1], 1.0);
        m.report_demand(ps[2], 1.0);
        let moved = m.rebalance();
        assert!(moved > 0);
        assert!(m.workers_of(ps[0]) >= 8, "live got {}", m.workers_of(ps[0]));
        let total: usize = ps.iter().map(|&p| m.workers_of(p)).sum();
        assert_eq!(total, 12, "workers conserved");
    }

    #[test]
    fn idle_pool_surrenders_everything() {
        let ps = pools();
        let mut m = PoolManager::new(9, &ps);
        m.report_demand(ps[0], 5.0);
        m.report_demand(ps[1], 5.0);
        m.report_demand(ps[2], 0.0); // batch drained
        m.rebalance();
        assert_eq!(m.workers_of(ps[2]), 0, "idle pool must release workers");
        let total: usize = ps.iter().map(|&p| m.workers_of(p)).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn demanding_pool_never_starves() {
        let ps = pools();
        let mut m = PoolManager::new(4, &ps);
        m.report_demand(ps[0], 1000.0);
        m.report_demand(ps[1], 0.001); // tiny but nonzero
        m.report_demand(ps[2], 0.0);
        m.rebalance();
        assert!(m.workers_of(ps[1]) >= 1, "nonzero demand keeps a worker");
        let total: usize = ps.iter().map(|&p| m.workers_of(p)).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn zero_total_demand_is_stable() {
        let ps = pools();
        let mut m = PoolManager::new(6, &ps);
        for &p in &ps {
            m.report_demand(p, 0.0);
        }
        let before: Vec<usize> = ps.iter().map(|&p| m.workers_of(p)).collect();
        assert_eq!(m.rebalance(), 0);
        let after: Vec<usize> = ps.iter().map(|&p| m.workers_of(p)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn sample_queue_depths_drive_rebalance() {
        // The cluster sampler's per-class queue depths are the demand
        // signal: a batch backlog pulls workers toward the batch pool
        // without touching per-pool bookkeeping by hand.
        let ps = pools();
        let mut m = PoolManager::new(12, &ps);
        let s = Sample {
            time_s: 60.0,
            encode_util: 0.5,
            decode_util: 0.5,
            mpix_s_per_vcu: 1.0,
            queued: 21,
            queued_per_pool: [1, 2, 18],
            degrade_level: 0,
            usable_workers: 12,
        };
        m.report_sample(&s);
        let moved = m.rebalance();
        assert!(moved > 0);
        assert!(
            m.workers_of(ps[2]) > m.workers_of(ps[0]) + m.workers_of(ps[1]),
            "batch backlog dominates: {:?}",
            ps.iter().map(|&p| m.workers_of(p)).collect::<Vec<_>>()
        );
        assert_eq!(ps.iter().map(|&p| m.workers_of(p)).sum::<usize>(), 12);
        // Unrepresented classes are a no-op, not a panic.
        let mut lone = PoolManager::new(
            4,
            &[PoolId {
                use_case: UseCase::Live,
                priority: Priority::Critical,
            }],
        );
        lone.report_class_demand(Priority::Batch, 7.0);
        assert_eq!(
            lone.workers_of(PoolId {
                use_case: UseCase::Live,
                priority: Priority::Critical,
            }),
            4
        );
    }

    #[test]
    fn degrade_ladder_targets_are_monotone() {
        let p = DegradePolicy {
            enabled: true,
            ..DegradePolicy::default()
        };
        assert_eq!(p.target_level(0.0), 0);
        assert_eq!(p.target_level(3.9), 0);
        assert_eq!(p.target_level(4.0), 1);
        assert_eq!(p.target_level(8.0), 2);
        assert_eq!(p.target_level(16.0), 3);
        assert_eq!(p.target_level(1e9), 3);
        let mut last = 0;
        for i in 0..200 {
            let lvl = p.target_level(i as f64 * 0.25);
            assert!(lvl >= last, "ladder target must be monotone in backlog");
            last = lvl;
        }
        // Disabled ladders never leave the ground rung.
        let off = DegradePolicy::default();
        assert_eq!(off.target_level(1e9), 0);
    }

    #[test]
    fn rebalance_conserves_under_many_updates() {
        let ps = pools();
        let mut m = PoolManager::new(20, &ps);
        for round in 0..50u64 {
            m.report_demand(ps[0], (round % 7) as f64);
            m.report_demand(ps[1], ((round * 3) % 5) as f64);
            m.report_demand(ps[2], ((round * 11) % 3) as f64);
            m.rebalance();
            let total: usize = ps.iter().map(|&p| m.workers_of(p)).sum();
            assert!(
                total == 20 || ps.iter().all(|&p| m.workers_of(p) == 0),
                "round {round}: total {total}"
            );
        }
    }
}
