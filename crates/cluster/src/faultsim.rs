//! `vcu-faultsim`: the deterministic fault-campaign harness.
//!
//! A *campaign* sweeps fault rate × mean-time-to-repair over a fleet
//! and measures how the §4.4 failure-management machinery holds up:
//! goodput (completed minus corrupt-escaped work), black-holed chunks,
//! blast radius, tail waits, and time spent on each rung of the
//! graceful-degradation ladder. Every cell derives its RNG stream,
//! fault schedule, and cluster seed from the campaign seed through
//! [`vcu_rng::mix64`], so a campaign is a replayable artifact: the
//! same seed produces a byte-identical JSON report, which is what
//! `results/fault_campaign.json` pins in CI.

use crate::pools::DegradePolicy;
use crate::sim::{
    ClusterConfig, ClusterSim, FaultInjection, FaultKind, HealthPolicy, JobSpec, Priority,
    RetryPolicy, WatchdogPolicy,
};
use vcu_chip::{ResourceDemand, TranscodeJob, VcuModel};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_rng::{mix64, Rng};

/// Campaign sweep configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fleet size (workers).
    pub vcus: usize,
    /// Jobs submitted per VCU over the run.
    pub jobs_per_vcu: usize,
    /// Campaign seed; every cell mixes its own stream out of this.
    pub seed: u64,
    /// Fraction of the fleet hit by a fault, one cell per value.
    pub fault_rates: Vec<f64>,
    /// Mean time to repair (seconds) sweep; `f64::INFINITY` means
    /// faults are never repaired within the run.
    pub mttr_s: Vec<f64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vcus: 1000,
            jobs_per_vcu: 240,
            seed: 42,
            fault_rates: vec![0.0, 0.02, 0.05, 0.10],
            mttr_s: vec![60.0, f64::INFINITY],
        }
    }
}

/// Metrics of one (fault-rate, MTTR) campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Fraction of the fleet faulted.
    pub fault_rate: f64,
    /// Mean time to repair, seconds (infinite = never).
    pub mttr_s: f64,
    /// Jobs submitted.
    pub jobs: u64,
    /// (completed − escaped-corrupt) / submitted: the fraction of work
    /// that came back *and was correct*.
    pub goodput_frac: f64,
    /// Corrupted chunks that shipped undetected (black-holed work).
    pub black_holed: u64,
    /// Mean distinct VCUs per video (§4.4 blast radius).
    pub blast_radius: f64,
    /// Mean queueing wait, seconds.
    pub mean_wait_s: f64,
    /// p99 queueing wait, seconds.
    pub p99_wait_s: f64,
    /// Jobs failed with no usable worker left.
    pub stranded: u64,
    /// Batch jobs shed by the degradation ladder.
    pub shed: u64,
    /// Watchdog deadlines fired.
    pub watchdog_fired: u64,
    /// Crash-loop aborts.
    pub crash_aborts: u64,
    /// Field repairs applied.
    pub repairs: u64,
    /// Workers quarantined by the end of the cell.
    pub quarantined_workers: u64,
    /// Fraction of samples at each degradation rung.
    pub degrade_time_frac: [f64; 4],
}

/// The fault kinds a campaign cycles through, in severity-mixed order
/// so every rate bucket gets a representative mix.
const CAMPAIGN_FAULTS: [FaultKind; 6] = [
    FaultKind::SilentCorruption,
    FaultKind::FirmwareHang,
    FaultKind::SlowCore { factor_pct: 1600 },
    FaultKind::EccStorm {
        correctable_per_tick: 100,
    },
    FaultKind::CrashLoop,
    FaultKind::Dead,
];

/// Fleet utilization the offered load targets: high enough that
/// faulting 10% of the fleet pushes it just past saturation (the
/// regime where the degradation ladder and shedding earn their keep),
/// low enough that a healthy fleet keeps up with slack.
const TARGET_UTIL: f64 = 0.97;

/// The uniform campaign chunk: 1080p30, 5 s, VP9 MOT — the same heavy
/// chunk `bench_cluster_scale` drives, so one worker holds only a few
/// concurrently and losing workers moves the needle.
pub fn campaign_job() -> TranscodeJob {
    TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0)
}

/// Concurrent campaign chunks one healthy worker fits (the binding
/// scheduler dimension).
pub fn slots_per_worker() -> u64 {
    let d = VcuModel::new().job_demand(&campaign_job());
    let cap = ResourceDemand::vcu_capacity();
    [
        cap.millidecode / d.millidecode.max(1),
        cap.milliencode / d.milliencode.max(1),
        cap.dram_mib / d.dram_mib.max(1),
        cap.host_mcpu / d.host_mcpu.max(1),
    ]
    .into_iter()
    .min()
    .unwrap()
    .max(1) as u64
}

/// Time span over which the cell's jobs arrive, seconds: the offered
/// load holds the healthy fleet at [`TARGET_UTIL`] of its true
/// multi-slot capacity.
pub fn arrival_span_s(jobs_per_vcu: usize) -> f64 {
    jobs_per_vcu as f64 * campaign_job().duration_s / (slots_per_worker() as f64 * TARGET_UTIL)
}

/// Deterministic job list for one cell: uniform 1080p30 5-second MOT
/// chunks, four chunks per video, with the §3.3.3 priority mix
/// (1 Critical : 2 Normal : 1 Batch).
fn cell_jobs(vcus: usize, jobs_per_vcu: usize) -> Vec<JobSpec> {
    let total = vcus * jobs_per_vcu;
    let span = arrival_span_s(jobs_per_vcu);
    (0..total)
        .map(|i| JobSpec {
            arrival_s: i as f64 * span / total as f64,
            job: campaign_job(),
            priority: match i % 4 {
                0 => Priority::Critical,
                3 => Priority::Batch,
                _ => Priority::Normal,
            },
            video_id: (i / 4) as u64,
        })
        .collect()
}

/// Deterministic fault schedule for one cell: `fault_rate` of the
/// fleet (chosen by a seeded shuffle) faults at a seeded time in the
/// first half of the arrival span, cycling through
/// [`CAMPAIGN_FAULTS`]; each fault is followed by a repair `mttr_s`
/// later when MTTR is finite.
fn cell_faults(
    vcus: usize,
    jobs_per_vcu: usize,
    fault_rate: f64,
    mttr_s: f64,
    rng: &mut Rng,
) -> Vec<FaultInjection> {
    fault_schedule(vcus, arrival_span_s(jobs_per_vcu), fault_rate, mttr_s, rng)
}

/// The campaign's representative fault mix over an explicit time span:
/// `fault_rate` of the fleet (seeded shuffle) faults at a seeded time
/// in the first half of `span_s`, cycling through the six
/// [`FaultKind`]s, with a repair `mttr_s` later when finite. Public so
/// other harnesses (the DSE driver) can stress candidates under the
/// exact fault mix the PR-5 campaign calibrated.
pub fn fault_schedule(
    vcus: usize,
    span_s: f64,
    fault_rate: f64,
    mttr_s: f64,
    rng: &mut Rng,
) -> Vec<FaultInjection> {
    let n_faulted = ((vcus as f64 * fault_rate).round() as usize).min(vcus);
    let mut workers: Vec<usize> = (0..vcus).collect();
    rng.shuffle(&mut workers);
    let span = span_s;
    let mut faults = Vec::with_capacity(n_faulted * 2);
    for (k, &w) in workers.iter().take(n_faulted).enumerate() {
        let time_s = rng.gen_range(10.0..(span * 0.5).max(11.0));
        faults.push(FaultInjection {
            time_s,
            worker: w,
            kind: CAMPAIGN_FAULTS[k % CAMPAIGN_FAULTS.len()],
        });
        if mttr_s.is_finite() {
            faults.push(FaultInjection {
                time_s: time_s + mttr_s,
                worker: w,
                kind: FaultKind::Repair,
            });
        }
    }
    faults
}

/// Correlated failure domains: workers are laid out in contiguous
/// domains of `domain_workers` (a rack sharing a ToR switch, a power
/// bus, or — with `domain_workers == vcus` — a whole cell). A seeded
/// shuffle picks `domains_hit` distinct domains; every worker in a hit
/// domain goes [`FaultKind::Dead`] at the same instant (drawn in the
/// first 60% of `span_s`) and is repaired `outage_s` later. Because
/// the whole domain shares one timestamp, retries of its in-flight
/// chunks scatter across surviving domains — exactly the §4.4
/// blast-radius pressure the mean-VCUs-per-video metric measures.
pub fn correlated_domain_faults(
    vcus: usize,
    domain_workers: usize,
    domains_hit: usize,
    outage_s: f64,
    span_s: f64,
    rng: &mut Rng,
) -> Vec<FaultInjection> {
    let domain_workers = domain_workers.clamp(1, vcus.max(1));
    let n_domains = vcus.div_ceil(domain_workers);
    let mut domains: Vec<usize> = (0..n_domains).collect();
    rng.shuffle(&mut domains);
    let mut faults = Vec::new();
    for &d in domains.iter().take(domains_hit.min(n_domains)) {
        let time_s = rng.gen_range(10.0..(span_s * 0.6).max(11.0));
        for w in (d * domain_workers)..((d + 1) * domain_workers).min(vcus) {
            faults.push(FaultInjection {
                time_s,
                worker: w,
                kind: FaultKind::Dead,
            });
            faults.push(FaultInjection {
                time_s: time_s + outage_s,
                worker: w,
                kind: FaultKind::Repair,
            });
        }
    }
    faults
}

/// Rolling firmware-upgrade wave: the fleet is swept in worker order,
/// `wave_workers` at a time. Wave `k` drains at
/// `start_s + k * wave_gap_s` (modeled as [`FaultKind::Dead`] — the
/// worker stops taking and finishing work while its firmware reloads)
/// and returns `outage_s` later via [`FaultKind::Repair`]. Fully
/// deterministic (no RNG): an upgrade is a plan, not an accident.
/// Keeping `wave_workers` well under the fleet size bounds the
/// capacity dip to one wave at a time when `outage_s <= wave_gap_s`.
pub fn upgrade_wave_faults(
    vcus: usize,
    wave_workers: usize,
    start_s: f64,
    wave_gap_s: f64,
    outage_s: f64,
) -> Vec<FaultInjection> {
    let wave_workers = wave_workers.clamp(1, vcus.max(1));
    let mut faults = Vec::with_capacity(vcus * 2);
    for w in 0..vcus {
        let wave = (w / wave_workers) as f64;
        let time_s = start_s + wave * wave_gap_s;
        faults.push(FaultInjection {
            time_s,
            worker: w,
            kind: FaultKind::Dead,
        });
        faults.push(FaultInjection {
            time_s: time_s + outage_s,
            worker: w,
            kind: FaultKind::Repair,
        });
    }
    faults
}

/// The cluster configuration every campaign cell runs: backoff retry,
/// watchdogs, periodic screening, bounded recoveries, and the
/// degradation ladder all armed. Public so the multi-region layer
/// (`vcu-regions`) runs its cells under the exact same policies.
pub fn cell_cluster_config(vcus: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        vcus,
        detection_rate: 0.9,
        retry: RetryPolicy {
            base_s: 5.0,
            factor: 2.0,
            max_attempts: 5,
            jitter_frac: 0.1,
            ..RetryPolicy::default()
        },
        watchdog: WatchdogPolicy {
            grace_s: 10.0,
            service_factor: 4.0,
        },
        health: HealthPolicy {
            strike_threshold: 3,
            max_recoveries: 1,
            golden_period_s: 60.0,
        },
        degrade: DegradePolicy {
            enabled: true,
            ..DegradePolicy::default()
        },
        sample_period_s: 15.0,
        seed,
        ..ClusterConfig::default()
    }
}

/// Runs one campaign cell and reduces its report to [`CampaignCell`].
pub fn run_cell(cfg: &CampaignConfig, fault_rate: f64, mttr_s: f64, cell: u64) -> CampaignCell {
    let cell_seed = mix64(cfg.seed, cell);
    let mut rng = Rng::seed_from_u64(cell_seed);
    let jobs = cell_jobs(cfg.vcus, cfg.jobs_per_vcu);
    let n_jobs = jobs.len() as u64;
    let faults = cell_faults(cfg.vcus, cfg.jobs_per_vcu, fault_rate, mttr_s, &mut rng);
    let report = ClusterSim::new(cell_cluster_config(cfg.vcus, cell_seed), jobs, faults).run();
    CampaignCell {
        fault_rate,
        mttr_s,
        jobs: n_jobs,
        goodput_frac: (report.completed.saturating_sub(report.escaped_corruptions)) as f64
            / n_jobs.max(1) as f64,
        black_holed: report.escaped_corruptions,
        blast_radius: report.mean_vcus_per_video,
        mean_wait_s: report.mean_wait_s,
        p99_wait_s: report.p99_wait_s,
        stranded: report.stranded,
        shed: report.shed,
        watchdog_fired: report.watchdog_fired,
        crash_aborts: report.crash_aborts,
        repairs: report.repairs,
        quarantined_workers: report.quarantined_workers,
        degrade_time_frac: report.degrade_time_frac,
    }
}

/// Runs the full sweep: one cell per (MTTR, fault-rate) pair.
///
/// Cells fan out across the process-wide work-stealing pool at
/// [`vcu_exec::env_threads`] parallelism. Each cell derives its RNG
/// from `mix64(cfg.seed, cell_idx)` alone and the pool returns results
/// in cell-index order, so the sweep is byte-identical to the
/// sequential order for every `VCU_THREADS` value.
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<CampaignCell> {
    let grid: Vec<(f64, f64)> = cfg
        .mttr_s
        .iter()
        .flat_map(|&mttr| cfg.fault_rates.iter().map(move |&rate| (mttr, rate)))
        .collect();
    vcu_exec::pool().run_batch(
        vcu_exec::env_threads(),
        grid.iter()
            .enumerate()
            .map(|(cell_idx, &(mttr, rate))| move || run_cell(cfg, rate, mttr, cell_idx as u64))
            .collect(),
    )
}

/// Fixed-precision float for byte-stable JSON ({:.6} is lossless at
/// the magnitudes involved and avoids shortest-repr jitter).
fn f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Renders a campaign as deterministic JSON (one cell object per
/// line inside the array, stable key order). Two same-seed runs
/// produce byte-identical output.
pub fn render_json(cfg: &CampaignConfig, cells: &[CampaignCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"campaign\": {{\"vcus\": {}, \"jobs_per_vcu\": {}, \"seed\": {}}},\n",
        cfg.vcus, cfg.jobs_per_vcu, cfg.seed
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fault_rate\": {}, \"mttr_s\": {}, \"jobs\": {}, \"goodput_frac\": {}, \
             \"black_holed\": {}, \"blast_radius\": {}, \"mean_wait_s\": {}, \
             \"p99_wait_s\": {}, \"stranded\": {}, \"shed\": {}, \"watchdog_fired\": {}, \
             \"crash_aborts\": {}, \"repairs\": {}, \"quarantined_workers\": {}, \
             \"degrade_time_frac\": [{}, {}, {}, {}]}}{}\n",
            f(c.fault_rate),
            f(c.mttr_s),
            c.jobs,
            f(c.goodput_frac),
            c.black_holed,
            f(c.blast_radius),
            f(c.mean_wait_s),
            f(c.p99_wait_s),
            c.stranded,
            c.shed,
            c.watchdog_fired,
            c.crash_aborts,
            c.repairs,
            c.quarantined_workers,
            f(c.degrade_time_frac[0]),
            f(c.degrade_time_frac[1]),
            f(c.degrade_time_frac[2]),
            f(c.degrade_time_frac[3]),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig {
            vcus: 8,
            jobs_per_vcu: 4,
            seed: 7,
            fault_rates: vec![0.0, 0.25],
            mttr_s: vec![60.0],
        }
    }

    #[test]
    fn campaign_is_byte_deterministic() {
        let cfg = tiny();
        let a = render_json(&cfg, &run_campaign(&cfg));
        let b = render_json(&cfg, &run_campaign(&cfg));
        assert_eq!(a, b, "same-seed campaigns must be byte-identical");
        assert!(a.contains("\"goodput_frac\""));
    }

    #[test]
    fn different_seeds_produce_different_fault_schedules() {
        // Aggregate cell metrics can coincide at toy scale, so the
        // seed sensitivity is asserted where it is deterministic: the
        // generated schedule (which workers fault, when).
        let cfg = tiny();
        let schedule = |seed: u64| {
            let mut rng = Rng::seed_from_u64(mix64(seed, 1));
            cell_faults(cfg.vcus, cfg.jobs_per_vcu, 0.25, 60.0, &mut rng)
        };
        let a = schedule(cfg.seed);
        assert_eq!(a, schedule(cfg.seed), "same seed, same schedule");
        assert_ne!(a, schedule(cfg.seed + 1), "seed must steer the schedule");
    }

    #[test]
    fn zero_fault_rate_is_clean() {
        let cfg = CampaignConfig {
            fault_rates: vec![0.0],
            ..tiny()
        };
        let cells = run_campaign(&cfg);
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.goodput_frac, 1.0, "healthy fleet completes everything");
        assert_eq!(c.black_holed, 0);
        assert_eq!(c.watchdog_fired, 0);
        assert_eq!(c.quarantined_workers, 0);
    }

    #[test]
    fn every_cell_resolves_all_jobs() {
        let cfg = CampaignConfig {
            vcus: 8,
            jobs_per_vcu: 4,
            seed: 3,
            fault_rates: vec![0.0, 0.5],
            mttr_s: vec![30.0, f64::INFINITY],
        };
        for c in run_campaign(&cfg) {
            assert_eq!(c.jobs, 32);
            // goodput + failures account for everything; nothing hangs
            // the DES loop (termination is the property test's job —
            // this is the smoke version).
            assert!(c.goodput_frac >= 0.0 && c.goodput_frac <= 1.0);
        }
    }

    #[test]
    fn correlated_domains_fault_together_and_repair() {
        let mut rng = Rng::seed_from_u64(5);
        let faults = correlated_domain_faults(32, 8, 2, 45.0, 300.0, &mut rng);
        // 2 domains × 8 workers × (Dead + Repair).
        assert_eq!(faults.len(), 32);
        let deaths: Vec<_> = faults
            .iter()
            .filter(|f| f.kind == FaultKind::Dead)
            .collect();
        assert_eq!(deaths.len(), 16);
        // Workers in the same domain share one outage instant.
        for f in &deaths {
            let domain_start = (f.worker / 8) * 8;
            let peer = deaths.iter().find(|g| g.worker == domain_start).unwrap();
            assert_eq!(f.time_s, peer.time_s, "domain must fail as a unit");
        }
        // Every death has a repair exactly outage_s later.
        for d in &deaths {
            assert!(faults.iter().any(|r| r.kind == FaultKind::Repair
                && r.worker == d.worker
                && r.time_s == d.time_s + 45.0));
        }
        // Seeded: same seed reproduces, different seed moves the plan.
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(6);
        assert_eq!(
            faults,
            correlated_domain_faults(32, 8, 2, 45.0, 300.0, &mut a)
        );
        assert_ne!(
            faults,
            correlated_domain_faults(32, 8, 2, 45.0, 300.0, &mut b)
        );
    }

    #[test]
    fn upgrade_waves_roll_through_the_whole_fleet() {
        let faults = upgrade_wave_faults(10, 4, 100.0, 60.0, 30.0);
        assert_eq!(faults.len(), 20, "every worker gets Dead + Repair");
        // Wave k = workers [4k, 4k+4) drains at 100 + 60k.
        for f in &faults {
            let expect = 100.0 + (f.worker / 4) as f64 * 60.0;
            match f.kind {
                FaultKind::Dead => assert_eq!(f.time_s, expect),
                FaultKind::Repair => assert_eq!(f.time_s, expect + 30.0),
                other => panic!("unexpected fault kind {other:?}"),
            }
        }
        // A wave returns before the next drains (outage < gap), so the
        // capacity dip is bounded to one wave.
        let touched: std::collections::BTreeSet<usize> = faults.iter().map(|f| f.worker).collect();
        assert_eq!(touched.len(), 10);
    }

    #[test]
    fn infinite_mttr_renders_as_null() {
        let cfg = CampaignConfig {
            fault_rates: vec![0.25],
            mttr_s: vec![f64::INFINITY],
            ..tiny()
        };
        let json = render_json(&cfg, &run_campaign(&cfg));
        assert!(json.contains("\"mttr_s\": null"));
    }
}
