//! The warehouse cluster simulator.
//!
//! Drives [`crate::scheduler::Scheduler`] with a discrete-event loop:
//! transcode jobs arrive, get placed on VCU workers, hold resources for
//! their service time, and complete — possibly corrupted, retried,
//! offloaded, or rescheduled, exercising the §3.3.3/§4.4 machinery:
//!
//! - multi-dimensional bin packing vs the legacy single-slot model,
//! - opportunistic software decode when hardware decode is the
//!   bottleneck (Fig. 9c),
//! - black-holing: a silently-corrupting VCU completes work *fast* and
//!   attracts a disproportionate share of retries unless the §4.4
//!   mitigation (abort + golden screening) quarantines it,
//! - blast-radius accounting: which VCUs touched which chunks, and how
//!   many corrupted chunks escape the integrity checks.

use crate::des::EventQueue;
use crate::pools::DegradePolicy;
use crate::scheduler::{PlacementMode, Scheduler, SchedulerKind};
use std::collections::{BTreeSet, HashMap, VecDeque};
use vcu_chip::faults::{checksum, golden_transcode_bytes, FaultyVcu, HealthState};
use vcu_chip::{ResourceDemand, TranscodeJob, VcuModel};
use vcu_rng::Rng;
use vcu_telemetry::{Registry, Scope};

/// Priority classes (§3.3.3's pools).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Live / latency-critical.
    Critical,
    /// Normal uploads.
    Normal,
    /// Batch / backfill.
    Batch,
}

impl Priority {
    /// Telemetry-stable pool name.
    pub fn pool_name(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Stable index of this class in per-pool arrays
    /// ([`Sample::queued_per_pool`], the internal priority queues).
    pub fn index(self) -> usize {
        match self {
            Priority::Critical => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// All classes, in scheduling (and [`Priority::index`]) order.
    pub const ALL: [Priority; 3] = [Priority::Critical, Priority::Normal, Priority::Batch];

    fn running_series(self) -> &'static str {
        match self {
            Priority::Critical => "cluster.pool.critical.running",
            Priority::Normal => "cluster.pool.normal.running",
            Priority::Batch => "cluster.pool.batch.running",
        }
    }

    fn queued_series(self) -> &'static str {
        match self {
            Priority::Critical => "cluster.pool.critical.queued",
            Priority::Normal => "cluster.pool.normal.queued",
            Priority::Batch => "cluster.pool.batch.queued",
        }
    }
}

/// One job submitted to the cluster.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Arrival time (seconds).
    pub arrival_s: f64,
    /// The transcode work.
    pub job: TranscodeJob,
    /// Priority class.
    pub priority: Priority,
    /// Identifier of the source video this chunk belongs to (used by
    /// consistent-hash placement and blast-radius accounting). Chunks
    /// of unrelated videos may share 0.
    pub video_id: u64,
}

/// Cluster configuration and feature toggles.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of VCU workers (one worker per VCU; §3.1).
    pub vcus: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Placement search path: the O(log n) availability index, or the
    /// O(n) linear-scan oracle it is differential-tested against.
    pub placement: PlacementMode,
    /// Availability-cache shards.
    pub shards: usize,
    /// §4.4 black-holing mitigation: on a detected hardware failure the
    /// worker aborts and the VCU must pass a golden test before reuse.
    pub blackhole_mitigation: bool,
    /// High-level integrity checks on outputs (detect most corruption).
    pub integrity_checks: bool,
    /// Fig. 9c: shift decode to host CPU when hardware decode blocks
    /// placement.
    pub opportunistic_sw_decode: bool,
    /// Probability an integrity check catches a corrupted chunk.
    pub detection_rate: f64,
    /// Exponential-backoff retry policy with a per-job attempt budget.
    pub retry: RetryPolicy,
    /// Per-job watchdog timeouts (§4.4: a hung firmware never reports
    /// completion — only a deadline notices).
    pub watchdog: WatchdogPolicy,
    /// Worker health scoring: strikes, draining, screening cadence.
    pub health: HealthPolicy,
    /// Graceful-degradation ladder (disabled by default).
    pub degrade: DegradePolicy,
    /// Metrics sampling period in seconds.
    pub sample_period_s: f64,
    /// Software-stack overhead multiplier on service times (>1 models
    /// the pre-NUMA-fix launch stack of §4.3; 1.0 is the tuned stack).
    pub service_time_factor: f64,
    /// §4.4 future-work enhancement: consistent-hash each video onto a
    /// bounded subset of this many VCUs (0 disables), so one failing
    /// VCU can only ever touch a few videos.
    pub consistent_hash_window: usize,
    /// Capacity model of every worker's VCU. Defaults to the shipped
    /// silicon; the DSE driver substitutes candidate design points,
    /// which changes how many concurrent jobs a worker fits (the
    /// §3.3.3 millicore demands scale with the design's capacity).
    pub model: VcuModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vcus: 20,
            scheduler: SchedulerKind::MultiDim,
            placement: PlacementMode::Indexed,
            shards: 1,
            blackhole_mitigation: true,
            integrity_checks: true,
            opportunistic_sw_decode: false,
            detection_rate: 0.9,
            retry: RetryPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            health: HealthPolicy::default(),
            degrade: DegradePolicy::default(),
            sample_period_s: 60.0,
            service_time_factor: 1.0,
            consistent_hash_window: 0,
            model: VcuModel::new(),
            seed: 1,
        }
    }
}

/// Exponential-backoff retry policy: attempt `k`'s re-enqueue is
/// delayed by `base_s * factor^(k-1)`, jittered by up to
/// `jitter_frac` from the simulation's own RNG stream (so backoff
/// stays byte-deterministic). `base_s == 0` retries immediately,
/// reproducing the pre-backoff cluster exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, seconds (0 = immediate).
    pub base_s: f64,
    /// Multiplier applied per additional attempt.
    pub factor: f64,
    /// Total attempt budget per job (first run included). A job whose
    /// attempt count reaches this fails permanently.
    pub max_attempts: u32,
    /// Uniform jitter fraction in `[0, jitter_frac)` added to each
    /// delay, drawn from the sim RNG.
    pub jitter_frac: f64,
    /// Ceiling on the pre-jitter delay, seconds. `base_s * factor^k`
    /// grows without bound (`2^1024` is already `f64::INFINITY`), and
    /// an infinite or astronomically late retry event would wedge or
    /// corrupt the DES clock; the clamp keeps every backoff finite no
    /// matter how liberal the attempt budget is.
    pub max_delay_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_s: 0.0,
            factor: 2.0,
            max_attempts: 5,
            jitter_frac: 0.0,
            // One simulated hour: far above any delay the default
            // 5-attempt budget can reach (so existing artifacts are
            // byte-unchanged), yet finite for any attempt count.
            max_delay_s: 3_600.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retrying a job that has already made
    /// `attempts` attempts, clamped to `max_delay_s` before jitter.
    /// Draws jitter from `rng` only when both the base and the jitter
    /// are live, so disabling backoff leaves the RNG stream untouched.
    pub fn delay_s(&self, attempts: u32, rng: &mut Rng) -> f64 {
        if self.base_s <= 0.0 {
            return 0.0;
        }
        let d = (self.base_s * self.factor.powi(attempts.saturating_sub(1) as i32))
            .min(self.max_delay_s);
        if self.jitter_frac > 0.0 {
            d * (1.0 + self.jitter_frac * rng.f64())
        } else {
            d
        }
    }
}

/// Per-job watchdog deadline: an attempt that has not completed by
/// `grace_s + nominal_service * service_factor` is declared lost, its
/// resources reclaimed, and the job retried. This is the only
/// mechanism that notices a firmware hang.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogPolicy {
    /// Fixed grace added to every deadline, seconds.
    pub grace_s: f64,
    /// Multiple of the attempt's *nominal* (healthy-hardware) service
    /// time allowed before the watchdog fires.
    pub service_factor: f64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            grace_s: 30.0,
            service_factor: 8.0,
        }
    }
}

/// Worker health scoring (§4.4): repeated watchdog/crash strikes
/// demote a worker to draining; a drained worker takes a golden screen
/// and either returns to service (bounded times) or is quarantined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Strikes (watchdog timeouts + crash aborts) before an active
    /// worker is demoted to draining.
    pub strike_threshold: u32,
    /// How many times a worker may pass its post-drain screen and
    /// return to service before strikes quarantine it for good.
    pub max_recoveries: u32,
    /// Periodic golden-screening cadence per worker, seconds
    /// (0 disables; screening on failure detection always happens).
    pub golden_period_s: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            strike_threshold: 3,
            max_recoveries: 2,
            golden_period_s: 0.0,
        }
    }
}

/// Lifecycle state of a worker from the fault-management plane's point
/// of view (orthogonal to the chip-level [`HealthState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMgmtState {
    /// In service, accepting placements.
    Active,
    /// Demoted by health scoring: finishes in-flight attempts, accepts
    /// nothing new, then takes a golden screen.
    Draining,
    /// Failed screening (or detected corrupting); out of service until
    /// a [`FaultKind::Repair`] arrives.
    Quarantined,
}

/// Which codec path an attempt ran on — the rungs of the
/// graceful-degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptMode {
    /// Full hardware path.
    Hw,
    /// Hardware encode, software (host CPU) decode — the Fig. 9c
    /// opportunistic offload.
    SwDecode,
    /// Hardware decode, software encode (ladder level 1).
    SwEncode,
    /// Full software fallback (ladder level 2).
    SwFull,
}

/// Fault injections scheduled into a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjection {
    /// When the fault manifests.
    pub time_s: f64,
    /// Which VCU worker.
    pub worker: usize,
    /// Fault kind.
    pub kind: FaultKind,
}

/// Kinds of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silent output corruption at full (actually improved) speed.
    SilentCorruption,
    /// Hard failure: the VCU stops accepting work.
    Dead,
    /// Firmware wedge: accepted jobs never complete; only the per-job
    /// watchdog notices. A functional reset clears it.
    FirmwareHang,
    /// Degraded core: every job costs `factor_pct`/100 × nominal
    /// cycles (tail-latency fault; 1600 = 16× slower).
    SlowCore {
        /// Slowdown in percent of nominal (≥ 100).
        factor_pct: u32,
    },
    /// DRAM ECC storm: a stream of correctable errors that eventually
    /// trips the chip's correctable-ECC limit and disables the VCU.
    EccStorm {
        /// Correctable errors recorded per one-second tick (clamped to
        /// ≥ 1 so the storm provably terminates).
        correctable_per_tick: u64,
    },
    /// Firmware crash-loop: attempts abort partway, the core resets
    /// itself, and the next attempt crashes again until repaired.
    CrashLoop,
    /// Field repair (board swap / reflash): heals every chip-level
    /// fault and returns the worker to service.
    Repair,
}

#[derive(Debug, Clone)]
enum Event {
    Arrival(usize),
    Completion {
        job: usize,
        attempt: u32,
        worker: usize,
        demand: ResourceDemand,
        corrupted: bool,
    },
    Fault(usize),
    Sample,
    /// Per-attempt deadline; a no-op if the attempt already resolved.
    Watchdog {
        job: usize,
        attempt: u32,
        worker: usize,
        demand: ResourceDemand,
    },
    /// Crash-looping firmware aborts the attempt partway through.
    CrashAbort {
        job: usize,
        attempt: u32,
        worker: usize,
        demand: ResourceDemand,
    },
    /// Backoff expiry: the job re-enters the pending queue.
    Retry(usize),
    /// One tick of an ECC storm on a worker.
    EccTick {
        worker: usize,
        correctable: u64,
    },
    /// Periodic fleet-wide golden screening pass.
    GoldenScreen,
}

#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    attempts: u32,
    done: bool,
    failed: bool,
    /// Whether a corrupted output shipped undetected.
    escaped_corruption: bool,
    /// VCUs that processed (any attempt of) this chunk.
    touched_vcus: Vec<usize>,
    /// Completion time.
    finished_at: Option<f64>,
    /// Codec path of the *most recent* attempt — rewritten at every
    /// placement, so at resolution it reads as the final attempt's
    /// mode.
    mode: AttemptMode,
    /// Attempt number currently holding resources, if any. Completion,
    /// watchdog, and crash-abort events all race to resolve an attempt;
    /// whichever matches this number first wins and the rest are stale.
    live_attempt: Option<u32>,
    /// Cached hardware resource demand (deterministic per job).
    demand: Option<ResourceDemand>,
}

/// One metrics sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time (seconds).
    pub time_s: f64,
    /// Cluster-wide encoder millicore utilization in 0..=1.
    pub encode_util: f64,
    /// Cluster-wide hardware-decoder millicore utilization in 0..=1.
    pub decode_util: f64,
    /// Output Mpix/s completed since the previous sample, per VCU.
    pub mpix_s_per_vcu: f64,
    /// Jobs waiting in queue.
    pub queued: usize,
    /// Jobs waiting per priority class, indexed by
    /// [`Priority::index`] — read straight off the per-class queues in
    /// O(1), so sampling cost is independent of backlog depth.
    pub queued_per_pool: [usize; 3],
    /// Current rung of the graceful-degradation ladder (0 = full HW).
    pub degrade_level: u8,
    /// Workers currently usable (active management state and a chip
    /// that accepts work).
    pub usable_workers: usize,
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Periodic samples.
    pub samples: Vec<Sample>,
    /// Completed jobs.
    pub completed: u64,
    /// Permanently failed jobs.
    pub failed: u64,
    /// Jobs failed because no usable worker remained to ever run them
    /// (a subset of `failed`; see the stranded-jobs policy in
    /// DESIGN.md).
    pub stranded: u64,
    /// Total retries performed.
    pub retries: u64,
    /// Corrupted chunks that escaped detection.
    pub escaped_corruptions: u64,
    /// Corrupted chunks caught by integrity checks.
    pub caught_corruptions: u64,
    /// Jobs whose successful attempt used software decode.
    pub sw_decoded_jobs: u64,
    /// Jobs whose successful attempt used software *encode* (ladder
    /// level ≥ 1).
    pub sw_encoded_jobs: u64,
    /// Jobs whose successful attempt ran the full software fallback.
    pub sw_full_jobs: u64,
    /// Batch jobs shed by the degradation ladder's last rung (a subset
    /// of `failed`).
    pub shed: u64,
    /// Watchdog deadlines that fired on a live attempt.
    pub watchdog_fired: u64,
    /// Attempts aborted by crash-looping firmware.
    pub crash_aborts: u64,
    /// Field repairs applied.
    pub repairs: u64,
    /// Workers in quarantine at the end of the run.
    pub quarantined_workers: u64,
    /// p99 of the queueing delay underlying `mean_wait_s` (seconds).
    pub p99_wait_s: f64,
    /// Fraction of samples spent at each degradation-ladder rung.
    pub degrade_time_frac: [f64; 4],
    /// Mean number of distinct VCUs that touched each video's chunks —
    /// the §4.4 blast-radius metric consistent hashing shrinks.
    pub mean_vcus_per_video: f64,
    /// Per-worker count of job attempts processed (black-holing shows
    /// up as a skewed distribution).
    pub attempts_per_worker: Vec<u64>,
    /// Mean queueing delay (seconds) from arrival to *first*
    /// placement, counted exactly once per placed job — retries do not
    /// re-enter the mean, and jobs that were never placed (stranded)
    /// are excluded.
    pub mean_wait_s: f64,
    /// Total output Mpix completed.
    pub total_output_mpix: f64,
    /// Wall-clock length of the simulation.
    pub horizon_s: f64,
}

impl ClusterReport {
    /// Mean per-VCU throughput over the run, Mpix/s.
    pub fn mean_mpix_s_per_vcu(&self, vcus: usize) -> f64 {
        if self.horizon_s <= 0.0 {
            return 0.0;
        }
        self.total_output_mpix / self.horizon_s / vcus as f64
    }
}

/// One job reaching its terminal state, reported through
/// [`ClusterSim::drain_resolutions`] so an open-world driver (the
/// serving front end) can react to transcode outcomes as they happen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResolution {
    /// Index returned by [`ClusterSim::inject_job`] (or the position in
    /// the up-front job vector).
    pub job: usize,
    /// Sim time of the resolution, seconds.
    pub time_s: f64,
    /// True on success; false for permanent failure (retries exhausted,
    /// shed, or stranded).
    pub completed: bool,
}

/// How far a crash-looping firmware gets into an attempt before
/// aborting, seconds (capped at the attempt's own service time).
const CRASH_ABORT_S: f64 = 2.0;

/// The simulator.
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    model: VcuModel,
    queue: EventQueue<Event>,
    scheduler: Scheduler,
    vcus: Vec<FaultyVcu>,
    /// Worker lifecycle in the fault-management plane.
    mgmt: Vec<WorkerMgmtState>,
    /// Health strikes (watchdog timeouts + crash aborts) per worker.
    strikes: Vec<u32>,
    /// Times each worker has passed a post-drain screen and returned.
    recoveries: Vec<u32>,
    /// Attempts currently holding resources on each worker.
    in_flight_per_worker: Vec<u32>,
    jobs: Vec<JobState>,
    /// Pending job indices, one FIFO ring per priority class (indexed
    /// by [`Priority::index`]): O(1) enqueue and O(1) per-class depth,
    /// where the old single sorted `Vec` paid O(n) per insert.
    pending: [VecDeque<usize>; 3],
    faults: Vec<FaultInjection>,
    rng: Rng,
    /// Golden-clip bytes, encoded once; periodic screening and
    /// post-detection checks pass these through each VCU's data path
    /// instead of re-encoding the clip per check.
    golden_bytes: Vec<u8>,
    golden: u64,
    /// Events still in the queue that can hand work to the cluster
    /// (arrivals, backoff retries, fault injections — a pending
    /// `Repair` can revive a dead fleet). While any remain, queued
    /// jobs are not stranded.
    reviving_events: usize,
    // Rolling metrics. Job outcomes are tallied exactly once, in
    // `handle_completion` — the single resolution point — instead of
    // re-scanning `jobs` at the end of the run.
    samples: Vec<Sample>,
    output_mpix_window: f64,
    total_output_mpix: f64,
    completed: u64,
    failed: u64,
    stranded: u64,
    escaped: u64,
    retries: u64,
    caught: u64,
    attempts_per_worker: Vec<u64>,
    wait_sum: f64,
    wait_count: u64,
    /// Every first-placement wait, for the p99 percentile.
    waits: Vec<f64>,
    sw_decoded: u64,
    sw_encoded: u64,
    sw_full: u64,
    shed: u64,
    watchdog_fired: u64,
    crash_aborts: u64,
    repairs: u64,
    /// Jobs resolved so far (completed + failed); recurring events stop
    /// rescheduling once this reaches the job count.
    resolved: u64,
    /// Sim time of the most recent job resolution (horizon input).
    last_resolution_s: f64,
    /// Current degradation-ladder rung and per-rung sample counts.
    degrade_level: u8,
    degrade_samples: [u64; 4],
    /// Jobs currently in service, per priority pool.
    running_per_pool: [u64; 3],
    /// Distinct VCUs that touched each video (blast radius), maintained
    /// incrementally so samples can expose it as a time series.
    touched_per_video: HashMap<u64, BTreeSet<usize>>,
    /// Open-world mode: jobs keep arriving via [`ClusterSim::inject_job`]
    /// after construction, so recurring events (sampling, ECC ticks,
    /// golden screens) reschedule unconditionally and every resolution
    /// is logged for [`ClusterSim::drain_resolutions`].
    open_world: bool,
    /// Resolutions since the last drain (open-world mode only).
    resolutions: Vec<JobResolution>,
    /// Observability sink (disabled by default: zero cost).
    telemetry: Registry,
}

impl ClusterSim {
    /// Builds a simulator over `jobs` and `faults`.
    pub fn new(cfg: ClusterConfig, jobs: Vec<JobSpec>, faults: Vec<FaultInjection>) -> Self {
        let scheduler =
            Scheduler::with_placement(cfg.scheduler, cfg.vcus, cfg.shards, cfg.placement);
        // Per-worker corruption seeds come from a full SplitMix64 mix
        // of (seed, worker): the old `seed ^ (i << 8)` derivation left
        // streams differing only in shifted worker-id bits, and two
        // base seeds could collide different workers onto the same
        // stream.
        let vcus = (0..cfg.vcus)
            .map(|i| FaultyVcu::new(vcu_rng::mix64(cfg.seed, i as u64)))
            .collect();
        // Every arrival and fault is scheduled up front; sizing the
        // heap once avoids rehash-style growth at 500k+ jobs.
        let mut queue = EventQueue::with_capacity(jobs.len() + faults.len() + 1);
        for (i, j) in jobs.iter().enumerate() {
            queue.schedule(j.arrival_s, Event::Arrival(i));
        }
        for (i, f) in faults.iter().enumerate() {
            queue.schedule(f.time_s, Event::Fault(i));
        }
        queue.schedule(cfg.sample_period_s, Event::Sample);
        if cfg.health.golden_period_s > 0.0 {
            queue.schedule(cfg.health.golden_period_s, Event::GoldenScreen);
        }
        let n_workers = cfg.vcus;
        let seed = cfg.seed;
        // Every submitted video participates in the blast-radius mean,
        // even if none of its chunks ever reach a VCU.
        let touched_per_video = jobs.iter().map(|j| (j.video_id, BTreeSet::new())).collect();
        let golden_bytes = golden_transcode_bytes();
        let golden = checksum(&golden_bytes);
        let n_jobs = jobs.len();
        let reviving_events = n_jobs + faults.len();
        let model = cfg.model.clone();
        ClusterSim {
            cfg,
            model,
            queue,
            scheduler,
            vcus,
            mgmt: vec![WorkerMgmtState::Active; n_workers],
            strikes: vec![0; n_workers],
            recoveries: vec![0; n_workers],
            in_flight_per_worker: vec![0; n_workers],
            jobs: jobs
                .into_iter()
                .map(|spec| JobState {
                    spec,
                    attempts: 0,
                    done: false,
                    failed: false,
                    escaped_corruption: false,
                    touched_vcus: Vec::new(),
                    finished_at: None,
                    mode: AttemptMode::Hw,
                    live_attempt: None,
                    demand: None,
                })
                .collect(),
            pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            faults,
            rng: Rng::seed_from_u64(seed),
            golden_bytes,
            golden,
            reviving_events,
            samples: Vec::new(),
            output_mpix_window: 0.0,
            total_output_mpix: 0.0,
            completed: 0,
            failed: 0,
            stranded: 0,
            escaped: 0,
            retries: 0,
            caught: 0,
            attempts_per_worker: vec![0; n_workers],
            wait_sum: 0.0,
            wait_count: 0,
            waits: Vec::new(),
            sw_decoded: 0,
            sw_encoded: 0,
            sw_full: 0,
            shed: 0,
            watchdog_fired: 0,
            crash_aborts: 0,
            repairs: 0,
            resolved: 0,
            last_resolution_s: 0.0,
            degrade_level: 0,
            degrade_samples: [0; 4],
            running_per_pool: [0; 3],
            touched_per_video,
            open_world: false,
            resolutions: Vec::new(),
            telemetry: Registry::disabled(),
        }
    }

    /// Switches the simulator into open-world mode: jobs may be
    /// injected at any time via [`ClusterSim::inject_job`], recurring
    /// events keep rescheduling even while no job is unresolved, and
    /// every resolution is logged for [`ClusterSim::drain_resolutions`].
    /// Drive it with [`ClusterSim::step`] / [`ClusterSim::next_event_time`]
    /// and close with [`ClusterSim::finish`]; `run()` would spin on the
    /// recurring events.
    pub fn open_world(mut self) -> Self {
        self.open_world = true;
        self
    }

    /// Attaches a telemetry registry. Counters, per-pool utilization
    /// series, job spans, and fault/quarantine events are then recorded
    /// against the DES sim clock (never wall-clock), so same-seed runs
    /// produce bit-identical snapshots.
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// Non-consuming form of [`ClusterSim::with_telemetry`], for
    /// drivers that hold the simulator as a field.
    pub fn set_telemetry(&mut self, telemetry: Registry) {
        self.telemetry = telemetry;
    }

    /// Mean number of distinct VCUs that touched each video's chunks so
    /// far (§4.4 blast radius).
    fn mean_blast_radius(&self) -> f64 {
        if self.touched_per_video.is_empty() {
            return 0.0;
        }
        self.touched_per_video
            .values()
            .map(|s| s.len() as f64)
            .sum::<f64>()
            / self.touched_per_video.len() as f64
    }

    /// Runs to completion (all jobs resolved or event queue exhausted)
    /// and returns the report.
    pub fn run(mut self) -> ClusterReport {
        while self.step() {}
        self.finish()
    }

    /// Submits one more job to an open-world simulator. `arrival_s`
    /// must not precede the current sim time. Returns the job index
    /// used in [`JobResolution::job`].
    pub fn inject_job(&mut self, spec: JobSpec) -> usize {
        let j = self.jobs.len();
        self.queue.schedule(spec.arrival_s, Event::Arrival(j));
        self.reviving_events += 1;
        self.touched_per_video.entry(spec.video_id).or_default();
        self.jobs.push(JobState {
            spec,
            attempts: 0,
            done: false,
            failed: false,
            escaped_corruption: false,
            touched_vcus: Vec::new(),
            finished_at: None,
            mode: AttemptMode::Hw,
            live_attempt: None,
            demand: None,
        });
        j
    }

    /// Time of the next pending event, if any — the merge point for a
    /// driver interleaving this queue with its own.
    pub fn next_event_time(&self) -> Option<f64> {
        self.queue.next_time()
    }

    /// Current sim time (time of the last processed event).
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Jobs submitted so far whose terminal state is still open.
    pub fn unresolved_jobs(&self) -> u64 {
        self.jobs.len() as u64 - self.resolved
    }

    /// Processes exactly one event. Returns false when the queue is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                self.handle_event(ev.time, ev.event);
                true
            }
            None => false,
        }
    }

    /// Takes the job resolutions accumulated since the last call
    /// (open-world mode; empty otherwise), in resolution order.
    pub fn drain_resolutions(&mut self) -> Vec<JobResolution> {
        std::mem::take(&mut self.resolutions)
    }

    /// Processes every event with time ≤ `t` (epoch-stepping for
    /// drivers that interleave many open-world cells). The sim clock
    /// never passes `t`, so jobs injected afterwards may arrive at any
    /// time ≥ `t`.
    pub fn run_until(&mut self, t: f64) {
        while self.next_event_time().is_some_and(|next| next <= t) {
            self.step();
        }
    }

    /// Jobs waiting across all priority classes (the backlog an
    /// admission controller reads).
    pub fn backlog_jobs(&self) -> usize {
        self.pending_len()
    }

    /// Workers currently usable (active management state and a chip
    /// that accepts work) — the denominator of backlog pressure.
    pub fn usable_worker_count(&self) -> usize {
        (0..self.vcus.len())
            .filter(|&w| self.worker_usable(w))
            .count()
    }

    /// True while recurring events (sampling, ECC ticks, golden
    /// screens) should keep rescheduling: always in open-world mode,
    /// else only while some job is unresolved.
    fn recurring_live(&self) -> bool {
        self.open_world || self.resolved < self.jobs.len() as u64
    }

    fn handle_event(&mut self, now: f64, event: Event) {
        {
            match event {
                Event::Arrival(j) => {
                    self.reviving_events -= 1;
                    self.enqueue_pending(now, j);
                    self.try_schedule(now);
                }
                Event::Completion {
                    job,
                    attempt,
                    worker,
                    demand,
                    corrupted,
                } => {
                    if self.jobs[job].live_attempt != Some(attempt) {
                        return; // attempt already resolved by a watchdog/abort
                    }
                    if self.vcus[worker].is_hung() {
                        // The firmware wedged mid-flight: this completion
                        // never actually reported. The still-pending
                        // watchdog reclaims the attempt.
                        return;
                    }
                    self.end_attempt(now, job, worker, demand);
                    self.handle_completion(now, job, worker, corrupted);
                    self.try_schedule(now);
                }
                Event::Watchdog {
                    job,
                    attempt,
                    worker,
                    demand,
                } => {
                    if self.jobs[job].live_attempt != Some(attempt) {
                        return; // completed in time; deadline is stale
                    }
                    self.end_attempt(now, job, worker, demand);
                    self.watchdog_fired += 1;
                    if self.telemetry.is_enabled() {
                        self.telemetry.counter_inc("cluster.watchdog.fired");
                        self.telemetry.event(
                            "cluster.watchdog.fired",
                            self.job_scope(job, Some(worker)),
                            now,
                            attempt as f64,
                        );
                    }
                    self.strike(now, worker);
                    self.retry_or_fail(now, job, worker);
                    self.try_schedule(now);
                }
                Event::CrashAbort {
                    job,
                    attempt,
                    worker,
                    demand,
                } => {
                    if self.jobs[job].live_attempt != Some(attempt) {
                        return;
                    }
                    self.end_attempt(now, job, worker, demand);
                    self.crash_aborts += 1;
                    // The firmware resets itself — that is the loop.
                    self.vcus[worker].functional_reset();
                    if self.telemetry.is_enabled() {
                        self.telemetry.counter_inc("cluster.crash_abort");
                        self.telemetry.event(
                            "cluster.crash_abort",
                            self.job_scope(job, Some(worker)),
                            now,
                            attempt as f64,
                        );
                    }
                    self.strike(now, worker);
                    self.retry_or_fail(now, job, worker);
                    self.try_schedule(now);
                }
                Event::Retry(j) => {
                    self.reviving_events -= 1;
                    self.enqueue_pending(now, j);
                    self.try_schedule(now);
                }
                Event::Fault(f) => {
                    self.reviving_events -= 1;
                    self.apply_fault(now, f);
                }
                Event::EccTick {
                    worker,
                    correctable,
                } => {
                    self.vcus[worker].record_ecc(correctable, 0);
                    if !self.vcus[worker].accepts_work() {
                        // The storm tripped the correctable-ECC limit:
                        // the chip disabled itself.
                        self.scheduler.set_accepting(worker, false);
                        if self.telemetry.is_enabled() {
                            self.telemetry.counter_inc("cluster.ecc.disabled");
                            self.telemetry.event(
                                "cluster.ecc.disabled",
                                Scope::vcu(worker as u32),
                                now,
                                1.0,
                            );
                        }
                    } else if self.recurring_live() {
                        self.queue.schedule_in(
                            1.0,
                            Event::EccTick {
                                worker,
                                correctable,
                            },
                        );
                    }
                }
                Event::GoldenScreen => {
                    self.golden_screen_pass(now);
                    if self.recurring_live() {
                        self.queue
                            .schedule_in(self.cfg.health.golden_period_s, Event::GoldenScreen);
                    }
                }
                Event::Sample => {
                    self.handle_sample(now);
                }
            }
        }
    }

    /// Final accounting: consumes the simulator and returns the report.
    /// `run()` calls this after the queue drains; open-world drivers
    /// call it directly once their own workload is exhausted (the
    /// recurring events would keep an open-world queue alive forever).
    pub fn finish(mut self) -> ClusterReport {
        let horizon_s = self
            .samples
            .last()
            .map(|s| s.time_s)
            .unwrap_or(0.0)
            .max(self.last_resolution_s);
        let mean_vcus_per_video = self.mean_blast_radius();
        let quarantined_workers = self
            .mgmt
            .iter()
            .filter(|&&m| m == WorkerMgmtState::Quarantined)
            .count() as u64;
        if self.telemetry.is_enabled() {
            self.telemetry.gauge_set(
                "cluster.blast_radius.mean_vcus_per_video",
                mean_vcus_per_video,
            );
            self.telemetry.gauge_set("cluster.horizon_s", horizon_s);
            self.telemetry
                .gauge_set("cluster.workers.quarantined", quarantined_workers as f64);
        }
        let total_samples: u64 = self.degrade_samples.iter().sum();
        let degrade_time_frac = if total_samples == 0 {
            [0.0; 4]
        } else {
            self.degrade_samples
                .map(|n| n as f64 / total_samples as f64)
        };
        self.waits.sort_by(f64::total_cmp);
        let p99_wait_s = if self.waits.is_empty() {
            0.0
        } else {
            let idx = ((self.waits.len() as f64 * 0.99).ceil() as usize).clamp(1, self.waits.len());
            self.waits[idx - 1]
        };
        ClusterReport {
            samples: self.samples,
            completed: self.completed,
            failed: self.failed,
            stranded: self.stranded,
            retries: self.retries,
            escaped_corruptions: self.escaped,
            caught_corruptions: self.caught,
            sw_decoded_jobs: self.sw_decoded,
            sw_encoded_jobs: self.sw_encoded,
            sw_full_jobs: self.sw_full,
            shed: self.shed,
            watchdog_fired: self.watchdog_fired,
            crash_aborts: self.crash_aborts,
            repairs: self.repairs,
            quarantined_workers,
            mean_vcus_per_video,
            attempts_per_worker: self.attempts_per_worker,
            mean_wait_s: if self.wait_count == 0 {
                0.0
            } else {
                self.wait_sum / self.wait_count as f64
            },
            p99_wait_s,
            degrade_time_frac,
            total_output_mpix: self.total_output_mpix,
            horizon_s,
        }
    }

    /// Applies injected fault `f` at time `now`.
    fn apply_fault(&mut self, now: f64, f: usize) {
        let inj = self.faults[f].clone();
        let w = inj.worker;
        match inj.kind {
            FaultKind::SilentCorruption => {
                self.vcus[w].inject_silent_corruption();
                self.telemetry.event(
                    "cluster.fault.silent_corruption",
                    Scope::vcu(w as u32),
                    now,
                    1.0,
                );
            }
            FaultKind::Dead => {
                self.vcus[w].disable();
                self.scheduler.set_accepting(w, false);
                self.telemetry
                    .event("cluster.fault.dead", Scope::vcu(w as u32), now, 1.0);
            }
            FaultKind::FirmwareHang => {
                self.vcus[w].inject_hang();
                self.telemetry
                    .event("cluster.fault.hang", Scope::vcu(w as u32), now, 1.0);
            }
            FaultKind::SlowCore { factor_pct } => {
                self.vcus[w].inject_slow(factor_pct as f64 / 100.0);
                self.telemetry.event(
                    "cluster.fault.slow_core",
                    Scope::vcu(w as u32),
                    now,
                    factor_pct as f64 / 100.0,
                );
            }
            FaultKind::EccStorm {
                correctable_per_tick,
            } => {
                let correctable = correctable_per_tick.max(1);
                self.telemetry.event(
                    "cluster.fault.ecc_storm",
                    Scope::vcu(w as u32),
                    now,
                    correctable as f64,
                );
                self.queue.schedule(
                    now + 1.0,
                    Event::EccTick {
                        worker: w,
                        correctable,
                    },
                );
            }
            FaultKind::CrashLoop => {
                self.vcus[w].inject_crash_loop();
                self.telemetry
                    .event("cluster.fault.crash_loop", Scope::vcu(w as u32), now, 1.0);
            }
            FaultKind::Repair => {
                self.vcus[w].repair();
                self.mgmt[w] = WorkerMgmtState::Active;
                self.strikes[w] = 0;
                self.recoveries[w] = 0;
                self.scheduler.set_accepting(w, true);
                self.repairs += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.counter_inc("cluster.repair");
                    self.telemetry
                        .event("cluster.repair", Scope::vcu(w as u32), now, 1.0);
                }
                // A repaired worker may unblock queued work right now.
                self.try_schedule(now);
            }
        }
    }

    /// One periodic golden-screening pass over the fleet (§4.4: don't
    /// wait for a corrupt chunk to find a bad VCU — probe on a cadence).
    fn golden_screen_pass(&mut self, now: f64) {
        for w in 0..self.vcus.len() {
            if self.mgmt[w] != WorkerMgmtState::Active || !self.vcus[w].accepts_work() {
                continue;
            }
            if self.vcus[w].screen(&self.golden_bytes, self.golden) {
                continue;
            }
            // Failed probe: a fresh worker attach resets the core and
            // screens again — a plain hang clears, silicon faults stay.
            self.vcus[w].functional_reset();
            if self.vcus[w].screen(&self.golden_bytes, self.golden) {
                if self.telemetry.is_enabled() {
                    self.telemetry.counter_inc("cluster.screen.reset_recovered");
                }
                continue;
            }
            self.quarantine_worker(now, w);
        }
    }

    /// One metrics sample: record, advance the degradation ladder, and
    /// run the stranded-jobs guard.
    fn handle_sample(&mut self, now: f64) {
        let dt = self.cfg.sample_period_s;
        let usable_workers = (0..self.vcus.len())
            .filter(|&w| self.worker_usable(w))
            .count();
        // Degradation ladder: step one rung per sample toward the
        // backlog-pressure target (hysteresis by construction).
        let backlog = self.pending_len() as f64 / usable_workers.max(1) as f64;
        let target = self.cfg.degrade.target_level(backlog);
        match target.cmp(&self.degrade_level) {
            std::cmp::Ordering::Greater => self.degrade_level += 1,
            std::cmp::Ordering::Less => self.degrade_level -= 1,
            std::cmp::Ordering::Equal => {}
        }
        if self.degrade_level == 3 {
            self.shed_pending_batch(now);
        }
        self.degrade_samples[self.degrade_level as usize] += 1;
        let queued_per_pool = [
            self.pending[0].len(),
            self.pending[1].len(),
            self.pending[2].len(),
        ];
        let s = Sample {
            time_s: now,
            encode_util: self.scheduler.encode_utilization(),
            decode_util: self.scheduler.decode_utilization(),
            mpix_s_per_vcu: self.output_mpix_window / dt / self.cfg.vcus as f64,
            queued: queued_per_pool.iter().sum(),
            queued_per_pool,
            degrade_level: self.degrade_level,
            usable_workers,
        };
        self.samples.push(s);
        if self.telemetry.is_enabled() {
            self.record_sample(&s);
        }
        self.output_mpix_window = 0.0;
        // Stranded-jobs guard: with jobs queued, nothing in flight, and
        // no event left that could hand the cluster work (no arrival,
        // no backoff retry, no fault — a pending Repair counts as
        // hope), no completion can ever release capacity. One last
        // unbounded scheduling pass (the regular path gives up after a
        // bounded number of head-of-line misses), then whatever is
        // still queued can never run: resolve it as failed.
        if self.pending_len() > 0 && self.in_flight() == 0 && self.reviving_events == 0 {
            self.try_schedule_capped(now, usize::MAX);
            if self.in_flight() == 0 {
                self.strand_pending(now);
            }
        }
        // Keep sampling while any job is unresolved (always, in
        // open-world mode: more work may be injected at any time).
        if self.recurring_live() {
            self.queue.schedule_in(dt, Event::Sample);
        }
    }

    /// Records one metrics sample as telemetry time series (sim-clock
    /// timestamps). Feeds the Fig. 9-style utilization dashboards.
    fn record_sample(&self, s: &Sample) {
        let t = s.time_s;
        self.telemetry
            .series_record("cluster.util.encode", t, s.encode_util);
        self.telemetry
            .series_record("cluster.util.decode", t, s.decode_util);
        self.telemetry
            .series_record("cluster.throughput.mpix_s_per_vcu", t, s.mpix_s_per_vcu);
        self.telemetry
            .series_record("cluster.queue.depth", t, s.queued as f64);
        self.telemetry.series_record(
            "cluster.blast_radius.mean_vcus_per_video",
            t,
            self.mean_blast_radius(),
        );
        self.telemetry
            .series_record("cluster.degrade.level", t, s.degrade_level as f64);
        self.telemetry
            .series_record("cluster.workers.usable", t, s.usable_workers as f64);
        for p in Priority::ALL {
            self.telemetry.series_record(
                p.running_series(),
                t,
                self.running_per_pool[p.index()] as f64,
            );
            self.telemetry
                .series_record(p.queued_series(), t, s.queued_per_pool[p.index()] as f64);
        }
    }

    /// Jobs waiting across all priority classes.
    fn pending_len(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Job attempts currently holding worker resources.
    fn in_flight(&self) -> u64 {
        self.running_per_pool.iter().sum()
    }

    fn enqueue_pending(&mut self, now: f64, j: usize) {
        // Ladder level 3: Batch work is shed at the door instead of
        // queueing into a cluster that cannot keep up.
        if self.degrade_level == 3 && self.jobs[j].spec.priority == Priority::Batch {
            self.shed_job(now, j);
            return;
        }
        // O(1): each class is its own FIFO; scheduling visits classes
        // Critical → Normal → Batch, so cross-class order is positional
        // and within-class order is enqueue order — exactly the old
        // sorted-insert semantics without the O(n) `Vec::insert`.
        self.pending[self.jobs[j].spec.priority.index()].push_back(j);
    }

    /// Sheds one Batch job (ladder level 3): resolved as failed, with
    /// a dedicated tally so shed load is distinguishable from faults.
    fn shed_job(&mut self, now: f64, j: usize) {
        self.resolve_job(now, j, None, true, false);
        self.shed += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("cluster.jobs.shed");
        }
    }

    /// Sheds every queued Batch job (entering ladder level 3).
    fn shed_pending_batch(&mut self, now: f64) {
        let batch = Priority::Batch.index();
        for j in std::mem::take(&mut self.pending[batch]) {
            self.shed_job(now, j);
        }
    }

    fn try_schedule(&mut self, now: f64) {
        // Bounded head-of-line scan: once this many queued jobs fail to
        // place we stop — the cluster is saturated and later jobs are
        // no more likely to fit (keeps saturated runs near O(n)).
        self.try_schedule_capped(now, 48);
    }

    fn try_schedule_capped(&mut self, now: f64, max_misses: usize) {
        let mut misses = 0;
        'classes: for class in 0..self.pending.len() {
            let mut i = 0;
            while i < self.pending[class].len() {
                if misses >= max_misses {
                    break 'classes;
                }
                let j = self.pending[class][i];
                let hw_demand = match self.jobs[j].demand {
                    Some(d) => d,
                    None => {
                        let d = self.model.job_demand(&self.jobs[j].spec.job);
                        self.jobs[j].demand = Some(d);
                        d
                    }
                };
                let shard = j % self.cfg.shards.max(1);
                // Fig. 9c: when hardware decoders run hot, move decode
                // onto the host CPU (software) so decoder pressure
                // stops stranding encoder capacity. Software decode
                // costs extra host mCPU. The hot check is O(1): the
                // scheduler maintains cluster-wide used millicores
                // incrementally instead of rescanning every worker.
                let sw_demand = ResourceDemand {
                    millidecode: 0,
                    host_mcpu: hw_demand.host_mcpu + hw_demand.millidecode * 2,
                    ..hw_demand
                };
                // Ladder rungs: software encode trades the scarce
                // encoder millicores for host CPU (a full VCU's 10k
                // milliencode maps onto one 5k-mCPU host); full SW
                // additionally takes the decode conversion.
                let swe_demand = ResourceDemand {
                    milliencode: 0,
                    host_mcpu: hw_demand.host_mcpu + hw_demand.milliencode / 2,
                    ..hw_demand
                };
                let swf_demand = ResourceDemand {
                    millidecode: 0,
                    milliencode: 0,
                    host_mcpu: hw_demand.host_mcpu
                        + hw_demand.millidecode * 2
                        + hw_demand.milliencode / 2,
                    ..hw_demand
                };
                let decode_hot = self.scheduler.decode_utilization() > 0.9;
                // Consistent-hash placement (§4.4 future work): chunks
                // of a video only consider a bounded worker subset
                // keyed by the video id.
                let (start, window) = if self.cfg.consistent_hash_window > 0 {
                    let vid = self.jobs[j].spec.video_id;
                    let h = vid
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .rotate_left(17)
                        .wrapping_mul(0xBF58476D1CE4E5B9);
                    (
                        (h % self.cfg.vcus.max(1) as u64) as usize,
                        self.cfg.consistent_hash_window,
                    )
                } else {
                    let n = self.cfg.vcus;
                    let shard_size = n.div_ceil(self.cfg.shards.max(1)).max(1);
                    ((shard % self.cfg.shards.max(1)) * shard_size, n)
                };
                // Candidate (mode, demand) pairs in placement
                // preference order for the current ladder rung. Level 0
                // preserves the original Fig. 9c precedence exactly.
                let mut candidates: [Option<(AttemptMode, ResourceDemand)>; 3] = [None, None, None];
                match self.degrade_level {
                    0 => {
                        if self.cfg.opportunistic_sw_decode && decode_hot {
                            candidates[0] = Some((AttemptMode::SwDecode, sw_demand));
                            candidates[1] = Some((AttemptMode::Hw, hw_demand));
                        } else if self.cfg.opportunistic_sw_decode {
                            candidates[0] = Some((AttemptMode::Hw, hw_demand));
                            candidates[1] = Some((AttemptMode::SwDecode, sw_demand));
                        } else {
                            candidates[0] = Some((AttemptMode::Hw, hw_demand));
                        }
                    }
                    1 => {
                        candidates[0] = Some((AttemptMode::SwEncode, swe_demand));
                        candidates[1] = Some((AttemptMode::Hw, hw_demand));
                        if self.cfg.opportunistic_sw_decode {
                            candidates[2] = Some((AttemptMode::SwDecode, sw_demand));
                        }
                    }
                    _ => {
                        candidates[0] = Some((AttemptMode::SwFull, swf_demand));
                        candidates[1] = Some((AttemptMode::SwEncode, swe_demand));
                        candidates[2] = Some((AttemptMode::Hw, hw_demand));
                    }
                }
                let mut mode = AttemptMode::Hw;
                let mut demand = hw_demand;
                let mut placed = None;
                for cand in candidates.into_iter().flatten() {
                    placed = self.scheduler.place_from(cand.1, start, window);
                    if placed.is_some() {
                        mode = cand.0;
                        demand = cand.1;
                        break;
                    }
                }
                match placed {
                    Some(w) if self.worker_usable(w) => {
                        // `i` is bounded by the miss cap, so this
                        // removal shifts at most `max_misses` entries.
                        self.pending[class].remove(i);
                        self.start_job(now, j, w, demand, mode);
                    }
                    Some(w) => {
                        // Worker exists but its VCU is quarantined or
                        // disabled; release and stop it from accepting
                        // further work. Retry the same job in the next
                        // loop iteration.
                        self.scheduler.release(w, demand);
                        self.scheduler.set_accepting(w, false);
                    }
                    None => {
                        i += 1; // job stays queued; try next job
                        misses += 1;
                    }
                }
            }
        }
    }

    fn worker_usable(&self, w: usize) -> bool {
        self.mgmt[w] == WorkerMgmtState::Active && self.vcus[w].accepts_work()
    }

    /// Service-time multiplier of a codec path (software rungs are
    /// slower; that is the price of graceful degradation).
    fn mode_service_factor(&self, mode: AttemptMode) -> f64 {
        match mode {
            AttemptMode::Hw | AttemptMode::SwDecode => 1.0,
            AttemptMode::SwEncode => self.cfg.degrade.sw_encode_service_factor,
            AttemptMode::SwFull => self.cfg.degrade.sw_full_service_factor,
        }
    }

    fn start_job(
        &mut self,
        now: f64,
        j: usize,
        w: usize,
        demand: ResourceDemand,
        mode: AttemptMode,
    ) {
        let job = &mut self.jobs[j];
        job.attempts += 1;
        job.touched_vcus.push(w);
        // Per-attempt, not sticky: a retry that lands on hardware
        // after a software-path attempt must rewrite the mode, or the
        // per-mode job tallies (taken at resolution from the *final*
        // attempt) over-count.
        job.mode = mode;
        let attempt = job.attempts;
        job.live_attempt = Some(attempt);
        self.attempts_per_worker[w] += 1;
        self.in_flight_per_worker[w] += 1;
        let first_attempt = attempt == 1;
        if first_attempt {
            // Queueing delay is arrival → *first* placement, once per
            // job; retried jobs must not re-enter the mean with
            // ever-growing waits.
            self.wait_sum += now - job.spec.arrival_s;
            self.wait_count += 1;
            self.waits.push(now - job.spec.arrival_s);
        }
        self.running_per_pool[job.spec.priority.index()] += 1;
        self.touched_per_video
            .entry(job.spec.video_id)
            .or_default()
            .insert(w);
        let arrival_s = job.spec.arrival_s;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("cluster.attempts");
            if first_attempt {
                self.telemetry.observe("cluster.wait_s", now - arrival_s);
            }
        }

        let corrupting = self.vcus[w].state() == HealthState::SilentlyCorrupting;
        // A failing-but-fast VCU races through work (§4.4's black-hole
        // hazard); healthy VCUs take the chunk's real-time duration,
        // scaled by the codec path and any slow-core fault.
        let base = if corrupting {
            self.jobs[j].spec.job.duration_s * 0.2
        } else {
            self.jobs[j].spec.job.duration_s * self.cfg.service_time_factor
        };
        let service = base * self.mode_service_factor(mode) * self.vcus[w].slow_factor();
        if self.vcus[w].is_crash_looping() {
            // The firmware gets partway in and crashes; the attempt
            // never completes cleanly.
            self.queue.schedule(
                now + service.clamp(0.01, CRASH_ABORT_S),
                Event::CrashAbort {
                    job: j,
                    attempt,
                    worker: w,
                    demand,
                },
            );
        } else if !self.vcus[w].is_hung() {
            self.queue.schedule(
                now + service.max(0.01),
                Event::Completion {
                    job: j,
                    attempt,
                    worker: w,
                    demand,
                    corrupted: corrupting,
                },
            );
        }
        // A hung VCU schedules nothing: only this deadline notices.
        let nominal = self.jobs[j].spec.job.duration_s * self.cfg.service_time_factor;
        self.queue.schedule(
            now + self.cfg.watchdog.grace_s + nominal * self.cfg.watchdog.service_factor,
            Event::Watchdog {
                job: j,
                attempt,
                worker: w,
                demand,
            },
        );
    }

    /// Releases the resources of job `j`'s live attempt on worker `w`
    /// and completes the worker's drain if this was its last in-flight
    /// attempt. Exactly one of completion / watchdog / crash-abort
    /// reaches this per attempt.
    fn end_attempt(&mut self, now: f64, j: usize, w: usize, demand: ResourceDemand) {
        self.jobs[j].live_attempt = None;
        self.scheduler.release(w, demand);
        self.running_per_pool[self.jobs[j].spec.priority.index()] -= 1;
        self.in_flight_per_worker[w] -= 1;
        if self.mgmt[w] == WorkerMgmtState::Draining && self.in_flight_per_worker[w] == 0 {
            self.finish_drain(now, w);
        }
    }

    /// Registers a health strike against worker `w`; at the threshold
    /// an active worker is demoted to draining (it finishes in-flight
    /// work, then screens).
    fn strike(&mut self, now: f64, w: usize) {
        self.strikes[w] += 1;
        if self.mgmt[w] == WorkerMgmtState::Active
            && self.strikes[w] >= self.cfg.health.strike_threshold
        {
            self.mgmt[w] = WorkerMgmtState::Draining;
            self.scheduler.set_accepting(w, false);
            if self.telemetry.is_enabled() {
                self.telemetry.counter_inc("cluster.worker.draining");
                self.telemetry
                    .event("cluster.worker.draining", Scope::vcu(w as u32), now, 1.0);
            }
            if self.in_flight_per_worker[w] == 0 {
                self.finish_drain(now, w);
            }
        }
    }

    /// A draining worker's last attempt finished: functional reset,
    /// golden screen, and either bounded reactivation or quarantine.
    fn finish_drain(&mut self, now: f64, w: usize) {
        self.vcus[w].functional_reset();
        if self.vcus[w].screen(&self.golden_bytes, self.golden)
            && self.recoveries[w] < self.cfg.health.max_recoveries
        {
            self.mgmt[w] = WorkerMgmtState::Active;
            self.strikes[w] = 0;
            self.recoveries[w] += 1;
            self.scheduler.set_accepting(w, true);
            if self.telemetry.is_enabled() {
                self.telemetry.counter_inc("cluster.worker.reactivated");
                self.telemetry
                    .event("cluster.worker.reactivated", Scope::vcu(w as u32), now, 1.0);
            }
            self.try_schedule(now);
        } else {
            self.quarantine_worker(now, w);
        }
    }

    /// Moves worker `w` to quarantine (idempotent; only the transition
    /// is an observable event).
    fn quarantine_worker(&mut self, now: f64, w: usize) {
        if self.mgmt[w] != WorkerMgmtState::Quarantined {
            self.telemetry.counter_inc("cluster.quarantine");
            self.telemetry
                .event("cluster.quarantine", Scope::vcu(w as u32), now, 1.0);
        }
        self.mgmt[w] = WorkerMgmtState::Quarantined;
        self.scheduler.set_accepting(w, false);
    }

    /// Retries job `j` (with backoff) or resolves it failed when its
    /// attempt budget is spent. `w` is the worker of the failing
    /// attempt.
    fn retry_or_fail(&mut self, now: f64, j: usize, w: usize) {
        if self.jobs[j].attempts >= self.cfg.retry.max_attempts {
            self.resolve_job(now, j, Some(w), true, false);
            return;
        }
        self.retries += 1;
        self.telemetry.counter_inc("cluster.retries");
        let delay = self.cfg.retry.delay_s(self.jobs[j].attempts, &mut self.rng);
        if delay <= 0.0 {
            self.enqueue_pending(now, j);
        } else {
            self.reviving_events += 1;
            self.queue.schedule(now + delay, Event::Retry(j));
        }
    }

    /// Telemetry scope for job `j`, optionally pinned to the worker `w`
    /// that ran its final attempt (stranded jobs never had one).
    fn job_scope(&self, j: usize, w: Option<usize>) -> Scope {
        let scope = Scope::job(j as u64).with_video(self.jobs[j].spec.video_id);
        match w {
            Some(w) => scope.with_vcu(w as u32),
            None => scope,
        }
    }

    /// Marks job `j` resolved (success or permanent failure). The only
    /// place `completed`/`failed`/`escaped`/`sw_decoded` tallies move,
    /// so the report and the telemetry counters cannot disagree. `w` is
    /// the worker of the final attempt, `None` for never-placed
    /// (stranded) jobs.
    fn resolve_job(&mut self, now: f64, j: usize, w: Option<usize>, failed: bool, escaped: bool) {
        let job = &mut self.jobs[j];
        job.done = true;
        job.failed = failed;
        job.escaped_corruption = escaped;
        self.resolved += 1;
        self.last_resolution_s = self.last_resolution_s.max(now);
        if self.open_world {
            self.resolutions.push(JobResolution {
                job: j,
                time_s: now,
                completed: !failed,
            });
        }
        if !failed {
            job.finished_at = Some(now);
            let mpix = job.spec.job.output_pixels() / 1e6;
            self.output_mpix_window += mpix;
            self.total_output_mpix += mpix;
        }
        if failed {
            self.failed += 1;
        } else {
            self.completed += 1;
            // Count codec path per *job*, from the successful (final)
            // attempt's mode — not per attempt in `start_job`, which
            // would inflate the tallies whenever an attempt is retried.
            match self.jobs[j].mode {
                AttemptMode::Hw => {}
                AttemptMode::SwDecode => {
                    self.sw_decoded += 1;
                    if self.telemetry.is_enabled() {
                        self.telemetry.counter_inc("cluster.sw_decode");
                    }
                }
                AttemptMode::SwEncode => {
                    self.sw_encoded += 1;
                    if self.telemetry.is_enabled() {
                        self.telemetry.counter_inc("cluster.sw_encode");
                    }
                }
                AttemptMode::SwFull => {
                    self.sw_full += 1;
                    if self.telemetry.is_enabled() {
                        self.telemetry.counter_inc("cluster.sw_full");
                    }
                }
            }
        }
        if escaped {
            self.escaped += 1;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc(if failed {
                "cluster.jobs.failed"
            } else {
                "cluster.jobs.completed"
            });
            if escaped {
                self.telemetry.counter_inc("cluster.corruption.escaped");
            }
            let arrival = self.jobs[j].spec.arrival_s;
            let attempts = self.jobs[j].attempts;
            self.telemetry.span(
                if failed {
                    "cluster.job.failed"
                } else {
                    "cluster.job"
                },
                self.job_scope(j, w),
                arrival,
                now,
                attempts as f64,
            );
        }
    }

    /// Stranded-jobs policy: every queued job is unplaceable (no usable
    /// worker, nothing in flight, no future events), so resolve them
    /// all as failed rather than sampling forever. See DESIGN.md.
    fn strand_pending(&mut self, now: f64) {
        let mut count: u64 = 0;
        for class in 0..self.pending.len() {
            for j in std::mem::take(&mut self.pending[class]) {
                self.resolve_job(now, j, None, true, false);
                count += 1;
            }
        }
        self.stranded += count;
        if count > 0 && self.telemetry.is_enabled() {
            self.telemetry.counter_add("cluster.jobs.stranded", count);
            self.telemetry
                .event("cluster.jobs.stranded", Scope::none(), now, count as f64);
        }
    }

    fn handle_completion(&mut self, now: f64, j: usize, w: usize, corrupted: bool) {
        if corrupted {
            let detected = self.cfg.integrity_checks && self.rng.gen_bool(self.cfg.detection_rate);
            if detected {
                self.caught += 1;
                self.telemetry.counter_inc("cluster.corruption.caught");
                if self.cfg.blackhole_mitigation {
                    // §4.4: the worker aborts everything on this VCU;
                    // a fresh worker screens against the golden clip,
                    // which a corrupting VCU fails — quarantining it.
                    self.vcus[w].functional_reset();
                    if !self.vcus[w].screen(&self.golden_bytes, self.golden) {
                        self.quarantine_worker(now, w);
                    }
                }
                // Retry at cluster level, with backoff.
                self.retry_or_fail(now, j, w);
                return;
            }
            // Undetected corruption ships (the paper admits "the system
            // will have bad video chunks escape").
            self.resolve_job(now, j, Some(w), false, true);
            return;
        }
        self.resolve_job(now, j, Some(w), false, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_codec::Profile;
    use vcu_media::Resolution;

    fn upload_jobs(n: usize, spacing_s: f64, mot: bool) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                arrival_s: i as f64 * spacing_s,
                job: if mot {
                    TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0)
                } else {
                    TranscodeJob::sot(
                        Resolution::R1080,
                        Resolution::R720,
                        Profile::Vp9Sim,
                        30.0,
                        5.0,
                    )
                },
                priority: Priority::Normal,
                video_id: 0,
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_on_healthy_cluster() {
        let cfg = ClusterConfig {
            vcus: 4,
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, upload_jobs(50, 0.5, true), vec![]).run();
        assert_eq!(report.completed, 50);
        assert_eq!(report.failed, 0);
        assert_eq!(report.escaped_corruptions, 0);
        assert!(report.total_output_mpix > 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = ClusterConfig {
            vcus: 3,
            ..ClusterConfig::default()
        };
        let a = ClusterSim::new(cfg.clone(), upload_jobs(30, 1.0, true), vec![]).run();
        let b = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), vec![]).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_output_mpix, b.total_output_mpix);
        assert_eq!(a.attempts_per_worker, b.attempts_per_worker);
    }

    #[test]
    fn corrupting_vcu_is_quarantined_with_mitigation() {
        let cfg = ClusterConfig {
            vcus: 4,
            blackhole_mitigation: true,
            detection_rate: 1.0,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults).run();
        assert_eq!(report.escaped_corruptions, 0, "detection_rate 1.0");
        assert!(report.caught_corruptions >= 1);
        // After quarantine, worker 0 stops accumulating attempts: it
        // should have far fewer than an equal share.
        let w0 = report.attempts_per_worker[0];
        let total: u64 = report.attempts_per_worker.iter().sum();
        assert!(
            (w0 as f64) < total as f64 * 0.15,
            "worker 0 kept taking work: {w0}/{total}"
        );
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn blackholing_emerges_without_mitigation() {
        // Without mitigation the fast-failing VCU keeps winning the
        // first-fit race and reprocesses a disproportionate share.
        let mk = |mitigate: bool| {
            let cfg = ClusterConfig {
                vcus: 4,
                blackhole_mitigation: mitigate,
                detection_rate: 1.0,
                retry: RetryPolicy {
                    max_attempts: 11,
                    ..RetryPolicy::default()
                },
                seed: 7,
                ..ClusterConfig::default()
            };
            let faults = vec![FaultInjection {
                time_s: 0.0,
                worker: 0,
                kind: FaultKind::SilentCorruption,
            }];
            ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults).run()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            without.retries > with.retries * 2,
            "mitigation should slash retries: {} vs {}",
            without.retries,
            with.retries
        );
        let share = |r: &ClusterReport| {
            r.attempts_per_worker[0] as f64 / r.attempts_per_worker.iter().sum::<u64>() as f64
        };
        assert!(
            share(&without) > share(&with),
            "black-hole share {} vs mitigated {}",
            share(&without),
            share(&with)
        );
    }

    #[test]
    fn corruption_escapes_without_integrity_checks() {
        let cfg = ClusterConfig {
            vcus: 4,
            integrity_checks: false,
            blackhole_mitigation: false,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(40, 0.3, true), faults).run();
        assert!(
            report.escaped_corruptions > 0,
            "without checks corruption must ship"
        );
    }

    #[test]
    fn dead_vcu_work_reroutes() {
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 5.0,
            worker: 0,
            kind: FaultKind::Dead,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), faults).run();
        assert_eq!(report.completed + report.failed, 30);
        assert_eq!(report.failed, 0, "redundancy absorbs a dead VCU");
        assert_eq!(report.stranded, 0);
    }

    #[test]
    fn stranded_jobs_terminate_instead_of_livelocking() {
        // Regression: the lone VCU dies before any job arrives, so no
        // placement and no completion can ever happen. The sampler used
        // to reschedule itself forever on the non-empty queue and
        // `run()` never returned; the stranded-jobs policy must fail
        // the queued work and terminate.
        let cfg = ClusterConfig {
            vcus: 1,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::Dead,
        }];
        let mut jobs = upload_jobs(8, 1.0, false);
        for j in &mut jobs {
            // Strictly after the fault: same-time arrivals pop before
            // the fault event and would be placed on the then-healthy
            // VCU.
            j.arrival_s += 1.0;
        }
        let reg = Registry::new();
        let report = ClusterSim::new(cfg, jobs, faults)
            .with_telemetry(reg.clone())
            .run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 8, "every queued job fails as stranded");
        assert_eq!(report.stranded, 8);
        assert_eq!(reg.counter("cluster.jobs.stranded"), 8);
        assert_eq!(
            report.mean_wait_s, 0.0,
            "never-placed jobs contribute no queueing wait"
        );
    }

    #[test]
    fn critical_jobs_jump_the_queue() {
        // Saturate a tiny cluster, then submit one critical job; its
        // wait should be shorter than the average batch wait.
        let mut jobs = upload_jobs(40, 0.0, true);
        for j in &mut jobs {
            j.priority = Priority::Batch;
        }
        jobs.push(JobSpec {
            arrival_s: 1.0,
            job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 2.0),
            priority: Priority::Critical,
            video_id: 0,
        });
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(cfg, jobs, vec![]);
        let report = sim.run();
        assert_eq!(report.completed, 41);
        // (Detailed per-job wait assertions live in integration tests;
        // here we check the run stays healthy under priority inserts.)
        assert!(report.mean_wait_s >= 0.0);
    }

    #[test]
    fn retries_do_not_inflate_mean_wait() {
        // One job arriving into an idle cluster is placed the instant
        // it arrives: its queueing wait is exactly zero. A corrupting
        // first-fit worker forces a retry; that retry must not record
        // a second, later "wait" for the same job.
        let cfg = ClusterConfig {
            vcus: 2,
            detection_rate: 1.0,
            blackhole_mitigation: true,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let jobs = vec![JobSpec {
            arrival_s: 1.0,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 1);
        assert!(report.retries >= 1, "corruption must force a retry");
        assert_eq!(
            report.mean_wait_s, 0.0,
            "wait is measured once, at first placement"
        );
    }

    #[test]
    fn sw_decoded_jobs_counts_final_attempt_mode() {
        // `sw_decoded_jobs` is documented as "jobs whose *successful*
        // attempt used software decode". Engineer a job whose FIRST
        // attempt is software-decoded on a corrupting VCU and whose
        // successful retry is hardware-decoded: it must not be counted.
        //
        // 24 decode-heavy background chunks (2160p in, 240p out) placed
        // at t=0 pin hardware decode above the 90% offload threshold
        // until t=0.8. The victim arrives at t=0.5 → software decode →
        // first-fit onto the corrupting worker 0 → fast corrupt
        // completion at t=1.5, detected, worker quarantined. By then
        // the background has drained, decode is cold, and the retry
        // runs hardware-decoded on worker 1.
        let mut jobs: Vec<JobSpec> = (0..24)
            .map(|i| JobSpec {
                arrival_s: 0.0,
                job: TranscodeJob::sot(
                    Resolution::R2160,
                    Resolution::R240,
                    Profile::Vp9Sim,
                    30.0,
                    0.8,
                ),
                priority: Priority::Normal,
                video_id: i as u64,
            })
            .collect();
        jobs.push(JobSpec {
            arrival_s: 0.5,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 99,
        });
        let cfg = ClusterConfig {
            vcus: 2,
            opportunistic_sw_decode: true,
            detection_rate: 1.0,
            blackhole_mitigation: true,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 25);
        assert_eq!(report.retries, 1, "victim must retry exactly once");
        assert_eq!(
            report.sw_decoded_jobs, 0,
            "the successful attempt was hardware-decoded; the sw attempt must not count"
        );
    }

    #[test]
    fn consistent_hashing_bounds_blast_radius() {
        // Many videos, several chunks each: with consistent hashing the
        // mean number of distinct VCUs per video must shrink (§4.4's
        // future-work enhancement).
        let jobs = |_| -> Vec<JobSpec> {
            (0..120)
                .map(|i| JobSpec {
                    arrival_s: (i / 4) as f64 * 0.6,
                    job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 5.0),
                    priority: Priority::Normal,
                    video_id: (i / 4) as u64 + 1, // 4 chunks per video
                })
                .collect()
        };
        let run = |window: usize| {
            let cfg = ClusterConfig {
                vcus: 12,
                consistent_hash_window: window,
                ..ClusterConfig::default()
            };
            ClusterSim::new(cfg, jobs(()), vec![]).run()
        };
        let spread = run(0);
        let hashed = run(3);
        assert_eq!(hashed.failed, 0, "hashing must not fail jobs");
        assert!(
            hashed.mean_vcus_per_video < spread.mean_vcus_per_video,
            "blast radius should shrink: {} vs {}",
            hashed.mean_vcus_per_video,
            spread.mean_vcus_per_video
        );
        assert!(hashed.mean_vcus_per_video <= 3.0);
    }

    #[test]
    fn telemetry_counters_match_report() {
        let reg = Registry::new();
        let cfg = ClusterConfig {
            vcus: 4,
            detection_rate: 1.0,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults)
            .with_telemetry(reg.clone())
            .run();
        assert_eq!(reg.counter("cluster.jobs.completed"), report.completed);
        assert_eq!(reg.counter("cluster.jobs.failed"), report.failed);
        assert_eq!(reg.counter("cluster.retries"), report.retries);
        assert_eq!(
            reg.counter("cluster.corruption.caught"),
            report.caught_corruptions
        );
        assert_eq!(
            reg.counter("cluster.corruption.escaped"),
            report.escaped_corruptions
        );
        assert_eq!(
            reg.counter("cluster.attempts"),
            report.attempts_per_worker.iter().sum::<u64>()
        );
        // The quarantine shows up as both a counter and a trace event.
        assert_eq!(reg.counter("cluster.quarantine"), 1);
        assert_eq!(reg.events_named("cluster.quarantine").len(), 1);
        assert_eq!(reg.events_named("cluster.fault.silent_corruption").len(), 1);
        // Utilization series carry one point per sample.
        let util = reg.series("cluster.util.encode").expect("series recorded");
        assert_eq!(util.len(), report.samples.len());
        // Job spans cover every resolved job.
        let spans = reg.events_named("cluster.job");
        assert_eq!(spans.len() as u64, report.completed);
        assert!(spans.iter().all(|e| e.end_s >= e.start_s && e.value >= 1.0));
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let cfg = ClusterConfig {
            vcus: 3,
            ..ClusterConfig::default()
        };
        let plain = ClusterSim::new(cfg.clone(), upload_jobs(30, 1.0, true), vec![]).run();
        let traced = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), vec![])
            .with_telemetry(Registry::new())
            .run();
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.total_output_mpix, traced.total_output_mpix);
        assert_eq!(plain.attempts_per_worker, traced.attempts_per_worker);
        assert_eq!(plain.mean_vcus_per_video, traced.mean_vcus_per_video);
    }

    #[test]
    fn backoff_delays_are_deterministic_and_bounded() {
        let p = RetryPolicy {
            base_s: 2.0,
            factor: 2.0,
            max_attempts: 5,
            jitter_frac: 0.25,
            ..RetryPolicy::default()
        };
        let seq = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (1..5).map(|a| p.delay_s(a, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9), "same seed, same backoff");
        for (i, &d) in seq(9).iter().enumerate() {
            let base = 2.0 * 2.0f64.powi(i as i32);
            assert!(
                d >= base && d < base * 1.25,
                "attempt {}: {d} vs {base}",
                i + 1
            );
        }
        // No jitter → exact exponential, and no RNG draw at all.
        let exact = RetryPolicy {
            jitter_frac: 0.0,
            ..p
        };
        let mut rng = Rng::seed_from_u64(1);
        let before = rng.clone();
        assert_eq!(exact.delay_s(3, &mut rng), 8.0);
        assert_eq!(
            rng.next_u64(),
            before.clone().next_u64(),
            "no draw without jitter"
        );
        // Disabled backoff never draws either.
        let mut rng2 = Rng::seed_from_u64(1);
        assert_eq!(RetryPolicy::default().delay_s(3, &mut rng2), 0.0);
        assert_eq!(rng2.next_u64(), before.clone().next_u64());
    }

    #[test]
    fn backoff_is_clamped_at_max_delay() {
        // Regression: factor^(attempts-1) overflows to f64::INFINITY
        // around attempt 1076 with factor 2 — an unclamped policy would
        // schedule a retry at t = ∞ and wedge the DES.
        let p = RetryPolicy {
            base_s: 2.0,
            factor: 2.0,
            max_attempts: u32::MAX,
            jitter_frac: 0.0,
            max_delay_s: 900.0,
        };
        let mut rng = Rng::seed_from_u64(1);
        for attempts in [10, 60, 1_076, 10_000, u32::MAX] {
            let d = p.delay_s(attempts, &mut rng);
            assert!(d.is_finite(), "attempt {attempts}: delay {d} not finite");
            assert!(d <= 900.0, "attempt {attempts}: delay {d} above cap");
        }
        // Below the cap the exponential is untouched.
        assert_eq!(p.delay_s(3, &mut rng), 8.0);
        // Jitter applies on top of the clamped value, not the raw one.
        let jittered = RetryPolicy {
            jitter_frac: 0.25,
            ..p
        };
        let d = jittered.delay_s(10_000, &mut rng);
        assert!((900.0..900.0 * 1.25).contains(&d), "jittered clamp: {d}");
    }

    #[test]
    fn firmware_hang_is_rescued_by_the_watchdog() {
        // Worker 0 hangs before the only job arrives; the completion
        // never fires and only the watchdog deadline reclaims the
        // attempt, retrying onto worker 1.
        let cfg = ClusterConfig {
            vcus: 2,
            consistent_hash_window: 0,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::FirmwareHang,
        }];
        let jobs = vec![JobSpec {
            arrival_s: 1.0,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 0);
        // First-fit keeps feeding worker 0 until three strikes demote
        // it to draining; the post-drain functional reset clears the
        // hang, the screen passes, and the reactivated worker finishes
        // the job.
        assert_eq!(report.watchdog_fired, 3, "one deadline per strike");
        assert_eq!(report.retries, 3);
        assert_eq!(report.attempts_per_worker, vec![4, 0]);
        assert_eq!(
            report.quarantined_workers, 0,
            "a reset-curable wedge recovers"
        );
    }

    #[test]
    fn hang_mid_flight_suppresses_the_scheduled_completion() {
        // The job starts on a healthy worker 0, then the firmware
        // wedges mid-service: the already-scheduled completion must not
        // count, and the watchdog rescues the attempt.
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 1.0,
            worker: 0,
            kind: FaultKind::FirmwareHang,
        }];
        let jobs = vec![JobSpec {
            arrival_s: 0.0,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 1);
        assert!(
            report.watchdog_fired >= 1,
            "the completion at t≈5 must be suppressed in favour of the deadline"
        );
        assert!(
            report.horizon_s > 30.0,
            "resolution waits for the watchdog deadline"
        );
    }

    #[test]
    fn slow_core_attempts_time_out_and_reroute() {
        // A 16× slow core turns a 5 s job into 80 s — past the 30+8×5
        // = 70 s watchdog deadline. The attempt is reclaimed and
        // retried; repeated strikes demote the slow worker.
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SlowCore { factor_pct: 1600 },
        }];
        let report = ClusterSim::new(cfg, upload_jobs(20, 1.0, true), faults).run();
        // A slow core *passes* its screen (slow output is correct
        // output), so it bounces back `max_recoveries` times before
        // quarantine — a handful of jobs can burn their whole attempt
        // budget on it meanwhile.
        assert_eq!(report.completed + report.failed, 20);
        assert!(
            report.completed >= 18,
            "completed only {}",
            report.completed
        );
        assert!(
            report.watchdog_fired >= 3,
            "slow attempts must hit the deadline"
        );
        assert_eq!(
            report.watchdog_fired,
            report.retries + report.failed,
            "every deadline either retried the job or spent its final attempt"
        );
        // The healthy worker ends up with the overwhelming share.
        assert!(
            report.attempts_per_worker[1] > report.attempts_per_worker[0],
            "attempts: {:?}",
            report.attempts_per_worker
        );
    }

    #[test]
    fn crash_loop_is_quarantined_after_strikes() {
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::CrashLoop,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(20, 1.0, true), faults).run();
        assert_eq!(report.completed, 20, "crashes only cost retries");
        assert!(
            report.crash_aborts >= 3,
            "strikes accumulate: {}",
            report.crash_aborts
        );
        assert_eq!(
            report.quarantined_workers, 1,
            "the post-drain screen fails a crash-looping core"
        );
    }

    #[test]
    fn ecc_storm_disables_the_vcu_and_work_reroutes() {
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        // 100 correctable/s trips the 1000-error limit after 10 ticks.
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::EccStorm {
                correctable_per_tick: 100,
            },
        }];
        let report = ClusterSim::new(cfg, upload_jobs(40, 1.0, true), faults).run();
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0, "redundancy absorbs the disabled VCU");
        // After the storm disables worker 0 (t≈10), everything runs on
        // worker 1.
        assert!(
            report.attempts_per_worker[1] > report.attempts_per_worker[0],
            "attempts: {:?}",
            report.attempts_per_worker
        );
    }

    #[test]
    fn repair_revives_a_dead_fleet_instead_of_stranding() {
        // The lone VCU dies before any job arrives — the old stranding
        // scenario — but a field repair is scheduled: the sim must wait
        // for it rather than failing the queue.
        let cfg = ClusterConfig {
            vcus: 1,
            ..ClusterConfig::default()
        };
        let faults = vec![
            FaultInjection {
                time_s: 0.0,
                worker: 0,
                kind: FaultKind::Dead,
            },
            FaultInjection {
                time_s: 200.0,
                worker: 0,
                kind: FaultKind::Repair,
            },
        ];
        let mut jobs = upload_jobs(8, 1.0, false);
        for j in &mut jobs {
            j.arrival_s += 1.0;
        }
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 8, "repair must revive the fleet");
        assert_eq!(report.stranded, 0);
        assert_eq!(report.repairs, 1);
        assert!(report.mean_wait_s > 100.0, "jobs waited out the outage");
    }

    #[test]
    fn periodic_screening_catches_a_corruptor_without_integrity_checks() {
        // No integrity checks and no detected failures: only the
        // periodic golden screen can find the silently corrupting VCU.
        let run = |golden_period_s: f64| {
            let cfg = ClusterConfig {
                vcus: 4,
                integrity_checks: false,
                health: HealthPolicy {
                    golden_period_s,
                    ..HealthPolicy::default()
                },
                ..ClusterConfig::default()
            };
            let faults = vec![FaultInjection {
                time_s: 0.0,
                worker: 0,
                kind: FaultKind::SilentCorruption,
            }];
            ClusterSim::new(cfg, upload_jobs(200, 0.2, true), faults).run()
        };
        let unscreened = run(0.0);
        let screened = run(10.0);
        assert!(unscreened.escaped_corruptions > 0);
        assert_eq!(unscreened.quarantined_workers, 0);
        assert_eq!(
            screened.quarantined_workers, 1,
            "screening quarantines the VCU"
        );
        assert!(
            screened.escaped_corruptions < unscreened.escaped_corruptions,
            "screening bounds the blast radius: {} vs {}",
            screened.escaped_corruptions,
            unscreened.escaped_corruptions
        );
    }

    #[test]
    fn degradation_ladder_sheds_batch_only_at_the_top_rung() {
        // Swamp a tiny cluster far beyond its capacity with mixed
        // priorities and a ladder that arms quickly: levels must rise
        // one rung per sample, software fallbacks must carry jobs, and
        // Batch work is shed while Critical work survives.
        let mut jobs: Vec<JobSpec> = (0..400)
            .map(|i| JobSpec {
                arrival_s: (i as f64) * 0.05,
                job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
                priority: match i % 4 {
                    0 => Priority::Critical,
                    3 => Priority::Batch,
                    _ => Priority::Normal,
                },
                video_id: i as u64 / 4,
            })
            .collect();
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        let cfg = ClusterConfig {
            vcus: 2,
            sample_period_s: 10.0,
            degrade: DegradePolicy {
                enabled: true,
                backlog_per_worker: [2.0, 6.0, 12.0],
                ..DegradePolicy::default()
            },
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, jobs, vec![]).run();
        let max_level = report
            .samples
            .iter()
            .map(|s| s.degrade_level)
            .max()
            .unwrap();
        assert_eq!(max_level, 3, "the overload must climb the whole ladder");
        // One rung per sample in either direction.
        for w in report.samples.windows(2) {
            assert!(
                (w[1].degrade_level as i32 - w[0].degrade_level as i32).abs() <= 1,
                "ladder moved more than one rung per sample"
            );
        }
        assert!(report.shed > 0, "level 3 must shed Batch work");
        assert!(
            report.sw_encoded_jobs > 0,
            "level ≥1 must run software encodes"
        );
        assert!(
            report.degrade_time_frac.iter().sum::<f64>() > 0.999,
            "rung time fractions must partition the run"
        );
        // Shedding hits Batch only: all failures are shed Batch jobs.
        assert_eq!(report.failed, report.shed);
        assert_eq!(report.completed + report.failed, 400);
    }

    #[test]
    fn degraded_ladder_preserves_goodput_under_quarantine_wave() {
        // Kill most of the fleet mid-run. Without the ladder the
        // backlog explodes against the survivors; with it, software
        // fallback keeps goodput flowing and nothing is stranded.
        let jobs: Vec<JobSpec> = (0..300)
            .map(|i| JobSpec {
                arrival_s: i as f64 * 0.2,
                job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 5.0),
                priority: Priority::Normal,
                video_id: i as u64,
            })
            .collect();
        let faults: Vec<FaultInjection> = (0..6)
            .map(|w| FaultInjection {
                time_s: 10.0,
                worker: w,
                kind: FaultKind::Dead,
            })
            .collect();
        let cfg = ClusterConfig {
            vcus: 8,
            sample_period_s: 10.0,
            degrade: DegradePolicy {
                enabled: true,
                backlog_per_worker: [2.0, 6.0, 12.0],
                ..DegradePolicy::default()
            },
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed + report.failed, 300);
        assert_eq!(report.stranded, 0);
        assert!(
            report.samples.iter().any(|s| s.usable_workers == 2),
            "samples must expose the shrunken fleet"
        );
        assert!(
            report.completed >= 290,
            "no Normal-priority collapse: {}",
            report.completed
        );
    }

    #[test]
    fn samples_are_collected() {
        let cfg = ClusterConfig {
            vcus: 4,
            sample_period_s: 5.0,
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, upload_jobs(100, 0.5, true), vec![]).run();
        assert!(report.samples.len() >= 5);
        assert!(report.samples.iter().any(|s| s.encode_util > 0.0));
    }

    #[test]
    fn open_world_injection_matches_batch_run() {
        // The same workload submitted up front (closed world, run())
        // and injected incrementally (open world, step()) must resolve
        // the same jobs with the same outcomes.
        let cfg = ClusterConfig {
            vcus: 3,
            ..ClusterConfig::default()
        };
        let jobs = upload_jobs(40, 0.5, true);
        let batch = ClusterSim::new(cfg.clone(), jobs.clone(), vec![]).run();

        let mut sim = ClusterSim::new(cfg, vec![], vec![]).open_world();
        let mut resolutions = Vec::new();
        let mut pending = jobs.into_iter().peekable();
        loop {
            // Inject each job no later than its arrival time, stepping
            // the cluster in between — the serving front end's pattern.
            while let Some(spec) = pending.peek() {
                let next = sim.next_event_time().unwrap_or(f64::INFINITY);
                if spec.arrival_s <= next {
                    let spec = pending.next().unwrap();
                    sim.inject_job(spec);
                } else {
                    break;
                }
            }
            if sim.unresolved_jobs() == 0 && pending.peek().is_none() {
                break;
            }
            assert!(sim.step(), "queue exhausted with jobs outstanding");
            resolutions.extend(sim.drain_resolutions());
        }
        let report = sim.finish();
        assert_eq!(report.completed, batch.completed);
        assert_eq!(report.failed, batch.failed);
        assert_eq!(report.total_output_mpix, batch.total_output_mpix);
        assert_eq!(resolutions.len() as u64, report.completed + report.failed);
        assert!(resolutions.iter().all(|r| r.completed));
        // Resolutions surface in event order.
        assert!(resolutions.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn closed_world_run_logs_no_resolutions() {
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(cfg, upload_jobs(10, 0.5, true), vec![]);
        while sim.step() {}
        assert!(sim.drain_resolutions().is_empty());
        let report = sim.finish();
        assert_eq!(report.completed, 10);
    }
}
