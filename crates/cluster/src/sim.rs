//! The warehouse cluster simulator.
//!
//! Drives [`crate::scheduler::Scheduler`] with a discrete-event loop:
//! transcode jobs arrive, get placed on VCU workers, hold resources for
//! their service time, and complete — possibly corrupted, retried,
//! offloaded, or rescheduled, exercising the §3.3.3/§4.4 machinery:
//!
//! - multi-dimensional bin packing vs the legacy single-slot model,
//! - opportunistic software decode when hardware decode is the
//!   bottleneck (Fig. 9c),
//! - black-holing: a silently-corrupting VCU completes work *fast* and
//!   attracts a disproportionate share of retries unless the §4.4
//!   mitigation (abort + golden screening) quarantines it,
//! - blast-radius accounting: which VCUs touched which chunks, and how
//!   many corrupted chunks escape the integrity checks.

use crate::des::EventQueue;
use crate::scheduler::{PlacementMode, Scheduler, SchedulerKind};
use std::collections::{BTreeSet, HashMap, VecDeque};
use vcu_chip::faults::{golden_expected, golden_test, FaultyVcu, HealthState};
use vcu_rng::Rng;
use vcu_chip::{ResourceDemand, TranscodeJob, VcuModel};
use vcu_telemetry::{Registry, Scope};

/// Priority classes (§3.3.3's pools).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Live / latency-critical.
    Critical,
    /// Normal uploads.
    Normal,
    /// Batch / backfill.
    Batch,
}

impl Priority {
    /// Telemetry-stable pool name.
    pub fn pool_name(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Stable index of this class in per-pool arrays
    /// ([`Sample::queued_per_pool`], the internal priority queues).
    pub fn index(self) -> usize {
        match self {
            Priority::Critical => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// All classes, in scheduling (and [`Priority::index`]) order.
    pub const ALL: [Priority; 3] = [Priority::Critical, Priority::Normal, Priority::Batch];

    fn running_series(self) -> &'static str {
        match self {
            Priority::Critical => "cluster.pool.critical.running",
            Priority::Normal => "cluster.pool.normal.running",
            Priority::Batch => "cluster.pool.batch.running",
        }
    }

    fn queued_series(self) -> &'static str {
        match self {
            Priority::Critical => "cluster.pool.critical.queued",
            Priority::Normal => "cluster.pool.normal.queued",
            Priority::Batch => "cluster.pool.batch.queued",
        }
    }
}

/// One job submitted to the cluster.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Arrival time (seconds).
    pub arrival_s: f64,
    /// The transcode work.
    pub job: TranscodeJob,
    /// Priority class.
    pub priority: Priority,
    /// Identifier of the source video this chunk belongs to (used by
    /// consistent-hash placement and blast-radius accounting). Chunks
    /// of unrelated videos may share 0.
    pub video_id: u64,
}

/// Cluster configuration and feature toggles.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of VCU workers (one worker per VCU; §3.1).
    pub vcus: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Placement search path: the O(log n) availability index, or the
    /// O(n) linear-scan oracle it is differential-tested against.
    pub placement: PlacementMode,
    /// Availability-cache shards.
    pub shards: usize,
    /// §4.4 black-holing mitigation: on a detected hardware failure the
    /// worker aborts and the VCU must pass a golden test before reuse.
    pub blackhole_mitigation: bool,
    /// High-level integrity checks on outputs (detect most corruption).
    pub integrity_checks: bool,
    /// Fig. 9c: shift decode to host CPU when hardware decode blocks
    /// placement.
    pub opportunistic_sw_decode: bool,
    /// Probability an integrity check catches a corrupted chunk.
    pub detection_rate: f64,
    /// Maximum retries per job before it fails permanently.
    pub max_retries: u32,
    /// Metrics sampling period in seconds.
    pub sample_period_s: f64,
    /// Software-stack overhead multiplier on service times (>1 models
    /// the pre-NUMA-fix launch stack of §4.3; 1.0 is the tuned stack).
    pub service_time_factor: f64,
    /// §4.4 future-work enhancement: consistent-hash each video onto a
    /// bounded subset of this many VCUs (0 disables), so one failing
    /// VCU can only ever touch a few videos.
    pub consistent_hash_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vcus: 20,
            scheduler: SchedulerKind::MultiDim,
            placement: PlacementMode::Indexed,
            shards: 1,
            blackhole_mitigation: true,
            integrity_checks: true,
            opportunistic_sw_decode: false,
            detection_rate: 0.9,
            max_retries: 4,
            sample_period_s: 60.0,
            service_time_factor: 1.0,
            consistent_hash_window: 0,
            seed: 1,
        }
    }
}

/// Fault injections scheduled into a run.
#[derive(Debug, Clone)]
pub struct FaultInjection {
    /// When the fault manifests.
    pub time_s: f64,
    /// Which VCU worker.
    pub worker: usize,
    /// Fault kind.
    pub kind: FaultKind,
}

/// Kinds of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silent output corruption at full (actually improved) speed.
    SilentCorruption,
    /// Hard failure: the VCU stops accepting work.
    Dead,
}

#[derive(Debug, Clone)]
enum Event {
    Arrival(usize),
    Completion {
        job: usize,
        worker: usize,
        demand: ResourceDemand,
        corrupted: bool,
    },
    Fault(usize),
    Sample,
}

#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    attempts: u32,
    done: bool,
    failed: bool,
    /// Whether a corrupted output shipped undetected.
    escaped_corruption: bool,
    /// VCUs that processed (any attempt of) this chunk.
    touched_vcus: Vec<usize>,
    /// Completion time.
    finished_at: Option<f64>,
    /// Whether the *most recent* attempt used software decode —
    /// rewritten at every placement, so at resolution it reads as the
    /// final attempt's decode mode.
    sw_decode: bool,
    /// Cached hardware resource demand (deterministic per job).
    demand: Option<ResourceDemand>,
}

/// One metrics sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time (seconds).
    pub time_s: f64,
    /// Cluster-wide encoder millicore utilization in 0..=1.
    pub encode_util: f64,
    /// Cluster-wide hardware-decoder millicore utilization in 0..=1.
    pub decode_util: f64,
    /// Output Mpix/s completed since the previous sample, per VCU.
    pub mpix_s_per_vcu: f64,
    /// Jobs waiting in queue.
    pub queued: usize,
    /// Jobs waiting per priority class, indexed by
    /// [`Priority::index`] — read straight off the per-class queues in
    /// O(1), so sampling cost is independent of backlog depth.
    pub queued_per_pool: [usize; 3],
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Periodic samples.
    pub samples: Vec<Sample>,
    /// Completed jobs.
    pub completed: u64,
    /// Permanently failed jobs.
    pub failed: u64,
    /// Jobs failed because no usable worker remained to ever run them
    /// (a subset of `failed`; see the stranded-jobs policy in
    /// DESIGN.md).
    pub stranded: u64,
    /// Total retries performed.
    pub retries: u64,
    /// Corrupted chunks that escaped detection.
    pub escaped_corruptions: u64,
    /// Corrupted chunks caught by integrity checks.
    pub caught_corruptions: u64,
    /// Jobs whose successful attempt used software decode.
    pub sw_decoded_jobs: u64,
    /// Mean number of distinct VCUs that touched each video's chunks —
    /// the §4.4 blast-radius metric consistent hashing shrinks.
    pub mean_vcus_per_video: f64,
    /// Per-worker count of job attempts processed (black-holing shows
    /// up as a skewed distribution).
    pub attempts_per_worker: Vec<u64>,
    /// Mean queueing delay (seconds) from arrival to *first*
    /// placement, counted exactly once per placed job — retries do not
    /// re-enter the mean, and jobs that were never placed (stranded)
    /// are excluded.
    pub mean_wait_s: f64,
    /// Total output Mpix completed.
    pub total_output_mpix: f64,
    /// Wall-clock length of the simulation.
    pub horizon_s: f64,
}

impl ClusterReport {
    /// Mean per-VCU throughput over the run, Mpix/s.
    pub fn mean_mpix_s_per_vcu(&self, vcus: usize) -> f64 {
        if self.horizon_s <= 0.0 {
            return 0.0;
        }
        self.total_output_mpix / self.horizon_s / vcus as f64
    }
}

/// The simulator.
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    model: VcuModel,
    queue: EventQueue<Event>,
    scheduler: Scheduler,
    vcus: Vec<FaultyVcu>,
    /// Worker quarantine (golden-test failed / awaiting repair).
    quarantined: Vec<bool>,
    jobs: Vec<JobState>,
    /// Pending job indices, one FIFO ring per priority class (indexed
    /// by [`Priority::index`]): O(1) enqueue and O(1) per-class depth,
    /// where the old single sorted `Vec` paid O(n) per insert.
    pending: [VecDeque<usize>; 3],
    faults: Vec<FaultInjection>,
    rng: Rng,
    golden: u64,
    // Rolling metrics. Job outcomes are tallied exactly once, in
    // `handle_completion` — the single resolution point — instead of
    // re-scanning `jobs` at the end of the run.
    samples: Vec<Sample>,
    output_mpix_window: f64,
    total_output_mpix: f64,
    completed: u64,
    failed: u64,
    stranded: u64,
    escaped: u64,
    retries: u64,
    caught: u64,
    attempts_per_worker: Vec<u64>,
    wait_sum: f64,
    wait_count: u64,
    sw_decoded: u64,
    /// Jobs currently in service, per priority pool.
    running_per_pool: [u64; 3],
    /// Distinct VCUs that touched each video (blast radius), maintained
    /// incrementally so samples can expose it as a time series.
    touched_per_video: HashMap<u64, BTreeSet<usize>>,
    /// Observability sink (disabled by default: zero cost).
    telemetry: Registry,
}

impl ClusterSim {
    /// Builds a simulator over `jobs` and `faults`.
    pub fn new(cfg: ClusterConfig, jobs: Vec<JobSpec>, faults: Vec<FaultInjection>) -> Self {
        let scheduler =
            Scheduler::with_placement(cfg.scheduler, cfg.vcus, cfg.shards, cfg.placement);
        let vcus = (0..cfg.vcus)
            .map(|i| FaultyVcu::new(cfg.seed ^ (i as u64) << 8))
            .collect();
        // Every arrival and fault is scheduled up front; sizing the
        // heap once avoids rehash-style growth at 500k+ jobs.
        let mut queue = EventQueue::with_capacity(jobs.len() + faults.len() + 1);
        for (i, j) in jobs.iter().enumerate() {
            queue.schedule(j.arrival_s, Event::Arrival(i));
        }
        for (i, f) in faults.iter().enumerate() {
            queue.schedule(f.time_s, Event::Fault(i));
        }
        queue.schedule(cfg.sample_period_s, Event::Sample);
        let n_workers = cfg.vcus;
        let seed = cfg.seed;
        // Every submitted video participates in the blast-radius mean,
        // even if none of its chunks ever reach a VCU.
        let touched_per_video = jobs
            .iter()
            .map(|j| (j.video_id, BTreeSet::new()))
            .collect();
        ClusterSim {
            cfg,
            model: VcuModel::new(),
            queue,
            scheduler,
            vcus,
            quarantined: vec![false; n_workers],
            jobs: jobs
                .into_iter()
                .map(|spec| JobState {
                    spec,
                    attempts: 0,
                    done: false,
                    failed: false,
                    escaped_corruption: false,
                    touched_vcus: Vec::new(),
                    finished_at: None,
                    sw_decode: false,
                    demand: None,
                })
                .collect(),
            pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            faults,
            rng: Rng::seed_from_u64(seed),
            golden: golden_expected(),
            samples: Vec::new(),
            output_mpix_window: 0.0,
            total_output_mpix: 0.0,
            completed: 0,
            failed: 0,
            stranded: 0,
            escaped: 0,
            retries: 0,
            caught: 0,
            attempts_per_worker: vec![0; n_workers],
            wait_sum: 0.0,
            wait_count: 0,
            sw_decoded: 0,
            running_per_pool: [0; 3],
            touched_per_video,
            telemetry: Registry::disabled(),
        }
    }

    /// Attaches a telemetry registry. Counters, per-pool utilization
    /// series, job spans, and fault/quarantine events are then recorded
    /// against the DES sim clock (never wall-clock), so same-seed runs
    /// produce bit-identical snapshots.
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Mean number of distinct VCUs that touched each video's chunks so
    /// far (§4.4 blast radius).
    fn mean_blast_radius(&self) -> f64 {
        if self.touched_per_video.is_empty() {
            return 0.0;
        }
        self.touched_per_video
            .values()
            .map(|s| s.len() as f64)
            .sum::<f64>()
            / self.touched_per_video.len() as f64
    }

    /// Runs to completion (all jobs resolved or event queue exhausted)
    /// and returns the report.
    pub fn run(mut self) -> ClusterReport {
        while let Some(ev) = self.queue.pop() {
            let now = ev.time;
            match ev.event {
                Event::Arrival(j) => {
                    self.enqueue_pending(j);
                    self.try_schedule(now);
                }
                Event::Completion {
                    job,
                    worker,
                    demand,
                    corrupted,
                } => {
                    self.scheduler.release(worker, demand);
                    self.handle_completion(now, job, worker, corrupted);
                    self.try_schedule(now);
                }
                Event::Fault(f) => {
                    let inj = self.faults[f].clone();
                    match inj.kind {
                        FaultKind::SilentCorruption => {
                            self.vcus[inj.worker].inject_silent_corruption();
                            self.telemetry.event(
                                "cluster.fault.silent_corruption",
                                Scope::vcu(inj.worker as u32),
                                now,
                                1.0,
                            );
                        }
                        FaultKind::Dead => {
                            self.vcus[inj.worker].disable();
                            self.scheduler.set_accepting(inj.worker, false);
                            self.telemetry.event(
                                "cluster.fault.dead",
                                Scope::vcu(inj.worker as u32),
                                now,
                                1.0,
                            );
                        }
                    }
                }
                Event::Sample => {
                    let dt = self.cfg.sample_period_s;
                    let queued_per_pool =
                        [self.pending[0].len(), self.pending[1].len(), self.pending[2].len()];
                    let s = Sample {
                        time_s: now,
                        encode_util: self.scheduler.encode_utilization(),
                        decode_util: self.scheduler.decode_utilization(),
                        mpix_s_per_vcu: self.output_mpix_window / dt / self.cfg.vcus as f64,
                        queued: queued_per_pool.iter().sum(),
                        queued_per_pool,
                    };
                    self.samples.push(s);
                    if self.telemetry.is_enabled() {
                        self.record_sample(&s);
                    }
                    self.output_mpix_window = 0.0;
                    // Stranded-jobs guard: with jobs queued, nothing in
                    // flight and no events left, no completion can ever
                    // release capacity and nothing will ever call the
                    // scheduler again — rescheduling the sampler would
                    // livelock `run()` advancing only the clock. One
                    // last unbounded scheduling pass (the regular path
                    // gives up after a bounded number of head-of-line
                    // misses), then whatever is still queued can never
                    // run: resolve it as failed.
                    if self.pending_len() > 0 && self.in_flight() == 0 && self.queue.is_empty() {
                        self.try_schedule_capped(now, usize::MAX);
                        if self.in_flight() == 0 {
                            self.strand_pending(now);
                        }
                    }
                    // Keep sampling while anything remains.
                    if !self.queue.is_empty() || self.pending_len() > 0 {
                        self.queue.schedule_in(dt, Event::Sample);
                    }
                }
            }
        }
        let horizon_s = self
            .samples
            .last()
            .map(|s| s.time_s)
            .unwrap_or(0.0)
            .max(self.queue.now());
        let mean_vcus_per_video = self.mean_blast_radius();
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge_set("cluster.blast_radius.mean_vcus_per_video", mean_vcus_per_video);
            self.telemetry.gauge_set("cluster.horizon_s", horizon_s);
        }
        ClusterReport {
            samples: self.samples,
            completed: self.completed,
            failed: self.failed,
            stranded: self.stranded,
            retries: self.retries,
            escaped_corruptions: self.escaped,
            caught_corruptions: self.caught,
            sw_decoded_jobs: self.sw_decoded,
            mean_vcus_per_video,
            attempts_per_worker: self.attempts_per_worker,
            mean_wait_s: if self.wait_count == 0 {
                0.0
            } else {
                self.wait_sum / self.wait_count as f64
            },
            total_output_mpix: self.total_output_mpix,
            horizon_s,
        }
    }

    /// Records one metrics sample as telemetry time series (sim-clock
    /// timestamps). Feeds the Fig. 9-style utilization dashboards.
    fn record_sample(&self, s: &Sample) {
        let t = s.time_s;
        self.telemetry.series_record("cluster.util.encode", t, s.encode_util);
        self.telemetry.series_record("cluster.util.decode", t, s.decode_util);
        self.telemetry
            .series_record("cluster.throughput.mpix_s_per_vcu", t, s.mpix_s_per_vcu);
        self.telemetry
            .series_record("cluster.queue.depth", t, s.queued as f64);
        self.telemetry.series_record(
            "cluster.blast_radius.mean_vcus_per_video",
            t,
            self.mean_blast_radius(),
        );
        for p in Priority::ALL {
            self.telemetry.series_record(
                p.running_series(),
                t,
                self.running_per_pool[p.index()] as f64,
            );
            self.telemetry
                .series_record(p.queued_series(), t, s.queued_per_pool[p.index()] as f64);
        }
    }

    /// Jobs waiting across all priority classes.
    fn pending_len(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Job attempts currently holding worker resources.
    fn in_flight(&self) -> u64 {
        self.running_per_pool.iter().sum()
    }

    fn enqueue_pending(&mut self, j: usize) {
        // O(1): each class is its own FIFO; scheduling visits classes
        // Critical → Normal → Batch, so cross-class order is positional
        // and within-class order is enqueue order — exactly the old
        // sorted-insert semantics without the O(n) `Vec::insert`.
        self.pending[self.jobs[j].spec.priority.index()].push_back(j);
    }

    fn try_schedule(&mut self, now: f64) {
        // Bounded head-of-line scan: once this many queued jobs fail to
        // place we stop — the cluster is saturated and later jobs are
        // no more likely to fit (keeps saturated runs near O(n)).
        self.try_schedule_capped(now, 48);
    }

    fn try_schedule_capped(&mut self, now: f64, max_misses: usize) {
        let mut misses = 0;
        'classes: for class in 0..self.pending.len() {
            let mut i = 0;
            while i < self.pending[class].len() {
                if misses >= max_misses {
                    break 'classes;
                }
                let j = self.pending[class][i];
                let hw_demand = match self.jobs[j].demand {
                    Some(d) => d,
                    None => {
                        let d = self.model.job_demand(&self.jobs[j].spec.job);
                        self.jobs[j].demand = Some(d);
                        d
                    }
                };
                let shard = j % self.cfg.shards.max(1);
                // Fig. 9c: when hardware decoders run hot, move decode
                // onto the host CPU (software) so decoder pressure
                // stops stranding encoder capacity. Software decode
                // costs extra host mCPU. The hot check is O(1): the
                // scheduler maintains cluster-wide used millicores
                // incrementally instead of rescanning every worker.
                let sw_demand = ResourceDemand {
                    millidecode: 0,
                    host_mcpu: hw_demand.host_mcpu + hw_demand.millidecode * 2,
                    ..hw_demand
                };
                let decode_hot = self.scheduler.decode_utilization() > 0.9;
                // Consistent-hash placement (§4.4 future work): chunks
                // of a video only consider a bounded worker subset
                // keyed by the video id.
                let (start, window) = if self.cfg.consistent_hash_window > 0 {
                    let vid = self.jobs[j].spec.video_id;
                    let h = vid
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .rotate_left(17)
                        .wrapping_mul(0xBF58476D1CE4E5B9);
                    (
                        (h % self.cfg.vcus.max(1) as u64) as usize,
                        self.cfg.consistent_hash_window,
                    )
                } else {
                    let n = self.cfg.vcus;
                    let shard_size = n.div_ceil(self.cfg.shards.max(1)).max(1);
                    ((shard % self.cfg.shards.max(1)) * shard_size, n)
                };
                let mut used_sw_decode = false;
                let mut demand = hw_demand;
                let mut placed = None;
                if self.cfg.opportunistic_sw_decode && decode_hot {
                    placed = self.scheduler.place_from(sw_demand, start, window);
                    if placed.is_some() {
                        demand = sw_demand;
                        used_sw_decode = true;
                    }
                }
                if placed.is_none() {
                    placed = self.scheduler.place_from(hw_demand, start, window);
                    if placed.is_some() {
                        demand = hw_demand;
                        used_sw_decode = false;
                    }
                }
                if placed.is_none() && self.cfg.opportunistic_sw_decode && !decode_hot {
                    placed = self.scheduler.place_from(sw_demand, start, window);
                    if placed.is_some() {
                        demand = sw_demand;
                        used_sw_decode = true;
                    }
                }
                match placed {
                    Some(w) if self.worker_usable(w) => {
                        // `i` is bounded by the miss cap, so this
                        // removal shifts at most `max_misses` entries.
                        self.pending[class].remove(i);
                        self.start_job(now, j, w, demand, used_sw_decode);
                    }
                    Some(w) => {
                        // Worker exists but its VCU is quarantined or
                        // disabled; release and stop it from accepting
                        // further work. Retry the same job in the next
                        // loop iteration.
                        self.scheduler.release(w, demand);
                        self.scheduler.set_accepting(w, false);
                    }
                    None => {
                        i += 1; // job stays queued; try next job
                        misses += 1;
                    }
                }
            }
        }
    }

    fn worker_usable(&self, w: usize) -> bool {
        !self.quarantined[w] && self.vcus[w].accepts_work()
    }

    fn start_job(&mut self, now: f64, j: usize, w: usize, demand: ResourceDemand, sw: bool) {
        let job = &mut self.jobs[j];
        job.attempts += 1;
        job.touched_vcus.push(w);
        // Per-attempt, not sticky: a retry that lands on hardware decode
        // after a software-decode attempt must clear the flag, or
        // `sw_decoded_jobs` (tallied at resolution from the *final*
        // attempt's mode) over-counts.
        job.sw_decode = sw;
        self.attempts_per_worker[w] += 1;
        let first_attempt = job.attempts == 1;
        if first_attempt {
            // Queueing delay is arrival → *first* placement, once per
            // job; retried jobs must not re-enter the mean with
            // ever-growing waits.
            self.wait_sum += now - job.spec.arrival_s;
            self.wait_count += 1;
        }
        self.running_per_pool[job.spec.priority.index()] += 1;
        self.touched_per_video
            .entry(job.spec.video_id)
            .or_default()
            .insert(w);
        let arrival_s = job.spec.arrival_s;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc("cluster.attempts");
            if first_attempt {
                self.telemetry.observe("cluster.wait_s", now - arrival_s);
            }
        }

        let corrupting = self.vcus[w].state() == HealthState::SilentlyCorrupting;
        // A failing-but-fast VCU races through work (§4.4's black-hole
        // hazard); healthy VCUs take the chunk's real-time duration.
        let service = if corrupting {
            job.spec.job.duration_s * 0.2
        } else {
            job.spec.job.duration_s * self.cfg.service_time_factor
        };
        self.queue.schedule(
            now + service.max(0.01),
            Event::Completion {
                job: j,
                worker: w,
                demand,
                corrupted: corrupting,
            },
        );
    }

    /// Telemetry scope for job `j`, optionally pinned to the worker `w`
    /// that ran its final attempt (stranded jobs never had one).
    fn job_scope(&self, j: usize, w: Option<usize>) -> Scope {
        let scope = Scope::job(j as u64).with_video(self.jobs[j].spec.video_id);
        match w {
            Some(w) => scope.with_vcu(w as u32),
            None => scope,
        }
    }

    /// Marks job `j` resolved (success or permanent failure). The only
    /// place `completed`/`failed`/`escaped`/`sw_decoded` tallies move,
    /// so the report and the telemetry counters cannot disagree. `w` is
    /// the worker of the final attempt, `None` for never-placed
    /// (stranded) jobs.
    fn resolve_job(&mut self, now: f64, j: usize, w: Option<usize>, failed: bool, escaped: bool) {
        let job = &mut self.jobs[j];
        job.done = true;
        job.failed = failed;
        job.escaped_corruption = escaped;
        if !failed {
            job.finished_at = Some(now);
            let mpix = job.spec.job.output_pixels() / 1e6;
            self.output_mpix_window += mpix;
            self.total_output_mpix += mpix;
        }
        if failed {
            self.failed += 1;
        } else {
            self.completed += 1;
            // Count software decode per *job*, from the successful
            // (final) attempt's mode — not per attempt in `start_job`,
            // which inflated the tally whenever a sw-decode attempt was
            // retried.
            if self.jobs[j].sw_decode {
                self.sw_decoded += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.counter_inc("cluster.sw_decode");
                }
            }
        }
        if escaped {
            self.escaped += 1;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_inc(if failed {
                "cluster.jobs.failed"
            } else {
                "cluster.jobs.completed"
            });
            if escaped {
                self.telemetry.counter_inc("cluster.corruption.escaped");
            }
            let arrival = self.jobs[j].spec.arrival_s;
            let attempts = self.jobs[j].attempts;
            self.telemetry.span(
                if failed { "cluster.job.failed" } else { "cluster.job" },
                self.job_scope(j, w),
                arrival,
                now,
                attempts as f64,
            );
        }
    }

    /// Stranded-jobs policy: every queued job is unplaceable (no usable
    /// worker, nothing in flight, no future events), so resolve them
    /// all as failed rather than sampling forever. See DESIGN.md.
    fn strand_pending(&mut self, now: f64) {
        let mut count: u64 = 0;
        for class in 0..self.pending.len() {
            for j in std::mem::take(&mut self.pending[class]) {
                self.resolve_job(now, j, None, true, false);
                count += 1;
            }
        }
        self.stranded += count;
        if count > 0 && self.telemetry.is_enabled() {
            self.telemetry.counter_add("cluster.jobs.stranded", count);
            self.telemetry
                .event("cluster.jobs.stranded", Scope::none(), now, count as f64);
        }
    }

    fn handle_completion(&mut self, now: f64, j: usize, w: usize, corrupted: bool) {
        self.running_per_pool[self.jobs[j].spec.priority.index()] -= 1;
        if corrupted {
            let detected =
                self.cfg.integrity_checks && self.rng.gen_bool(self.cfg.detection_rate);
            if detected {
                self.caught += 1;
                self.telemetry.counter_inc("cluster.corruption.caught");
                if self.cfg.blackhole_mitigation {
                    // §4.4: the worker aborts everything on this VCU;
                    // a fresh worker runs the golden test, which a
                    // corrupting VCU fails — quarantining it.
                    self.vcus[w].functional_reset();
                    if !golden_test(&self.vcus[w], self.golden) {
                        // Completions already in flight when the VCU was
                        // first quarantined re-run this path; only the
                        // transition itself is an observable event.
                        if !self.quarantined[w] {
                            self.telemetry.counter_inc("cluster.quarantine");
                            self.telemetry
                                .event("cluster.quarantine", Scope::vcu(w as u32), now, 1.0);
                        }
                        self.quarantined[w] = true;
                        self.scheduler.set_accepting(w, false);
                    }
                }
                // Retry at cluster level.
                if self.jobs[j].attempts > self.cfg.max_retries {
                    self.resolve_job(now, j, Some(w), true, false);
                } else {
                    self.retries += 1;
                    self.telemetry.counter_inc("cluster.retries");
                    self.enqueue_pending(j);
                }
                return;
            }
            // Undetected corruption ships (the paper admits "the system
            // will have bad video chunks escape").
            self.resolve_job(now, j, Some(w), false, true);
            return;
        }
        self.resolve_job(now, j, Some(w), false, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcu_codec::Profile;
    use vcu_media::Resolution;

    fn upload_jobs(n: usize, spacing_s: f64, mot: bool) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                arrival_s: i as f64 * spacing_s,
                job: if mot {
                    TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0)
                } else {
                    TranscodeJob::sot(
                        Resolution::R1080,
                        Resolution::R720,
                        Profile::Vp9Sim,
                        30.0,
                        5.0,
                    )
                },
                priority: Priority::Normal,
                video_id: 0,
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_on_healthy_cluster() {
        let cfg = ClusterConfig {
            vcus: 4,
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, upload_jobs(50, 0.5, true), vec![]).run();
        assert_eq!(report.completed, 50);
        assert_eq!(report.failed, 0);
        assert_eq!(report.escaped_corruptions, 0);
        assert!(report.total_output_mpix > 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = ClusterConfig {
            vcus: 3,
            ..ClusterConfig::default()
        };
        let a = ClusterSim::new(cfg.clone(), upload_jobs(30, 1.0, true), vec![]).run();
        let b = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), vec![]).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_output_mpix, b.total_output_mpix);
        assert_eq!(a.attempts_per_worker, b.attempts_per_worker);
    }

    #[test]
    fn corrupting_vcu_is_quarantined_with_mitigation() {
        let cfg = ClusterConfig {
            vcus: 4,
            blackhole_mitigation: true,
            detection_rate: 1.0,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults).run();
        assert_eq!(report.escaped_corruptions, 0, "detection_rate 1.0");
        assert!(report.caught_corruptions >= 1);
        // After quarantine, worker 0 stops accumulating attempts: it
        // should have far fewer than an equal share.
        let w0 = report.attempts_per_worker[0];
        let total: u64 = report.attempts_per_worker.iter().sum();
        assert!(
            (w0 as f64) < total as f64 * 0.15,
            "worker 0 kept taking work: {w0}/{total}"
        );
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn blackholing_emerges_without_mitigation() {
        // Without mitigation the fast-failing VCU keeps winning the
        // first-fit race and reprocesses a disproportionate share.
        let mk = |mitigate: bool| {
            let cfg = ClusterConfig {
                vcus: 4,
                blackhole_mitigation: mitigate,
                detection_rate: 1.0,
                max_retries: 10,
                seed: 7,
                ..ClusterConfig::default()
            };
            let faults = vec![FaultInjection {
                time_s: 0.0,
                worker: 0,
                kind: FaultKind::SilentCorruption,
            }];
            ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults).run()
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            without.retries > with.retries * 2,
            "mitigation should slash retries: {} vs {}",
            without.retries,
            with.retries
        );
        let share =
            |r: &ClusterReport| r.attempts_per_worker[0] as f64
                / r.attempts_per_worker.iter().sum::<u64>() as f64;
        assert!(
            share(&without) > share(&with),
            "black-hole share {} vs mitigated {}",
            share(&without),
            share(&with)
        );
    }

    #[test]
    fn corruption_escapes_without_integrity_checks() {
        let cfg = ClusterConfig {
            vcus: 4,
            integrity_checks: false,
            blackhole_mitigation: false,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(40, 0.3, true), faults).run();
        assert!(
            report.escaped_corruptions > 0,
            "without checks corruption must ship"
        );
    }

    #[test]
    fn dead_vcu_work_reroutes() {
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 5.0,
            worker: 0,
            kind: FaultKind::Dead,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), faults).run();
        assert_eq!(report.completed + report.failed, 30);
        assert_eq!(report.failed, 0, "redundancy absorbs a dead VCU");
        assert_eq!(report.stranded, 0);
    }

    #[test]
    fn stranded_jobs_terminate_instead_of_livelocking() {
        // Regression: the lone VCU dies before any job arrives, so no
        // placement and no completion can ever happen. The sampler used
        // to reschedule itself forever on the non-empty queue and
        // `run()` never returned; the stranded-jobs policy must fail
        // the queued work and terminate.
        let cfg = ClusterConfig {
            vcus: 1,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::Dead,
        }];
        let mut jobs = upload_jobs(8, 1.0, false);
        for j in &mut jobs {
            // Strictly after the fault: same-time arrivals pop before
            // the fault event and would be placed on the then-healthy
            // VCU.
            j.arrival_s += 1.0;
        }
        let reg = Registry::new();
        let report = ClusterSim::new(cfg, jobs, faults)
            .with_telemetry(reg.clone())
            .run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 8, "every queued job fails as stranded");
        assert_eq!(report.stranded, 8);
        assert_eq!(reg.counter("cluster.jobs.stranded"), 8);
        assert_eq!(
            report.mean_wait_s, 0.0,
            "never-placed jobs contribute no queueing wait"
        );
    }

    #[test]
    fn critical_jobs_jump_the_queue() {
        // Saturate a tiny cluster, then submit one critical job; its
        // wait should be shorter than the average batch wait.
        let mut jobs = upload_jobs(40, 0.0, true);
        for j in &mut jobs {
            j.priority = Priority::Batch;
        }
        jobs.push(JobSpec {
            arrival_s: 1.0,
            job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 2.0),
            priority: Priority::Critical,
            video_id: 0,
        });
        let cfg = ClusterConfig {
            vcus: 2,
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(cfg, jobs, vec![]);
        let report = sim.run();
        assert_eq!(report.completed, 41);
        // (Detailed per-job wait assertions live in integration tests;
        // here we check the run stays healthy under priority inserts.)
        assert!(report.mean_wait_s >= 0.0);
    }

    #[test]
    fn retries_do_not_inflate_mean_wait() {
        // One job arriving into an idle cluster is placed the instant
        // it arrives: its queueing wait is exactly zero. A corrupting
        // first-fit worker forces a retry; that retry must not record
        // a second, later "wait" for the same job.
        let cfg = ClusterConfig {
            vcus: 2,
            detection_rate: 1.0,
            blackhole_mitigation: true,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let jobs = vec![JobSpec {
            arrival_s: 1.0,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 1);
        assert!(report.retries >= 1, "corruption must force a retry");
        assert_eq!(
            report.mean_wait_s, 0.0,
            "wait is measured once, at first placement"
        );
    }

    #[test]
    fn sw_decoded_jobs_counts_final_attempt_mode() {
        // `sw_decoded_jobs` is documented as "jobs whose *successful*
        // attempt used software decode". Engineer a job whose FIRST
        // attempt is software-decoded on a corrupting VCU and whose
        // successful retry is hardware-decoded: it must not be counted.
        //
        // 24 decode-heavy background chunks (2160p in, 240p out) placed
        // at t=0 pin hardware decode above the 90% offload threshold
        // until t=0.8. The victim arrives at t=0.5 → software decode →
        // first-fit onto the corrupting worker 0 → fast corrupt
        // completion at t=1.5, detected, worker quarantined. By then
        // the background has drained, decode is cold, and the retry
        // runs hardware-decoded on worker 1.
        let mut jobs: Vec<JobSpec> = (0..24)
            .map(|i| JobSpec {
                arrival_s: 0.0,
                job: TranscodeJob::sot(
                    Resolution::R2160,
                    Resolution::R240,
                    Profile::Vp9Sim,
                    30.0,
                    0.8,
                ),
                priority: Priority::Normal,
                video_id: i as u64,
            })
            .collect();
        jobs.push(JobSpec {
            arrival_s: 0.5,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 99,
        });
        let cfg = ClusterConfig {
            vcus: 2,
            opportunistic_sw_decode: true,
            detection_rate: 1.0,
            blackhole_mitigation: true,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, jobs, faults).run();
        assert_eq!(report.completed, 25);
        assert_eq!(report.retries, 1, "victim must retry exactly once");
        assert_eq!(
            report.sw_decoded_jobs, 0,
            "the successful attempt was hardware-decoded; the sw attempt must not count"
        );
    }

    #[test]
    fn consistent_hashing_bounds_blast_radius() {
        // Many videos, several chunks each: with consistent hashing the
        // mean number of distinct VCUs per video must shrink (§4.4's
        // future-work enhancement).
        let jobs = |_| -> Vec<JobSpec> {
            (0..120)
                .map(|i| JobSpec {
                    arrival_s: (i / 4) as f64 * 0.6,
                    job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 5.0),
                    priority: Priority::Normal,
                    video_id: (i / 4) as u64 + 1, // 4 chunks per video
                })
                .collect()
        };
        let run = |window: usize| {
            let cfg = ClusterConfig {
                vcus: 12,
                consistent_hash_window: window,
                ..ClusterConfig::default()
            };
            ClusterSim::new(cfg, jobs(()), vec![]).run()
        };
        let spread = run(0);
        let hashed = run(3);
        assert_eq!(hashed.failed, 0, "hashing must not fail jobs");
        assert!(
            hashed.mean_vcus_per_video < spread.mean_vcus_per_video,
            "blast radius should shrink: {} vs {}",
            hashed.mean_vcus_per_video,
            spread.mean_vcus_per_video
        );
        assert!(hashed.mean_vcus_per_video <= 3.0);
    }

    #[test]
    fn telemetry_counters_match_report() {
        let reg = Registry::new();
        let cfg = ClusterConfig {
            vcus: 4,
            detection_rate: 1.0,
            ..ClusterConfig::default()
        };
        let faults = vec![FaultInjection {
            time_s: 0.0,
            worker: 0,
            kind: FaultKind::SilentCorruption,
        }];
        let report = ClusterSim::new(cfg, upload_jobs(60, 0.2, true), faults)
            .with_telemetry(reg.clone())
            .run();
        assert_eq!(reg.counter("cluster.jobs.completed"), report.completed);
        assert_eq!(reg.counter("cluster.jobs.failed"), report.failed);
        assert_eq!(reg.counter("cluster.retries"), report.retries);
        assert_eq!(reg.counter("cluster.corruption.caught"), report.caught_corruptions);
        assert_eq!(reg.counter("cluster.corruption.escaped"), report.escaped_corruptions);
        assert_eq!(
            reg.counter("cluster.attempts"),
            report.attempts_per_worker.iter().sum::<u64>()
        );
        // The quarantine shows up as both a counter and a trace event.
        assert_eq!(reg.counter("cluster.quarantine"), 1);
        assert_eq!(reg.events_named("cluster.quarantine").len(), 1);
        assert_eq!(reg.events_named("cluster.fault.silent_corruption").len(), 1);
        // Utilization series carry one point per sample.
        let util = reg.series("cluster.util.encode").expect("series recorded");
        assert_eq!(util.len(), report.samples.len());
        // Job spans cover every resolved job.
        let spans = reg.events_named("cluster.job");
        assert_eq!(spans.len() as u64, report.completed);
        assert!(spans.iter().all(|e| e.end_s >= e.start_s && e.value >= 1.0));
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let cfg = ClusterConfig {
            vcus: 3,
            ..ClusterConfig::default()
        };
        let plain = ClusterSim::new(cfg.clone(), upload_jobs(30, 1.0, true), vec![]).run();
        let traced = ClusterSim::new(cfg, upload_jobs(30, 1.0, true), vec![])
            .with_telemetry(Registry::new())
            .run();
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.total_output_mpix, traced.total_output_mpix);
        assert_eq!(plain.attempts_per_worker, traced.attempts_per_worker);
        assert_eq!(plain.mean_vcus_per_video, traced.mean_vcus_per_video);
    }

    #[test]
    fn samples_are_collected() {
        let cfg = ClusterConfig {
            vcus: 4,
            sample_period_s: 5.0,
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg, upload_jobs(100, 0.5, true), vec![]).run();
        assert!(report.samples.len() >= 5);
        assert!(report.samples.iter().any(|s| s.encode_util > 0.0));
    }
}
