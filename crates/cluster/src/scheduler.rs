//! The video-processing work scheduler (§3.3.3, Figure 6).
//!
//! The production design is an online multi-dimensional bin-packing
//! scheduler: each worker advertises capacity in named scalar resource
//! dimensions (millidecode, milliencode, DRAM bytes, host mCPU); a
//! sharded in-memory availability cache is consulted by a worker
//! picker that places each request first-fit by worker number. The
//! paper contrasts this with the prior "uniform CPU cost model (fixed
//! CPU-seconds/seconds per graph step)" — provided here as
//! [`SchedulerKind::SingleSlot`] for the ablation experiment.
//!
//! # The availability index
//!
//! The paper's scheduler serves "a sharded, in-memory availability
//! cache of all workers" at warehouse scale. A naive first-fit picker
//! scans workers linearly — O(n) per placement, quadratic collapse at
//! the 10,000-VCU fleets the simulator targets. [`Scheduler`] instead
//! maintains a segment tree over the worker array whose internal nodes
//! hold the *component-wise maximum* of remaining capacity below them
//! (plus a free-slot max for the single-slot ablation and an
//! any-accepting bit). `place_from` descends the tree left-to-right:
//! a subtree whose max cannot hold the demand is pruned wholesale, so
//! the first fitting worker — in exactly linear first-fit order — is
//! found in O(log n) on correlated capacities (worst case O(n) when
//! per-dimension maxima come from different workers, which churny real
//! loads rarely produce). The original scan is kept as
//! [`PlacementMode::LinearScan`], the property-tested oracle: both
//! modes must pick identical workers on identical request streams,
//! because first-fit order is observable behaviour (black-holing and
//! Figure 6 both depend on it).

use vcu_chip::ResourceDemand;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Multi-dimensional bin packing over named resources (the paper's
    /// contribution).
    MultiDim,
    /// Legacy single-slot model: each worker runs at most `slots`
    /// concurrent steps, ignoring the resource dimensions.
    SingleSlot {
        /// Concurrent steps per worker.
        slots: u32,
    },
}

/// How [`Scheduler::place_from`] searches the availability cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// O(log n) segment-tree availability index (the production path).
    #[default]
    Indexed,
    /// The original O(n) linear scan, kept as the test/bench oracle.
    LinearScan,
}

/// One worker's entry in the availability cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerAvailability {
    /// Remaining capacity across all dimensions: `capacity - used`,
    /// floored at zero per dimension (an oversubscribed single-slot
    /// worker has nothing left to give, not negative capacity).
    pub available: ResourceDemand,
    /// Exact sum of currently-placed demands. Under
    /// [`SchedulerKind::SingleSlot`] this may exceed the worker's
    /// capacity — the uniform cost model oversubscribes real resources
    /// — and keeping the exact figure (rather than saturating it away)
    /// is what keeps utilization honest and makes release symmetric.
    pub used: ResourceDemand,
    /// Jobs currently placed.
    pub jobs: u32,
    /// Whether the worker accepts new work (healthy + attached).
    pub accepting: bool,
}

/// One segment-tree node: the component-wise max of remaining capacity
/// over all *accepting* workers in its subtree, the max free slot count
/// (single-slot ablation), and whether any worker below accepts work.
#[derive(Debug, Clone, Copy)]
struct IndexNode {
    avail: ResourceDemand,
    free_slots: u32,
    accepting: bool,
}

impl IndexNode {
    const EMPTY: IndexNode = IndexNode {
        avail: ResourceDemand::ZERO,
        free_slots: 0,
        accepting: false,
    };

    fn merge(a: IndexNode, b: IndexNode) -> IndexNode {
        IndexNode {
            avail: a.avail.component_max(b.avail),
            free_slots: a.free_slots.max(b.free_slots),
            accepting: a.accepting || b.accepting,
        }
    }
}

/// Segment tree over the worker array answering "first worker in
/// `[lo, hi)` whose availability satisfies a monotone predicate".
#[derive(Debug)]
struct AvailabilityIndex {
    /// Leaf count rounded up to a power of two (tree arithmetic).
    size: usize,
    /// `2 * size` nodes, leaves at `size..size + n`; padding leaves
    /// stay `EMPTY` and are never returned (queries clamp to `n`).
    tree: Vec<IndexNode>,
}

impl AvailabilityIndex {
    fn new(n: usize) -> Self {
        let size = n.next_power_of_two().max(1);
        AvailabilityIndex {
            size,
            tree: vec![IndexNode::EMPTY; 2 * size],
        }
    }

    /// Replaces worker `w`'s leaf and recomputes its ancestors.
    fn set(&mut self, w: usize, leaf: IndexNode) {
        let mut i = self.size + w;
        self.tree[i] = leaf;
        while i > 1 {
            i /= 2;
            self.tree[i] = IndexNode::merge(self.tree[2 * i], self.tree[2 * i + 1]);
        }
    }

    /// First worker index in `[lo, hi)` whose leaf satisfies `pred`.
    /// `pred` must be monotone under [`IndexNode::merge`]: if it holds
    /// for any leaf it holds for every ancestor aggregate, so a subtree
    /// whose aggregate fails can be pruned without visiting leaves.
    fn find_first(
        &self,
        lo: usize,
        hi: usize,
        pred: &impl Fn(&IndexNode) -> bool,
    ) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        self.descend(1, 0, self.size, lo, hi, pred)
    }

    fn descend(
        &self,
        node: usize,
        node_lo: usize,
        node_hi: usize,
        lo: usize,
        hi: usize,
        pred: &impl Fn(&IndexNode) -> bool,
    ) -> Option<usize> {
        if node_hi <= lo || hi <= node_lo || !pred(&self.tree[node]) {
            return None;
        }
        if node_hi - node_lo == 1 {
            return Some(node_lo);
        }
        let mid = (node_lo + node_hi) / 2;
        self.descend(2 * node, node_lo, mid, lo, hi, pred)
            .or_else(|| self.descend(2 * node + 1, mid, node_hi, lo, hi, pred))
    }
}

/// The sharded availability cache + worker picker.
///
/// Sharding models the paper's horizontally-scaled scheduler: workers
/// are partitioned across shards and a request only consults its
/// shard's cache (consistent with "sharded, in-memory availability
/// cache of all workers").
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    placement: PlacementMode,
    shards: usize,
    workers: Vec<WorkerAvailability>,
    index: AvailabilityIndex,
    capacity: ResourceDemand,
    /// Cluster-wide placed encode millicores (exact, including any
    /// single-slot oversubscription) — O(1) utilization queries.
    used_encode: u64,
    /// Cluster-wide placed decode millicores.
    used_decode: u64,
    /// Statistics: placements attempted/succeeded.
    pub placements: u64,
    /// Requests that found no worker.
    pub rejections: u64,
}

impl Scheduler {
    /// Creates a scheduler over `n_workers` workers, each with the
    /// standard VCU worker capacity, in `shards` shards, using the
    /// indexed placement path.
    pub fn new(kind: SchedulerKind, n_workers: usize, shards: usize) -> Self {
        Self::with_placement(kind, n_workers, shards, PlacementMode::default())
    }

    /// Like [`Scheduler::new`] with an explicit placement mode (the
    /// linear-scan oracle exists for differential tests and benches).
    pub fn with_placement(
        kind: SchedulerKind,
        n_workers: usize,
        shards: usize,
        placement: PlacementMode,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let capacity = ResourceDemand::vcu_capacity();
        let mut s = Scheduler {
            kind,
            placement,
            shards,
            workers: (0..n_workers)
                .map(|_| WorkerAvailability {
                    available: capacity,
                    used: ResourceDemand::ZERO,
                    jobs: 0,
                    accepting: true,
                })
                .collect(),
            index: AvailabilityIndex::new(n_workers),
            capacity,
            used_encode: 0,
            used_decode: 0,
            placements: 0,
            rejections: 0,
        };
        for w in 0..n_workers {
            s.sync_index(w);
        }
        s
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The placement mode this scheduler searches with.
    pub fn placement_mode(&self) -> PlacementMode {
        self.placement
    }

    /// Read a worker's availability.
    pub fn worker(&self, w: usize) -> &WorkerAvailability {
        &self.workers[w]
    }

    /// Marks a worker as (not) accepting work (fault management /
    /// pool reallocation).
    pub fn set_accepting(&mut self, w: usize, accepting: bool) {
        self.workers[w].accepting = accepting;
        self.sync_index(w);
    }

    /// Worker `w`'s leaf in the availability index.
    fn leaf_of(&self, w: usize) -> IndexNode {
        let wk = &self.workers[w];
        if !wk.accepting {
            return IndexNode::EMPTY;
        }
        IndexNode {
            avail: wk.available,
            free_slots: match self.kind {
                SchedulerKind::SingleSlot { slots } => slots.saturating_sub(wk.jobs),
                // Unused by the multi-dim predicate; any nonzero value.
                SchedulerKind::MultiDim => 1,
            },
            accepting: true,
        }
    }

    fn sync_index(&mut self, w: usize) {
        let leaf = self.leaf_of(w);
        self.index.set(w, leaf);
    }

    /// Whether worker `w` can take `demand` under this scheduler's
    /// policy (the predicate both placement modes search with).
    fn can_place(&self, w: usize, demand: ResourceDemand) -> bool {
        let wk = &self.workers[w];
        wk.accepting
            && match self.kind {
                SchedulerKind::MultiDim => demand.fits_in(wk.available),
                SchedulerKind::SingleSlot { slots } => wk.jobs < slots,
            }
    }

    /// Places a request, returning the chosen worker index. First-fit
    /// by worker number within the request's shard, then the other
    /// shards (work spills when local capacity is unavailable, like
    /// the paper's cross-cluster spill).
    pub fn place(&mut self, demand: ResourceDemand, shard_hint: usize) -> Option<usize> {
        let n = self.workers.len();
        let shard_size = n.div_ceil(self.shards.max(1)).max(1);
        let home = (shard_hint % self.shards.max(1)) * shard_size;
        self.place_from(demand, home, n)
    }

    /// Places a request scanning at most `window` workers starting at
    /// `start` (wrapping). `window = n_workers` is an unbounded scan;
    /// smaller windows implement the §4.4 future-work enhancement of
    /// consistent-hashing videos onto a bounded VCU subset to shrink
    /// blast radius.
    pub fn place_from(
        &mut self,
        demand: ResourceDemand,
        start: usize,
        window: usize,
    ) -> Option<usize> {
        let n = self.workers.len();
        if n == 0 || window == 0 {
            self.rejections += 1;
            return None;
        }
        let found = match self.placement {
            PlacementMode::LinearScan => self.scan_linear(demand, start, window),
            PlacementMode::Indexed => self.scan_indexed(demand, start, window),
        };
        match found {
            Some(w) => {
                debug_assert!(
                    self.can_place(w, demand),
                    "index returned infeasible worker {w}"
                );
                self.commit_place(w, demand);
                self.placements += 1;
                Some(w)
            }
            None => {
                self.rejections += 1;
                None
            }
        }
    }

    fn scan_linear(&self, demand: ResourceDemand, start: usize, window: usize) -> Option<usize> {
        let n = self.workers.len();
        (0..window.min(n))
            .map(|off| (start + off) % n)
            .find(|&w| self.can_place(w, demand))
    }

    fn scan_indexed(&self, demand: ResourceDemand, start: usize, window: usize) -> Option<usize> {
        let n = self.workers.len();
        let win = window.min(n);
        let lo = start % n;
        // The wrapping window [lo, lo+win) splits into at most two
        // non-wrapping index queries.
        let query = |a: usize, b: usize| -> Option<usize> {
            match self.kind {
                SchedulerKind::MultiDim => self.index.find_first(a, b.min(n), &|nd: &IndexNode| {
                    nd.accepting && demand.fits_in(nd.avail)
                }),
                SchedulerKind::SingleSlot { .. } => {
                    self.index.find_first(a, b.min(n), &|nd: &IndexNode| {
                        nd.accepting && nd.free_slots > 0
                    })
                }
            }
        };
        if lo + win <= n {
            query(lo, lo + win)
        } else {
            query(lo, n).or_else(|| query(0, lo + win - n))
        }
    }

    /// Books `demand` onto worker `w` (the caller has established the
    /// placement is allowed under the current policy). Single-slot
    /// placements still consume dimensions physically — so utilization
    /// accounting stays honest — even where the sum oversubscribes the
    /// worker, mirroring how a uniform cost model both strands and
    /// oversubscribes real resources.
    fn commit_place(&mut self, w: usize, demand: ResourceDemand) {
        let capacity = self.capacity;
        let wk = &mut self.workers[w];
        wk.used = wk.used.plus(demand);
        wk.available = capacity.minus(wk.used);
        wk.jobs += 1;
        self.used_encode += demand.milliencode as u64;
        self.used_decode += demand.millidecode as u64;
        self.sync_index(w);
    }

    /// Releases a previously placed request. Because `used` tracks the
    /// exact placed sum (not a saturated remainder), releasing one of
    /// two oversubscribing jobs restores exactly that job's demand —
    /// capacity can never be double-restored.
    pub fn release(&mut self, w: usize, demand: ResourceDemand) {
        let capacity = self.capacity;
        let wk = &mut self.workers[w];
        wk.used = wk.used.minus(demand);
        wk.available = capacity.minus(wk.used);
        wk.jobs = wk.jobs.saturating_sub(1);
        self.used_encode = self.used_encode.saturating_sub(demand.milliencode as u64);
        self.used_decode = self.used_decode.saturating_sub(demand.millidecode as u64);
        self.sync_index(w);
    }

    /// Fraction of total encode millicores currently in use (the
    /// cluster-wide encoder utilization the paper maximizes). O(1):
    /// maintained incrementally on place/release. May exceed 1.0 when
    /// the single-slot ablation oversubscribes workers — that excess
    /// *is* the ablation's finding, so it is reported, not clamped.
    pub fn encode_utilization(&self) -> f64 {
        let denom = self.capacity.milliencode as f64 * self.workers.len() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        self.used_encode as f64 / denom
    }

    /// Fraction of total decode millicores in use. O(1).
    pub fn decode_utilization(&self) -> f64 {
        let denom = self.capacity.millidecode as f64 * self.workers.len() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        self.used_decode as f64 / denom
    }

    /// Workers that are fully idle (candidates for pool reallocation;
    /// Figure 6's "Worker N … is a candidate for being stopped").
    pub fn idle_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.jobs == 0 && w.accepting)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(d: u32, e: u32) -> ResourceDemand {
        ResourceDemand {
            millidecode: d,
            milliencode: e,
            dram_mib: 100,
            host_mcpu: 50,
        }
    }

    #[test]
    fn figure6_example() {
        // Worker 0: decode exhausted; Worker 1 has capacity; request
        // {D 500, E 3750} goes to worker 1.
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 3, 1);
        // Drain worker 0's decode.
        assert_eq!(s.place(demand(3000, 3000), 0), Some(0));
        let placed = s.place(demand(500, 3750), 0);
        assert_eq!(placed, Some(1), "request must skip decode-starved worker 0");
    }

    #[test]
    fn first_fit_by_worker_number() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 4, 1);
        assert_eq!(s.place(demand(100, 100), 0), Some(0));
        assert_eq!(
            s.place(demand(100, 100), 0),
            Some(0),
            "packs onto first fit"
        );
    }

    #[test]
    fn rejection_when_full() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 1, 1);
        assert!(s.place(demand(3000, 10000), 0).is_some());
        assert!(s.place(demand(1, 1), 0).is_none());
        assert_eq!(s.rejections, 1);
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 1, 1);
        let d = demand(3000, 10000);
        let w = s.place(d, 0).unwrap();
        s.release(w, d);
        assert!(s.place(demand(1000, 1000), 0).is_some());
    }

    #[test]
    fn single_slot_ignores_dimensions() {
        let mut s = Scheduler::new(SchedulerKind::SingleSlot { slots: 2 }, 1, 1);
        // Two tiny jobs fill both slots even though resources remain.
        assert!(s.place(demand(10, 10), 0).is_some());
        assert!(s.place(demand(10, 10), 0).is_some());
        assert!(s.place(demand(10, 10), 0).is_none(), "slot limit binds");
    }

    #[test]
    fn single_slot_oversubscription_accounting() {
        // Two jobs whose sum exceeds capacity on one worker: the
        // legacy single-slot model happily oversubscribes, and the
        // books must say so — not silently lose the overflow on place
        // and then double-restore it on release.
        let mut s = Scheduler::new(SchedulerKind::SingleSlot { slots: 2 }, 1, 1);
        let d = demand(2000, 8000); // 2× exceeds both 3000 decode and 10000 encode
        assert_eq!(s.place(d, 0), Some(0));
        assert_eq!(s.place(d, 0), Some(0));
        // 16000 encode millicores placed on a 10000 worker: 1.6×.
        assert!(
            s.encode_utilization() > 1.0,
            "oversubscription must be visible: {}",
            s.encode_utilization()
        );
        s.release(0, d);
        // One 8000-encode / 2000-decode job remains.
        assert!(
            (s.encode_utilization() - 0.8).abs() < 1e-9,
            "encode util after release: {}",
            s.encode_utilization()
        );
        assert_eq!(s.worker(0).available.milliencode, 2000);
        assert_eq!(s.worker(0).available.millidecode, 1000);
        s.release(0, d);
        assert_eq!(s.worker(0).available, ResourceDemand::vcu_capacity());
        assert_eq!(s.encode_utilization(), 0.0);
    }

    #[test]
    fn non_accepting_workers_skipped() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 2, 1);
        s.set_accepting(0, false);
        assert_eq!(s.place(demand(100, 100), 0), Some(1));
    }

    #[test]
    fn utilization_accounting() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 2, 1);
        assert_eq!(s.encode_utilization(), 0.0);
        s.place(demand(0, 10000), 0);
        assert!((s.encode_utilization() - 0.5).abs() < 1e-9);
        s.place(demand(3000, 0), 0);
        assert!((s.decode_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_worker_detection() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 3, 1);
        s.place(demand(100, 100), 0);
        assert_eq!(s.idle_workers(), vec![1, 2]);
    }

    #[test]
    fn sharding_spreads_home_workers() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 4, 2);
        // Shard hint 1 starts scanning at worker 2.
        assert_eq!(s.place(demand(100, 100), 1), Some(2));
        assert_eq!(s.place(demand(100, 100), 0), Some(0));
    }

    /// Drives an indexed and a linear-scan scheduler through the same
    /// deterministic request/release/churn script and asserts they pick
    /// identical workers and end in identical states.
    fn assert_modes_agree(kind: SchedulerKind, n: usize) {
        let mut a = Scheduler::with_placement(kind, n, 2, PlacementMode::Indexed);
        let mut b = Scheduler::with_placement(kind, n, 2, PlacementMode::LinearScan);
        let mut placed: Vec<(usize, ResourceDemand)> = Vec::new();
        for i in 0..400usize {
            let d = demand((i as u32 * 613) % 1500, (i as u32 * 217) % 4000);
            let start = (i * 7) % (n + 3); // exercise start >= n wrapping
            let window = 1 + (i * 11) % n.max(1);
            let wa = a.place_from(d, start, window);
            let wb = b.place_from(d, start, window);
            assert_eq!(wa, wb, "op {i}: indexed {wa:?} vs linear {wb:?}");
            if let Some(w) = wa {
                placed.push((w, d));
            }
            if i % 3 == 0 {
                if let Some((w, d)) = placed.pop() {
                    a.release(w, d);
                    b.release(w, d);
                }
            }
            if i % 17 == 0 && n > 0 {
                let w = (i / 17) % n;
                let acc = (i / 17) % 3 != 0;
                a.set_accepting(w, acc);
                b.set_accepting(w, acc);
            }
        }
        for w in 0..n {
            assert_eq!(a.worker(w), b.worker(w), "worker {w} state diverged");
        }
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.rejections, b.rejections);
    }

    #[test]
    fn indexed_matches_linear_scan_multidim() {
        for n in [1, 2, 3, 7, 16, 33] {
            assert_modes_agree(SchedulerKind::MultiDim, n);
        }
    }

    #[test]
    fn indexed_matches_linear_scan_single_slot() {
        for n in [1, 2, 5, 32] {
            assert_modes_agree(SchedulerKind::SingleSlot { slots: 3 }, n);
        }
    }

    #[test]
    fn zero_demand_skips_non_accepting_workers() {
        // A zero demand "fits" even an empty availability node, so the
        // index must still refuse non-accepting workers.
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 3, 1);
        s.set_accepting(0, false);
        s.set_accepting(1, false);
        assert_eq!(s.place(ResourceDemand::ZERO, 0), Some(2));
    }

    #[test]
    fn windowed_wrapping_search() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 8, 1);
        // Fill workers 6 and 7; a window of 3 starting at 6 wraps to 0.
        assert!(s.place_from(demand(3000, 10000), 6, 1).is_some());
        assert!(s.place_from(demand(3000, 10000), 7, 1).is_some());
        assert_eq!(s.place_from(demand(100, 100), 6, 3), Some(0));
        // A window that excludes every fitting worker rejects.
        assert_eq!(s.place_from(demand(3000, 10000), 6, 2), None);
    }
}
