//! The video-processing work scheduler (§3.3.3, Figure 6).
//!
//! The production design is an online multi-dimensional bin-packing
//! scheduler: each worker advertises capacity in named scalar resource
//! dimensions (millidecode, milliencode, DRAM bytes, host mCPU); a
//! sharded in-memory availability cache is consulted by a worker
//! picker that places each request first-fit by worker number. The
//! paper contrasts this with the prior "uniform CPU cost model (fixed
//! CPU-seconds/seconds per graph step)" — provided here as
//! [`SchedulerKind::SingleSlot`] for the ablation experiment.

use vcu_chip::ResourceDemand;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Multi-dimensional bin packing over named resources (the paper's
    /// contribution).
    MultiDim,
    /// Legacy single-slot model: each worker runs at most `slots`
    /// concurrent steps, ignoring the resource dimensions.
    SingleSlot {
        /// Concurrent steps per worker.
        slots: u32,
    },
}

/// One worker's entry in the availability cache.
#[derive(Debug, Clone)]
pub struct WorkerAvailability {
    /// Remaining capacity across all dimensions.
    pub available: ResourceDemand,
    /// Jobs currently placed.
    pub jobs: u32,
    /// Whether the worker accepts new work (healthy + attached).
    pub accepting: bool,
}

/// The sharded availability cache + worker picker.
///
/// Sharding models the paper's horizontally-scaled scheduler: workers
/// are partitioned across shards and a request only consults its
/// shard's cache (consistent with "sharded, in-memory availability
/// cache of all workers").
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    shards: usize,
    workers: Vec<WorkerAvailability>,
    /// Statistics: placements attempted/succeeded.
    pub placements: u64,
    /// Requests that found no worker.
    pub rejections: u64,
}

impl Scheduler {
    /// Creates a scheduler over `n_workers` workers, each with the
    /// standard VCU worker capacity, in `shards` shards.
    pub fn new(kind: SchedulerKind, n_workers: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Scheduler {
            kind,
            shards,
            workers: (0..n_workers)
                .map(|_| WorkerAvailability {
                    available: ResourceDemand::vcu_capacity(),
                    jobs: 0,
                    accepting: true,
                })
                .collect(),
            placements: 0,
            rejections: 0,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Read a worker's availability.
    pub fn worker(&self, w: usize) -> &WorkerAvailability {
        &self.workers[w]
    }

    /// Marks a worker as (not) accepting work (fault management /
    /// pool reallocation).
    pub fn set_accepting(&mut self, w: usize, accepting: bool) {
        self.workers[w].accepting = accepting;
    }

    /// Places a request, returning the chosen worker index. First-fit
    /// by worker number within the request's shard, then the other
    /// shards (work spills when local capacity is unavailable, like
    /// the paper's cross-cluster spill).
    pub fn place(&mut self, demand: ResourceDemand, shard_hint: usize) -> Option<usize> {
        let n = self.workers.len();
        let shard_size = n.div_ceil(self.shards.max(1)).max(1);
        let home = (shard_hint % self.shards.max(1)) * shard_size;
        self.place_from(demand, home, n)
    }

    /// Places a request scanning at most `window` workers starting at
    /// `start` (wrapping). `window = n_workers` is an unbounded scan;
    /// smaller windows implement the §4.4 future-work enhancement of
    /// consistent-hashing videos onto a bounded VCU subset to shrink
    /// blast radius.
    pub fn place_from(
        &mut self,
        demand: ResourceDemand,
        start: usize,
        window: usize,
    ) -> Option<usize> {
        let n = self.workers.len();
        if n == 0 || window == 0 {
            self.rejections += 1;
            return None;
        }
        for off in 0..window.min(n) {
            let w = (start + off) % n;
            if self.try_place_at(w, demand) {
                self.placements += 1;
                return Some(w);
            }
        }
        self.rejections += 1;
        None
    }

    fn try_place_at(&mut self, w: usize, demand: ResourceDemand) -> bool {
        let worker = &mut self.workers[w];
        if !worker.accepting {
            return false;
        }
        match self.kind {
            SchedulerKind::MultiDim => {
                if demand.fits_in(worker.available) {
                    worker.available = worker.available.minus(demand);
                    worker.jobs += 1;
                    true
                } else {
                    false
                }
            }
            SchedulerKind::SingleSlot { slots } => {
                if worker.jobs < slots {
                    // The legacy model does not track dimensions; it
                    // still consumes them physically (so utilization
                    // accounting stays honest), but placement ignores
                    // overflow — mirroring how a uniform cost model
                    // both strands and oversubscribes real resources.
                    worker.available = worker.available.minus(demand);
                    worker.jobs += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Releases a previously placed request.
    pub fn release(&mut self, w: usize, demand: ResourceDemand) {
        let worker = &mut self.workers[w];
        worker.available = worker.available.plus(demand);
        worker.jobs = worker.jobs.saturating_sub(1);
        // Clamp to capacity in case of asymmetric release.
        let cap = ResourceDemand::vcu_capacity();
        if !worker.available.fits_in(cap) {
            worker.available = ResourceDemand {
                millidecode: worker.available.millidecode.min(cap.millidecode),
                milliencode: worker.available.milliencode.min(cap.milliencode),
                dram_mib: worker.available.dram_mib.min(cap.dram_mib),
                host_mcpu: worker.available.host_mcpu.min(cap.host_mcpu),
            };
        }
    }

    /// Fraction of total encode millicores currently in use (the
    /// cluster-wide encoder utilization the paper maximizes).
    pub fn encode_utilization(&self) -> f64 {
        let cap = ResourceDemand::vcu_capacity().milliencode as f64;
        let used: f64 = self
            .workers
            .iter()
            .map(|w| cap - w.available.milliencode as f64)
            .sum();
        used / (cap * self.workers.len() as f64)
    }

    /// Fraction of total decode millicores in use.
    pub fn decode_utilization(&self) -> f64 {
        let cap = ResourceDemand::vcu_capacity().millidecode as f64;
        let used: f64 = self
            .workers
            .iter()
            .map(|w| cap - w.available.millidecode as f64)
            .sum();
        used / (cap * self.workers.len() as f64)
    }

    /// Workers that are fully idle (candidates for pool reallocation;
    /// Figure 6's "Worker N … is a candidate for being stopped").
    pub fn idle_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.jobs == 0 && w.accepting)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(d: u32, e: u32) -> ResourceDemand {
        ResourceDemand {
            millidecode: d,
            milliencode: e,
            dram_mib: 100,
            host_mcpu: 50,
        }
    }

    #[test]
    fn figure6_example() {
        // Worker 0: decode exhausted; Worker 1 has capacity; request
        // {D 500, E 3750} goes to worker 1.
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 3, 1);
        // Drain worker 0's decode.
        assert_eq!(s.place(demand(3000, 3000), 0), Some(0));
        let placed = s.place(demand(500, 3750), 0);
        assert_eq!(placed, Some(1), "request must skip decode-starved worker 0");
    }

    #[test]
    fn first_fit_by_worker_number() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 4, 1);
        assert_eq!(s.place(demand(100, 100), 0), Some(0));
        assert_eq!(s.place(demand(100, 100), 0), Some(0), "packs onto first fit");
    }

    #[test]
    fn rejection_when_full() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 1, 1);
        assert!(s.place(demand(3000, 10000), 0).is_some());
        assert!(s.place(demand(1, 1), 0).is_none());
        assert_eq!(s.rejections, 1);
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 1, 1);
        let d = demand(3000, 10000);
        let w = s.place(d, 0).unwrap();
        s.release(w, d);
        assert!(s.place(demand(1000, 1000), 0).is_some());
    }

    #[test]
    fn single_slot_ignores_dimensions() {
        let mut s = Scheduler::new(SchedulerKind::SingleSlot { slots: 2 }, 1, 1);
        // Two tiny jobs fill both slots even though resources remain.
        assert!(s.place(demand(10, 10), 0).is_some());
        assert!(s.place(demand(10, 10), 0).is_some());
        assert!(s.place(demand(10, 10), 0).is_none(), "slot limit binds");
    }

    #[test]
    fn non_accepting_workers_skipped() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 2, 1);
        s.set_accepting(0, false);
        assert_eq!(s.place(demand(100, 100), 0), Some(1));
    }

    #[test]
    fn utilization_accounting() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 2, 1);
        assert_eq!(s.encode_utilization(), 0.0);
        s.place(demand(0, 10000), 0);
        assert!((s.encode_utilization() - 0.5).abs() < 1e-9);
        s.place(demand(3000, 0), 0);
        assert!((s.decode_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_worker_detection() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 3, 1);
        s.place(demand(100, 100), 0);
        assert_eq!(s.idle_workers(), vec![1, 2]);
    }

    #[test]
    fn sharding_spreads_home_workers() {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 4, 2);
        // Shard hint 1 starts scanning at worker 2.
        assert_eq!(s.place(demand(100, 100), 1), Some(2));
        assert_eq!(s.place(demand(100, 100), 0), Some(0));
    }
}
