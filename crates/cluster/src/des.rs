//! Minimal discrete-event simulation core.
//!
//! A time-ordered event queue with stable FIFO ordering for ties —
//! enough machinery for the cluster simulator without pulling in an
//! external framework. Determinism matters more than speed here: every
//! experiment must replay exactly from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulation time in seconds.
    pub time: f64,
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break by insertion order (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue driving a simulation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue at time zero with heap space for `capacity`
    /// events, so warehouse-scale runs (hundreds of thousands of
    /// pre-scheduled arrivals) skip the doubling reallocations.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time is NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` after a delay from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN. (`NaN.max(0.0)` is `0.0`, so without
    /// the explicit check a NaN delay would silently schedule at
    /// `now` instead of being rejected.)
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(!delay.is_nan(), "event time is NaN");
        let now = self.now;
        self.schedule(now + delay.max(0.0), event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some(s)
    }

    /// Time of the earliest pending event without popping it — the
    /// merge point when two queues (e.g. a serving front end and the
    /// cluster it feeds) advance in lockstep.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A shard-partitioned event queue with a deterministic cross-shard
/// merge — the planet-scale sibling of [`EventQueue`].
///
/// Events are keyed to a *shard* (a pool, cell, or cluster id) and
/// stored in per-shard heaps, but tie-breaking stays **global**: every
/// schedule draws one monotonically increasing sequence number shared
/// by all shards, and `pop` returns the globally earliest
/// `(time, seq)` pair. Partitioning a totally ordered set never
/// changes its minimum, so the pop order is provably identical for
/// *any* shard count — including 1, where the queue degenerates to a
/// plain [`EventQueue`]. That invariant is what lets a `RegionSim`
/// shard its event flow by cell and still replay byte-identically;
/// `tests/properties.rs` pins it.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    shards: Vec<BinaryHeap<Scheduled<E>>>,
    next_seq: u64,
    now: f64,
    len: usize,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue at time zero with `shards` partitions (at least
    /// one; a shard count of 0 is promoted to 1).
    pub fn new(shards: usize) -> Self {
        ShardedEventQueue {
            shards: (0..shards.max(1)).map(|_| BinaryHeap::new()).collect(),
            next_seq: 0,
            now: 0.0,
            len: 0,
        }
    }

    /// Number of shard partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time` on the shard keyed by
    /// `key` (wrapped modulo the shard count, so any stable cell id
    /// works as a key).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time —
    /// either would corrupt the cross-shard merge order.
    pub fn schedule(&mut self, key: usize, time: f64, event: E) {
        assert!(!time.is_nan(), "event time is NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let shard = key % self.shards.len();
        self.shards[shard].push(Scheduled {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
        self.len += 1;
    }

    /// Schedules `event` on shard `key` after a delay from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN (see [`EventQueue::schedule_in`]).
    pub fn schedule_in(&mut self, key: usize, delay: f64, event: E) {
        assert!(!delay.is_nan(), "event time is NaN");
        let now = self.now;
        self.schedule(key, now + delay.max(0.0), event);
    }

    /// Pops the globally earliest event (earliest time; ties broken by
    /// the global schedule order), advancing the clock. Returns the
    /// shard it came from alongside the event.
    pub fn pop(&mut self) -> Option<(usize, Scheduled<E>)> {
        // The cross-shard merge: scan each shard head for the smallest
        // (time, seq). `Scheduled::cmp` is reversed for the max-heap,
        // so the *largest* head under that order is the earliest event;
        // seq numbers are globally unique, so there are no true ties.
        let shard = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|s| (i, s)))
            .max_by(|(_, a), (_, b)| a.cmp(b))?
            .0;
        let s = self.shards[shard].pop()?;
        self.now = s.time;
        self.len -= 1;
        Some((shard, s))
    }

    /// Time of the globally earliest pending event without popping.
    pub fn next_time(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|h| h.peek().map(|s| s.time))
            .min_by(f64::total_cmp)
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events remain on any shard.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(5.0, "b");
        q.schedule(2.0, "a");
        assert_eq!(q.next_time(), Some(2.0));
        assert_eq!(q.now(), 0.0, "peek must not advance the clock");
        q.pop();
        assert_eq!(q.next_time(), Some(5.0));
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 4.0);
        q.schedule_in(1.5, ());
        let s = q.pop().unwrap();
        assert!((s.time - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn no_time_travel() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }

    #[test]
    #[should_panic(expected = "time is NaN")]
    fn nan_time_is_rejected() {
        // A NaN time would float to an arbitrary heap position under
        // total_cmp and silently corrupt the merge order downstream —
        // it must be refused at the door.
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "time is NaN")]
    fn nan_delay_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule_in(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "time is NaN")]
    fn sharded_nan_time_is_rejected() {
        let mut q = ShardedEventQueue::new(4);
        q.schedule(0, f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn sharded_no_time_travel() {
        // Past events must be rejected even when they target a shard
        // whose own head is further behind than the global clock.
        let mut q = ShardedEventQueue::new(2);
        q.schedule(0, 10.0, ());
        q.pop();
        q.schedule(1, 5.0, ());
    }

    #[test]
    fn sharded_merge_matches_single_queue_for_any_shard_count() {
        // The tentpole invariant in miniature: the same schedule
        // stream pops in the same global (time, seq) order whether it
        // lands in 1, 3, or 8 shards.
        let schedule: Vec<(usize, f64, u32)> = (0..200u32)
            .map(|i| {
                let t = ((i * 37) % 50) as f64 * 0.5; // plenty of time ties
                (i as usize % 7, t, i)
            })
            .collect();
        let reference: Vec<(f64, u32)> = {
            let mut q = EventQueue::new();
            for &(_, t, ev) in &schedule {
                q.schedule(t, ev);
            }
            std::iter::from_fn(|| q.pop().map(|s| (s.time, s.event))).collect()
        };
        for shards in [1, 3, 8] {
            let mut q = ShardedEventQueue::new(shards);
            for &(key, t, ev) in &schedule {
                q.schedule(key, t, ev);
            }
            assert_eq!(q.len(), schedule.len());
            let order: Vec<(f64, u32)> =
                std::iter::from_fn(|| q.pop().map(|(_, s)| (s.time, s.event))).collect();
            assert_eq!(
                order, reference,
                "{shards}-shard merge diverged from the single queue"
            );
        }
    }

    #[test]
    fn sharded_pop_reports_the_owning_shard() {
        let mut q = ShardedEventQueue::new(3);
        q.schedule(2, 1.0, "a");
        q.schedule(7, 2.0, "b"); // 7 % 3 == 1
        let (s0, e0) = q.pop().unwrap();
        let (s1, e1) = q.pop().unwrap();
        assert_eq!((s0, e0.event), (2, "a"));
        assert_eq!((s1, e1.event), (1, "b"));
        assert_eq!(q.now(), 2.0);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_next_time_is_the_global_minimum() {
        let mut q = ShardedEventQueue::new(4);
        assert_eq!(q.next_time(), None);
        q.schedule(0, 9.0, ());
        q.schedule(3, 4.0, ());
        q.schedule(1, 6.0, ());
        assert_eq!(q.next_time(), Some(4.0));
        q.pop();
        assert_eq!(q.next_time(), Some(6.0));
    }
}
