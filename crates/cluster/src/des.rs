//! Minimal discrete-event simulation core.
//!
//! A time-ordered event queue with stable FIFO ordering for ties —
//! enough machinery for the cluster simulator without pulling in an
//! external framework. Determinism matters more than speed here: every
//! experiment must replay exactly from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulation time in seconds.
    pub time: f64,
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break by insertion order (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue driving a simulation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue at time zero with heap space for `capacity`
    /// events, so warehouse-scale runs (hundreds of thousands of
    /// pre-scheduled arrivals) skip the doubling reallocations.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time is NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let now = self.now;
        self.schedule(now + delay.max(0.0), event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some(s)
    }

    /// Time of the earliest pending event without popping it — the
    /// merge point when two queues (e.g. a serving front end and the
    /// cluster it feeds) advance in lockstep.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(5.0, "b");
        q.schedule(2.0, "a");
        assert_eq!(q.next_time(), Some(2.0));
        assert_eq!(q.now(), 0.0, "peek must not advance the clock");
        q.pop();
        assert_eq!(q.next_time(), Some(5.0));
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 4.0);
        q.schedule_in(1.5, ());
        let s = q.pop().unwrap();
        assert!((s.time - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn no_time_travel() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }
}
