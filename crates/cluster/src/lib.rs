//! Warehouse-cluster simulation: the distributed-systems half of the
//! paper's co-design.
//!
//! - [`des`]: deterministic discrete-event core,
//! - [`scheduler`]: the §3.3.3 multi-dimensional bin-packing work
//!   scheduler with a sharded availability cache (plus the legacy
//!   single-slot baseline for ablations),
//! - [`sim`]: the cluster simulator tying scheduler, VCU fault models,
//!   retries, black-holing mitigation and opportunistic software
//!   decode together,
//! - [`tco`]: the capex + 3-year-opex cost model behind Table 1's
//!   perf/TCO column.
pub mod des;
pub mod pools;
pub mod scheduler;
pub mod sim;
pub mod tco;

pub use pools::{PoolId, PoolManager, UseCase};
pub use scheduler::{PlacementMode, Scheduler, SchedulerKind};
pub use sim::{
    ClusterConfig, ClusterReport, ClusterSim, FaultInjection, FaultKind, JobSpec, Priority,
    Sample,
};
pub use tco::{perf_per_tco, perf_per_tco_normalized, system_tco, Tco};
