//! Warehouse-cluster simulation: the distributed-systems half of the
//! paper's co-design.
//!
//! - [`des`]: deterministic discrete-event core,
//! - [`scheduler`]: the §3.3.3 multi-dimensional bin-packing work
//!   scheduler with a sharded availability cache (plus the legacy
//!   single-slot baseline for ablations),
//! - [`sim`]: the cluster simulator tying scheduler, VCU fault models,
//!   retries, black-holing mitigation and opportunistic software
//!   decode together,
//! - [`faultsim`]: the deterministic fault-campaign harness sweeping
//!   fault rate × MTTR over a fleet (§4.4's failure management under
//!   load),
//! - [`tco`]: the capex + 3-year-opex cost model behind Table 1's
//!   perf/TCO column.
pub mod des;
pub mod faultsim;
pub mod pools;
pub mod scheduler;
pub mod sim;
pub mod tco;

pub use des::{EventQueue, ShardedEventQueue};
pub use faultsim::{
    cell_cluster_config, correlated_domain_faults, fault_schedule, render_json, run_campaign,
    run_cell, upgrade_wave_faults, CampaignCell, CampaignConfig,
};
pub use pools::{DegradePolicy, PoolId, PoolManager, UseCase};
pub use scheduler::{PlacementMode, Scheduler, SchedulerKind};
pub use sim::{
    AttemptMode, ClusterConfig, ClusterReport, ClusterSim, FaultInjection, FaultKind, HealthPolicy,
    JobResolution, JobSpec, Priority, RetryPolicy, Sample, WatchdogPolicy, WorkerMgmtState,
};
pub use tco::{perf_per_tco, perf_per_tco_normalized, system_tco, vcu_host_tco_for, Tco};
