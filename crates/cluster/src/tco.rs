//! Total-cost-of-ownership model and perf/TCO.
//!
//! The paper cannot publish its TCO methodology (Table 1 note 9); it
//! reports only *normalized* perf/TCO. We therefore build a simple
//! capex + 3-year-power-opex model (the structure the paper describes:
//! "capital expense plus 3 years of operational expenses, primarily
//! power") with component prices in the public ballpark, chosen once
//! so the *ratios* between systems land near Table 1's implied values
//! (CPU 1.0×, 4×T4 ≈ 2.3×, 8×VCU ≈ 1.9×, 20×VCU ≈ 3.0×).

use vcu_chip::{DesignPoint, System, WorkloadShape};
use vcu_codec::Profile;

/// Cost breakdown in dollars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tco {
    /// Capital expense.
    pub capex: f64,
    /// 3-year operational expense (power, cooling, provisioning).
    pub opex_3yr: f64,
}

impl Tco {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.capex + self.opex_3yr
    }
}

/// All-in data-center cost per watt over 3 years (energy + cooling +
/// power provisioning amortization).
pub const OPEX_PER_WATT_3YR: f64 = 5.0;

/// Dual-socket Skylake server capex.
const SERVER_CAPEX: f64 = 10_000.0;
/// T4 GPU capex (card + integration).
const T4_CAPEX: f64 = 3_800.0;
/// VCU card (2 VCUs) capex — a lean single-purpose ASIC board.
const VCU_CARD_CAPEX: f64 = 2_200.0;

/// TCO of a system at the default data-center power price
/// ([`OPEX_PER_WATT_3YR`]).
pub fn system_tco(system: System) -> Tco {
    system_tco_with(system, OPEX_PER_WATT_3YR)
}

/// TCO of a system at an explicit 3-year all-in power price in $/W —
/// the sensitivity knob for "how do Table 1's ratios move in a cheap
/// (or expensive) power region?".
pub fn system_tco_with(system: System, opex_per_watt_3yr: f64) -> Tco {
    assert!(
        opex_per_watt_3yr >= 0.0,
        "power price must be non-negative, got {opex_per_watt_3yr}"
    );
    let power = system.power_w();
    let capex = match system {
        System::SkylakeCpu => SERVER_CAPEX,
        System::GpuT4x4 => SERVER_CAPEX + 4.0 * T4_CAPEX,
        System::VcuHost { vcus } => {
            let cards = (vcus as f64 / 2.0).ceil();
            SERVER_CAPEX + cards * VCU_CARD_CAPEX
        }
    };
    Tco {
        capex,
        opex_3yr: power * opex_per_watt_3yr,
    }
}

/// TCO of a VCU host whose cards carry an arbitrary chip design
/// (the DSE driver's pricing hook): same structure as
/// [`system_tco_with`] for `System::VcuHost`, but card capex and power
/// come from the candidate's cost/area/power model instead of the
/// shipped constants. With [`DesignPoint::shipped`] this reproduces
/// `system_tco(System::VcuHost { vcus })` exactly.
pub fn vcu_host_tco_for(design: &DesignPoint, vcus: usize, opex_per_watt_3yr: f64) -> Tco {
    assert!(
        opex_per_watt_3yr >= 0.0,
        "power price must be non-negative, got {opex_per_watt_3yr}"
    );
    let cards = (vcus as f64 / vcu_chip::calib::VCUS_PER_CARD as f64).ceil();
    let power = vcu_chip::calib::VCU_HOST_BASE_POWER_W + cards * design.card_power_w();
    Tco {
        capex: SERVER_CAPEX + cards * design.card_capex_usd(),
        opex_3yr: power * opex_per_watt_3yr,
    }
}

/// Absolute perf/TCO in Mpix/s per dollar, if the workload runs.
pub fn perf_per_tco(system: System, profile: Profile, shape: WorkloadShape) -> Option<f64> {
    Some(system.throughput_mpix_s(profile, shape)? / system_tco(system).total())
}

/// Perf/TCO normalized to the Skylake baseline (Table 1's metric).
pub fn perf_per_tco_normalized(
    system: System,
    profile: Profile,
    shape: WorkloadShape,
) -> Option<f64> {
    let base = perf_per_tco(System::SkylakeCpu, profile, shape)?;
    Some(perf_per_tco(system, profile, shape)? / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tco_ratios_match_table1_band() {
        let base = system_tco(System::SkylakeCpu).total();
        let gpu = system_tco(System::GpuT4x4).total() / base;
        let v8 = system_tco(System::VcuHost { vcus: 8 }).total() / base;
        let v20 = system_tco(System::VcuHost { vcus: 20 }).total() / base;
        // Implied by Table 1: ≈2.3×, ≈1.9×, ≈3.0×.
        assert!((2.0..2.7).contains(&gpu), "gpu ratio {gpu}");
        assert!((1.6..2.2).contains(&v8), "8xVCU ratio {v8}");
        assert!((2.6..3.6).contains(&v20), "20xVCU ratio {v20}");
    }

    #[test]
    fn table1_perf_per_tco_h264() {
        let s = WorkloadShape::SotTwoPass;
        let p = Profile::H264Sim;
        let gpu = perf_per_tco_normalized(System::GpuT4x4, p, s).unwrap();
        let v8 = perf_per_tco_normalized(System::VcuHost { vcus: 8 }, p, s).unwrap();
        let v20 = perf_per_tco_normalized(System::VcuHost { vcus: 20 }, p, s).unwrap();
        // Paper: 1.5x / 4.4x / 7.0x.
        assert!((1.1..2.0).contains(&gpu), "gpu {gpu}");
        assert!((3.3..5.5).contains(&v8), "v8 {v8}");
        assert!((5.5..9.0).contains(&v20), "v20 {v20}");
    }

    #[test]
    fn table1_perf_per_tco_vp9() {
        let s = WorkloadShape::SotTwoPass;
        let p = Profile::Vp9Sim;
        let v8 = perf_per_tco_normalized(System::VcuHost { vcus: 8 }, p, s).unwrap();
        let v20 = perf_per_tco_normalized(System::VcuHost { vcus: 20 }, p, s).unwrap();
        // Paper: 20.8x / 33.3x.
        assert!((15.0..28.0).contains(&v8), "v8 {v8}");
        assert!((25.0..42.0).contains(&v20), "v20 {v20}");
        assert!(perf_per_tco_normalized(System::GpuT4x4, p, s).is_none());
    }

    #[test]
    fn known_answer_8xvcu() {
        // 8 VCUs = 4 cards: capex is exactly server + 4 cards, and the
        // opex term is power × price with nothing else folded in.
        let sys = System::VcuHost { vcus: 8 };
        let t = system_tco_with(sys, OPEX_PER_WATT_3YR);
        assert_eq!(t.capex, SERVER_CAPEX + 4.0 * VCU_CARD_CAPEX);
        assert_eq!(t.opex_3yr, sys.power_w() * OPEX_PER_WATT_3YR);
        assert_eq!(t.total(), t.capex + t.opex_3yr);
        // Free power leaves pure capex.
        assert_eq!(system_tco_with(sys, 0.0).total(), t.capex);
        // The default-price wrapper is the same model.
        assert_eq!(system_tco(sys), t);
    }

    vcu_rng::prop_cases! {
        /// TCO is monotone non-decreasing in the power price, for every
        /// system shape.
        #[cases(128)]
        fn tco_monotone_in_power_price(rng) {
            let a = rng.gen_range(0.0..20.0);
            let b = rng.gen_range(0.0..20.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let vcus = rng.gen_range(1u32..33) as usize;
            for sys in [
                System::SkylakeCpu,
                System::GpuT4x4,
                System::VcuHost { vcus },
            ] {
                let cheap = system_tco_with(sys, lo).total();
                let dear = system_tco_with(sys, hi).total();
                assert!(
                    cheap <= dear,
                    "{sys:?}: total at ${lo}/W = {cheap} > total at ${hi}/W = {dear}"
                );
            }
        }

        /// Opex is linear in the power price; capex is independent of it.
        #[cases(128)]
        fn tco_opex_linear_capex_fixed(rng) {
            let price = rng.gen_range(0.0..20.0);
            let k = rng.gen_range(0.0..8.0);
            let vcus = rng.gen_range(1u32..33) as usize;
            let sys = System::VcuHost { vcus };
            let one = system_tco_with(sys, price);
            let scaled = system_tco_with(sys, price * k);
            assert_eq!(one.capex, scaled.capex);
            assert!(
                (scaled.opex_3yr - one.opex_3yr * k).abs() <= 1e-9 * (1.0 + scaled.opex_3yr.abs()),
                "opex not linear: {} vs {}",
                scaled.opex_3yr,
                one.opex_3yr * k
            );
        }
    }

    #[test]
    fn shipped_design_prices_like_the_constant_card() {
        // The design-parameterized host TCO must agree with the
        // Table-1 pricing exactly at the shipped point — this is the
        // calibration that lets the DSE frontier anchor on the same
        // dollars the rest of the repo reports.
        let shipped = DesignPoint::shipped();
        for vcus in [1, 8, 19, 20, 40] {
            let by_design = vcu_host_tco_for(&shipped, vcus, OPEX_PER_WATT_3YR);
            let by_constant = system_tco(System::VcuHost { vcus });
            assert_eq!(by_design, by_constant, "vcus = {vcus}");
        }
        // A beefier design strictly raises both cost terms.
        let big = vcu_host_tco_for(
            &DesignPoint::new(14, 4, 45.0, 2 * 147_456),
            20,
            OPEX_PER_WATT_3YR,
        );
        let base = vcu_host_tco_for(&shipped, 20, OPEX_PER_WATT_3YR);
        assert!(big.capex > base.capex && big.opex_3yr > base.opex_3yr);
    }

    #[test]
    fn baseline_is_unity() {
        let n = perf_per_tco_normalized(
            System::SkylakeCpu,
            Profile::H264Sim,
            WorkloadShape::SotTwoPass,
        )
        .unwrap();
        assert!((n - 1.0).abs() < 1e-12);
    }
}
