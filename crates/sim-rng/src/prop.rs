//! Minimal seeded property-test harness (the in-repo `proptest`
//! replacement).
//!
//! [`crate::prop_cases!`] declares `#[test]` functions whose body runs
//! N times, each with a fresh [`Rng`](crate::Rng) seeded from a
//! deterministic per-case seed. On failure the harness reports the
//! exact seed so the case reproduces with
//! `VCU_PROP_SEED=<seed> cargo test <name>`.
//!
//! ```ignore
//! vcu_rng::prop_cases! {
//!     /// Reversal twice is the identity.
//!     #[cases(256)]
//!     fn reverse_round_trips(rng) {
//!         let n = rng.gen_range(0usize..100);
//!         let v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(v, w);
//!     }
//! }
//! ```

use crate::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Derives the seed for `case` of property `name`: an FNV-1a hash of
/// the property name mixed through SplitMix64 with the case index, so
/// every property explores a distinct but fully deterministic region
/// of seed space.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    let mut sm = SplitMix64::new(h ^ case);
    sm.next_u64()
}

/// Runs `body` for `cases` seeded cases, panicking with the failing
/// seed on the first failure. Honors `VCU_PROP_SEED=<u64>` to replay a
/// single reported seed.
pub fn run_cases<F: FnMut(&mut Rng)>(name: &str, cases: u64, mut body: F) {
    if let Ok(s) = std::env::var("VCU_PROP_SEED") {
        let seed: u64 = s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("VCU_PROP_SEED must be a u64, got {s:?}"));
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
        return;
    }
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(cause) = outcome {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with VCU_PROP_SEED={seed}):\n  {msg}"
            );
        }
    }
}

/// Declares seeded property tests. Each item becomes a `#[test]` whose
/// body runs `#[cases(N)]` times with a fresh deterministic [`Rng`]
/// bound to the given identifier.
#[macro_export]
macro_rules! prop_cases {
    ($($(#[doc = $doc:expr])* #[cases($n:expr)] fn $name:ident($rng:ident) $body:block)+) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                $crate::prop::run_cases(stringify!($name), $n, |$rng| $body);
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("foo", 0), case_seed("foo", 0));
        assert_ne!(case_seed("foo", 0), case_seed("foo", 1));
        assert_ne!(case_seed("foo", 0), case_seed("bar", 0));
    }

    #[test]
    fn failing_case_reports_seed() {
        let result = catch_unwind(|| {
            run_cases("always_fails", 3, |_rng| panic!("boom"));
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("VCU_PROP_SEED="), "message: {msg}");
        assert!(msg.contains("boom"), "message: {msg}");
    }

    prop_cases! {
        /// The macro itself wires up and passes a trivial property.
        #[cases(16)]
        fn macro_smoke(rng) {
            let a = rng.gen_range(0u32..100);
            assert!(a < 100);
        }
    }
}
