//! Deterministic, vendored randomness for the whole workspace.
//!
//! Every stochastic component of the reproduction — traffic
//! generators, popularity sampling, the cluster simulator's detection
//! coin-flips, the property-test harness — draws from this crate and
//! nothing else. The generator is xoshiro256++ seeded through
//! SplitMix64 (the seeding scheme its authors recommend), so a given
//! seed produces a bit-identical stream on every platform and every
//! future toolchain: unlike `rand::StdRng`, whose algorithm is
//! explicitly *not* stability-guaranteed across versions, the stream
//! here is frozen by construction. That is what makes the paper's
//! tables and figures (Table 1, Figs. 7–10) reproducible to the byte.
//!
//! The API mirrors the small slice of `rand` the workspace actually
//! used (`gen_range`, `gen_bool`, `seed_from_u64`) plus the
//! distribution samplers the workload models need (uniform f64,
//! normal, exponential) and Fisher–Yates `shuffle`.

pub mod prop;

use std::ops::{Range, RangeInclusive};

/// Seed from the `VCU_SEED` environment variable, or `default` when it
/// is unset. Every example binary resolves its seed through this one
/// helper so fixed-seed CI runs and ad-hoc seed sweeps use the same
/// spelling.
///
/// # Panics
///
/// Panics when `VCU_SEED` is set but does not parse as a `u64` — a
/// typo'd seed silently falling back to the default would defeat the
/// point of setting it.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("VCU_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("VCU_SEED must be a u64, got {s:?}")),
        Err(_) => default,
    }
}

/// Derives an independent sub-seed from a base seed and a stream index
/// by running both through SplitMix64's finalizer. Use this wherever a
/// family of components (per-worker RNGs, per-shard streams) must each
/// get their own uncorrelated seed: naive derivations like
/// `seed ^ (i << 8)` produce sub-seeds that differ only in a few
/// shifted bits, and two different base seeds can map different
/// indices onto the *same* stream. The full 64-bit avalanche here
/// makes `(seed, stream)` pairs collide no more often than random
/// 64-bit values.
pub fn mix64(seed: u64, stream: u64) -> u64 {
    // Advance a SplitMix64 at `seed` by `stream + 1` golden-gamma
    // steps in O(1), then apply its output finalizer — equivalent to
    // `SplitMix64::new(seed).nth(stream)` but constant-time in
    // `stream`.
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// SplitMix64: a tiny, fast 64-bit generator used to expand a single
/// `u64` seed into the 256-bit xoshiro state (Vigna's recommended
/// seeding procedure; also a fine standalone stream mixer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The workspace RNG: xoshiro256++ (Blackman & Vigna). 2^256-1 period,
/// excellent statistical quality, four words of state, and a frozen
/// specification — the stream for a given seed never changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits (the xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`, unbiased (Lemire's widening
    /// multiply with rejection).
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo < span {
                // Rejection zone for exact uniformity.
                let threshold = span.wrapping_neg() % span;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`,
    /// `rng.gen_range(1u8..=255)`, `rng.gen_range(0.0..1.0)`.
    ///
    /// Panics on an empty range, matching `rand`'s behavior.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0,1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Normal (Gaussian) sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // 1 - u ∈ (0, 1] keeps ln() finite.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential sample with the given rate (mean `1/rate`) by
    /// inverse-CDF. Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.f64()).ln() / rate
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // First outputs of the public-domain splitmix64.c for seed 0 —
        // a known-answer test pinning the stream forever.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn mix64_equals_splitmix_nth_output() {
        // mix64(seed, k) is defined as the (k+1)-th output of a
        // SplitMix64 seeded at `seed`, computed in O(1). Pin that
        // equivalence (and therefore the exact values) forever.
        for seed in [0u64, 1, 42, 0xDEADBEEF, u64::MAX] {
            let mut sm = SplitMix64::new(seed);
            for stream in 0..16 {
                assert_eq!(
                    mix64(seed, stream),
                    sm.next_u64(),
                    "seed={seed} stream={stream}"
                );
            }
        }
        // Explicit known-answer against the splitmix64.c vectors.
        assert_eq!(mix64(0, 0), 0xE220A8397B1DCDAF);
        assert_eq!(mix64(0, 1), 0x6E789E6AA1B965F4);
        assert_eq!(mix64(0, 2), 0x06C45D188009454F);
    }

    #[test]
    fn mix64_streams_are_unique_across_seeds_and_streams() {
        // The weak derivation this replaced (`seed ^ (i << 8)`) let two
        // different base seeds map different stream indices onto the
        // same sub-seed. The mixed derivation must keep (seed, stream)
        // pairs distinct across a realistic fleet: two seeds × 10k
        // workers with zero collisions.
        let mut seen = std::collections::HashSet::new();
        for seed in [42u64, 43] {
            for stream in 0..10_000u64 {
                assert!(
                    seen.insert(mix64(seed, stream)),
                    "collision at seed={seed} stream={stream}"
                );
            }
        }
        assert_eq!(seen.len(), 20_000);
    }

    #[test]
    fn rng_stream_is_pinned() {
        // Regression vector: the first xoshiro256++ outputs for seed 1
        // as produced by this implementation. If these ever change, a
        // code change silently altered every simulation in the repo.
        let mut rng = Rng::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            [
                0xCFC5D07F6F03C29B,
                0xBF424132963FE08D,
                0x19A37D5757AAF520,
                0xBF08119F05CD56D6,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let eq = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-7i32..13);
            assert!((-7..13).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = Rng::seed_from_u64(5);
        let draws: Vec<u8> = (0..2000).map(|_| rng.gen_range(0u8..4)).collect();
        for target in 0..4u8 {
            assert!(draws.contains(&target), "never drew {target}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&rate), "rate {rate}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
