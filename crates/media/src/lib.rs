//! Pixel-level media substrate for the VCU reproduction.
//!
//! This crate provides the raw-video foundation that the rest of the
//! workspace builds on:
//!
//! - [`Plane`] / [`Frame`]: 8-bit YUV 4:2:0 frame storage with safe
//!   block access and edge-clamped sampling,
//! - [`Resolution`]: the standard 16:9 output ladder (144p … 4320p)
//!   used by the paper's multiple-output transcoding (MOT) pipelines,
//! - [`quality`]: MSE / PSNR / SSIM distortion metrics,
//! - [`bdrate`]: Bjøntegaard delta-rate between rate-distortion curves
//!   (the metric behind the paper's "30% BD-rate improvement" claims),
//! - [`scale`]: area-average downscaling and bilinear upscaling,
//! - [`synth`]: a deterministic synthetic video generator with
//!   controllable spatial detail, motion and noise. The paper evaluates
//!   on vbench and proprietary uploads; we have neither, so synthetic
//!   content with matched *entropy/motion spread* stands in (see
//!   DESIGN.md, substitution table).
//!
//! # Example
//!
//! ```
//! use vcu_media::{synth::{SynthSpec, ContentClass}, quality::psnr_y, Resolution};
//!
//! let spec = SynthSpec::new(Resolution::R144, 8, ContentClass::talking_head(), 7);
//! let video = spec.generate();
//! assert_eq!(video.frames.len(), 8);
//! let p = psnr_y(&video.frames[0], &video.frames[0]);
//! assert!(p.is_infinite()); // identical frames
//! ```

pub mod bdrate;
pub mod frame;
pub mod plane;
pub mod quality;
pub mod resolution;
pub mod scale;
pub mod synth;

pub use frame::{Frame, Video};
pub use plane::Plane;
pub use resolution::Resolution;
