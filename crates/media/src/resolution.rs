//! The standard 16:9 output resolution ladder.
//!
//! Video sharing platforms convert each upload into a fixed group of
//! 16:9 resolutions (paper §2.1, footnote 1). [`Resolution`] enumerates
//! that ladder and provides the pixel arithmetic (Mpix/frame,
//! ladder-below-input) that MOT pipeline construction and throughput
//! accounting use throughout the workspace.

use std::fmt;

/// A rung of the standard 16:9 output ladder, named by vertical size.
///
/// # Example
///
/// ```
/// use vcu_media::Resolution;
///
/// assert_eq!(Resolution::R1080.dims(), (1920, 1080));
/// let ladder = Resolution::R1080.ladder();
/// assert_eq!(ladder.first(), Some(&Resolution::R1080));
/// assert_eq!(ladder.last(), Some(&Resolution::R144));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resolution {
    /// 256 × 144.
    R144,
    /// 426 × 240.
    R240,
    /// 640 × 360.
    R360,
    /// 854 × 480.
    R480,
    /// 1280 × 720 (HD).
    R720,
    /// 1920 × 1080 (Full HD).
    R1080,
    /// 2560 × 1440 (QHD).
    R1440,
    /// 3840 × 2160 (4K).
    R2160,
    /// 7680 × 4320 (8K).
    R4320,
}

impl Resolution {
    /// All ladder rungs, smallest first.
    pub const ALL: [Resolution; 9] = [
        Resolution::R144,
        Resolution::R240,
        Resolution::R360,
        Resolution::R480,
        Resolution::R720,
        Resolution::R1080,
        Resolution::R1440,
        Resolution::R2160,
        Resolution::R4320,
    ];

    /// `(width, height)` in pixels. All dimensions are even, as YUV
    /// 4:2:0 requires.
    pub const fn dims(self) -> (usize, usize) {
        match self {
            Resolution::R144 => (256, 144),
            Resolution::R240 => (426, 240),
            Resolution::R360 => (640, 360),
            Resolution::R480 => (854, 480),
            Resolution::R720 => (1280, 720),
            Resolution::R1080 => (1920, 1080),
            Resolution::R1440 => (2560, 1440),
            Resolution::R2160 => (3840, 2160),
            Resolution::R4320 => (7680, 4320),
        }
    }

    /// Width in pixels.
    pub const fn width(self) -> usize {
        self.dims().0
    }

    /// Height in pixels.
    pub const fn height(self) -> usize {
        self.dims().1
    }

    /// Pixels per frame.
    pub const fn pixels(self) -> u64 {
        let (w, h) = self.dims();
        (w as u64) * (h as u64)
    }

    /// Megapixels per frame (10^6 pixels, matching the paper's Mpix/s
    /// throughput metric).
    pub fn mpix(self) -> f64 {
        self.pixels() as f64 / 1e6
    }

    /// The MOT output ladder for an input of this resolution: this
    /// rung and every smaller one, largest first — e.g. for a 1080p
    /// input: 1080p, 720p, 480p, 360p, 240p, 144p (paper §3.1).
    pub fn ladder(self) -> Vec<Resolution> {
        Resolution::ALL
            .iter()
            .copied()
            .filter(|r| *r <= self)
            .rev()
            .collect()
    }

    /// Total pixels across the full MOT ladder for this input. The
    /// paper notes this approximates a geometric series: the sum of all
    /// rungs below roughly equals the top rung again (§3.1 footnote 2).
    pub fn ladder_pixels(self) -> u64 {
        self.ladder().iter().map(|r| r.pixels()).sum()
    }

    /// Parses "144p"-style names.
    ///
    /// # Errors
    ///
    /// Returns [`ParseResolutionError`] if the string is not a ladder rung.
    pub fn parse(s: &str) -> Result<Resolution, ParseResolutionError> {
        match s {
            "144p" => Ok(Resolution::R144),
            "240p" => Ok(Resolution::R240),
            "360p" => Ok(Resolution::R360),
            "480p" => Ok(Resolution::R480),
            "720p" => Ok(Resolution::R720),
            "1080p" => Ok(Resolution::R1080),
            "1440p" => Ok(Resolution::R1440),
            "2160p" => Ok(Resolution::R2160),
            "4320p" => Ok(Resolution::R4320),
            _ => Err(ParseResolutionError {
                input: s.to_string(),
            }),
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p", self.height())
    }
}

/// Error returned by [`Resolution::parse`] for unrecognized names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResolutionError {
    input: String,
}

impl fmt::Display for ParseResolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized resolution name: {:?}", self.input)
    }
}

impl std::error::Error for ParseResolutionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_are_even() {
        for r in Resolution::ALL {
            let (w, h) = r.dims();
            assert_eq!(w % 2, 0, "{r} width odd");
            assert_eq!(h % 2, 0, "{r} height odd");
        }
    }

    #[test]
    fn ordering_by_size() {
        assert!(Resolution::R144 < Resolution::R2160);
        assert!(Resolution::R1080 < Resolution::R1440);
    }

    #[test]
    fn ladder_for_1080p() {
        let l = Resolution::R1080.ladder();
        assert_eq!(
            l,
            vec![
                Resolution::R1080,
                Resolution::R720,
                Resolution::R480,
                Resolution::R360,
                Resolution::R240,
                Resolution::R144
            ]
        );
    }

    #[test]
    fn geometric_series_property() {
        // Paper §3.1 fn 2: 720p+480p+...+144p ≈ 1.7 Mpix vs 1080p ≈ 2 Mpix.
        let below: u64 = Resolution::R1080
            .ladder()
            .iter()
            .skip(1)
            .map(|r| r.pixels())
            .sum();
        let top = Resolution::R1080.pixels();
        let ratio = below as f64 / top as f64;
        assert!((0.6..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn parse_round_trips() {
        for r in Resolution::ALL {
            assert_eq!(Resolution::parse(&r.to_string()).unwrap(), r);
        }
        assert!(Resolution::parse("500p").is_err());
        let err = Resolution::parse("potato").unwrap_err();
        assert!(err.to_string().contains("potato"));
    }

    #[test]
    fn mpix_matches_paper_example() {
        // Paper: "1080p is approximately 2 megapixels per frame".
        assert!((Resolution::R1080.mpix() - 2.07).abs() < 0.01);
        // "each raw [2160p] frame is 11.9 MiB" => 8.3 Mpix * 1.5 bytes.
        let bytes = Resolution::R2160.pixels() as f64 * 1.5;
        assert!((bytes / (1024.0 * 1024.0) - 11.86).abs() < 0.1);
    }
}
