//! Resolution scaling: area-average downscale, bilinear upscale.
//!
//! The MOT pipeline decodes an input once and downscales the raw
//! frames to every lower ladder rung before encoding (paper Fig. 2b).
//! Area averaging is the conventional high-quality choice for large
//! downscale factors; bilinear is provided for the (rare) upscale path
//! that clients otherwise perform on-device.

use crate::frame::Frame;
use crate::plane::Plane;

/// Scales a plane to `(dw, dh)` using pixel-area weighting for
/// downscales and bilinear interpolation otherwise.
///
/// # Panics
///
/// Panics if either target dimension is zero.
pub fn scale_plane(src: &Plane, dw: usize, dh: usize) -> Plane {
    assert!(dw > 0 && dh > 0, "target dimensions must be nonzero");
    if dw == src.width() && dh == src.height() {
        return src.clone();
    }
    if dw <= src.width() && dh <= src.height() {
        area_average(src, dw, dh)
    } else {
        bilinear(src, dw, dh)
    }
}

fn area_average(src: &Plane, dw: usize, dh: usize) -> Plane {
    let (sw, sh) = (src.width() as f64, src.height() as f64);
    let x_ratio = sw / dw as f64;
    let y_ratio = sh / dh as f64;
    Plane::from_fn(dw, dh, |dx, dy| {
        let x0 = dx as f64 * x_ratio;
        let x1 = (dx + 1) as f64 * x_ratio;
        let y0 = dy as f64 * y_ratio;
        let y1 = (dy + 1) as f64 * y_ratio;
        let mut acc = 0.0;
        let mut area = 0.0;
        let mut sy = y0.floor() as usize;
        while (sy as f64) < y1 && sy < src.height() {
            let wy = (y1.min((sy + 1) as f64) - y0.max(sy as f64)).max(0.0);
            let mut sx = x0.floor() as usize;
            while (sx as f64) < x1 && sx < src.width() {
                let wx = (x1.min((sx + 1) as f64) - x0.max(sx as f64)).max(0.0);
                acc += src.get(sx, sy) as f64 * wx * wy;
                area += wx * wy;
                sx += 1;
            }
            sy += 1;
        }
        (acc / area).round().clamp(0.0, 255.0) as u8
    })
}

fn bilinear(src: &Plane, dw: usize, dh: usize) -> Plane {
    let x_ratio = src.width() as f64 / dw as f64;
    let y_ratio = src.height() as f64 / dh as f64;
    Plane::from_fn(dw, dh, |dx, dy| {
        let sx = (dx as f64 + 0.5) * x_ratio - 0.5;
        let sy = (dy as f64 + 0.5) * y_ratio - 0.5;
        src.sample_bilinear(sx, sy)
    })
}

/// Scales a full YUV 4:2:0 frame to new even dimensions.
///
/// # Panics
///
/// Panics if `dw`/`dh` are zero or odd.
pub fn scale_frame(src: &Frame, dw: usize, dh: usize) -> Frame {
    assert!(dw > 0 && dh > 0, "target dimensions must be nonzero");
    assert!(
        dw.is_multiple_of(2) && dh.is_multiple_of(2),
        "4:2:0 requires even dimensions"
    );
    Frame::from_planes(
        scale_plane(src.y(), dw, dh),
        scale_plane(src.u(), dw / 2, dh / 2),
        scale_plane(src.v(), dw / 2, dh / 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scale_is_clone() {
        let p = Plane::from_fn(8, 8, |x, y| (x * y) as u8);
        let s = scale_plane(&p, 8, 8);
        assert_eq!(s, p);
    }

    #[test]
    fn downscale_constant_stays_constant() {
        let mut p = Plane::new(16, 16);
        p.fill(77);
        let s = scale_plane(&p, 4, 4);
        assert!(s.data().iter().all(|&v| v == 77));
    }

    #[test]
    fn downscale_2x_averages() {
        // 2x2 blocks of (0, 0, 100, 100) average to 50.
        let p = Plane::from_fn(4, 4, |_, y| if y % 2 == 0 { 0 } else { 100 });
        let s = scale_plane(&p, 2, 2);
        assert!(s.data().iter().all(|&v| v == 50), "{:?}", s.data());
    }

    #[test]
    fn non_integer_factor_preserves_mean() {
        let p = Plane::from_fn(854, 480, |x, y| ((x + y) % 256) as u8);
        let s = scale_plane(&p, 640, 360);
        assert!(
            (p.mean() - s.mean()).abs() < 1.5,
            "means {} vs {}",
            p.mean(),
            s.mean()
        );
    }

    #[test]
    fn upscale_constant() {
        let mut p = Plane::new(4, 4);
        p.fill(90);
        let s = scale_plane(&p, 8, 8);
        assert!(s.data().iter().all(|&v| v == 90));
    }

    #[test]
    fn frame_scale_keeps_chroma_ratio() {
        let f = Frame::new(64, 36);
        let g = scale_frame(&f, 32, 18);
        assert_eq!(g.u().width(), 16);
        assert_eq!(g.u().height(), 9);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn frame_scale_rejects_odd() {
        scale_frame(&Frame::new(64, 36), 31, 18);
    }
}
