//! Deterministic synthetic video generation.
//!
//! The paper benchmarks on vbench — 15 videos spanning a 3-D space of
//! resolution, frame rate and entropy — plus proprietary production
//! uploads. Neither corpus ships with this repo, so we synthesize
//! content whose *encoding-relevant* properties are controllable:
//!
//! - **spatial detail** — multi-octave value noise amplitude; drives
//!   intra-coding cost,
//! - **motion** — a global pan plus independently moving objects;
//!   drives motion-estimation behaviour and inter-coding cost,
//! - **temporal noise** — per-frame sensor-like noise; sets the floor
//!   on inter-frame predictability (the "entropy" axis of vbench),
//! - **scene cuts** — periodic re-seeding; exercises keyframe/GOP
//!   decisions.
//!
//! Everything is deterministic in the seed, so tests and benches are
//! reproducible.

use crate::frame::{Frame, Video};
use crate::plane::Plane;
use crate::resolution::Resolution;

/// Content parameters, i.e. "what kind of video is this".
///
/// The constructors mirror the qualitative classes visible in the
/// paper's Fig. 7 (easy `presentation`/`desktop` at the top, hard
/// high-motion `holi` at the bottom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentClass {
    /// Amplitude of spatial texture in [0, 1]. 0 = flat, 1 = dense texture.
    pub spatial_detail: f64,
    /// Global pan speed in luma pixels/frame.
    pub pan_speed: f64,
    /// Number of independently moving objects.
    pub objects: usize,
    /// Object speed in pixels/frame.
    pub object_speed: f64,
    /// Std-dev of per-frame additive noise (grain), in code values.
    pub noise_sigma: f64,
    /// Scene cut every N frames (`None` = never).
    pub scene_cut_period: Option<usize>,
}

impl ContentClass {
    /// Static screen-share content: near-zero motion, crisp detail,
    /// no noise — the easiest class to encode (vbench `presentation`,
    /// `desktop`).
    pub fn screen_content() -> Self {
        ContentClass {
            spatial_detail: 0.65,
            pan_speed: 0.0,
            objects: 0,
            object_speed: 0.0,
            noise_sigma: 0.0,
            scene_cut_period: None,
        }
    }

    /// A talking-head / interview shot: low motion, mild noise.
    pub fn talking_head() -> Self {
        ContentClass {
            spatial_detail: 0.35,
            pan_speed: 0.1,
            objects: 1,
            object_speed: 0.4,
            noise_sigma: 1.5,
            scene_cut_period: None,
        }
    }

    /// General user-generated content: moderate motion and noise.
    pub fn ugc() -> Self {
        ContentClass {
            spatial_detail: 0.5,
            pan_speed: 1.0,
            objects: 3,
            object_speed: 1.5,
            noise_sigma: 2.5,
            scene_cut_period: Some(120),
        }
    }

    /// Gaming content: fast pans, many moving sprites, sharp detail.
    pub fn gaming() -> Self {
        ContentClass {
            spatial_detail: 0.7,
            pan_speed: 3.0,
            objects: 6,
            object_speed: 4.0,
            noise_sigma: 0.5,
            scene_cut_period: Some(240),
        }
    }

    /// Sports / festival content with heavy motion and grain — the
    /// hardest class (vbench `holi`, `cricket`).
    pub fn high_motion() -> Self {
        ContentClass {
            spatial_detail: 0.8,
            pan_speed: 4.0,
            objects: 10,
            object_speed: 6.0,
            noise_sigma: 4.0,
            scene_cut_period: Some(90),
        }
    }
}

/// Specification for one synthetic clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// Output resolution.
    pub resolution: Resolution,
    /// Number of frames to generate.
    pub frames: usize,
    /// Frames per second.
    pub fps: f64,
    /// Content parameters.
    pub content: ContentClass,
    /// RNG seed; equal specs generate bit-identical videos.
    pub seed: u64,
}

impl SynthSpec {
    /// Creates a 30 fps spec.
    pub fn new(resolution: Resolution, frames: usize, content: ContentClass, seed: u64) -> Self {
        SynthSpec {
            resolution,
            frames,
            fps: 30.0,
            content,
            seed,
        }
    }

    /// Sets the frame rate.
    pub fn with_fps(mut self, fps: f64) -> Self {
        self.fps = fps;
        self
    }

    /// Generates the video.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn generate(&self) -> Video {
        assert!(self.frames > 0, "must generate at least one frame");
        let (w, h) = self.resolution.dims();
        let mut gen = SceneGen::new(*self, w, h);
        let frames: Vec<Frame> = (0..self.frames).map(|t| gen.frame(t)).collect();
        Video::new(frames, self.fps)
    }
}

/// Internal scene state: a large textured background panned over, plus
/// moving objects composited on top.
struct SceneGen {
    spec: SynthSpec,
    w: usize,
    h: usize,
    background: Plane,
    bg_u: Plane,
    bg_v: Plane,
    scene_index: usize,
}

impl SceneGen {
    fn new(spec: SynthSpec, w: usize, h: usize) -> Self {
        let mut g = SceneGen {
            spec,
            w,
            h,
            background: Plane::new(1, 1),
            bg_u: Plane::new(1, 1),
            bg_v: Plane::new(1, 1),
            scene_index: usize::MAX,
        };
        g.build_scene(0);
        g
    }

    fn scene_of(&self, t: usize) -> usize {
        match self.spec.content.scene_cut_period {
            Some(p) if p > 0 => t / p,
            _ => 0,
        }
    }

    fn build_scene(&mut self, scene: usize) {
        if self.scene_index == scene {
            return;
        }
        self.scene_index = scene;
        let seed = splitmix(self.spec.seed ^ (scene as u64).wrapping_mul(0x9E3779B97F4A7C15));
        // Background larger than the viewport so panning has room.
        let margin = (self.spec.content.pan_speed.abs() * self.spec.frames as f64).ceil() as usize
            + (self.spec.content.object_speed.abs() * 4.0) as usize
            + 16;
        let bw = self.w + 2 * margin.min(self.w * 2);
        let bh = self.h + 2 * margin.min(self.h * 2);
        let detail = self.spec.content.spatial_detail;
        self.background = value_noise_plane(bw, bh, detail, seed);
        self.bg_u = value_noise_plane(bw / 2, bh / 2, detail * 0.4, seed ^ 0xA5A5)
            .shifted_towards(128, 0.7);
        self.bg_v = value_noise_plane(bw / 2, bh / 2, detail * 0.4, seed ^ 0x5A5A)
            .shifted_towards(128, 0.7);
    }

    fn frame(&mut self, t: usize) -> Frame {
        let scene = self.scene_of(t);
        self.build_scene(scene);
        let local_t = match self.spec.content.scene_cut_period {
            Some(p) if p > 0 => t % p,
            _ => t,
        };
        let c = self.spec.content;
        let seed = splitmix(self.spec.seed ^ (scene as u64) << 32);

        // Global pan with a slight diagonal component.
        let pan_x = c.pan_speed * local_t as f64;
        let pan_y = c.pan_speed * 0.37 * local_t as f64;
        let max_x = (self.background.width() - self.w) as f64;
        let max_y = (self.background.height() - self.h) as f64;
        let ox = pan_x.rem_euclid(max_x.max(1.0));
        let oy = pan_y.rem_euclid(max_y.max(1.0));

        let mut y = Plane::from_fn(self.w, self.h, |x, yy| {
            self.background
                .sample_bilinear(x as f64 + ox, yy as f64 + oy)
        });
        let u = Plane::from_fn(self.w / 2, self.h / 2, |x, yy| {
            self.bg_u
                .sample_bilinear(x as f64 + ox / 2.0, yy as f64 + oy / 2.0)
        });
        let v = Plane::from_fn(self.w / 2, self.h / 2, |x, yy| {
            self.bg_v
                .sample_bilinear(x as f64 + ox / 2.0, yy as f64 + oy / 2.0)
        });

        // Moving objects: textured rectangles on deterministic orbits.
        for i in 0..c.objects {
            let os = splitmix(seed ^ (i as u64 + 1).wrapping_mul(0xD1B54A32D192ED03));
            let ow = 8 + (os % (self.w as u64 / 6 + 1)) as usize;
            let oh = 8 + ((os >> 8) % (self.h as u64 / 6 + 1)) as usize;
            let phase = (os >> 16) as f64 / u32::MAX as f64 * std::f64::consts::TAU;
            let speed = c.object_speed * (0.5 + ((os >> 24) & 0xFF) as f64 / 255.0);
            let cx = self.w as f64 / 2.0
                + (self.w as f64 / 3.0) * (phase + speed * local_t as f64 * 0.02).cos();
            let cy = self.h as f64 / 2.0
                + (self.h as f64 / 3.0) * (phase * 1.7 + speed * local_t as f64 * 0.013).sin();
            let shade = 48 + ((os >> 32) % 160) as u8;
            let x0 = (cx - ow as f64 / 2.0) as isize;
            let y0 = (cy - oh as f64 / 2.0) as isize;
            for by in 0..oh {
                for bx in 0..ow {
                    let px = x0 + bx as isize;
                    let py = y0 + by as isize;
                    if px >= 0 && py >= 0 && (px as usize) < self.w && (py as usize) < self.h {
                        // Light texture on the object so it is not flat.
                        let tex = (hash2(bx as u64, by as u64, os) % 32) as u8;
                        y.set(px as usize, py as usize, shade.saturating_add(tex));
                    }
                }
            }
        }

        // Temporal noise (film grain / sensor noise).
        if c.noise_sigma > 0.0 {
            let nseed = splitmix(seed ^ (t as u64).wrapping_mul(0xBF58476D1CE4E5B9));
            add_noise(&mut y, c.noise_sigma, nseed);
        }

        Frame::from_planes(y, u, v)
    }
}

impl Plane {
    /// Linearly blends every pixel towards `target`: `p + (target - p) * k`.
    /// Used to mute chroma texture.
    fn shifted_towards(mut self, target: u8, k: f64) -> Plane {
        for p in self.data_mut() {
            let v = *p as f64 + (target as f64 - *p as f64) * k;
            *p = v.round().clamp(0.0, 255.0) as u8;
        }
        self
    }
}

/// Multi-octave value noise: smooth at low detail, busy at high detail.
fn value_noise_plane(w: usize, h: usize, detail: f64, seed: u64) -> Plane {
    let detail = detail.clamp(0.0, 1.0);
    // Octave cell sizes from coarse to fine; amplitude of fine octaves
    // scales with `detail`.
    let octaves: [(usize, f64); 4] = [
        (64, 60.0),
        (16, 35.0 * detail + 8.0),
        (8, 25.0 * detail),
        (4, 18.0 * detail * detail),
    ];
    Plane::from_fn(w, h, |x, y| {
        let mut acc = 128.0;
        for (k, &(cell, amp)) in octaves.iter().enumerate() {
            if amp <= 0.0 {
                continue;
            }
            let oseed = seed ^ ((k as u64 + 1) << 48);
            acc += amp * lattice_noise(x as f64 / cell as f64, y as f64 / cell as f64, oseed);
        }
        acc.round().clamp(0.0, 255.0) as u8
    })
}

/// Bilinear-interpolated lattice noise in [-1, 1].
fn lattice_noise(x: f64, y: f64, seed: u64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = smooth(x - x0);
    let fy = smooth(y - y0);
    let (ix, iy) = (x0 as i64 as u64, y0 as i64 as u64);
    let v00 = lattice_value(ix, iy, seed);
    let v10 = lattice_value(ix.wrapping_add(1), iy, seed);
    let v01 = lattice_value(ix, iy.wrapping_add(1), seed);
    let v11 = lattice_value(ix.wrapping_add(1), iy.wrapping_add(1), seed);
    let top = v00 * (1.0 - fx) + v10 * fx;
    let bot = v01 * (1.0 - fx) + v11 * fx;
    top * (1.0 - fy) + bot * fy
}

fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

fn lattice_value(x: u64, y: u64, seed: u64) -> f64 {
    (hash2(x, y, seed) as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn hash2(x: u64, y: u64, seed: u64) -> u64 {
    splitmix(
        seed.wrapping_add(x.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(y.wrapping_mul(0xC2B2AE3D27D4EB4F)),
    )
}

/// SplitMix64 — small, fast, deterministic hash/PRNG step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Adds approximately-Gaussian noise (sum of 4 uniforms) to a plane.
fn add_noise(p: &mut Plane, sigma: f64, seed: u64) {
    let w = p.width();
    for (i, px) in p.data_mut().iter_mut().enumerate() {
        let h = hash2((i % w) as u64, (i / w) as u64, seed);
        // Four 8-bit lanes -> approx normal with sigma ~ sqrt(4*(1/12))*255...
        let sum = (h & 0xFF) + ((h >> 8) & 0xFF) + ((h >> 16) & 0xFF) + ((h >> 24) & 0xFF);
        // mean 510, std ~147.2
        let n = (sum as f64 - 510.0) / 147.2;
        let v = *px as f64 + n * sigma;
        *px = v.round().clamp(0.0, 255.0) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::psnr_y;

    fn small(content: ContentClass, frames: usize, seed: u64) -> Video {
        SynthSpec::new(Resolution::R144, frames, content, seed).generate()
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small(ContentClass::ugc(), 4, 42);
        let b = small(ContentClass::ugc(), 4, 42);
        assert_eq!(a, b);
        let c = small(ContentClass::ugc(), 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_match_resolution() {
        let v = small(ContentClass::talking_head(), 2, 1);
        assert_eq!(v.width(), 256);
        assert_eq!(v.height(), 144);
        assert_eq!(v.frames[0].u().width(), 128);
    }

    #[test]
    fn static_content_is_static() {
        let v = small(ContentClass::screen_content(), 3, 5);
        // No pan, no objects, no noise: frames identical.
        assert_eq!(v.frames[0], v.frames[1]);
        assert_eq!(v.frames[1], v.frames[2]);
    }

    #[test]
    fn motion_content_changes_between_frames() {
        let v = small(ContentClass::high_motion(), 3, 5);
        assert_ne!(v.frames[0], v.frames[1]);
        let p = psnr_y(&v.frames[0], &v.frames[1]);
        assert!(
            p < 40.0,
            "consecutive high-motion frames too similar: {p} dB"
        );
    }

    #[test]
    fn talking_head_is_temporally_predictable() {
        let v = small(ContentClass::talking_head(), 3, 5);
        let p = psnr_y(&v.frames[0], &v.frames[1]);
        assert!(p > 24.0, "talking head should be predictable: {p} dB");
    }

    #[test]
    fn scene_cut_changes_content_abruptly() {
        let content = ContentClass {
            scene_cut_period: Some(4),
            ..ContentClass::talking_head()
        };
        let v = small(content, 8, 9);
        let within = psnr_y(&v.frames[1], &v.frames[2]);
        let across = psnr_y(&v.frames[3], &v.frames[4]);
        assert!(
            across < within - 3.0,
            "cut boundary {across} dB vs within-scene {within} dB"
        );
    }

    #[test]
    fn detail_raises_spatial_variance() {
        let flat = value_noise_plane(64, 64, 0.0, 7);
        let busy = value_noise_plane(64, 64, 1.0, 7);
        let var = |p: &Plane| {
            let m = p.mean();
            p.data()
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>()
                / p.data().len() as f64
        };
        assert!(var(&busy) > var(&flat) * 1.2);
    }

    #[test]
    fn noise_sigma_scales_noise() {
        let mut a = Plane::new(64, 64);
        a.fill(128);
        let mut b = a.clone();
        add_noise(&mut b, 3.0, 77);
        let m = mse(&a, &b);
        // MSE should be near sigma^2 = 9.
        assert!((4.0..16.0).contains(&m), "mse {m}");
    }

    fn mse(a: &Plane, b: &Plane) -> f64 {
        a.sse(b) as f64 / (a.width() * a.height()) as f64
    }
}
