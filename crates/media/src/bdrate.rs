//! Bjøntegaard delta-rate (BD-rate) between rate-distortion curves.
//!
//! BD-rate is the average bitrate difference (percent) between two
//! encoders at equal quality, computed by fitting each encoder's RD
//! points with a cubic polynomial in the (PSNR → log-rate) domain and
//! integrating the gap over the overlapping quality range
//! (Bjøntegaard, VCEG-M33). The paper reports all of its Fig. 7
//! quality comparisons this way: VCU-VP9 ≈ −30% vs libx264,
//! VCU-H.264 ≈ +11.5% vs libx264, VCU-VP9 ≈ +18% vs libvpx.

use std::fmt;

/// One point of an operational rate-distortion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdPoint {
    /// Bitrate in bits per second (or any consistent rate unit).
    pub bitrate: f64,
    /// Quality in dB (PSNR).
    pub psnr: f64,
}

impl RdPoint {
    /// Creates an RD point.
    pub fn new(bitrate: f64, psnr: f64) -> Self {
        RdPoint { bitrate, psnr }
    }
}

/// Error from [`bd_rate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdRateError {
    /// A curve has fewer than 4 points (cubic fit needs 4).
    TooFewPoints,
    /// A curve contains a non-finite or non-positive value.
    InvalidPoint,
    /// The PSNR ranges of the two curves do not overlap.
    NoOverlap,
}

impl fmt::Display for BdRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdRateError::TooFewPoints => write!(f, "curve needs at least 4 RD points"),
            BdRateError::InvalidPoint => write!(f, "RD point has non-finite or non-positive value"),
            BdRateError::NoOverlap => write!(f, "quality ranges do not overlap"),
        }
    }
}

impl std::error::Error for BdRateError {}

/// Computes BD-rate of `test` relative to `anchor`, in percent.
///
/// Negative values mean `test` needs fewer bits for the same quality
/// (better); positive means more bits (worse).
///
/// # Errors
///
/// Returns an error if either curve has fewer than 4 points, contains
/// non-finite / non-positive values, or the PSNR ranges do not overlap.
///
/// # Example
///
/// ```
/// use vcu_media::bdrate::{bd_rate, RdPoint};
///
/// // `test` achieves identical quality at exactly half the rate.
/// let anchor: Vec<_> = [1.0, 2.0, 4.0, 8.0]
///     .iter().map(|&r| RdPoint::new(r * 1e6, 30.0 + r)).collect();
/// let test: Vec<_> = [1.0, 2.0, 4.0, 8.0]
///     .iter().map(|&r| RdPoint::new(r * 0.5e6, 30.0 + r)).collect();
/// let bd = bd_rate(&anchor, &test).unwrap();
/// assert!((bd - -50.0).abs() < 1.0);
/// ```
pub fn bd_rate(anchor: &[RdPoint], test: &[RdPoint]) -> Result<f64, BdRateError> {
    let a = prepare(anchor)?;
    let t = prepare(test)?;

    let lo = a.min_psnr.max(t.min_psnr);
    let hi = a.max_psnr.min(t.max_psnr);
    // NaN-aware: any incomparable pair (NaN PSNR) is "no overlap".
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(BdRateError::NoOverlap);
    }

    // Integrate both fitted log-rate polynomials over [lo, hi].
    let int_a = a.poly.integral(lo, hi);
    let int_t = t.poly.integral(lo, hi);
    let avg_diff = (int_t - int_a) / (hi - lo);
    Ok((10f64.powf(avg_diff) - 1.0) * 100.0)
}

struct FittedCurve {
    poly: Poly3,
    min_psnr: f64,
    max_psnr: f64,
}

fn prepare(points: &[RdPoint]) -> Result<FittedCurve, BdRateError> {
    if points.len() < 4 {
        return Err(BdRateError::TooFewPoints);
    }
    for p in points {
        if !p.bitrate.is_finite() || !p.psnr.is_finite() || p.bitrate <= 0.0 {
            return Err(BdRateError::InvalidPoint);
        }
    }
    let xs: Vec<f64> = points.iter().map(|p| p.psnr).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.bitrate.log10()).collect();
    let poly = Poly3::fit(&xs, &ys).ok_or(BdRateError::InvalidPoint)?;
    let min_psnr = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_psnr = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(FittedCurve {
        poly,
        min_psnr,
        max_psnr,
    })
}

/// Cubic polynomial `c0 + c1 x + c2 x^2 + c3 x^3` fit by least squares.
#[derive(Debug, Clone, Copy)]
struct Poly3 {
    c: [f64; 4],
}

impl Poly3 {
    /// Least-squares cubic fit via the normal equations. The inputs are
    /// shifted by mean(x) internally for conditioning. Returns `None`
    /// on a singular system (e.g. all x identical).
    fn fit(xs: &[f64], ys: &[f64]) -> Option<Poly3> {
        debug_assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        let xbar = xs.iter().sum::<f64>() / n as f64;
        // Normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
        let mut pow_sums = [0.0f64; 7];
        let mut b = [0.0f64; 4];
        for k in 0..n {
            let x = xs[k] - xbar;
            let mut xp = 1.0;
            for item in pow_sums.iter_mut() {
                *item += xp;
                xp *= x;
            }
            let mut xp = 1.0;
            for item in b.iter_mut() {
                *item += ys[k] * xp;
                xp *= x;
            }
        }
        let mut a = [[0.0f64; 5]; 4];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().take(4).enumerate() {
                *cell = pow_sums[i + j];
            }
            row[4] = b[i];
        }
        let c_shift = solve4(&mut a)?;
        // Un-shift: p(x) = q(x - xbar) where q has coefficients c_shift.
        Some(Poly3 {
            c: unshift(c_shift, xbar),
        })
    }

    fn eval(&self, x: f64) -> f64 {
        self.c[0] + x * (self.c[1] + x * (self.c[2] + x * self.c[3]))
    }

    /// Definite integral over [lo, hi].
    fn integral(&self, lo: f64, hi: f64) -> f64 {
        let anti = |x: f64| {
            x * (self.c[0] + x * (self.c[1] / 2.0 + x * (self.c[2] / 3.0 + x * self.c[3] / 4.0)))
        };
        anti(hi) - anti(lo)
    }
}

/// Gaussian elimination with partial pivoting on a 4x5 augmented matrix.
fn solve4(a: &mut [[f64; 5]; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let mut best = col;
        for row in col + 1..4 {
            if a[row][col].abs() > a[best][col].abs() {
                best = row;
            }
        }
        if a[best][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, best);
        let pivot = a[col];
        for row in a.iter_mut().skip(col + 1) {
            let f = row[col] / pivot[col];
            for (k, &pv) in pivot.iter().enumerate().skip(col) {
                row[k] -= f * pv;
            }
        }
    }
    let mut x = [0.0f64; 4];
    for i in (0..4).rev() {
        let mut s = a[i][4];
        for j in i + 1..4 {
            s -= a[i][j] * x[j];
        }
        x[i] = s / a[i][i];
    }
    Some(x)
}

/// Expands q(x - m) into standard coefficients.
fn unshift(q: [f64; 4], m: f64) -> [f64; 4] {
    // q0 + q1 (x-m) + q2 (x-m)^2 + q3 (x-m)^3
    let [q0, q1, q2, q3] = q;
    [
        q0 - q1 * m + q2 * m * m - q3 * m * m * m,
        q1 - 2.0 * q2 * m + 3.0 * q3 * m * m,
        q2 - 3.0 * q3 * m,
        q3,
    ]
}

/// Evaluates the fitted log-rate curve of an RD point set at a given
/// PSNR — exposed for plotting/debugging RD fits.
///
/// # Errors
///
/// Same conditions as [`bd_rate`] for a single curve.
pub fn fitted_log_rate(points: &[RdPoint], psnr: f64) -> Result<f64, BdRateError> {
    let c = prepare(points)?;
    Ok(c.poly.eval(psnr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(rate_mult: f64) -> Vec<RdPoint> {
        // PSNR rises with log rate: psnr = 10 log10(rate) + 5
        [0.5f64, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&r| RdPoint::new(r * rate_mult * 1e6, 10.0 * (r * 1e6).log10() + 5.0))
            .collect()
    }

    #[test]
    fn identical_curves_zero() {
        let a = curve(1.0);
        let bd = bd_rate(&a, &a).unwrap();
        assert!(bd.abs() < 1e-6, "bd {bd}");
    }

    #[test]
    fn half_rate_is_minus_50() {
        let a = curve(1.0);
        let t = curve(0.5);
        let bd = bd_rate(&a, &t).unwrap();
        assert!((bd + 50.0).abs() < 0.5, "bd {bd}");
    }

    #[test]
    fn thirty_percent_more_rate() {
        let a = curve(1.0);
        let t = curve(1.3);
        let bd = bd_rate(&a, &t).unwrap();
        assert!((bd - 30.0).abs() < 0.5, "bd {bd}");
    }

    #[test]
    fn antisymmetry() {
        let a = curve(1.0);
        let t = curve(0.7);
        let ab = bd_rate(&a, &t).unwrap();
        let ba = bd_rate(&t, &a).unwrap();
        // (1+ab/100) * (1+ba/100) == 1
        let prod = (1.0 + ab / 100.0) * (1.0 + ba / 100.0);
        assert!((prod - 1.0).abs() < 1e-6, "prod {prod}");
    }

    #[test]
    fn too_few_points() {
        let a = curve(1.0);
        assert_eq!(bd_rate(&a[..3], &a), Err(BdRateError::TooFewPoints));
    }

    #[test]
    fn no_overlap() {
        let a: Vec<_> = (0..4)
            .map(|i| RdPoint::new(1e6 * (i + 1) as f64, 20.0 + i as f64))
            .collect();
        let t: Vec<_> = (0..4)
            .map(|i| RdPoint::new(1e6 * (i + 1) as f64, 40.0 + i as f64))
            .collect();
        assert_eq!(bd_rate(&a, &t), Err(BdRateError::NoOverlap));
    }

    #[test]
    fn invalid_point() {
        let mut a = curve(1.0);
        a[0].bitrate = -1.0;
        assert_eq!(bd_rate(&a, &curve(1.0)), Err(BdRateError::InvalidPoint));
    }

    #[test]
    fn fitted_log_rate_tracks_input() {
        let a = curve(1.0);
        // At psnr of the middle point, fitted log rate should be close
        // to the actual log rate.
        let mid = &a[2];
        let lr = fitted_log_rate(&a, mid.psnr).unwrap();
        assert!((lr - mid.bitrate.log10()).abs() < 0.05);
    }
}
