//! Distortion metrics: MSE, PSNR, and a block-based SSIM.
//!
//! The paper reports encoder quality as PSNR rate-distortion curves
//! (Fig. 7) with a 45 dB "perceptual ceiling". These functions are the
//! measurement side of that figure.

use crate::frame::{Frame, Video};
use crate::plane::Plane;

/// Mean squared error between two planes of identical size.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn mse_plane(a: &Plane, b: &Plane) -> f64 {
    let n = (a.width() * a.height()) as f64;
    a.sse(b) as f64 / n
}

/// PSNR in dB from an MSE value, for 8-bit content (peak 255).
/// Returns `f64::INFINITY` for zero MSE.
pub fn psnr_from_mse(mse: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Luma-only PSNR between two frames (the conventional "Y-PSNR" used
/// for RD curves).
///
/// # Panics
///
/// Panics if frame dimensions differ.
pub fn psnr_y(a: &Frame, b: &Frame) -> f64 {
    psnr_from_mse(mse_plane(a.y(), b.y()))
}

/// Combined-plane PSNR with the conventional 4:1:1 plane weighting
/// (luma dominates; chroma planes each carry one quarter the pixels).
///
/// # Panics
///
/// Panics if frame dimensions differ.
pub fn psnr_yuv(a: &Frame, b: &Frame) -> f64 {
    let y_n = (a.y().width() * a.y().height()) as f64;
    let c_n = (a.u().width() * a.u().height()) as f64;
    let total_sse = a.y().sse(b.y()) as f64 + a.u().sse(b.u()) as f64 + a.v().sse(b.v()) as f64;
    psnr_from_mse(total_sse / (y_n + 2.0 * c_n))
}

/// Sequence-level luma PSNR: computed from the *pooled* MSE over all
/// frames (the standard for video, avoiding infinite per-frame values
/// dominating an average).
///
/// # Panics
///
/// Panics if the videos differ in frame count or dimensions.
pub fn psnr_y_video(a: &Video, b: &Video) -> f64 {
    assert_eq!(a.frames.len(), b.frames.len(), "frame count mismatch");
    let mut sse = 0u64;
    let mut n = 0u64;
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        sse += fa.y().sse(fb.y());
        n += fa.pixels();
    }
    psnr_from_mse(sse as f64 / n as f64)
}

/// Mean structural similarity (SSIM) over 8×8 luma windows.
///
/// A straightforward non-overlapping-window SSIM; enough to rank
/// encodes, not a bit-exact reimplementation of any reference tool.
///
/// # Panics
///
/// Panics if frame dimensions differ.
pub fn ssim_y(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width(), b.width(), "frame width mismatch");
    assert_eq!(a.height(), b.height(), "frame height mismatch");
    const C1: f64 = 6.5025; // (0.01 * 255)^2
    const C2: f64 = 58.5225; // (0.03 * 255)^2
    const W: usize = 8;
    let (pw, ph) = (a.width(), a.height());
    let mut total = 0.0;
    let mut windows = 0u64;
    let mut ba = vec![0u8; W * W];
    let mut bb = vec![0u8; W * W];
    let mut y = 0;
    while y + W <= ph {
        let mut x = 0;
        while x + W <= pw {
            a.y()
                .copy_block_clamped(x as isize, y as isize, W, W, &mut ba);
            b.y()
                .copy_block_clamped(x as isize, y as isize, W, W, &mut bb);
            total += ssim_window(&ba, &bb, C1, C2);
            windows += 1;
            x += W;
        }
        y += W;
    }
    if windows == 0 {
        1.0
    } else {
        total / windows as f64
    }
}

fn ssim_window(a: &[u8], b: &[u8], c1: f64, c2: f64) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut va = 0.0;
    let mut vb = 0.0;
    let mut cov = 0.0;
    for (&pa, &pb) in a.iter().zip(b) {
        let da = pa as f64 - ma;
        let db = pb as f64 - mb;
        va += da * da;
        vb += db * db;
        cov += da * db;
    }
    va /= n - 1.0;
    vb /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Plane;

    fn textured(seed: u8) -> Frame {
        let y = Plane::from_fn(32, 32, |x, yy| {
            ((x * 31 + yy * 17) as u8).wrapping_add(seed)
        });
        let u = Plane::from_fn(16, 16, |_, _| 128);
        let v = Plane::from_fn(16, 16, |_, _| 128);
        Frame::from_planes(y, u, v)
    }

    #[test]
    fn identical_frames_infinite_psnr() {
        let f = textured(0);
        assert!(psnr_y(&f, &f).is_infinite());
        assert!(psnr_yuv(&f, &f).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // Uniform error of 1 everywhere: MSE = 1, PSNR = 20*log10(255) ≈ 48.13 dB.
        let a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        b.y_mut().fill(1);
        let p = psnr_y(&a, &b);
        assert!((p - 48.130).abs() < 1e-3, "psnr {p}");
    }

    #[test]
    fn psnr_monotone_in_error() {
        let a = Frame::new(16, 16);
        let mut b1 = Frame::new(16, 16);
        let mut b2 = Frame::new(16, 16);
        b1.y_mut().fill(2);
        b2.y_mut().fill(8);
        assert!(psnr_y(&a, &b1) > psnr_y(&a, &b2));
    }

    #[test]
    fn ssim_bounds() {
        let f = textured(0);
        let g = textured(90);
        let s_same = ssim_y(&f, &f);
        let s_diff = ssim_y(&f, &g);
        assert!((s_same - 1.0).abs() < 1e-9);
        assert!(s_diff < s_same);
        assert!(s_diff > -1.0);
    }

    #[test]
    fn video_psnr_pools_mse() {
        let a = Video::new(vec![Frame::new(8, 8); 2], 30.0);
        let mut f2 = Frame::new(8, 8);
        f2.y_mut().fill(2); // MSE 4 on one frame, 0 on the other -> pooled 2.
        let b = Video::new(vec![Frame::new(8, 8), f2], 30.0);
        let expect = psnr_from_mse(2.0);
        assert!((psnr_y_video(&a, &b) - expect).abs() < 1e-9);
    }
}
