//! Single-channel 8-bit image plane.
//!
//! A [`Plane`] is the unit of pixel storage for luma and chroma
//! channels. It provides edge-clamped sampling (used by motion search
//! at frame borders), block copy in/out (used by the block-based
//! codec), and distortion kernels (SAD / SSE) that both the encoder's
//! mode decision and the quality metrics build on.

use std::fmt;

/// A single 8-bit image plane with row-major storage.
///
/// Pixels outside the plane are defined by edge clamping, matching the
/// behaviour video codecs specify for motion vectors that point outside
/// the reference picture.
///
/// # Example
///
/// ```
/// use vcu_media::Plane;
///
/// let mut p = Plane::new(4, 4);
/// p.set(1, 1, 200);
/// assert_eq!(p.get(1, 1), 200);
/// // Edge-clamped sampling: coordinates are clamped into the plane.
/// assert_eq!(p.get_clamped(-5, 1), p.get(0, 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish()
    }
}

impl Plane {
    /// Creates a zero-filled plane.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Creates a plane by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut p = Plane::new(width, height);
        for y in 0..height {
            for x in 0..width {
                p.data[y * width + x] = f(x, y);
            }
        }
        p
    }

    /// Creates a plane from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "data length mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the raw row-major pixel data.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the raw row-major pixel data.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Reads the pixel at signed coordinates with edge clamping.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Borrows one row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Copies a `bw x bh` block whose top-left corner is `(x, y)` into
    /// `dst` (row-major, length `bw * bh`). Pixels outside the plane
    /// are edge-clamped, so blocks may start at negative coordinates or
    /// extend past the border — exactly what unrestricted motion
    /// vectors require.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != bw * bh`.
    pub fn copy_block_clamped(&self, x: isize, y: isize, bw: usize, bh: usize, dst: &mut [u8]) {
        assert_eq!(dst.len(), bw * bh, "destination length mismatch");
        let in_x = x >= 0 && (x as usize) + bw <= self.width;
        let in_y = y >= 0 && (y as usize) + bh <= self.height;
        if in_x && in_y {
            // Fast path: fully interior block.
            let (x, y) = (x as usize, y as usize);
            for by in 0..bh {
                let src = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
                dst[by * bw..(by + 1) * bw].copy_from_slice(src);
            }
        } else {
            for by in 0..bh {
                for bx in 0..bw {
                    dst[by * bw + bx] = self.get_clamped(x + bx as isize, y + by as isize);
                }
            }
        }
    }

    /// Writes a `bw x bh` block at `(x, y)`; parts outside the plane
    /// are silently cropped.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != bw * bh`.
    pub fn write_block(&mut self, x: usize, y: usize, bw: usize, bh: usize, src: &[u8]) {
        assert_eq!(src.len(), bw * bh, "source length mismatch");
        for by in 0..bh {
            let py = y + by;
            if py >= self.height {
                break;
            }
            for bx in 0..bw {
                let px = x + bx;
                if px >= self.width {
                    break;
                }
                self.data[py * self.width + px] = src[by * bw + bx];
            }
        }
    }

    /// Sum of absolute differences between the block at `(x, y)` in
    /// `self` (edge-clamped) and `other` (row-major `bw x bh`).
    ///
    /// # Panics
    ///
    /// Panics if `other.len() != bw * bh`.
    pub fn sad_block(&self, x: isize, y: isize, bw: usize, bh: usize, other: &[u8]) -> u64 {
        assert_eq!(other.len(), bw * bh, "block length mismatch");
        let mut sad = 0u64;
        let in_bounds =
            x >= 0 && y >= 0 && (x as usize) + bw <= self.width && (y as usize) + bh <= self.height;
        if in_bounds {
            let (x, y) = (x as usize, y as usize);
            for by in 0..bh {
                let row = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
                let oth = &other[by * bw..(by + 1) * bw];
                for (a, b) in row.iter().zip(oth) {
                    sad += (*a as i32 - *b as i32).unsigned_abs() as u64;
                }
            }
        } else {
            for by in 0..bh {
                for bx in 0..bw {
                    let a = self.get_clamped(x + bx as isize, y + by as isize) as i32;
                    let b = other[by * bw + bx] as i32;
                    sad += (a - b).unsigned_abs() as u64;
                }
            }
        }
        sad
    }

    /// Sum of squared errors against another plane of identical size.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sse(&self, other: &Plane) -> u64 {
        assert_eq!(self.width, other.width, "plane width mismatch");
        assert_eq!(self.height, other.height, "plane height mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = *a as i64 - *b as i64;
                (d * d) as u64
            })
            .sum()
    }

    /// Fills the entire plane with a constant value.
    pub fn fill(&mut self, v: u8) {
        self.data.fill(v);
    }

    /// Mean pixel value as a float (useful for DC statistics).
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Bilinearly samples the plane at fractional coordinates, with
    /// edge clamping. Used by sub-pixel motion compensation and the
    /// synthetic video generator.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> u8 {
        let x0 = x.floor() as isize;
        let y0 = y.floor() as isize;
        let fx = x - x0 as f64;
        let fy = y - y0 as f64;
        let p00 = self.get_clamped(x0, y0) as f64;
        let p10 = self.get_clamped(x0 + 1, y0) as f64;
        let p01 = self.get_clamped(x0, y0 + 1) as f64;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f64;
        let top = p00 * (1.0 - fx) + p10 * fx;
        let bot = p01 * (1.0 - fx) + p11 * fx;
        (top * (1.0 - fy) + bot * fy).round().clamp(0.0, 255.0) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero_filled() {
        let p = Plane::new(3, 2);
        assert_eq!(p.data(), &[0; 6]);
        assert_eq!(p.width(), 3);
        assert_eq!(p.height(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        Plane::new(0, 4);
    }

    #[test]
    fn from_fn_populates() {
        let p = Plane::from_fn(4, 3, |x, y| (x + 10 * y) as u8);
        assert_eq!(p.get(2, 1), 12);
        assert_eq!(p.get(3, 2), 23);
    }

    #[test]
    fn from_data_round_trips() {
        let p = Plane::from_data(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(p.get(0, 0), 1);
        assert_eq!(p.get(1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_data_length_checked() {
        Plane::from_data(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn clamped_access() {
        let p = Plane::from_fn(4, 4, |x, y| (x * 4 + y) as u8);
        assert_eq!(p.get_clamped(-3, 0), p.get(0, 0));
        assert_eq!(p.get_clamped(100, 100), p.get(3, 3));
        assert_eq!(p.get_clamped(2, -1), p.get(2, 0));
    }

    #[test]
    fn block_copy_interior_and_edge() {
        let p = Plane::from_fn(8, 8, |x, y| (y * 8 + x) as u8);
        let mut b = vec![0u8; 4];
        p.copy_block_clamped(2, 3, 2, 2, &mut b);
        assert_eq!(b, vec![26, 27, 34, 35]);
        // Edge-clamped block at negative coordinates replicates column 0.
        p.copy_block_clamped(-1, 0, 2, 2, &mut b);
        assert_eq!(b, vec![0, 0, 8, 8]);
    }

    #[test]
    fn write_block_crops() {
        let mut p = Plane::new(4, 4);
        p.write_block(3, 3, 2, 2, &[9, 9, 9, 9]);
        assert_eq!(p.get(3, 3), 9);
        // No panic, pixels outside are dropped.
    }

    #[test]
    fn sad_matches_manual() {
        let p = Plane::from_fn(4, 4, |x, _| (x * 10) as u8);
        let other = vec![0u8, 10, 20, 30];
        assert_eq!(p.sad_block(0, 0, 4, 1, &other), 0);
        let other2 = vec![5u8, 5, 25, 25];
        assert_eq!(p.sad_block(0, 0, 4, 1, &other2), 5 + 5 + 5 + 5);
    }

    #[test]
    fn sad_interior_equals_clamped_path() {
        let p = Plane::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 251) as u8);
        let mut blk = vec![0u8; 16];
        p.copy_block_clamped(4, 4, 4, 4, &mut blk);
        assert_eq!(p.sad_block(4, 4, 4, 4, &blk), 0);
    }

    #[test]
    fn sse_zero_for_identical() {
        let p = Plane::from_fn(5, 5, |x, y| (x ^ y) as u8);
        assert_eq!(p.sse(&p.clone()), 0);
    }

    #[test]
    fn bilinear_midpoint() {
        let mut p = Plane::new(2, 1);
        p.set(0, 0, 0);
        p.set(1, 0, 100);
        assert_eq!(p.sample_bilinear(0.5, 0.0), 50);
    }

    #[test]
    fn mean_of_constant() {
        let mut p = Plane::new(3, 3);
        p.fill(42);
        assert!((p.mean() - 42.0).abs() < 1e-12);
    }
}
