//! Single-channel 8-bit image plane.
//!
//! A [`Plane`] is the unit of pixel storage for luma and chroma
//! channels. It provides edge-clamped sampling (used by motion search
//! at frame borders), block copy in/out (used by the block-based
//! codec), and distortion kernels (SAD / SSE) that both the encoder's
//! mode decision and the quality metrics build on.

use std::fmt;

/// A single 8-bit image plane with row-major storage.
///
/// Pixels outside the plane are defined by edge clamping, matching the
/// behaviour video codecs specify for motion vectors that point outside
/// the reference picture.
///
/// # Example
///
/// ```
/// use vcu_media::Plane;
///
/// let mut p = Plane::new(4, 4);
/// p.set(1, 1, 200);
/// assert_eq!(p.get(1, 1), 200);
/// // Edge-clamped sampling: coordinates are clamped into the plane.
/// assert_eq!(p.get_clamped(-5, 1), p.get(0, 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish()
    }
}

impl Plane {
    /// Creates a zero-filled plane.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Creates a plane by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut p = Plane::new(width, height);
        for y in 0..height {
            for x in 0..width {
                p.data[y * width + x] = f(x, y);
            }
        }
        p
    }

    /// Creates a plane from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "data length mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow the raw row-major pixel data.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrow the raw row-major pixel data.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Reads the pixel at signed coordinates with edge clamping.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Borrows one row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Copies a `bw x bh` block whose top-left corner is `(x, y)` into
    /// `dst` (row-major, length `bw * bh`). Pixels outside the plane
    /// are edge-clamped, so blocks may start at negative coordinates or
    /// extend past the border — exactly what unrestricted motion
    /// vectors require.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != bw * bh`.
    pub fn copy_block_clamped(&self, x: isize, y: isize, bw: usize, bh: usize, dst: &mut [u8]) {
        assert_eq!(dst.len(), bw * bh, "destination length mismatch");
        let in_x = x >= 0 && (x as usize) + bw <= self.width;
        let in_y = y >= 0 && (y as usize) + bh <= self.height;
        if in_x && in_y {
            // Fast path: fully interior block.
            let (x, y) = (x as usize, y as usize);
            for by in 0..bh {
                let src = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
                dst[by * bw..(by + 1) * bw].copy_from_slice(src);
            }
        } else {
            // Edge-clamped fallback: each output row reads one clamped
            // source row, which splits into a replicated left border, a
            // contiguous interior run, and a replicated right border.
            let left = (-x).clamp(0, bw as isize) as usize;
            let right_start = (self.width as isize - x).clamp(left as isize, bw as isize) as usize;
            for by in 0..bh {
                let cy = (y + by as isize).clamp(0, self.height as isize - 1) as usize;
                let row = &self.data[cy * self.width..(cy + 1) * self.width];
                let out = &mut dst[by * bw..(by + 1) * bw];
                out[..left].fill(row[0]);
                if right_start > left {
                    let sx = (x + left as isize) as usize;
                    out[left..right_start].copy_from_slice(&row[sx..sx + (right_start - left)]);
                }
                out[right_start..].fill(row[self.width - 1]);
            }
        }
    }

    /// Writes a `bw x bh` block at `(x, y)`; parts outside the plane
    /// are silently cropped.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != bw * bh`.
    pub fn write_block(&mut self, x: usize, y: usize, bw: usize, bh: usize, src: &[u8]) {
        assert_eq!(src.len(), bw * bh, "source length mismatch");
        for by in 0..bh {
            let py = y + by;
            if py >= self.height {
                break;
            }
            for bx in 0..bw {
                let px = x + bx;
                if px >= self.width {
                    break;
                }
                self.data[py * self.width + px] = src[by * bw + bx];
            }
        }
    }

    /// Sum of absolute differences between the block at `(x, y)` in
    /// `self` (edge-clamped) and `other` (row-major `bw x bh`).
    ///
    /// # Panics
    ///
    /// Panics if `other.len() != bw * bh`.
    pub fn sad_block(&self, x: isize, y: isize, bw: usize, bh: usize, other: &[u8]) -> u64 {
        assert_eq!(other.len(), bw * bh, "block length mismatch");
        let mut sad = 0u64;
        let in_bounds =
            x >= 0 && y >= 0 && (x as usize) + bw <= self.width && (y as usize) + bh <= self.height;
        if in_bounds {
            let (x, y) = (x as usize, y as usize);
            for by in 0..bh {
                let row = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
                let oth = &other[by * bw..(by + 1) * bw];
                for (a, b) in row.iter().zip(oth) {
                    sad += (*a as i32 - *b as i32).unsigned_abs() as u64;
                }
            }
        } else {
            for by in 0..bh {
                for bx in 0..bw {
                    let a = self.get_clamped(x + bx as isize, y + by as isize) as i32;
                    let b = other[by * bw + bx] as i32;
                    sad += (a - b).unsigned_abs() as u64;
                }
            }
        }
        sad
    }

    /// Early-exit variant of [`Plane::sad_block`]: accumulates the SAD
    /// row by row and stops as soon as the running sum reaches
    /// `threshold`, returning `(sad, pixels_examined)`.
    ///
    /// Contract: if the returned SAD is `< threshold` it is the exact
    /// full-block SAD; otherwise it is a partial sum that is `>=
    /// threshold` (and therefore `>=` any best-so-far the caller is
    /// comparing against, so `sad < threshold` decisions are identical
    /// to the unthresholded kernel). `pixels_examined` counts the
    /// pixels actually read — the honest CPU-side work metric, as
    /// opposed to the fixed `bw * bh` a hardware SAD array would burn.
    ///
    /// # Panics
    ///
    /// Panics if `other.len() != bw * bh`.
    pub fn sad_block_thresholded(
        &self,
        x: isize,
        y: isize,
        bw: usize,
        bh: usize,
        other: &[u8],
        threshold: u64,
    ) -> (u64, u64) {
        assert_eq!(other.len(), bw * bh, "block length mismatch");
        let mut sad = 0u64;
        let mut examined = 0u64;
        let in_bounds =
            x >= 0 && y >= 0 && (x as usize) + bw <= self.width && (y as usize) + bh <= self.height;
        if in_bounds {
            let (x, y) = (x as usize, y as usize);
            for by in 0..bh {
                let row = &self.data[(y + by) * self.width + x..(y + by) * self.width + x + bw];
                let oth = &other[by * bw..(by + 1) * bw];
                let mut acc = 0u64;
                for (a, b) in row.iter().zip(oth) {
                    acc += (*a as i32 - *b as i32).unsigned_abs() as u64;
                }
                sad += acc;
                examined += bw as u64;
                if sad >= threshold {
                    return (sad, examined);
                }
            }
        } else {
            for by in 0..bh {
                let mut acc = 0u64;
                for bx in 0..bw {
                    let a = self.get_clamped(x + bx as isize, y + by as isize) as i32;
                    let b = other[by * bw + bx] as i32;
                    acc += (a - b).unsigned_abs() as u64;
                }
                sad += acc;
                examined += bw as u64;
                if sad >= threshold {
                    return (sad, examined);
                }
            }
        }
        (sad, examined)
    }

    /// Sum of squared errors against another plane of identical size.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sse(&self, other: &Plane) -> u64 {
        assert_eq!(self.width, other.width, "plane width mismatch");
        assert_eq!(self.height, other.height, "plane height mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = *a as i64 - *b as i64;
                (d * d) as u64
            })
            .sum()
    }

    /// Fills the entire plane with a constant value.
    pub fn fill(&mut self, v: u8) {
        self.data.fill(v);
    }

    /// Mean pixel value as a float (useful for DC statistics).
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Fetches a `bw x bh` block at half-pel precision using a
    /// fixed-point integer bilinear kernel. `(x, y)` is the full-pel
    /// top-left corner; `fx`/`fy` are half-pel fraction numerators
    /// (0 or 1, i.e. offsets of 0 or 0.5 pixels). Pixels outside the
    /// plane are edge-clamped.
    ///
    /// The integer taps — `(a + b + 1) >> 1` for the 2-tap averages
    /// and `(p00 + p10 + p01 + p11 + 2) >> 2` for the 4-tap corner —
    /// reproduce [`Plane::sample_bilinear`]'s f64 lerp + `round()`
    /// byte-for-byte over the entire u8 domain at half-pel offsets
    /// (round-half-away-from-zero equals round-half-up on non-negative
    /// values), so motion compensation can use this kernel without
    /// perturbing a single bit of the bitstream.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != bw * bh` or `fx`/`fy` exceed 1.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_block_hpel(
        &self,
        x: isize,
        y: isize,
        fx: u8,
        fy: u8,
        bw: usize,
        bh: usize,
        dst: &mut [u8],
    ) {
        assert_eq!(dst.len(), bw * bh, "destination length mismatch");
        assert!(fx <= 1 && fy <= 1, "fractions are half-pel numerators");
        if fx == 0 && fy == 0 {
            self.copy_block_clamped(x, y, bw, bh, dst);
            return;
        }
        let need_w = bw + fx as usize;
        let need_h = bh + fy as usize;
        let interior = x >= 0
            && y >= 0
            && (x as usize) + need_w <= self.width
            && (y as usize) + need_h <= self.height;
        if interior {
            let (x, y) = (x as usize, y as usize);
            match (fx, fy) {
                (1, 0) => {
                    for by in 0..bh {
                        let base = (y + by) * self.width + x;
                        let row = &self.data[base..base + bw + 1];
                        let out = &mut dst[by * bw..(by + 1) * bw];
                        for (o, w) in out.iter_mut().zip(row.windows(2)) {
                            *o = ((w[0] as u16 + w[1] as u16 + 1) >> 1) as u8;
                        }
                    }
                }
                (0, 1) => {
                    for by in 0..bh {
                        let base = (y + by) * self.width + x;
                        let r0 = &self.data[base..base + bw];
                        let r1 = &self.data[base + self.width..base + self.width + bw];
                        let out = &mut dst[by * bw..(by + 1) * bw];
                        for ((o, a), b) in out.iter_mut().zip(r0).zip(r1) {
                            *o = ((*a as u16 + *b as u16 + 1) >> 1) as u8;
                        }
                    }
                }
                _ => {
                    for by in 0..bh {
                        let base = (y + by) * self.width + x;
                        let r0 = &self.data[base..base + bw + 1];
                        let r1 = &self.data[base + self.width..base + self.width + bw + 1];
                        let out = &mut dst[by * bw..(by + 1) * bw];
                        for (i, o) in out.iter_mut().enumerate() {
                            let s =
                                r0[i] as u16 + r0[i + 1] as u16 + r1[i] as u16 + r1[i + 1] as u16;
                            *o = ((s + 2) >> 2) as u8;
                        }
                    }
                }
            }
        } else {
            for by in 0..bh {
                for bx in 0..bw {
                    let px = x + bx as isize;
                    let py = y + by as isize;
                    let p00 = self.get_clamped(px, py) as u16;
                    dst[by * bw + bx] = match (fx, fy) {
                        (1, 0) => ((p00 + self.get_clamped(px + 1, py) as u16 + 1) >> 1) as u8,
                        (0, 1) => ((p00 + self.get_clamped(px, py + 1) as u16 + 1) >> 1) as u8,
                        _ => {
                            let s = p00
                                + self.get_clamped(px + 1, py) as u16
                                + self.get_clamped(px, py + 1) as u16
                                + self.get_clamped(px + 1, py + 1) as u16;
                            ((s + 2) >> 2) as u8
                        }
                    };
                }
            }
        }
    }

    /// Bilinearly samples the plane at fractional coordinates, with
    /// edge clamping. Used by sub-pixel motion compensation and the
    /// synthetic video generator.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> u8 {
        let x0 = x.floor() as isize;
        let y0 = y.floor() as isize;
        let fx = x - x0 as f64;
        let fy = y - y0 as f64;
        let p00 = self.get_clamped(x0, y0) as f64;
        let p10 = self.get_clamped(x0 + 1, y0) as f64;
        let p01 = self.get_clamped(x0, y0 + 1) as f64;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f64;
        let top = p00 * (1.0 - fx) + p10 * fx;
        let bot = p01 * (1.0 - fx) + p11 * fx;
        (top * (1.0 - fy) + bot * fy).round().clamp(0.0, 255.0) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero_filled() {
        let p = Plane::new(3, 2);
        assert_eq!(p.data(), &[0; 6]);
        assert_eq!(p.width(), 3);
        assert_eq!(p.height(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        Plane::new(0, 4);
    }

    #[test]
    fn from_fn_populates() {
        let p = Plane::from_fn(4, 3, |x, y| (x + 10 * y) as u8);
        assert_eq!(p.get(2, 1), 12);
        assert_eq!(p.get(3, 2), 23);
    }

    #[test]
    fn from_data_round_trips() {
        let p = Plane::from_data(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(p.get(0, 0), 1);
        assert_eq!(p.get(1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_data_length_checked() {
        Plane::from_data(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn clamped_access() {
        let p = Plane::from_fn(4, 4, |x, y| (x * 4 + y) as u8);
        assert_eq!(p.get_clamped(-3, 0), p.get(0, 0));
        assert_eq!(p.get_clamped(100, 100), p.get(3, 3));
        assert_eq!(p.get_clamped(2, -1), p.get(2, 0));
    }

    #[test]
    fn block_copy_interior_and_edge() {
        let p = Plane::from_fn(8, 8, |x, y| (y * 8 + x) as u8);
        let mut b = vec![0u8; 4];
        p.copy_block_clamped(2, 3, 2, 2, &mut b);
        assert_eq!(b, vec![26, 27, 34, 35]);
        // Edge-clamped block at negative coordinates replicates column 0.
        p.copy_block_clamped(-1, 0, 2, 2, &mut b);
        assert_eq!(b, vec![0, 0, 8, 8]);
    }

    #[test]
    fn write_block_crops() {
        let mut p = Plane::new(4, 4);
        p.write_block(3, 3, 2, 2, &[9, 9, 9, 9]);
        assert_eq!(p.get(3, 3), 9);
        // No panic, pixels outside are dropped.
    }

    #[test]
    fn sad_matches_manual() {
        let p = Plane::from_fn(4, 4, |x, _| (x * 10) as u8);
        let other = vec![0u8, 10, 20, 30];
        assert_eq!(p.sad_block(0, 0, 4, 1, &other), 0);
        let other2 = vec![5u8, 5, 25, 25];
        assert_eq!(p.sad_block(0, 0, 4, 1, &other2), 5 + 5 + 5 + 5);
    }

    #[test]
    fn sad_interior_equals_clamped_path() {
        let p = Plane::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 251) as u8);
        let mut blk = vec![0u8; 16];
        p.copy_block_clamped(4, 4, 4, 4, &mut blk);
        assert_eq!(p.sad_block(4, 4, 4, 4, &blk), 0);
    }

    #[test]
    fn sse_zero_for_identical() {
        let p = Plane::from_fn(5, 5, |x, y| (x ^ y) as u8);
        assert_eq!(p.sse(&p.clone()), 0);
    }

    #[test]
    fn bilinear_midpoint() {
        let mut p = Plane::new(2, 1);
        p.set(0, 0, 0);
        p.set(1, 0, 100);
        assert_eq!(p.sample_bilinear(0.5, 0.0), 50);
    }

    #[test]
    fn hpel_two_tap_matches_f64_exhaustively() {
        // Every (a, b) pair of u8 values through the horizontal and
        // vertical 2-tap kernels must equal the f64 bilinear path.
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                let mut ph = Plane::new(2, 1);
                ph.set(0, 0, a as u8);
                ph.set(1, 0, b as u8);
                let mut out = [0u8];
                ph.copy_block_hpel(0, 0, 1, 0, 1, 1, &mut out);
                assert_eq!(out[0], ph.sample_bilinear(0.5, 0.0), "h {a},{b}");
                let mut pv = Plane::new(1, 2);
                pv.set(0, 0, a as u8);
                pv.set(0, 1, b as u8);
                pv.copy_block_hpel(0, 0, 0, 1, 1, 1, &mut out);
                assert_eq!(out[0], pv.sample_bilinear(0.0, 0.5), "v {a},{b}");
            }
        }
    }

    #[test]
    fn hpel_four_tap_matches_f64_over_sum_domain() {
        // The 4-tap corner only depends on the pixel sum; sweep every
        // reachable sum (0..=1020) with a generator hitting all
        // residues mod 4, plus a pseudo-random quad sweep.
        for s in 0..=1020u16 {
            let q = [
                (s / 4) as u8,
                ((s + 1) / 4) as u8,
                ((s + 2) / 4) as u8,
                s.div_ceil(4) as u8,
            ];
            assert_eq!(q.iter().map(|&v| v as u16).sum::<u16>(), s);
            let p = Plane::from_data(2, 2, q.to_vec());
            let mut out = [0u8];
            p.copy_block_hpel(0, 0, 1, 1, 1, 1, &mut out);
            assert_eq!(out[0], p.sample_bilinear(0.5, 0.5), "sum {s}");
        }
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..4096 {
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            };
            let q = [next(), next(), next(), next()];
            let p = Plane::from_data(2, 2, q.to_vec());
            let mut out = [0u8];
            p.copy_block_hpel(0, 0, 1, 1, 1, 1, &mut out);
            assert_eq!(out[0], p.sample_bilinear(0.5, 0.5), "quad {q:?}");
        }
    }

    #[test]
    fn hpel_edge_clamped_matches_f64() {
        let p = Plane::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 256) as u8);
        let mut got = vec![0u8; 16];
        let mut want = vec![0u8; 16];
        for (x0, y0) in [(-2isize, -1isize), (5, 6), (-1, 5), (7, 7)] {
            for (fx, fy) in [(1u8, 0u8), (0, 1), (1, 1)] {
                p.copy_block_hpel(x0, y0, fx, fy, 4, 4, &mut got);
                for by in 0..4 {
                    for bx in 0..4 {
                        want[by * 4 + bx] = p.sample_bilinear(
                            x0 as f64 + fx as f64 / 2.0 + bx as f64,
                            y0 as f64 + fy as f64 / 2.0 + by as f64,
                        );
                    }
                }
                assert_eq!(got, want, "at ({x0},{y0}) frac ({fx},{fy})");
            }
        }
    }

    #[test]
    fn thresholded_sad_exact_below_threshold() {
        let p = Plane::from_fn(8, 8, |x, y| (x * 8 + y) as u8);
        let mut blk = vec![0u8; 16];
        p.copy_block_clamped(2, 2, 4, 4, &mut blk);
        blk[0] = blk[0].wrapping_add(10);
        let full = p.sad_block(2, 2, 4, 4, &blk);
        let (sad, examined) = p.sad_block_thresholded(2, 2, 4, 4, &blk, u64::MAX);
        assert_eq!(sad, full);
        assert_eq!(examined, 16);
        // Same at a clamped (out-of-bounds) position.
        let full_edge = p.sad_block(-2, -2, 4, 4, &blk);
        let (sad_edge, _) = p.sad_block_thresholded(-2, -2, 4, 4, &blk, u64::MAX);
        assert_eq!(sad_edge, full_edge);
    }

    #[test]
    fn thresholded_sad_early_exits() {
        let p = Plane::from_fn(8, 8, |_, _| 200);
        let blk = vec![0u8; 64]; // SAD 200 per pixel
        let (sad, examined) = p.sad_block_thresholded(0, 0, 8, 8, &blk, 1);
        assert!(sad >= 1);
        assert_eq!(examined, 8, "one row should be enough to cross threshold 1");
        let (sad2, examined2) = p.sad_block_thresholded(0, 0, 8, 8, &blk, u64::MAX);
        assert_eq!(sad2, p.sad_block(0, 0, 8, 8, &blk));
        assert_eq!(examined2, 64);
    }

    #[test]
    fn mean_of_constant() {
        let mut p = Plane::new(3, 3);
        p.fill(42);
        assert!((p.mean() - 42.0).abs() < 1e-12);
    }
}
