//! YUV 4:2:0 frames and raw video sequences.

use crate::plane::Plane;
use crate::resolution::Resolution;

/// One 8-bit YUV 4:2:0 picture: a full-resolution luma plane and two
/// half-resolution chroma planes.
///
/// # Example
///
/// ```
/// use vcu_media::Frame;
///
/// let f = Frame::new(64, 36);
/// assert_eq!(f.y().width(), 64);
/// assert_eq!(f.u().width(), 32);
/// assert_eq!(f.raw_bytes(), 64 * 36 * 3 / 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a black frame (Y=0, chroma neutral 128).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or odd (4:2:0 chroma
    /// subsampling requires even luma dimensions).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 frames require even dimensions"
        );
        let mut u = Plane::new(width / 2, height / 2);
        let mut v = Plane::new(width / 2, height / 2);
        u.fill(128);
        v.fill(128);
        Frame {
            y: Plane::new(width, height),
            u,
            v,
        }
    }

    /// Creates a frame at a ladder resolution.
    pub fn at(res: Resolution) -> Self {
        let (w, h) = res.dims();
        Frame::new(w, h)
    }

    /// Builds a frame from three planes.
    ///
    /// # Panics
    ///
    /// Panics if the chroma planes are not exactly half the luma size.
    pub fn from_planes(y: Plane, u: Plane, v: Plane) -> Self {
        assert_eq!(u.width(), y.width() / 2, "u plane width");
        assert_eq!(u.height(), y.height() / 2, "u plane height");
        assert_eq!(v.width(), y.width() / 2, "v plane width");
        assert_eq!(v.height(), y.height() / 2, "v plane height");
        Frame { y, u, v }
    }

    /// Luma width in pixels.
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height in pixels.
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// Luma plane.
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// Cb chroma plane (half resolution).
    pub fn u(&self) -> &Plane {
        &self.u
    }

    /// Cr chroma plane (half resolution).
    pub fn v(&self) -> &Plane {
        &self.v
    }

    /// Mutable luma plane.
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Mutable Cb plane.
    pub fn u_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// Mutable Cr plane.
    pub fn v_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// Pixels in the luma plane (the paper's Mpix accounting counts
    /// luma pixels only).
    pub fn pixels(&self) -> u64 {
        (self.width() as u64) * (self.height() as u64)
    }

    /// Size of the raw frame in bytes (1.5 bytes per luma pixel for
    /// 8-bit 4:2:0) — the quantity behind the paper's "each raw
    /// 2160p frame is 11.9 MiB".
    pub fn raw_bytes(&self) -> u64 {
        self.pixels() * 3 / 2
    }
}

/// A raw decoded video: an ordered sequence of equally-sized frames
/// plus a frame rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    /// Frames in display order.
    pub frames: Vec<Frame>,
    /// Frames per second.
    pub fps: f64,
}

impl Video {
    /// Creates a video from frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, frames disagree in size, or `fps`
    /// is not finite and positive.
    pub fn new(frames: Vec<Frame>, fps: f64) -> Self {
        assert!(!frames.is_empty(), "video must have at least one frame");
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        let (w, h) = (frames[0].width(), frames[0].height());
        assert!(
            frames.iter().all(|f| f.width() == w && f.height() == h),
            "all frames must have identical dimensions"
        );
        Video { frames, fps }
    }

    /// Luma width in pixels.
    pub fn width(&self) -> usize {
        self.frames[0].width()
    }

    /// Luma height in pixels.
    pub fn height(&self) -> usize {
        self.frames[0].height()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps
    }

    /// Total luma pixels across all frames.
    pub fn total_pixels(&self) -> u64 {
        self.frames.iter().map(Frame::pixels).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chroma_is_half_size() {
        let f = Frame::new(16, 8);
        assert_eq!(f.u().width(), 8);
        assert_eq!(f.v().height(), 4);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_dims_rejected() {
        Frame::new(15, 8);
    }

    #[test]
    fn new_frame_is_black_neutral() {
        let f = Frame::new(4, 4);
        assert!(f.y().data().iter().all(|&p| p == 0));
        assert!(f.u().data().iter().all(|&p| p == 128));
    }

    #[test]
    fn raw_bytes_2160p_matches_paper() {
        let f = Frame::at(Resolution::R2160);
        let mib = f.raw_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 11.86).abs() < 0.1, "2160p raw frame {mib} MiB");
    }

    #[test]
    fn video_invariants() {
        let v = Video::new(vec![Frame::new(8, 8); 30], 30.0);
        assert!((v.duration_secs() - 1.0).abs() < 1e-12);
        assert_eq!(v.total_pixels(), 30 * 64);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn mixed_sizes_rejected() {
        Video::new(vec![Frame::new(8, 8), Frame::new(16, 8)], 30.0);
    }
}
