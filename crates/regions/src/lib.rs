//! `vcu-regions`: planet-scale multi-region simulation on top of the
//! cluster DES.
//!
//! The paper deploys VCUs across many clusters in many regions; this
//! crate scales the single-cluster DES to that shape without giving up
//! byte-identical replay:
//!
//! - [`region`]: one [`region::RegionSim`] runs N open-world cluster
//!   cells (the event queue sharded by pool/cell) and merges their job
//!   resolutions through a deterministic cross-shard merge whose order
//!   is invariant in the shard count;
//! - [`planet`]: [`planet::PlanetSim`] steps regions in lockstep
//!   epochs over phase-shifted diurnal demand, routes overflow between
//!   regions on backlog pressure, and schedules rolling
//!   firmware-upgrade waves plus correlated rack/power failure domains
//!   feeding the §4.4 blast-radius metric;
//! - [`campaign`]: the regions × fleet × traffic sweep behind
//!   `results/region_campaign.json`, including the isolated-regions
//!   counterfactual the overflow-routing CI gate compares against.

pub mod campaign;
pub mod planet;
pub mod region;

pub use campaign::{
    render_region_json, run_region_campaign, run_region_cell, slots_per_worker, RegionCampaignCell,
    RegionCampaignConfig, RegionCellSpec,
};
pub use planet::{OverflowPolicy, PlanetConfig, PlanetReport, PlanetSim};
pub use region::{region_job, RegionReport, RegionSim, RegionSpec};
