//! The multi-region ("planet") layer: phase-shifted diurnal demand,
//! epoch-stepped lockstep across regions, cross-region overflow
//! routing, rolling firmware-upgrade waves, and correlated failure
//! domains.
//!
//! Time advances in epochs. At each epoch boundary every region's
//! cells have reached the boundary, so the router reads backlog
//! pressure at a consistent cut, decides overflow routing for the
//! epoch's arrivals, injects them, and releases all cells to run the
//! epoch in parallel. All randomness comes from per-region streams
//! split out of the planet seed with [`vcu_rng::mix64`], routing is a
//! pure function of the pressure readings, and cell advancement
//! reassembles in index order — so a planet run is byte-identical for
//! every `VCU_THREADS` value.

use crate::region::{RegionReport, RegionSim, RegionSpec};
use vcu_chip::System;
use vcu_cluster::{correlated_domain_faults, system_tco, upgrade_wave_faults, FaultInjection};
use vcu_rng::{mix64, Rng};
use vcu_workloads::DiurnalCurve;

/// Cross-region overflow routing policy.
#[derive(Debug, Clone, Copy)]
pub struct OverflowPolicy {
    /// Master switch; disabled = isolated regions.
    pub enabled: bool,
    /// Backlog-per-usable-worker pressure above which a region routes
    /// part of its new arrivals away.
    pub pressure_threshold: f64,
    /// Hard cap on the fraction of an epoch's arrivals routed away.
    pub max_fraction: f64,
    /// Cross-region transfer latency added to a routed job's arrival.
    pub rtt_s: f64,
}

impl Default for OverflowPolicy {
    fn default() -> Self {
        OverflowPolicy {
            enabled: true,
            pressure_threshold: 4.0,
            max_fraction: 0.5,
            rtt_s: 0.15,
        }
    }
}

/// Planet-level configuration.
#[derive(Debug, Clone)]
pub struct PlanetConfig {
    /// Planet seed; region `r` derives everything from
    /// `mix64(seed, r)`.
    pub seed: u64,
    /// Demand window, seconds: arrivals stop here, cells then drain.
    pub horizon_s: f64,
    /// Lockstep epoch, seconds.
    pub epoch_s: f64,
    /// Diurnal period, seconds (a compressed day: one full swing per
    /// `period_s` of sim time).
    pub period_s: f64,
    /// Chunk duration of every job, seconds.
    pub chunk_s: f64,
    /// Demand multiplier applied to every region's mean rate (the
    /// traffic-growth axis of the campaign sweep).
    pub traffic_scale: f64,
    /// Physical shard count of each region's resolution merge; any
    /// value yields the same merged order.
    pub merge_shards: usize,
    /// Overflow routing policy.
    pub overflow: OverflowPolicy,
    /// Schedule rolling firmware-upgrade waves through every cell.
    pub upgrades: bool,
    /// Schedule one correlated rack/power-domain outage per region.
    pub domain_failures: bool,
    /// The regions.
    pub regions: Vec<RegionSpec>,
}

/// Outcome of one planet run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanetReport {
    /// Per-region reports, in region order.
    pub regions: Vec<RegionReport>,
    /// Fleet size across all regions.
    pub total_vcus: u64,
    /// Jobs offered across all regions.
    pub jobs: u64,
    /// Jobs completed.
    pub completed: u64,
    /// (completed − black-holed) / jobs across the planet.
    pub goodput_frac: f64,
    /// Jobs moved between regions by the overflow router.
    pub routed_jobs: u64,
    /// routed / jobs.
    pub routed_frac: f64,
    /// Job-weighted blast radius across regions.
    pub blast_radius: f64,
    /// Worst region p99 queueing wait, seconds.
    pub p99_wait_s: f64,
    /// Total delivered output, Mpix.
    pub total_output_mpix: f64,
    /// Sim time at which the last cell drained, seconds.
    pub drained_at_s: f64,
    /// Delivered Mpix/s over the drained horizon.
    pub perf_mpix_per_s: f64,
    /// 3-year fleet TCO, USD (20-VCU hosts, Table 1 row 4).
    pub tco_usd: f64,
    /// Delivered Mpix/s per TCO dollar.
    pub perf_per_tco: f64,
    /// Digest folding every region's merge digest in region order.
    pub merge_digest: u64,
}

/// VCUs per host for fleet TCO (Table 1 row 4's 20-VCU machine).
const VCUS_PER_HOST: usize = 20;

/// Drain guard: a planet that has not resolved every job within this
/// many demand-horizons after the demand stops is wedged — fail loud
/// instead of looping forever.
const DRAIN_HORIZONS: f64 = 20.0;

/// The planet simulator. Build with [`PlanetSim::new`], then
/// [`PlanetSim::run`].
#[derive(Debug)]
pub struct PlanetSim {
    cfg: PlanetConfig,
    regions: Vec<RegionSim>,
    /// Per-region arrival RNG streams (persist across epochs, so the
    /// concatenated epoch windows draw one continuous stream).
    arrival_rngs: Vec<Rng>,
    curves: Vec<DiurnalCurve>,
}

impl PlanetSim {
    /// Builds every region: cell seeds, diurnal curves, and the
    /// pre-scheduled fault plans (upgrade waves staggered per region
    /// and cell; one seeded correlated-domain outage per region) all
    /// derive from `cfg.seed`.
    pub fn new(cfg: PlanetConfig) -> Self {
        assert!(!cfg.regions.is_empty(), "a planet needs regions");
        assert!(cfg.epoch_s > 0.0 && cfg.horizon_s > 0.0);
        let mut regions = Vec::with_capacity(cfg.regions.len());
        let mut arrival_rngs = Vec::new();
        let mut curves = Vec::new();
        for (r, spec) in cfg.regions.iter().enumerate() {
            let region_seed = mix64(cfg.seed, r as u64);
            let mut fault_rng = Rng::seed_from_u64(mix64(region_seed, 0xFA));
            let faults_per_cell = (0..spec.cells)
                .map(|c| Self::cell_faults(&cfg, spec, r, c, &mut fault_rng))
                .collect();
            regions.push(RegionSim::new(
                spec.clone(),
                region_seed,
                cfg.chunk_s,
                cfg.merge_shards,
                faults_per_cell,
            ));
            arrival_rngs.push(Rng::seed_from_u64(mix64(region_seed, 0xA1)));
            curves.push(DiurnalCurve {
                mean_rate_per_s: spec.mean_rate_per_s * cfg.traffic_scale,
                amplitude: spec.amplitude,
                peak_hour: spec.peak_hour,
                period_s: cfg.period_s,
            });
        }
        PlanetSim {
            cfg,
            regions,
            arrival_rngs,
            curves,
        }
    }

    /// Fault plan for one cell: a rolling upgrade wave (one eighth of
    /// the cell at a time, staggered so no two cells of a region — and
    /// no two regions — drain simultaneously) plus, in the region's
    /// seeded victim cell, one correlated rack-domain outage.
    fn cell_faults(
        cfg: &PlanetConfig,
        spec: &RegionSpec,
        region: usize,
        cell: usize,
        fault_rng: &mut Rng,
    ) -> Vec<FaultInjection> {
        let mut faults = Vec::new();
        if cfg.upgrades {
            let wave = (spec.vcus_per_cell / 8).max(1);
            let start = cfg.horizon_s * 0.1
                + (region * spec.cells + cell) as f64 * cfg.epoch_s / spec.cells as f64;
            faults.extend(upgrade_wave_faults(
                spec.vcus_per_cell,
                wave,
                start,
                cfg.epoch_s / 4.0,
                cfg.epoch_s / 8.0,
            ));
        }
        if cfg.domain_failures {
            // One victim cell per region; the rng draws below happen
            // for every cell so the stream stays aligned.
            let victim = fault_rng.gen_range(0u64..spec.cells as u64) as usize;
            let domain = (spec.vcus_per_cell / 16).max(1);
            let outage = fault_rng.gen_range((cfg.epoch_s * 0.5)..(cfg.epoch_s * 2.0));
            let plan = correlated_domain_faults(
                spec.vcus_per_cell,
                domain,
                1,
                outage,
                cfg.horizon_s,
                fault_rng,
            );
            if victim == cell {
                faults.extend(plan);
            }
        }
        faults.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        faults
    }

    /// Runs demand epochs then drains, returning the planet report.
    pub fn run(mut self) -> PlanetReport {
        let epochs = (self.cfg.horizon_s / self.cfg.epoch_s).ceil() as usize;
        let mut routed_jobs: u64 = 0;
        for e in 0..epochs {
            let t0 = e as f64 * self.cfg.epoch_s;
            let t1 = ((e + 1) as f64 * self.cfg.epoch_s).min(self.cfg.horizon_s);
            // Pressure at the epoch cut (all cells are at t0).
            let pressures: Vec<f64> = self.regions.iter().map(RegionSim::pressure).collect();
            for (r, &p) in pressures.iter().enumerate() {
                self.regions[r].note_pressure(p);
            }
            // Per-region arrivals for this epoch, then routing.
            let arrivals: Vec<Vec<f64>> = (0..self.regions.len())
                .map(|r| self.curves[r].arrivals_in(t0, t1, &mut self.arrival_rngs[r]))
                .collect();
            for (r, mut local) in arrivals.into_iter().enumerate() {
                let overflow = self.route_fraction(r, &pressures);
                if overflow > 0.0 {
                    let target = Self::route_target(r, &pressures, &self.cfg.overflow);
                    if let Some(tgt) = target {
                        let n_route = (local.len() as f64 * overflow).floor() as usize;
                        // Hand away the tail (the latest arrivals —
                        // the ones an admission controller would see
                        // after the backlog formed), with the RTT.
                        let routed: Vec<f64> = local
                            .split_off(local.len() - n_route)
                            .into_iter()
                            .map(|t| t + self.cfg.overflow.rtt_s)
                            .collect();
                        routed_jobs += routed.len() as u64;
                        self.regions[r].note_routed_out(routed.len() as u64);
                        self.regions[tgt].inject_epoch(&routed, true);
                    }
                }
                self.regions[r].inject_epoch(&local, false);
            }
            self.advance_all(t1);
        }
        // Drain: demand is over; step epochs until every cell resolves
        // its backlog (Repair events revive upgraded/faulted workers,
        // so queued work always finishes).
        let mut t = self.cfg.horizon_s;
        let deadline = self.cfg.horizon_s * (1.0 + DRAIN_HORIZONS);
        while self.regions.iter().any(RegionSim::busy) {
            assert!(
                t < deadline,
                "planet failed to drain by {deadline}s — jobs wedged"
            );
            t += self.cfg.epoch_s;
            self.advance_all(t);
        }
        self.reduce(t, routed_jobs)
    }

    /// Fraction of region `r`'s epoch arrivals to route away, from the
    /// pressure cut: proportional to the excess over the threshold,
    /// capped by policy.
    fn route_fraction(&self, r: usize, pressures: &[f64]) -> f64 {
        let pol = &self.cfg.overflow;
        if !pol.enabled || pressures[r] <= pol.pressure_threshold {
            return 0.0;
        }
        ((pressures[r] - pol.pressure_threshold) / pressures[r]).min(pol.max_fraction)
    }

    /// Overflow destination for region `r`: the lowest-pressure region
    /// still under the threshold (ties to the lowest index); none if
    /// the whole planet is hot.
    fn route_target(r: usize, pressures: &[f64], pol: &OverflowPolicy) -> Option<usize> {
        pressures
            .iter()
            .enumerate()
            .filter(|&(i, &p)| i != r && p < pol.pressure_threshold)
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
    }

    /// Advances every region to `t`. Regions fan out across the pool;
    /// each region fans its cells out as a nested batch. Results
    /// reassemble in region order, keeping the run thread-invariant.
    fn advance_all(&mut self, t: f64) {
        let regions = std::mem::take(&mut self.regions);
        self.regions = vcu_exec::pool().run_batch(
            vcu_exec::env_threads(),
            regions
                .into_iter()
                .map(|mut r| {
                    move || {
                        r.advance_to(t);
                        r
                    }
                })
                .collect(),
        );
    }

    /// Test/diagnostic hook: per-region backlog pressures right now.
    pub fn pressures(&self) -> Vec<f64> {
        self.regions.iter().map(RegionSim::pressure).collect()
    }

    fn reduce(self, drained_at_s: f64, routed_jobs: u64) -> PlanetReport {
        let reports: Vec<RegionReport> = self.regions.into_iter().map(RegionSim::finish).collect();
        let jobs: u64 = reports.iter().map(|r| r.jobs).sum();
        let completed: u64 = reports.iter().map(|r| r.completed).sum();
        let black_holed: u64 = reports.iter().map(|r| r.black_holed).sum();
        let total_vcus: u64 = reports.iter().map(|r| r.vcus).sum();
        let total_output_mpix: f64 = reports.iter().map(|r| r.total_output_mpix).sum();
        let blast_radius = {
            let w: f64 = jobs.max(1) as f64;
            reports
                .iter()
                .map(|r| r.blast_radius * r.jobs as f64)
                .sum::<f64>()
                / w
        };
        let merge_digest = reports.iter().fold(0u64, |h, r| mix64(h, r.merge_digest));
        let hosts = (total_vcus as usize).div_ceil(VCUS_PER_HOST);
        let tco_usd = system_tco(System::VcuHost {
            vcus: VCUS_PER_HOST,
        })
        .total()
            * hosts as f64;
        let perf_mpix_per_s = total_output_mpix / drained_at_s.max(1.0);
        PlanetReport {
            total_vcus,
            jobs,
            completed,
            goodput_frac: completed.saturating_sub(black_holed) as f64 / jobs.max(1) as f64,
            routed_jobs,
            routed_frac: routed_jobs as f64 / jobs.max(1) as f64,
            blast_radius,
            p99_wait_s: reports.iter().map(|r| r.p99_wait_s).fold(0.0, f64::max),
            total_output_mpix,
            drained_at_s,
            perf_mpix_per_s,
            tco_usd,
            perf_per_tco: perf_mpix_per_s / tco_usd.max(1.0),
            merge_digest,
            regions: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, overflow: bool, merge_shards: usize) -> PlanetConfig {
        PlanetConfig {
            seed,
            horizon_s: 60.0,
            epoch_s: 15.0,
            period_s: 60.0,
            chunk_s: 10.0,
            traffic_scale: 1.0,
            merge_shards,
            overflow: OverflowPolicy {
                enabled: overflow,
                pressure_threshold: 1.0,
                ..OverflowPolicy::default()
            },
            upgrades: true,
            domain_failures: true,
            regions: (0..2)
                .map(|r| RegionSpec {
                    name: format!("r{r}"),
                    cells: 2,
                    vcus_per_cell: 8,
                    peak_hour: if r == 0 { 6.0 } else { 18.0 },
                    // Peak ≈ 1.9× mean: well past a 16-VCU cell pair's
                    // service rate, so the peaking region must overflow.
                    mean_rate_per_s: 8.0,
                    amplitude: 0.9,
                })
                .collect(),
        }
    }

    #[test]
    fn planet_accounts_and_is_deterministic() {
        let a = PlanetSim::new(tiny(5, true, 4)).run();
        let b = PlanetSim::new(tiny(5, true, 4)).run();
        assert_eq!(a, b, "same seed, same planet");
        assert!(a.jobs > 0);
        assert_eq!(
            a.completed + a.regions.iter().map(|r| r.failed).sum::<u64>(),
            a.jobs,
            "every offered job resolves"
        );
        assert_eq!(
            a.regions.iter().map(|r| r.merged_resolutions).sum::<u64>(),
            a.jobs,
            "every resolution crosses the merge"
        );
        assert!(a.total_output_mpix > 0.0);
        assert!(a.tco_usd > 0.0);
        // The pre-scheduled upgrade waves + domain outage repair.
        assert!(a.regions.iter().all(|r| r.repairs > 0));
    }

    #[test]
    fn seed_steers_the_planet() {
        let a = PlanetSim::new(tiny(5, true, 4)).run();
        let b = PlanetSim::new(tiny(6, true, 4)).run();
        assert_ne!(
            a.merge_digest, b.merge_digest,
            "seed must move the timeline"
        );
    }

    #[test]
    fn merge_shard_count_never_changes_the_outcome() {
        // The tentpole invariant at planet scope: the physical shard
        // count of the cross-shard merge is unobservable.
        let one = PlanetSim::new(tiny(9, true, 1)).run();
        for shards in [2, 4, 7] {
            let k = PlanetSim::new(tiny(9, true, shards)).run();
            assert_eq!(one, k, "merge_shards={shards} changed the planet");
        }
    }

    #[test]
    fn overflow_routes_under_phase_shifted_peaks() {
        let routed = PlanetSim::new(tiny(11, true, 4)).run();
        let isolated = PlanetSim::new(tiny(11, false, 4)).run();
        assert!(routed.routed_jobs > 0, "anti-phased peaks must overflow");
        assert_eq!(isolated.routed_jobs, 0);
        assert_eq!(routed.jobs, isolated.jobs, "same demand either way");
        assert!(
            routed.goodput_frac >= isolated.goodput_frac,
            "routing must not lose goodput: {} vs {}",
            routed.goodput_frac,
            isolated.goodput_frac
        );
    }
}
