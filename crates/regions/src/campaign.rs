//! The region campaign: a sweep of [`PlanetSim`] runs over regions ×
//! fleet size × traffic growth, rendered as byte-stable JSON.
//!
//! Every campaign cell runs its planet **twice** from the same seed —
//! overflow routing enabled, then disabled — so the artifact carries
//! the routing counterfactual the CI gate checks: overflow must never
//! reduce total goodput versus isolated regions. Each planet derives
//! everything from `mix64(campaign_seed, cell_idx)` and all
//! parallelism reassembles in index order, so
//! `results/region_campaign.json` is byte-identical for every
//! `VCU_THREADS` value.

use crate::planet::{OverflowPolicy, PlanetConfig, PlanetReport, PlanetSim};
use crate::region::{region_job, RegionSpec};
use vcu_chip::{ResourceDemand, VcuModel};
use vcu_rng::mix64;

/// One cell of the sweep: a planet shape plus a traffic multiplier.
#[derive(Debug, Clone, Copy)]
pub struct RegionCellSpec {
    /// Regions on the planet.
    pub regions: usize,
    /// Cluster cells (event-queue shards) per region.
    pub cells_per_region: usize,
    /// VCUs per cell.
    pub vcus_per_cell: usize,
    /// Demand multiplier (1.0 = the baseline 75%-mean-utilization
    /// offered load).
    pub traffic_scale: f64,
}

impl RegionCellSpec {
    /// Total VCUs on the planet.
    pub fn total_vcus(&self) -> usize {
        self.regions * self.cells_per_region * self.vcus_per_cell
    }
}

/// Campaign configuration: a seed, the shared planet timing, and the
/// cell list.
#[derive(Debug, Clone)]
pub struct RegionCampaignConfig {
    /// Campaign seed; cell `i` runs with `mix64(seed, i)`.
    pub seed: u64,
    /// Demand window per planet, seconds (also the compressed diurnal
    /// period: one full day of swing per run).
    pub horizon_s: f64,
    /// Lockstep epoch, seconds.
    pub epoch_s: f64,
    /// Chunk duration, seconds.
    pub chunk_s: f64,
    /// Mean offered load as a fraction of fleet capacity.
    pub util: f64,
    /// Diurnal swing in `[0, 1]`.
    pub amplitude: f64,
    /// Cells, run in order.
    pub cells: Vec<RegionCellSpec>,
}

/// Concurrent region-campaign chunks one healthy worker fits (the
/// binding scheduler dimension) — sizes the offered load.
pub fn slots_per_worker(chunk_s: f64) -> u64 {
    let d = VcuModel::new().job_demand(&region_job(chunk_s));
    let cap = ResourceDemand::vcu_capacity();
    [
        cap.millidecode / d.millidecode.max(1),
        cap.milliencode / d.milliencode.max(1),
        cap.dram_mib / d.dram_mib.max(1),
        cap.host_mcpu / d.host_mcpu.max(1),
    ]
    .into_iter()
    .min()
    .unwrap()
    .max(1) as u64
}

impl RegionCampaignConfig {
    /// The full sweep behind `results/region_campaign.json`: regions ×
    /// fleet size × traffic growth, topping out at a 102,400-VCU
    /// four-region planet (the ≥100k end-to-end cell). Long chunks
    /// keep the job count tractable at that scale.
    pub fn full(seed: u64) -> Self {
        RegionCampaignConfig {
            seed,
            horizon_s: 600.0,
            epoch_s: 60.0,
            chunk_s: 240.0,
            util: 0.75,
            amplitude: 0.85,
            cells: vec![
                RegionCellSpec {
                    regions: 1,
                    cells_per_region: 4,
                    vcus_per_cell: 400,
                    traffic_scale: 1.0,
                },
                RegionCellSpec {
                    regions: 2,
                    cells_per_region: 8,
                    vcus_per_cell: 400,
                    traffic_scale: 1.0,
                },
                RegionCellSpec {
                    regions: 4,
                    cells_per_region: 8,
                    vcus_per_cell: 800,
                    traffic_scale: 1.0,
                },
                RegionCellSpec {
                    regions: 4,
                    cells_per_region: 8,
                    vcus_per_cell: 800,
                    traffic_scale: 1.3,
                },
                RegionCellSpec {
                    regions: 4,
                    cells_per_region: 16,
                    vcus_per_cell: 1_600,
                    traffic_scale: 1.0,
                },
            ],
        }
    }

    /// A seconds-scale sweep with the same shape (multi-region, one
    /// traffic-growth cell) for CI smoke and tests.
    pub fn smoke(seed: u64) -> Self {
        RegionCampaignConfig {
            seed,
            horizon_s: 120.0,
            epoch_s: 30.0,
            chunk_s: 20.0,
            util: 0.75,
            amplitude: 0.85,
            cells: vec![
                RegionCellSpec {
                    regions: 2,
                    cells_per_region: 2,
                    vcus_per_cell: 16,
                    traffic_scale: 1.0,
                },
                RegionCellSpec {
                    regions: 2,
                    cells_per_region: 2,
                    vcus_per_cell: 16,
                    traffic_scale: 1.3,
                },
            ],
        }
    }

    /// Planet configuration for one campaign cell. Region peaks are
    /// spread evenly around the (compressed) clock, so the planet's
    /// total demand is flatter than any one region's — the premise of
    /// overflow routing.
    pub fn planet_config(
        &self,
        spec: &RegionCellSpec,
        cell: u64,
        overflow_enabled: bool,
    ) -> PlanetConfig {
        let region_vcus = spec.cells_per_region * spec.vcus_per_cell;
        let mean_rate_per_s =
            self.util * region_vcus as f64 * slots_per_worker(self.chunk_s) as f64 / self.chunk_s;
        PlanetConfig {
            seed: mix64(self.seed, cell),
            horizon_s: self.horizon_s,
            epoch_s: self.epoch_s,
            period_s: self.horizon_s,
            chunk_s: self.chunk_s,
            traffic_scale: spec.traffic_scale,
            merge_shards: 4,
            // At fleet scale a diurnal peak plateaus well under one
            // backlog job per worker (queueing wait ~ a fraction of a
            // chunk), so the campaign arms the router at 0.2 rather
            // than the conservative library default: anti-phased peaks
            // trip it, the off-peak trough stays below it.
            overflow: OverflowPolicy {
                enabled: overflow_enabled,
                pressure_threshold: 0.2,
                ..OverflowPolicy::default()
            },
            upgrades: true,
            domain_failures: true,
            regions: (0..spec.regions)
                .map(|r| RegionSpec {
                    name: format!("region{r}"),
                    cells: spec.cells_per_region,
                    vcus_per_cell: spec.vcus_per_cell,
                    peak_hour: (20.0 + 24.0 * r as f64 / spec.regions as f64) % 24.0,
                    mean_rate_per_s,
                    amplitude: self.amplitude,
                })
                .collect(),
        }
    }
}

/// Reduced metrics of one campaign cell: the overflow-enabled planet
/// plus the isolated counterfactual from the same seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCampaignCell {
    /// Regions on the planet.
    pub regions: u64,
    /// Cells per region.
    pub cells_per_region: u64,
    /// VCUs per cell.
    pub vcus_per_cell: u64,
    /// Fleet size.
    pub total_vcus: u64,
    /// Traffic multiplier.
    pub traffic_scale: f64,
    /// Jobs offered (identical in both runs by construction).
    pub jobs: u64,
    /// Jobs moved cross-region by the overflow router.
    pub routed_jobs: u64,
    /// routed / jobs.
    pub routed_frac: f64,
    /// Planet goodput with overflow routing.
    pub goodput_overflow: f64,
    /// Planet goodput with isolated regions.
    pub goodput_isolated: f64,
    /// Worst-region p99 queueing wait with overflow routing, seconds.
    pub p99_wait_overflow_s: f64,
    /// Worst-region p99 queueing wait isolated, seconds.
    pub p99_wait_isolated_s: f64,
    /// Job-weighted §4.4 blast radius (overflow run).
    pub blast_radius: f64,
    /// Delivered Mpix/s (overflow run).
    pub perf_mpix_per_s: f64,
    /// 3-year fleet TCO, USD.
    pub tco_usd: f64,
    /// Delivered Mpix/s per TCO dollar — the frontier axis.
    pub perf_per_tco: f64,
    /// Cross-shard merge digest of the overflow run.
    pub merge_digest: u64,
}

/// Runs one campaign cell: the same planet seed with overflow routing
/// on, then off.
pub fn run_region_cell(
    cfg: &RegionCampaignConfig,
    spec: &RegionCellSpec,
    cell: u64,
) -> RegionCampaignCell {
    let overflow: PlanetReport = PlanetSim::new(cfg.planet_config(spec, cell, true)).run();
    let isolated: PlanetReport = PlanetSim::new(cfg.planet_config(spec, cell, false)).run();
    assert_eq!(
        overflow.jobs, isolated.jobs,
        "both runs draw the same arrival streams"
    );
    RegionCampaignCell {
        regions: spec.regions as u64,
        cells_per_region: spec.cells_per_region as u64,
        vcus_per_cell: spec.vcus_per_cell as u64,
        total_vcus: spec.total_vcus() as u64,
        traffic_scale: spec.traffic_scale,
        jobs: overflow.jobs,
        routed_jobs: overflow.routed_jobs,
        routed_frac: overflow.routed_frac,
        goodput_overflow: overflow.goodput_frac,
        goodput_isolated: isolated.goodput_frac,
        p99_wait_overflow_s: overflow.p99_wait_s,
        p99_wait_isolated_s: isolated.p99_wait_s,
        blast_radius: overflow.blast_radius,
        perf_mpix_per_s: overflow.perf_mpix_per_s,
        tco_usd: overflow.tco_usd,
        perf_per_tco: overflow.perf_per_tco,
        merge_digest: overflow.merge_digest,
    }
}

/// Runs the sweep. Cells run in order — each planet already saturates
/// the pool with its own cell shards, so the outer loop stays
/// sequential (and memory stays bounded at one planet at a time).
pub fn run_region_campaign(cfg: &RegionCampaignConfig) -> Vec<RegionCampaignCell> {
    cfg.cells
        .iter()
        .enumerate()
        .map(|(i, spec)| run_region_cell(cfg, spec, i as u64))
        .collect()
}

/// Fixed-precision float for byte-stable JSON ({:.6} is lossless at
/// the magnitudes involved and avoids shortest-repr jitter).
fn f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Renders the sweep as deterministic JSON: stable key order, one cell
/// per line. Two same-seed runs are byte-identical.
pub fn render_region_json(cfg: &RegionCampaignConfig, cells: &[RegionCampaignCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"campaign\": {{\"seed\": {}, \"horizon_s\": {}, \"epoch_s\": {}, \
         \"chunk_s\": {}, \"util\": {}, \"amplitude\": {}, \"cells\": {}}},\n",
        cfg.seed,
        f(cfg.horizon_s),
        f(cfg.epoch_s),
        f(cfg.chunk_s),
        f(cfg.util),
        f(cfg.amplitude),
        cells.len()
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regions\": {}, \"cells_per_region\": {}, \"vcus_per_cell\": {}, \
             \"total_vcus\": {}, \"traffic_scale\": {}, \"jobs\": {}, \"routed_jobs\": {}, \
             \"routed_frac\": {}, \"goodput_overflow\": {}, \"goodput_isolated\": {}, \
             \"p99_wait_overflow_s\": {}, \"p99_wait_isolated_s\": {}, \"blast_radius\": {}, \
             \"perf_mpix_per_s\": {}, \"tco_usd\": {}, \"perf_per_tco\": {}, \
             \"merge_digest\": {}}}{}\n",
            c.regions,
            c.cells_per_region,
            c.vcus_per_cell,
            c.total_vcus,
            f(c.traffic_scale),
            c.jobs,
            c.routed_jobs,
            f(c.routed_frac),
            f(c.goodput_overflow),
            f(c.goodput_isolated),
            f(c.p99_wait_overflow_s),
            f(c.p99_wait_isolated_s),
            f(c.blast_radius),
            f(c.perf_mpix_per_s),
            f(c.tco_usd),
            f(c.perf_per_tco),
            c.merge_digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RegionCampaignConfig {
        RegionCampaignConfig {
            seed: 13,
            horizon_s: 60.0,
            epoch_s: 15.0,
            chunk_s: 10.0,
            util: 0.8,
            amplitude: 0.9,
            cells: vec![
                RegionCellSpec {
                    regions: 2,
                    cells_per_region: 2,
                    vcus_per_cell: 8,
                    traffic_scale: 1.0,
                },
                RegionCellSpec {
                    regions: 2,
                    cells_per_region: 2,
                    vcus_per_cell: 8,
                    traffic_scale: 1.3,
                },
            ],
        }
    }

    #[test]
    fn campaign_is_byte_deterministic() {
        let cfg = tiny();
        let a = render_region_json(&cfg, &run_region_campaign(&cfg));
        let b = render_region_json(&cfg, &run_region_campaign(&cfg));
        assert_eq!(a, b, "same-seed campaigns must be byte-identical");
        assert!(a.contains("\"goodput_overflow\""));
    }

    #[test]
    fn seed_steers_the_campaign() {
        let a = run_region_campaign(&tiny());
        let b = run_region_campaign(&RegionCampaignConfig { seed: 14, ..tiny() });
        assert_ne!(a, b, "a different seed must move some metric");
    }

    #[test]
    fn overflow_never_reduces_goodput() {
        for c in run_region_campaign(&tiny()) {
            assert!(
                c.goodput_overflow >= c.goodput_isolated,
                "cell {}x{}x{} t={}: overflow {} < isolated {}",
                c.regions,
                c.cells_per_region,
                c.vcus_per_cell,
                c.traffic_scale,
                c.goodput_overflow,
                c.goodput_isolated
            );
            assert!(c.jobs > 0);
            assert!(c.perf_per_tco > 0.0);
        }
    }

    #[test]
    fn traffic_growth_raises_offered_load() {
        let cells = run_region_campaign(&tiny());
        assert!(
            cells[1].jobs > cells[0].jobs,
            "1.3x traffic must offer more jobs: {} vs {}",
            cells[1].jobs,
            cells[0].jobs
        );
    }
}
