//! One region: N open-world cluster-cell shards behind a deterministic
//! cross-shard merge.
//!
//! A region's fleet is sharded into cells (one `ClusterSim` each — the
//! pool/cell sharding of the event queue: each cell owns its own DES
//! heap instead of one planet-wide heap). Cells advance independently
//! — in parallel across the `vcu-exec` pool — and their job
//! resolutions are merged back into one region timeline through a
//! [`ShardedEventQueue`] keyed by cell index. The merge uses the same
//! tie-breaking discipline as the serve/cluster lockstep merge:
//! global `(time, seq)` order, seq assigned in cell-index push order.
//! Because partitioning a total order never changes its minimum, the
//! merged timeline is invariant in the number of merge shards — the
//! property the planet-scale determinism tests pin.

use vcu_chip::TranscodeJob;
use vcu_cluster::{
    cell_cluster_config, ClusterReport, ClusterSim, FaultInjection, JobResolution, JobSpec,
    Priority, ShardedEventQueue,
};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_rng::mix64;

/// Static description of one region.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name (diagnostics and JSON only).
    pub name: String,
    /// Cluster cells (event-queue shards) in the region.
    pub cells: usize,
    /// Fleet size per cell.
    pub vcus_per_cell: usize,
    /// Hour of peak demand on the sim clock, `[0, 24)` — regions in
    /// different timezones peak at different sim hours.
    pub peak_hour: f64,
    /// Mean offered load over a full diurnal period, jobs/second
    /// (before the planet-level traffic scale).
    pub mean_rate_per_s: f64,
    /// Diurnal swing in `[0, 1]`.
    pub amplitude: f64,
}

impl RegionSpec {
    /// Total VCUs in the region.
    pub fn vcus(&self) -> usize {
        self.cells * self.vcus_per_cell
    }
}

/// The uniform planet-campaign chunk: 1080p30 VP9 MOT like the fault
/// campaign, but `chunk_s` seconds long — region campaigns use long
/// chunks so a 100k-VCU planet stays at ~1M jobs instead of ~50M.
pub fn region_job(chunk_s: f64) -> TranscodeJob {
    TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, chunk_s)
}

/// Aggregated outcome of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Total VCUs.
    pub vcus: u64,
    /// Jobs injected into this region's cells (including overflow
    /// routed in from other regions).
    pub jobs: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs permanently failed (shed and stranded included).
    pub failed: u64,
    /// Batch jobs shed by the degradation ladder.
    pub shed: u64,
    /// Jobs failed with no usable worker left.
    pub stranded: u64,
    /// Corrupted chunks that shipped undetected.
    pub black_holed: u64,
    /// (completed − black-holed) / jobs.
    pub goodput_frac: f64,
    /// Job-weighted mean of the cells' §4.4 blast radii (distinct
    /// VCUs per video).
    pub blast_radius: f64,
    /// Completion-weighted mean queueing wait, seconds.
    pub mean_wait_s: f64,
    /// Worst cell's p99 queueing wait, seconds.
    pub p99_wait_s: f64,
    /// Watchdog deadlines fired.
    pub watchdog_fired: u64,
    /// Field repairs applied (upgrade waves + domain outages).
    pub repairs: u64,
    /// Jobs this region handed to other regions (set by the planet).
    pub routed_out: u64,
    /// Jobs this region absorbed from other regions.
    pub routed_in: u64,
    /// Highest backlog-per-usable-worker pressure observed at any
    /// epoch boundary.
    pub peak_pressure: f64,
    /// Total delivered output, Mpix.
    pub total_output_mpix: f64,
    /// Resolutions that crossed the merge (== completed + failed).
    pub merged_resolutions: u64,
    /// Order-sensitive digest of the merged resolution timeline:
    /// identical iff the merged event order is identical.
    pub merge_digest: u64,
}

/// One region at runtime: cell shards plus the cross-shard merge.
#[derive(Debug)]
pub struct RegionSim {
    spec: RegionSpec,
    chunk_s: f64,
    cells: Vec<ClusterSim>,
    /// Cross-shard merge of cell resolutions, keyed by cell index.
    merge: ShardedEventQueue<(usize, JobResolution)>,
    merge_digest: u64,
    merged: u64,
    injected: u64,
    routed_in: u64,
    routed_out: u64,
    peak_pressure: f64,
}

impl RegionSim {
    /// Builds the region: cell `i` is an open-world [`ClusterSim`]
    /// seeded `mix64(seed, i)` under the fault-campaign cluster
    /// policies, with `faults_per_cell[i]` pre-scheduled (upgrade
    /// waves, domain outages). `merge_shards` sets the physical shard
    /// count of the resolution merge — any value produces the same
    /// merged order.
    pub fn new(
        spec: RegionSpec,
        seed: u64,
        chunk_s: f64,
        merge_shards: usize,
        mut faults_per_cell: Vec<Vec<FaultInjection>>,
    ) -> Self {
        assert!(spec.cells > 0, "a region needs at least one cell");
        assert!(spec.vcus_per_cell > 0, "a cell needs at least one VCU");
        faults_per_cell.resize(spec.cells, Vec::new());
        let cells = (0..spec.cells)
            .map(|i| {
                let cell_seed = mix64(seed, i as u64);
                ClusterSim::new(
                    cell_cluster_config(spec.vcus_per_cell, cell_seed),
                    Vec::new(),
                    std::mem::take(&mut faults_per_cell[i]),
                )
                .open_world()
            })
            .collect();
        RegionSim {
            spec,
            chunk_s,
            cells,
            merge: ShardedEventQueue::new(merge_shards),
            merge_digest: 0x9E37_79B9_7F4A_7C15,
            merged: 0,
            injected: 0,
            routed_in: 0,
            routed_out: 0,
            peak_pressure: 0.0,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &RegionSpec {
        &self.spec
    }

    /// Jobs injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Backlog-per-usable-worker pressure across the region — the
    /// admission signal the planet's overflow router reads at each
    /// epoch boundary.
    pub fn pressure(&self) -> f64 {
        let backlog: usize = self.cells.iter().map(ClusterSim::backlog_jobs).sum();
        let usable: usize = self.cells.iter().map(ClusterSim::usable_worker_count).sum();
        backlog as f64 / usable.max(1) as f64
    }

    /// Records an epoch-boundary pressure reading into the peak.
    pub fn note_pressure(&mut self, p: f64) {
        if p > self.peak_pressure {
            self.peak_pressure = p;
        }
    }

    /// Injects one epoch of arrivals (sorted, strictly after every
    /// cell's current clock). Jobs round-robin across cells on a
    /// global counter — the deterministic pool/cell sharding — with
    /// the fault-campaign priority mix (1 Critical : 2 Normal :
    /// 1 Batch) and four chunks per video. `routed` marks jobs
    /// absorbed from another region.
    pub fn inject_epoch(&mut self, arrivals: &[f64], routed: bool) {
        for &arrival_s in arrivals {
            let i = self.injected;
            let cell = (i % self.cells.len() as u64) as usize;
            self.cells[cell].inject_job(JobSpec {
                arrival_s,
                job: region_job(self.chunk_s),
                priority: match i % 4 {
                    0 => Priority::Critical,
                    3 => Priority::Batch,
                    _ => Priority::Normal,
                },
                video_id: i / 4,
            });
            self.injected += 1;
        }
        if routed {
            self.routed_in += arrivals.len() as u64;
        }
    }

    /// Records jobs handed away by the overflow router.
    pub fn note_routed_out(&mut self, n: u64) {
        self.routed_out += n;
    }

    /// Advances every cell to sim time `t` — in parallel across the
    /// work-stealing pool (results reassemble in cell-index order, so
    /// the outcome is `VCU_THREADS`-invariant) — then merges the
    /// resolutions that surfaced into the region timeline.
    pub fn advance_to(&mut self, t: f64) {
        let cells = std::mem::take(&mut self.cells);
        self.cells = vcu_exec::pool().run_batch(
            vcu_exec::env_threads(),
            cells
                .into_iter()
                .map(|mut c| {
                    move || {
                        c.run_until(t);
                        c
                    }
                })
                .collect(),
        );
        self.merge_resolutions();
    }

    /// Feeds each cell's drained resolutions through the sharded
    /// merge. Push order is (cell index, within-cell resolution
    /// order); pop order is global `(time, seq)` — the cross-shard
    /// merge whose order the digest pins.
    fn merge_resolutions(&mut self) {
        for cell in 0..self.cells.len() {
            for r in self.cells[cell].drain_resolutions() {
                self.merge.schedule(cell, r.time_s, (cell, r));
            }
        }
        while let Some((_, ev)) = self.merge.pop() {
            let (cell, r) = ev.event;
            self.merged += 1;
            self.merge_digest = mix64(
                self.merge_digest,
                ev.time.to_bits()
                    ^ (r.job as u64).rotate_left(17)
                    ^ ((cell as u64) << 48)
                    ^ r.completed as u64,
            );
        }
    }

    /// True while any injected job is unresolved.
    pub fn busy(&self) -> bool {
        self.cells.iter().any(|c| c.unresolved_jobs() > 0)
    }

    /// Finishes every cell and reduces the region. Call once the
    /// planet's drain loop reports no cell busy.
    pub fn finish(mut self) -> RegionReport {
        self.merge_resolutions();
        let reports: Vec<ClusterReport> = self.cells.drain(..).map(ClusterSim::finish).collect();
        let sum = |f: fn(&ClusterReport) -> u64| reports.iter().map(f).sum::<u64>();
        let completed = sum(|r| r.completed);
        let failed = sum(|r| r.failed);
        let black_holed = sum(|r| r.escaped_corruptions);
        let jobs = self.injected;
        let weighted = |num: &dyn Fn(&ClusterReport) -> f64,
                        den: &dyn Fn(&ClusterReport) -> f64| {
            let d: f64 = reports.iter().map(den).sum();
            if d > 0.0 {
                reports.iter().map(|r| num(r) * den(r)).sum::<f64>() / d
            } else {
                0.0
            }
        };
        RegionReport {
            name: self.spec.name.clone(),
            vcus: self.spec.vcus() as u64,
            jobs,
            completed,
            failed,
            shed: sum(|r| r.shed),
            stranded: sum(|r| r.stranded),
            black_holed,
            goodput_frac: completed.saturating_sub(black_holed) as f64 / jobs.max(1) as f64,
            blast_radius: weighted(&|r| r.mean_vcus_per_video, &|r| {
                (r.completed + r.failed) as f64
            }),
            mean_wait_s: weighted(&|r| r.mean_wait_s, &|r| r.completed as f64),
            p99_wait_s: reports.iter().map(|r| r.p99_wait_s).fold(0.0, f64::max),
            watchdog_fired: sum(|r| r.watchdog_fired),
            repairs: sum(|r| r.repairs),
            routed_out: self.routed_out,
            routed_in: self.routed_in,
            peak_pressure: self.peak_pressure,
            total_output_mpix: reports.iter().map(|r| r.total_output_mpix).sum(),
            merged_resolutions: self.merged,
            merge_digest: self.merge_digest,
        }
    }
}
