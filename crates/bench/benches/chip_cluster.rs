//! Microbenchmarks for the chip and cluster models: pipeline
//! simulation, reference store, scheduler placement and full cluster
//! runs — the simulation costs behind every fleet-scale experiment.
//!
//! Plain wall-clock timing (median-of-K; see `vcu_bench::timing`),
//! machine-readable output in `results/bench_chip_cluster.json`. Run:
//! `cargo bench -p vcu-bench --bench chip_cluster --offline`

use vcu_bench::timing::Harness;
use vcu_chip::encoder_core::PipelineSim;
use vcu_chip::refstore::{simulate_frame_search, RefStore};
use vcu_chip::{ResourceDemand, TranscodeJob};
use vcu_cluster::des::EventQueue;
use vcu_cluster::{ClusterConfig, ClusterSim, JobSpec, Priority, Scheduler, SchedulerKind};
use vcu_codec::Profile;
use vcu_media::Resolution;
use vcu_rng::Rng;

fn bench_pipeline(h: &mut Harness) {
    h.bench("chip/pipeline_2k_blocks", || {
        PipelineSim::new(4, 0.5).relative_throughput(2000)
    });
}

fn bench_refstore(h: &mut Harness) {
    h.bench("chip/refstore_720p_frame", || {
        let mut s = RefStore::default();
        simulate_frame_search(&mut s, 1280, 720, 512, 64, 64);
        s.dram_bytes_read
    });
}

fn bench_scheduler(h: &mut Harness) {
    let demand = ResourceDemand {
        millidecode: 60,
        milliencode: 1200,
        dram_mib: 180,
        host_mcpu: 20,
    };
    h.bench_elements("cluster/place_release_1k", Some(1000), || {
        let mut s = Scheduler::new(SchedulerKind::MultiDim, 64, 4);
        let mut placed = Vec::new();
        for i in 0..1000 {
            if let Some(w) = s.place(demand, i % 4) {
                placed.push(w);
            }
            if i % 3 == 0 {
                if let Some(w) = placed.pop() {
                    s.release(w, demand);
                }
            }
        }
        s.encode_utilization()
    });
}

fn bench_des(h: &mut Harness) {
    // Deterministic pseudo-random schedule times via the vendored RNG.
    let mut rng = Rng::seed_from_u64(0xDE5);
    let times: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..100_000.0)).collect();
    h.bench_elements("cluster/event_queue_10k", Some(10_000), || {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i as u32);
        }
        let mut acc = 0u64;
        while let Some(e) = q.pop() {
            acc += e.event as u64;
        }
        acc
    });
}

fn bench_cluster_sim(h: &mut Harness) {
    let jobs: Vec<JobSpec> = (0..300)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.1,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        })
        .collect();
    h.bench_elements("cluster/sim_300_jobs_8_vcus", Some(300), || {
        let cfg = ClusterConfig {
            vcus: 8,
            ..ClusterConfig::default()
        };
        ClusterSim::new(cfg, jobs.clone(), vec![]).run().completed
    });
}

fn main() {
    let mut h = Harness::new();
    bench_pipeline(&mut h);
    bench_refstore(&mut h);
    bench_scheduler(&mut h);
    bench_des(&mut h);
    bench_cluster_sim(&mut h);
    h.write_json(&vcu_bench::timing::results_path("bench_chip_cluster.json"))
        .expect("write results/bench_chip_cluster.json");
}
