//! Criterion benchmarks for the chip and cluster models: pipeline
//! simulation, reference store, scheduler placement and full cluster
//! runs — the simulation costs behind every fleet-scale experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use vcu_chip::encoder_core::PipelineSim;
use vcu_chip::refstore::{simulate_frame_search, RefStore};
use vcu_chip::{ResourceDemand, TranscodeJob};
use vcu_cluster::des::EventQueue;
use vcu_cluster::{
    ClusterConfig, ClusterSim, JobSpec, Priority, Scheduler, SchedulerKind,
};
use vcu_codec::Profile;
use vcu_media::Resolution;

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("chip/pipeline_2k_blocks", |b| {
        b.iter(|| PipelineSim::new(4, 0.5).relative_throughput(2000))
    });
}

fn bench_refstore(c: &mut Criterion) {
    c.bench_function("chip/refstore_720p_frame", |b| {
        b.iter(|| {
            let mut s = RefStore::default();
            simulate_frame_search(&mut s, 1280, 720, 512, 64, 64);
            s.dram_bytes_read
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let demand = ResourceDemand {
        millidecode: 60,
        milliencode: 1200,
        dram_mib: 180,
        host_mcpu: 20,
    };
    c.bench_function("cluster/place_release_1k", |b| {
        b.iter(|| {
            let mut s = Scheduler::new(SchedulerKind::MultiDim, 64, 4);
            let mut placed = Vec::new();
            for i in 0..1000 {
                if let Some(w) = s.place(demand, i % 4) {
                    placed.push(w);
                }
                if i % 3 == 0 {
                    if let Some(w) = placed.pop() {
                        s.release(w, demand);
                    }
                }
            }
            s.encode_utilization()
        })
    });
}

fn bench_des(c: &mut Criterion) {
    c.bench_function("cluster/event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule(((i * 2_654_435_761) % 100_000) as f64, i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc += e.event as u64;
            }
            acc
        })
    });
}

fn bench_cluster_sim(c: &mut Criterion) {
    let jobs: Vec<JobSpec> = (0..300)
        .map(|i| JobSpec {
            arrival_s: i as f64 * 0.1,
            job: TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
            priority: Priority::Normal,
            video_id: 0,
        })
        .collect();
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("sim_300_jobs_8_vcus", |b| {
        b.iter(|| {
            let cfg = ClusterConfig {
                vcus: 8,
                ..ClusterConfig::default()
            };
            ClusterSim::new(cfg, jobs.clone(), vec![]).run().completed
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_refstore,
    bench_scheduler,
    bench_des,
    bench_cluster_sim
);
criterion_main!(benches);
