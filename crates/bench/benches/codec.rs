//! Microbenchmarks for the codec substrate: the kernels the VCU
//! pipeline model prices (transform, entropy, search, filter) plus
//! whole encode/decode throughput per profile and toolset.
//!
//! Plain wall-clock timing (median-of-K; see `vcu_bench::timing`),
//! machine-readable output in `results/bench_codec.json`. Run:
//! `cargo bench -p vcu-bench --bench codec --offline`

use vcu_bench::timing::{host_cores, results_path, smoke, Harness};
use vcu_codec::entropy::{AdaptiveModel, BoolDecoder, BoolEncoder};
use vcu_codec::kernels;
use vcu_codec::motion::{satd, search, SearchParams};
use vcu_codec::stats::CodingStats;
use vcu_codec::tempfilter::temporal_filter;
use vcu_codec::transform::{forward, inverse};
use vcu_codec::types::MotionVector;
use vcu_codec::{decode, encode, encode_parallel, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_codec::{encode_batch, Encoded};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Plane, Resolution, Video};

fn bench_transform(h: &mut Harness) {
    for &n in &[8usize, 16, 32] {
        let residual: Vec<i16> = (0..n * n).map(|i| ((i * 37) % 255) as i16 - 128).collect();
        let mut coeffs = vec![0.0; n * n];
        let mut back = vec![0i16; n * n];
        h.bench_elements(
            &format!("transform/fwd_inv/{n}"),
            Some((n * n) as u64),
            || {
                forward(&residual, n, &mut coeffs);
                inverse(&coeffs, n, &mut back);
            },
        );
    }
}

fn bench_entropy(h: &mut Harness) {
    let bits: Vec<bool> = (0..8192).map(|i| i % 37 < 7).collect();
    h.bench_elements("entropy/encode_8k_bits", Some(bits.len() as u64), || {
        let mut enc = BoolEncoder::new();
        let mut m = AdaptiveModel::new(4);
        for (i, &bit) in bits.iter().enumerate() {
            m.encode(&mut enc, i % 4, bit);
        }
        enc.finish()
    });
    let bytes = {
        let mut enc = BoolEncoder::new();
        let mut m = AdaptiveModel::new(4);
        for (i, &bit) in bits.iter().enumerate() {
            m.encode(&mut enc, i % 4, bit);
        }
        enc.finish()
    };
    h.bench_elements("entropy/decode_8k_bits", Some(bits.len() as u64), || {
        let mut dec = BoolDecoder::new(&bytes);
        let mut m = AdaptiveModel::new(4);
        let mut acc = 0u32;
        for i in 0..bits.len() {
            acc += m.decode(&mut dec, i % 4) as u32;
        }
        acc
    });
}

fn bench_motion(h: &mut Harness) {
    let reference = Plane::from_fn(256, 144, |x, y| (((x * 3) ^ (y * 7)) % 256) as u8);
    let current = Plane::from_fn(256, 144, |x, y| {
        reference.get_clamped(x as isize - 4, y as isize - 2)
    });
    for (name, params) in [
        ("hardware", SearchParams::hardware()),
        ("software", SearchParams::software()),
    ] {
        h.bench(&format!("motion/search16/{name}"), || {
            let mut stats = CodingStats::new();
            search(
                &reference,
                &current,
                64,
                64,
                16,
                16,
                MotionVector::ZERO,
                &params,
                &mut stats,
            )
        });
    }
    let a: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
    let b: Vec<u8> = (0..256).map(|i| (i * 11 % 251) as u8).collect();
    h.bench("motion/satd16", || satd(&a, &b, 16, 16));
}

/// Per-kernel micro-bench rows, one per available SIMD backend, so the
/// macro speedups can be attributed. Row naming (`codec/kern_<k>_<be>`)
/// is load-bearing: `check_bench.sh` gates each SIMD row against its
/// `_scalar` sibling when the host reports the feature. Every row calls
/// the `*_with` dispatch variant, leaving the process-global backend
/// untouched.
fn bench_kernels(h: &mut Harness) {
    let backends = kernels::available_backends();
    let px = 32u64 * 32;

    let cur: Vec<u8> = (0..1024).map(|i: u32| (i * 7 % 251) as u8).collect();
    let pred: Vec<u8> = (0..1024).map(|i: u32| (i * 13 % 241) as u8).collect();
    for &bk in &backends {
        h.bench_elements(&format!("codec/kern_sad_{}", bk.name()), Some(px), || {
            kernels::sad_rows_thresholded_with(bk, &cur, &pred, 32, u64::MAX)
        });
    }
    for &bk in &backends {
        h.bench_elements(&format!("codec/kern_satd_{}", bk.name()), Some(px), || {
            kernels::satd_with(bk, &cur, &pred, 32, 32)
        });
    }

    let plane = Plane::from_fn(96, 96, |x, y| (((x * 5) ^ (y * 3)) % 256) as u8);
    let mut dst = vec![0u8; 1024];
    for &bk in &backends {
        h.bench_elements(&format!("codec/kern_hpel_{}", bk.name()), Some(px), || {
            kernels::plane_copy_block_hpel_with(bk, &plane, 8, 8, 1, 1, 32, 32, &mut dst);
        });
    }

    // Transform pass over a synthetic 32x32 basis (timing only; the
    // real bases are crate-private, and the arithmetic shape is what
    // matters here).
    let n = 32usize;
    let m_rows: Vec<f64> = (0..n * n).map(|i| ((i * 37 % 97) as f64) / 97.0).collect();
    let mut m_cols = vec![0.0f64; n * n];
    for q in 0..n {
        for s in 0..n {
            m_cols[s * n + q] = m_rows[q * n + s];
        }
    }
    let input: Vec<f64> = (0..n * n).map(|i| ((i * 11 % 61) as f64) - 30.0).collect();
    let mut out = vec![0.0f64; n * n];
    for &bk in &backends {
        h.bench_elements(&format!("codec/kern_tx_{}", bk.name()), Some(px), || {
            kernels::tx_pass_strided_with(bk, &m_rows, &m_cols, &input, n, &mut out);
        });
    }
}

fn bench_temporal_filter(h: &mut Harness) {
    let v = SynthSpec::new(Resolution::R144, 3, ContentClass::talking_head(), 1).generate();
    let frames: Vec<_> = v.frames.iter().collect();
    h.bench("tempfilter/144p_3frames", || {
        let mut stats = CodingStats::new();
        temporal_filter(&frames, 1, &mut stats)
    });
}

fn bench_encode_decode(h: &mut Harness, frames: usize) {
    let v = SynthSpec::new(Resolution::R144, frames, ContentClass::ugc(), 9).generate();
    for (name, cfg) in [
        (
            "codec/encode_h264_sw",
            EncoderConfig::const_qp(Profile::H264Sim, Qp::new(32)),
        ),
        (
            "codec/encode_vp9_sw",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)),
        ),
        (
            "codec/encode_vp9_hw",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32))
                .with_hardware(TuningLevel::MATURE),
        ),
    ] {
        h.bench_elements(name, Some(v.total_pixels()), || encode(&cfg, &v).unwrap());
    }
    let e = encode(&EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)), &v).unwrap();
    h.bench_elements("codec/decode_vp9", Some(v.total_pixels()), || {
        decode(&e.bytes).unwrap()
    });
}

/// Chunk-parallel encode at 1/2/4 threads over the same clip. The
/// rows share one chunk plan, so they measure pure thread scaling; the
/// final assert pins the determinism contract (thread count must never
/// change the bitstream) in the bench itself.
fn bench_parallel_encode(h: &mut Harness, frames: usize, chunk_frames: usize) {
    let v = SynthSpec::new(Resolution::R144, frames, ContentClass::ugc(), 9).generate();
    let base = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32));
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = base.with_threads(threads);
        h.bench_elements(
            &format!("codec/encode_vp9_sw_t{threads}"),
            Some(v.total_pixels()),
            || encode_parallel(&cfg, &v, chunk_frames).unwrap(),
        );
        streams.push(encode_parallel(&cfg, &v, chunk_frames).unwrap().bytes);
    }
    assert!(
        streams.windows(2).all(|w| w[0] == w[1]),
        "thread count changed the chunked bitstream"
    );
}

/// Unbalanced batch: one clip ~10x the length of its siblings — the
/// shape that broke the old static round-robin, which pinned the big
/// clip plus every `i % threads`-aligned small one to a single worker
/// while its siblings idled. With work stealing, wall-clock should
/// track the critical path (the big clip), so on a host with cores to
/// spare the t4 row must land well under the t1 row; that regression
/// assert arms only off smoke mode on >= 4 cores, since a single-core
/// host cannot overlap anything.
fn bench_unbalanced_batch(h: &mut Harness, smoke: bool) {
    let (big_frames, n_small) = if smoke { (4usize, 4usize) } else { (10, 12) };
    let mut videos: Vec<Video> = Vec::with_capacity(1 + n_small);
    videos.push(SynthSpec::new(Resolution::R144, big_frames, ContentClass::ugc(), 9).generate());
    for i in 0..n_small {
        videos.push(
            SynthSpec::new(Resolution::R144, 1, ContentClass::ugc(), 30 + i as u64).generate(),
        );
    }
    let pixels: u64 = videos.iter().map(|v| v.total_pixels()).sum();
    let base = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32));
    let mut medians = Vec::new();
    let mut streams: Vec<Vec<Encoded>> = Vec::new();
    for threads in [1usize, 4] {
        let cfg = base.with_threads(threads);
        let r = h.bench_elements(
            &format!("codec/encode_batch_unbalanced_t{threads}"),
            Some(pixels),
            || encode_batch(&cfg, &videos).unwrap(),
        );
        medians.push(r.median_ns);
        streams.push(encode_batch(&cfg, &videos).unwrap());
    }
    assert!(
        streams[0]
            .iter()
            .zip(&streams[1])
            .all(|(a, b)| a.bytes == b.bytes),
        "thread count changed an unbalanced batch's bitstreams"
    );
    if !smoke && host_cores() >= 4 {
        assert!(
            medians[1] <= medians[0] * 0.75,
            "unbalanced batch tracked the static share, not the critical path: \
             t4 {:.1} ms vs t1 {:.1} ms on a {}-core host",
            medians[1] / 1e6,
            medians[0] / 1e6,
            host_cores()
        );
    }
}

fn main() {
    let smoke = smoke();
    let mut h = Harness::new();
    bench_transform(&mut h);
    bench_entropy(&mut h);
    bench_motion(&mut h);
    bench_kernels(&mut h);
    bench_temporal_filter(&mut h);
    bench_encode_decode(&mut h, if smoke { 2 } else { 6 });
    let (pframes, pchunk) = if smoke { (4, 2) } else { (12, 3) };
    bench_parallel_encode(&mut h, pframes, pchunk);
    bench_unbalanced_batch(&mut h, smoke);
    let path = if smoke {
        std::env::temp_dir()
            .join("bench_codec_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("bench_codec.json")
    };
    h.write_json(&path).expect("write bench_codec results");
}
