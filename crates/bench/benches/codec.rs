//! Criterion microbenchmarks for the codec substrate: the kernels the
//! VCU pipeline model prices (transform, entropy, search, filter) plus
//! whole encode/decode throughput per profile and toolset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vcu_codec::entropy::{AdaptiveModel, BoolDecoder, BoolEncoder};
use vcu_codec::motion::{satd, search, SearchParams};
use vcu_codec::stats::CodingStats;
use vcu_codec::tempfilter::temporal_filter;
use vcu_codec::transform::{forward, inverse};
use vcu_codec::types::MotionVector;
use vcu_codec::{decode, encode, EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Plane, Resolution};

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform");
    for &n in &[8usize, 16, 32] {
        let residual: Vec<i16> = (0..n * n).map(|i| ((i * 37) % 255) as i16 - 128).collect();
        let mut coeffs = vec![0.0; n * n];
        let mut back = vec![0i16; n * n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("fwd_inv", n), &n, |b, &n| {
            b.iter(|| {
                forward(&residual, n, &mut coeffs);
                inverse(&coeffs, n, &mut back);
            })
        });
    }
    g.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let bits: Vec<bool> = (0..8192).map(|i| i % 37 < 7).collect();
    c.bench_function("entropy/encode_8k_bits", |b| {
        b.iter(|| {
            let mut enc = BoolEncoder::new();
            let mut m = AdaptiveModel::new(4);
            for (i, &bit) in bits.iter().enumerate() {
                m.encode(&mut enc, i % 4, bit);
            }
            enc.finish()
        })
    });
    let bytes = {
        let mut enc = BoolEncoder::new();
        let mut m = AdaptiveModel::new(4);
        for (i, &bit) in bits.iter().enumerate() {
            m.encode(&mut enc, i % 4, bit);
        }
        enc.finish()
    };
    c.bench_function("entropy/decode_8k_bits", |b| {
        b.iter(|| {
            let mut dec = BoolDecoder::new(&bytes);
            let mut m = AdaptiveModel::new(4);
            let mut acc = 0u32;
            for i in 0..bits.len() {
                acc += m.decode(&mut dec, i % 4) as u32;
            }
            acc
        })
    });
}

fn bench_motion(c: &mut Criterion) {
    let reference = Plane::from_fn(256, 144, |x, y| (((x * 3) ^ (y * 7)) % 256) as u8);
    let current = Plane::from_fn(256, 144, |x, y| {
        reference.get_clamped(x as isize - 4, y as isize - 2)
    });
    let mut g = c.benchmark_group("motion");
    for (name, params) in [
        ("hardware", SearchParams::hardware()),
        ("software", SearchParams::software()),
    ] {
        g.bench_function(BenchmarkId::new("search16", name), |b| {
            b.iter(|| {
                let mut stats = CodingStats::new();
                search(
                    &reference, &current, 64, 64, 16, 16,
                    MotionVector::ZERO, &params, &mut stats,
                )
            })
        });
    }
    g.finish();
    let a: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
    let b2: Vec<u8> = (0..256).map(|i| (i * 11 % 251) as u8).collect();
    c.bench_function("motion/satd16", |b| b.iter(|| satd(&a, &b2, 16, 16)));
}

fn bench_temporal_filter(c: &mut Criterion) {
    let v = SynthSpec::new(Resolution::R144, 3, ContentClass::talking_head(), 1).generate();
    let frames: Vec<_> = v.frames.iter().collect();
    c.bench_function("tempfilter/144p_3frames", |b| {
        b.iter(|| {
            let mut stats = CodingStats::new();
            temporal_filter(&frames, 1, &mut stats)
        })
    });
}

fn bench_encode_decode(c: &mut Criterion) {
    let v = SynthSpec::new(Resolution::R144, 6, ContentClass::ugc(), 9).generate();
    let mut g = c.benchmark_group("codec");
    g.sample_size(10);
    for (name, cfg) in [
        (
            "encode_h264_sw",
            EncoderConfig::const_qp(Profile::H264Sim, Qp::new(32)),
        ),
        (
            "encode_vp9_sw",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)),
        ),
        (
            "encode_vp9_hw",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32))
                .with_hardware(TuningLevel::MATURE),
        ),
    ] {
        g.throughput(Throughput::Elements(v.total_pixels()));
        g.bench_function(name, |b| b.iter(|| encode(&cfg, &v).unwrap()));
    }
    let e = encode(&EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)), &v).unwrap();
    g.throughput(Throughput::Elements(v.total_pixels()));
    g.bench_function("decode_vp9", |b| b.iter(|| decode(&e.bytes).unwrap()));
    g.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_entropy,
    bench_motion,
    bench_temporal_filter,
    bench_encode_decode
);
criterion_main!(benches);
