//! Plain wall-clock benchmark harness (the in-repo `criterion`
//! replacement).
//!
//! Each benchmark auto-calibrates an iteration count so one repetition
//! takes a measurable slice of wall-clock time, runs K repetitions,
//! and records the median per-iteration time — the statistic future
//! PRs diff to track the perf trajectory. Reports are printed as a
//! table and written as machine-readable JSON under `results/`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock per repetition during calibration.
const TARGET_REP: Duration = Duration::from_millis(40);
/// Repetitions per benchmark (median-of-K).
const DEFAULT_REPS: usize = 9;

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name, e.g. `"codec/encode_vp9_sw"`.
    pub name: String,
    /// Iterations per repetition (after calibration).
    pub iters: u64,
    /// Repetitions measured.
    pub reps: usize,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Fastest repetition's per-iteration nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration nanoseconds.
    pub mean_ns: f64,
    /// Optional elements-per-iteration for throughput reporting.
    pub elements: Option<u64>,
}

impl Record {
    /// Elements per second at the median time, if elements were set.
    pub fn elems_per_s(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 / (self.median_ns / 1e9))
    }
}

/// True when `VCU_BENCH_SMOKE` requests the seconds-long CI
/// configuration (any non-empty value other than `"0"`).
pub fn smoke() -> bool {
    std::env::var("VCU_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A suite of benchmarks accumulating records, flushed to JSON.
///
/// Under `VCU_BENCH_SMOKE` the harness switches to a quick mode —
/// calibration is skipped and fewer repetitions run — so CI can
/// exercise every bench path in seconds. Quick-mode numbers are noisy
/// by design; smoke runs write to temp paths, never `results/`.
#[derive(Debug, Default)]
pub struct Harness {
    records: Vec<Record>,
    quick: bool,
}

impl Harness {
    /// Creates an empty harness, in quick mode when [`smoke`] is set.
    pub fn new() -> Self {
        Harness {
            records: Vec::new(),
            quick: smoke(),
        }
    }

    /// Times `f`, printing and recording the result. The closure's
    /// return value is passed through [`black_box`] so the work cannot
    /// be optimized away.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &Record {
        self.bench_elements(name, None, f)
    }

    /// Like [`Harness::bench`] with an elements-per-iteration count
    /// for throughput reporting (pixels, bits, events…).
    pub fn bench_elements<R>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> R,
    ) -> &Record {
        // Calibrate: grow the iteration count until one rep is slow
        // enough to time reliably.
        let mut iters: u64 = 1;
        if !self.quick {
            loop {
                let t = time_iters(iters, &mut f);
                if t >= TARGET_REP || iters >= 1 << 24 {
                    break;
                }
                // Aim straight at the target with 2x headroom.
                let scale = TARGET_REP.as_secs_f64() / t.as_secs_f64().max(1e-9);
                iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
            }
        }
        let reps = if self.quick { 3 } else { DEFAULT_REPS };
        let mut per_iter_ns: Vec<f64> = (0..reps)
            .map(|_| time_iters(iters, &mut f).as_nanos() as f64 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let record = Record {
            name: name.to_string(),
            iters,
            reps,
            median_ns,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            elements,
        };
        let throughput = record
            .elems_per_s()
            .map(|t| format!("  ({:.3} Melem/s)", t / 1e6))
            .unwrap_or_default();
        println!(
            "{:<40} median {:>12}  min {:>12}{}",
            record.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.min_ns),
            throughput
        );
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Times `reps` single-shot runs of `f` — no calibration, one
    /// iteration per repetition. For macro-benchmarks (whole simulator
    /// runs) where one execution already takes long enough to time and
    /// calibrating would multiply the runtime.
    ///
    /// Repetitions fan out across the process-wide work-stealing pool
    /// at `min(VCU_THREADS, reps)` parallelism — each repetition times
    /// only its own execution, so the statistic stays per-run
    /// wall-clock (concurrent reps contend for cores; run with
    /// `VCU_THREADS=1` when measuring an already-parallel workload).
    pub fn bench_reps<R>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        reps: usize,
        f: impl Fn() -> R + Sync,
    ) -> &Record {
        let reps = reps.max(1);
        let f = &f;
        let mut per_iter_ns: Vec<f64> = vcu_exec::pool().run_batch(
            vcu_exec::env_threads().min(reps),
            (0..reps)
                .map(|_| {
                    move || {
                        let start = Instant::now();
                        black_box(f());
                        start.elapsed().as_nanos() as f64
                    }
                })
                .collect(),
        );
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let record = Record {
            name: name.to_string(),
            iters: 1,
            reps,
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            elements,
        };
        let throughput = record
            .elems_per_s()
            .map(|t| format!("  ({:.3} Melem/s)", t / 1e6))
            .unwrap_or_default();
        println!(
            "{:<40} median {:>12}  min {:>12}{}",
            record.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.min_ns),
            throughput
        );
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Writes all records as JSON to `path` (creating parent dirs) and
    /// prints where they went. Hand-rolled serialization — the
    /// workspace is dependency-free by design.
    ///
    /// The top-level value is an object: `host_cores` records the
    /// capture machine's parallelism (so downstream gates like
    /// `scripts/check_bench.sh` can tell "flat scaling because the
    /// host has one core" from "flat scaling because parallelism is
    /// broken"), and `records` holds one row per benchmark.
    ///
    /// A telemetry snapshot (`<stem>_telemetry.json`) is written next
    /// to the raw records, so bench runs and simulator runs share one
    /// observability format for downstream tooling.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = format!(
            "{{\n  \"host_cores\": {},\n  \"records\": [\n",
            host_cores()
        );
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {:?}, \"iters\": {}, \"reps\": {}, \
                 \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}",
                r.name, r.iters, r.reps, r.median_ns, r.min_ns, r.mean_ns
            ));
            if let Some(e) = r.elements {
                out.push_str(&format!(", \"elements\": {e}"));
            }
            if let Some(t) = r.elems_per_s() {
                out.push_str(&format!(", \"throughput\": {t:.1}"));
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, out)?;
        println!("\nwrote {} records to {path}", self.records.len());
        self.write_telemetry(&telemetry_sibling(path))
    }

    /// Mirrors the records into a telemetry registry — plus the
    /// work-stealing pool's scheduler metering (steals, queue depths,
    /// per-worker busy time) from any pool-backed benchmarks — and
    /// writes its snapshot to `path`.
    fn write_telemetry(&self, path: &str) -> std::io::Result<()> {
        let reg = vcu_telemetry::Registry::new();
        for r in &self.records {
            reg.counter_add(&format!("bench.{}.iters", r.name), r.iters);
            reg.gauge_set(&format!("bench.{}.median_ns", r.name), r.median_ns);
            reg.gauge_set(&format!("bench.{}.min_ns", r.name), r.min_ns);
            reg.gauge_set(&format!("bench.{}.mean_ns", r.name), r.mean_ns);
            if let Some(t) = r.elems_per_s() {
                reg.gauge_set(&format!("bench.{}.elems_per_s", r.name), t);
            }
        }
        vcu_exec::pool().record_telemetry(&reg);
        reg.write_snapshot(path, &[("records", &self.records.len().to_string())])
    }
}

/// The capture machine's available parallelism, recorded in every
/// bench JSON so scaling expectations can be conditioned on it.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `results/bench_foo.json` → `results/bench_foo_telemetry.json`.
fn telemetry_sibling(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_telemetry.json"),
        None => format!("{path}_telemetry.json"),
    }
}

/// Absolute path of `file` inside the workspace-level `results/`
/// directory (bench binaries run with the package dir as CWD, so a
/// relative `results/` would land inside `crates/bench`).
pub fn results_path(file: &str) -> String {
    format!("{}/../../results/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn time_iters<R>(iters: u64, f: &mut impl FnMut() -> R) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut h = Harness::new();
        let r = h.bench_elements("smoke/sum", Some(1000), || (0..1000u64).sum::<u64>());
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.elements, Some(1000));
        assert!(r.elems_per_s().unwrap() > 0.0);
    }

    #[test]
    fn bench_reps_fans_out_and_records() {
        let mut h = Harness::new();
        // Fn + Sync: shared state goes behind a lock, like the
        // cluster-scale bench's result slot.
        let acc = std::sync::Mutex::new(0u64);
        let r = h.bench_reps("smoke/reps", Some(10), 5, || {
            *acc.lock().unwrap() += (0..1000u64).sum::<u64>();
        });
        assert_eq!(r.reps, 5);
        assert_eq!(r.iters, 1);
        assert!(r.median_ns > 0.0);
        assert_eq!(*acc.lock().unwrap(), 5 * 499_500);
    }

    #[test]
    fn json_is_written() {
        let mut h = Harness::new();
        h.bench("smoke/nop", || 1u8);
        h.bench_elements("smoke/elems", Some(64), || 1u8);
        let path = std::env::temp_dir().join("vcu_bench_smoke.json");
        let path = path.to_str().unwrap();
        h.write_json(path).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"smoke/nop\""));
        // Top level is an object carrying capture-host metadata.
        assert!(body.trim_start().starts_with('{'));
        assert!(body.contains(&format!("\"host_cores\": {}", host_cores())));
        assert!(body.contains("\"records\": ["));
        // Rows with elements carry a derived elements/s throughput.
        let elems_row = body.lines().find(|l| l.contains("smoke/elems")).unwrap();
        assert!(elems_row.contains("\"throughput\":"));
        assert!(!body
            .lines()
            .any(|l| l.contains("smoke/nop") && l.contains("throughput")));
        // The telemetry twin lands next to the records.
        let twin = std::fs::read_to_string(telemetry_sibling(path)).unwrap();
        assert!(twin.contains("\"bench.smoke/nop.median_ns\""));
        assert!(twin.contains("\"telemetry_version\""));
    }

    #[test]
    fn telemetry_sibling_paths() {
        assert_eq!(
            telemetry_sibling("results/bench_x.json"),
            "results/bench_x_telemetry.json"
        );
        assert_eq!(telemetry_sibling("raw"), "raw_telemetry.json");
    }
}
