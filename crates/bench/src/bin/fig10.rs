//! Figure 10: hardware bitrate vs software over months of rate-control
//! tuning (BD-rate of the hardware toolset against the software
//! encoders at each month's tuning level).
//!
//! Set `VCU_FULL=1` for more clips. Run with:
//! `cargo run --release -p vcu-bench --bin fig10`

use vcu_system::experiments::fig10;
use vcu_workloads::{suite, SuiteScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::var("VCU_FULL").is_ok() {
        SuiteScale::Full
    } else {
        SuiteScale::Quick
    };
    // A content mix: screen, talking-head, ugc, gaming, high-motion.
    let clips: Vec<_> = suite(scale)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, c)| c.video())
        .collect();
    println!(
        "Figure 10: VCU bitrate vs software at iso-quality over {} clips",
        clips.len()
    );
    println!("(paper: starts ≈ +10-12%, converges to ≈ 0 / below by month ~14)\n");
    println!(
        "{:<7} {:>6} {:>12} {:>12}",
        "month", "level", "H.264 Δ%", "VP9 Δ%"
    );
    for p in fig10(16, &clips, &[20, 28, 36, 44])? {
        println!(
            "{:<7} {:>6} {:>11.1}% {:>11.1}%",
            p.month, p.level, p.h264_delta_pct, p.vp9_delta_pct
        );
    }
    Ok(())
}
