//! Warehouse-scale cluster throughput: the O(log n) availability index
//! vs the O(n) linear-scan oracle, swept over fleet sizes.
//!
//! The paper's scheduler serves placement from "a sharded, in-memory
//! availability cache of all workers" (§3.3.3, Fig. 6); simulation
//! infrastructure has to scale the same way or it silently caps the
//! experiments we can run. This bench pins that property into the
//! trajectory:
//!
//! 1. **Placement microbench** — a pre-filled fleet at ~90% occupancy,
//!    churned with release+place pairs, measured in placements/sec for
//!    both `PlacementMode`s at each scale. The `speedup_10k` ratio is
//!    the headline number (target ≥10×).
//! 2. **Full-simulation runs** — proportional load (50 jobs/VCU, 500k
//!    jobs at 10k VCUs) through `ClusterSim`, recording jobs/sec.
//! 3. **Equivalence gate** — at every scale the indexed and linear
//!    paths must produce *identical* `ClusterReport`s (first-fit order
//!    is observable behaviour); the bench aborts if they diverge.
//!
//! Run with: `cargo run --release -p vcu-bench --bin bench_cluster_scale`
//! Set `VCU_BENCH_SMOKE=1` for a seconds-long CI configuration that
//! writes to a temp directory instead of `results/`.

use vcu_bench::timing::{results_path, Harness};
use vcu_chip::{ResourceDemand, TranscodeJob, VcuModel};
use vcu_cluster::{
    ClusterConfig, ClusterReport, ClusterSim, JobSpec, PlacementMode, Priority, Scheduler,
    SchedulerKind,
};
use vcu_codec::Profile;
use vcu_media::Resolution;

/// Proportional load: enough identical 1080p jobs to hold the fleet at
/// roughly `target_util` occupancy for the whole run, first-fit from
/// worker 0 so free capacity pools at the high indices — the regime
/// where a linear scan degrades to O(n) per placement.
fn fleet_jobs(vcus: usize, jobs_per_vcu: usize, target_util: f64) -> Vec<JobSpec> {
    let job = TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0);
    let d = VcuModel::new().job_demand(&job);
    let cap = ResourceDemand::vcu_capacity();
    // Jobs one worker fits concurrently (binding dimension).
    let per_worker = [
        cap.millidecode / d.millidecode.max(1),
        cap.milliencode / d.milliencode.max(1),
        cap.dram_mib / d.dram_mib.max(1),
        cap.host_mcpu / d.host_mcpu.max(1),
    ]
    .into_iter()
    .min()
    .unwrap()
    .max(1) as f64;
    let in_flight_target = (vcus as f64 * per_worker * target_util).max(1.0);
    let spacing = job.duration_s / in_flight_target;
    let n = vcus * jobs_per_vcu;
    (0..n)
        .map(|i| JobSpec {
            arrival_s: i as f64 * spacing,
            job: job.clone(),
            priority: match i % 10 {
                0 => Priority::Critical,
                9 => Priority::Batch,
                _ => Priority::Normal,
            },
            video_id: (i / 4) as u64,
        })
        .collect()
}

fn run_sim(vcus: usize, jobs: Vec<JobSpec>, placement: PlacementMode) -> ClusterReport {
    let cfg = ClusterConfig {
        vcus,
        placement,
        sample_period_s: 60.0,
        ..ClusterConfig::default()
    };
    ClusterSim::new(cfg, jobs, vec![]).run()
}

/// The observable placement behaviour both paths must share exactly.
fn fingerprint(r: &ClusterReport) -> (u64, u64, u64, u64, &[u64]) {
    (
        r.completed,
        r.failed,
        r.retries,
        r.sw_decoded_jobs,
        &r.attempts_per_worker,
    )
}

/// Placements/sec on a pre-filled fleet: fill ~90% of workers from the
/// front (first-fit shape), then churn release+place pairs cycling
/// through distinct start offsets. Every placement searches past the
/// filled prefix, so the scan path pays O(n) and the index O(log n).
fn placement_churn(h: &mut Harness, vcus: usize, mode: PlacementMode, ops: u64) -> f64 {
    let demand = ResourceDemand {
        millidecode: 500,
        milliencode: 2_000,
        dram_mib: 512,
        host_mcpu: 800,
    };
    let mut s = Scheduler::with_placement(SchedulerKind::MultiDim, vcus, 1, mode);
    let mut placed = Vec::new();
    // Fill until ~90% of the fleet rejects further identical demands.
    let slots_per_worker =
        (ResourceDemand::vcu_capacity().milliencode / demand.milliencode) as usize;
    let fill = vcus * slots_per_worker * 9 / 10;
    for _ in 0..fill {
        match s.place_from(demand, 0, vcus) {
            Some(w) => placed.push(w),
            None => break,
        }
    }
    assert!(!placed.is_empty(), "fill must place at least one job");
    let name = format!(
        "cluster_scale/place_{}_{}",
        match mode {
            PlacementMode::Indexed => "indexed",
            PlacementMode::LinearScan => "linear",
        },
        vcus
    );
    let mut cursor = 0usize;
    let r = h.bench_elements(&name, Some(ops), || {
        let mut last = 0usize;
        for _ in 0..ops {
            let idx = cursor % placed.len();
            let w = placed[idx];
            s.release(w, demand);
            // Start away from the released worker so the search has to
            // cover ground before finding the hole.
            let hole = s
                .place_from(demand, (w + 1) % vcus, vcus)
                .expect("released capacity must be re-placeable");
            placed[idx] = hole;
            cursor += 1;
            last = hole;
        }
        last
    });
    r.elems_per_s().expect("elements set")
}

fn main() {
    let smoke = std::env::var("VCU_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (scales, jobs_per_vcu, churn_ops): (&[usize], usize, u64) = if smoke {
        (&[16, 64], 10, 64)
    } else {
        (&[100, 1_000, 10_000], 50, 1_024)
    };
    let mut h = Harness::new();
    let mut speedup_at_max_scale = 0.0;

    println!("placement microbench: ~90% full fleet, release+place churn\n");
    for &vcus in scales {
        let indexed = placement_churn(&mut h, vcus, PlacementMode::Indexed, churn_ops);
        let linear = placement_churn(&mut h, vcus, PlacementMode::LinearScan, churn_ops);
        let speedup = indexed / linear;
        speedup_at_max_scale = speedup;
        println!(
            "  {vcus:>6} VCUs: indexed {:>10.0} placements/s, linear {:>10.0}/s  ({speedup:.1}x)\n",
            indexed, linear
        );
    }

    println!("full simulation: proportional load, both placement paths\n");
    for &vcus in scales {
        let jobs = fleet_jobs(vcus, jobs_per_vcu, 0.9);
        let n_jobs = jobs.len() as u64;
        // One timed rep per mode (a whole-sim macro-run), plus the
        // equivalence gate on the reports.
        let mut reports: Vec<ClusterReport> = Vec::new();
        for (tag, mode) in [
            ("indexed", PlacementMode::Indexed),
            ("linear", PlacementMode::LinearScan),
        ] {
            // The linear baseline at full scale is the quadratic
            // collapse this PR removes; cap its timed run so the bench
            // finishes, but keep the gate at every scale it runs.
            if mode == PlacementMode::LinearScan && vcus > 1_000 && !smoke {
                let gate_jobs = fleet_jobs(vcus, 2, 0.9);
                let gn = gate_jobs.len() as u64;
                let mut gate_reports = Vec::new();
                for m in [PlacementMode::Indexed, PlacementMode::LinearScan] {
                    gate_reports.push(run_sim(vcus, gate_jobs.clone(), m));
                }
                assert_eq!(
                    fingerprint(&gate_reports[0]),
                    fingerprint(&gate_reports[1]),
                    "placement paths diverged at {vcus} VCUs ({gn} jobs)"
                );
                println!("  {vcus:>6} VCUs: linear full run skipped (gate on {gn} jobs passed)");
                continue;
            }
            let jobs_clone = jobs.clone();
            let rep = {
                // bench_reps closures are Fn + Sync (they may fan out
                // across the pool), so the result slot sits behind a
                // lock.
                let slot = std::sync::Mutex::new(None);
                let r = h.bench_reps(
                    &format!("cluster_scale/sim_{tag}_{vcus}"),
                    Some(n_jobs),
                    1,
                    || *slot.lock().unwrap() = Some(run_sim(vcus, jobs_clone.clone(), mode)),
                );
                println!(
                    "  {vcus:>6} VCUs ({tag}): {n_jobs} jobs at {:.0} jobs/s",
                    r.elems_per_s().unwrap_or(0.0)
                );
                slot.into_inner().unwrap().expect("bench ran at least once")
            };
            assert_eq!(rep.completed + rep.failed, n_jobs, "every job must resolve");
            reports.push(rep);
        }
        if reports.len() == 2 {
            assert_eq!(
                fingerprint(&reports[0]),
                fingerprint(&reports[1]),
                "placement paths diverged at {vcus} VCUs"
            );
        }
        println!();
    }

    if !smoke {
        assert!(
            speedup_at_max_scale >= 10.0,
            "index must be >=10x the linear scan at {} VCUs, got {speedup_at_max_scale:.1}x",
            scales.last().unwrap()
        );
    }

    let path = if smoke {
        std::env::temp_dir()
            .join("bench_cluster_scale_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("bench_cluster_scale.json")
    };
    h.write_json(&path).expect("write bench json");
}
