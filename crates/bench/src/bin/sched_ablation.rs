//! Scheduler ablation (§3.3.3): multi-dimensional bin packing vs the
//! legacy single-slot cost model, plus the stateless-cores and
//! reference-compression design-choice ablations from DESIGN.md.
//!
//! Run with: `cargo run --release -p vcu-bench --bin sched_ablation`

use vcu_chip::dram::DramModel;
use vcu_chip::encoder_core::PipelineSim;
use vcu_chip::refstore::{simulate_frame_search, RefStore, STORE_PIXELS};
use vcu_chip::{TranscodeJob, VcuModel, WorkloadShape};
use vcu_cluster::{ClusterConfig, ClusterSim, JobSpec, Priority, SchedulerKind};
use vcu_codec::Profile;
use vcu_media::Resolution;

fn mixed_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            // A mix of small and large jobs so packing quality matters.
            let job = match i % 4 {
                0 => TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 30.0, 5.0),
                1 => TranscodeJob::mot(Resolution::R1080, Profile::Vp9Sim, 30.0, 5.0),
                2 => TranscodeJob::mot(Resolution::R720, Profile::H264Sim, 30.0, 5.0),
                _ => TranscodeJob::sot(
                    Resolution::R1080,
                    Resolution::R360,
                    Profile::H264Sim,
                    30.0,
                    5.0,
                ),
            };
            JobSpec {
                arrival_s: i as f64 * 0.05,
                job,
                priority: Priority::Normal,
                video_id: 0,
            }
        })
        .collect()
}

fn run(kind: SchedulerKind) -> (f64, f64) {
    let cfg = ClusterConfig {
        vcus: 8,
        scheduler: kind,
        sample_period_s: 30.0,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::new(cfg, mixed_jobs(600), vec![]).run();
    let util: Vec<f64> = report
        .samples
        .iter()
        .skip(1)
        .take(10)
        .map(|s| s.encode_util)
        .collect();
    let mean_util = util.iter().sum::<f64>() / util.len().max(1) as f64;
    (mean_util, report.mean_wait_s)
}

fn main() {
    println!("Ablation 1 — work scheduler (§3.3.3): encoder utilization under load\n");
    println!(
        "{:<28} {:>12} {:>12}",
        "policy", "encode util", "mean wait s"
    );
    for (name, kind) in [
        ("multi-dim bin packing", SchedulerKind::MultiDim),
        (
            "single-slot (2/worker)",
            SchedulerKind::SingleSlot { slots: 2 },
        ),
        (
            "single-slot (4/worker)",
            SchedulerKind::SingleSlot { slots: 4 },
        ),
    ] {
        let (util, wait) = run(kind);
        println!("{:<28} {:>11.1}% {:>12.1}", name, util * 100.0, wait);
    }

    println!("\nAblation 2 — stateless cores (§3.2): sustained Mpix/s per VCU");
    let stateless = VcuModel::new();
    let sticky = VcuModel {
        stateless: false,
        ..VcuModel::new()
    };
    for p in [Profile::H264Sim, Profile::Vp9Sim] {
        println!(
            "  {:<5} stateless {:>5.0}  sticky {:>5.0}",
            p.to_string(),
            stateless.sustained_mpix_s(p, WorkloadShape::MotTwoPass),
            sticky.sustained_mpix_s(p, WorkloadShape::MotTwoPass)
        );
    }

    println!("\nAblation 3 — reference-frame compression (§3.2): 2160p60 MOTs per VCU DRAM");
    for (name, refcomp) in [("with refcomp", true), ("without", false)] {
        let mut d = DramModel::new(refcomp);
        let job = TranscodeJob::mot(Resolution::R2160, Profile::Vp9Sim, 60.0, 5.0);
        let mut n = 0;
        while d.admit(&job) {
            n += 1;
        }
        println!(
            "  {:<15} {} concurrent streams (bw util {:.0}%)",
            name,
            n,
            d.bandwidth_utilization() * 100.0
        );
    }

    println!("\nAblation 4 — reference store (§3.2): DRAM reads for one 720p frame search");
    for (name, pixels) in [
        ("144K-pixel store", STORE_PIXELS),
        ("1/8 size store", STORE_PIXELS / 8),
        ("no store", 0),
    ] {
        let mut s = RefStore::new(pixels);
        simulate_frame_search(&mut s, 1280, 720, 512, 64, 64);
        println!(
            "  {:<18} {:>6.1} MiB read, hit rate {:>5.1}%",
            name,
            s.dram_bytes_read as f64 / (1024.0 * 1024.0),
            s.hit_rate() * 100.0
        );
    }

    println!("\nAblation 5 — consistent-hash placement (§4.4 future work): blast radius");
    let ch_jobs = |n: usize| -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                arrival_s: (i / 5) as f64 * 0.5,
                job: TranscodeJob::mot(Resolution::R720, Profile::Vp9Sim, 30.0, 5.0),
                priority: Priority::Normal,
                video_id: (i / 5) as u64 + 1,
            })
            .collect()
    };
    for (name, window) in [("first-fit anywhere", 0usize), ("hash window 3", 3)] {
        let cfg = ClusterConfig {
            vcus: 12,
            consistent_hash_window: window,
            ..ClusterConfig::default()
        };
        let r = ClusterSim::new(cfg, ch_jobs(200), vec![]).run();
        println!(
            "  {:<20} mean distinct VCUs per video: {:.2} (completed {})",
            name, r.mean_vcus_per_video, r.completed
        );
    }

    println!("\nAblation 6 — pipeline FIFO decoupling (§3.2): relative throughput");
    for (name, depth, var) in [
        ("lock-step, low variability", 0usize, 0.2),
        ("lock-step, high variability", 0, 0.6),
        ("FIFO depth 6, high variability", 6, 0.6),
    ] {
        let t = PipelineSim::new(depth, var).relative_throughput(4000);
        println!("  {:<32} {:>5.1}% of bottleneck rate", name, t * 100.0);
    }
}
