//! Table 1: offline two-pass SOT throughput and perf/TCO, plus the
//! §4.1 MOT and perf/watt results.
//!
//! Run with: `cargo run --release -p vcu-bench --bin table1`

use vcu_chip::{System, WorkloadShape};
use vcu_cluster::tco::perf_per_tco_normalized;
use vcu_codec::Profile;

fn cell(v: Option<f64>) -> String {
    v.map(|x| format!("{x:>8.0}"))
        .unwrap_or_else(|| format!("{:>8}", "-"))
}

fn ratio(v: Option<f64>) -> String {
    v.map(|x| format!("{x:>7.1}x"))
        .unwrap_or_else(|| format!("{:>8}", "-"))
}

fn main() {
    let shape = WorkloadShape::SotTwoPass;
    println!("Table 1: offline two-pass single-output (SOT) throughput and perf/TCO");
    println!(
        "(paper: Skylake 714/154 | 4xT4 2484/- | 8xVCU 5973/6122 | 20xVCU 14932/15306 Mpix/s;"
    );
    println!(" perf/TCO 1.0/1.0 | 1.5/- | 4.4/20.8 | 7.0/33.3)\n");
    println!(
        "{:<12} {:>8} {:>8}   {:>8} {:>8}",
        "System", "H264", "VP9", "pTCO264", "pTCOvp9"
    );
    for sys in System::table1() {
        let h = sys.throughput_mpix_s(Profile::H264Sim, shape);
        let v = sys.throughput_mpix_s(Profile::Vp9Sim, shape);
        let ph = perf_per_tco_normalized(sys, Profile::H264Sim, shape);
        let pv = perf_per_tco_normalized(sys, Profile::Vp9Sim, shape);
        println!(
            "{:<12} {} {}   {} {}",
            sys.label(),
            cell(h),
            cell(v),
            ratio(ph),
            ratio(pv)
        );
    }

    println!("\nMOT vs SOT per VCU (paper: MOT 1.2-1.3x higher; 976/927 Mpix/s):");
    for p in [Profile::H264Sim, Profile::Vp9Sim] {
        let v = System::VcuHost { vcus: 1 };
        let sot = v.throughput_mpix_s(p, WorkloadShape::SotTwoPass).unwrap();
        let mot = v.throughput_mpix_s(p, WorkloadShape::MotTwoPass).unwrap();
        println!(
            "  {:<5} SOT {:>5.0}  MOT {:>5.0}  ratio {:.2}x",
            p.to_string(),
            sot,
            mot,
            mot / sot
        );
    }

    println!("\nPerf/watt vs CPU (paper: 6.7x H.264 SOT, 68.9x VP9 MOT):");
    let v20 = System::VcuHost { vcus: 20 };
    let h_sot = v20
        .perf_per_watt(Profile::H264Sim, WorkloadShape::SotTwoPass)
        .unwrap()
        / System::SkylakeCpu
            .perf_per_watt(Profile::H264Sim, WorkloadShape::SotTwoPass)
            .unwrap();
    let v_mot = v20
        .perf_per_watt(Profile::Vp9Sim, WorkloadShape::MotTwoPass)
        .unwrap()
        / System::SkylakeCpu
            .perf_per_watt(Profile::Vp9Sim, WorkloadShape::MotTwoPass)
            .unwrap();
    println!("  H.264 SOT: {h_sot:.1}x    VP9 MOT: {v_mot:.1}x");
}
