//! Figure 7: rate-distortion curves on the vbench-like suite, software
//! vs VCU encodings, plus the §4.1 BD-rate summary.
//!
//! Set `VCU_FULL=1` for the larger suite (slower); default is the quick
//! suite. Run with: `cargo run --release -p vcu-bench --bin fig7`

use vcu_codec::{EncoderConfig, Profile, Qp, TuningLevel};
use vcu_media::bdrate::RdPoint;
use vcu_system::experiments::{bd, clip_rd_curve};
use vcu_workloads::{suite, SuiteScale};

const QPS: [u8; 4] = [18, 26, 34, 42];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::var("VCU_FULL").is_ok() {
        SuiteScale::Full
    } else {
        SuiteScale::Quick
    };
    let clips = suite(scale);
    println!(
        "Figure 7: RD curves (bitrate kbps @ PSNR dB), {} suite\n",
        clips.len()
    );

    let configs: [(&str, EncoderConfig); 4] = [
        (
            "sw-h264",
            EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)),
        ),
        (
            "vcu-h264",
            EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30))
                .with_hardware(TuningLevel::LAUNCH),
        ),
        (
            "sw-vp9",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)),
        ),
        (
            "vcu-vp9",
            EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30))
                .with_hardware(TuningLevel::LAUNCH),
        ),
    ];

    // name -> config -> curve
    let mut curves: Vec<Vec<Vec<RdPoint>>> = Vec::new();
    for clip in &clips {
        let video = clip.video();
        let mut per_cfg = Vec::new();
        for (_, cfg) in &configs {
            per_cfg.push(clip_rd_curve(*cfg, &video, &QPS)?);
        }
        print!("{:<14}", clip.name);
        for (ci, (name, _)) in configs.iter().enumerate() {
            let c = &per_cfg[ci];
            print!(" | {name}:");
            for p in c {
                print!(" {:.0}@{:.1}", p.bitrate / 1e3, p.psnr);
            }
        }
        println!();
        curves.push(per_cfg);
    }

    // BD-rate summary averaged across the suite (paper §4.1):
    //   VCU-VP9 vs sw-H264 ≈ -30%; VCU-H264 vs sw-H264 ≈ +11.5%;
    //   VCU-VP9 vs sw-VP9 ≈ +18%.
    let avg_bd = |anchor: usize, test: usize| -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for per_cfg in &curves {
            if let Ok(v) = bd(&per_cfg[anchor], &per_cfg[test]) {
                acc += v;
                n += 1;
            }
        }
        acc / n.max(1) as f64
    };
    println!("\nBD-rate suite averages (negative = fewer bits at iso quality):");
    println!(
        "  VCU-VP9  vs sw-H264: {:>7.1}%   (paper ≈ -30%)",
        avg_bd(0, 3)
    );
    println!(
        "  VCU-H264 vs sw-H264: {:>7.1}%   (paper ≈ +11.5%)",
        avg_bd(0, 1)
    );
    println!(
        "  VCU-VP9  vs sw-VP9:  {:>7.1}%   (paper ≈ +18%)",
        avg_bd(2, 3)
    );
    println!(
        "  sw-VP9   vs sw-H264: {:>7.1}%   (VP9 coding gain)",
        avg_bd(0, 2)
    );
    Ok(())
}
