//! Figure 9: post-launch workload scaling — (a) chunked upload ramp,
//! (b) live transcoding growth, (c) opportunistic software decode.
//!
//! Run with: `cargo run --release -p vcu-bench --bin fig9`

use vcu_system::experiments::{fig9a, fig9b, fig9c};

fn main() {
    println!("Figure 9a: chunked upload workload on VCU (normalized total throughput)");
    println!("(paper: ~1 at launch growing to ~9-10x by month 12; 100% on VCU in month 7)\n");
    println!("{:<7} {:>12}", "month", "normalized");
    for p in fig9a(12, 5) {
        println!("{:<7} {:>12.2}", p.month, p.normalized_throughput);
    }

    println!("\nFigure 9b: live transcoding on VCU vs flat software fleet\n");
    println!("{:<7} {:>8} {:>10}", "month", "VCU", "software");
    for p in fig9b(12, 11) {
        println!("{:<7} {:>8.2} {:>10.2}", p.month, p.vcu, p.software);
    }

    println!("\nFigure 9c: hardware decoder utilization; software-decode offload lands month 6");
    println!("(paper: ~98% dropping to ~91% after enabling)\n");
    println!(
        "{:<7} {:>12} {:>14}",
        "month", "decode util", "Mpix/s per VCU"
    );
    for p in fig9c(12, 6, 9) {
        println!(
            "{:<7} {:>11.1}% {:>14.0}",
            p.month,
            p.hw_decode_util * 100.0,
            p.mpix_s_per_vcu
        );
    }
}
