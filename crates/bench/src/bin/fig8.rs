//! Figure 8: per-VCU throughput for production-like MOT vs SOT workers.
//!
//! Run with: `cargo run --release -p vcu-bench --bin fig8`

use vcu_system::experiments::{cov, fig8, mean};

fn main() {
    let data = fig8(8, 1200.0, 7);
    println!("Figure 8: throughput per VCU, production workload (Mpix/s)");
    println!("(paper: MOT ≈ 400 steady, SOT ≈ 250 with more variability)\n");
    println!("{:<8} {:>10} {:>10}", "sample", "MOT", "SOT");
    let n = data.mot.len().max(data.sot.len());
    for i in 0..n {
        println!(
            "{:<8} {:>10.0} {:>10.0}",
            i + 1,
            data.mot.get(i).copied().unwrap_or(f64::NAN),
            data.sot.get(i).copied().unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nmean: MOT {:.0} Mpix/s (cov {:.2}), SOT {:.0} Mpix/s (cov {:.2}), ratio {:.2}x",
        mean(&data.mot),
        cov(&data.mot),
        mean(&data.sot),
        cov(&data.sot),
        mean(&data.mot) / mean(&data.sot).max(1e-9)
    );
}
