//! Table 2 + Appendix A: host resource scaling, network-bound ceiling,
//! VCU DRAM sizing, and attachment limits.
//!
//! Run with: `cargo run --release -p vcu-bench --bin table2`

use vcu_system::balance::{attachment_limits, dram_sizing, host_scaling, network_ceiling_gpix_s};

fn main() {
    let ceiling = network_ceiling_gpix_s();
    println!("Appendix A.2: network-bound transcoding ceiling");
    println!("  100 Gbps NIC x 6.1 pix/bit / 2 (upload headroom) / 2 (RPC+overheads)");
    println!("  = {ceiling:.0} Gpix/s per host (paper: ~153)\n");

    let h = host_scaling(153.0);
    println!("Table 2: host resources scaled for 153 Gpix/s (paper: 42+13 cores, 214+300 Gbps)");
    println!(
        "{:<26} {:>14} {:>16}",
        "Use", "Logical cores", "DRAM bandwidth"
    );
    println!(
        "{:<26} {:>14.0} {:>12.0} Gbps",
        "Transcoding overheads", h.transcode_cores, h.transcode_dram_gbps
    );
    println!(
        "{:<26} {:>14.0} {:>12.0} Gbps",
        "Network & RPC", h.network_cores, h.network_dram_gbps
    );
    println!(
        "{:<26} {:>14.0} {:>12.0} Gbps",
        "Total",
        h.total_cores(),
        h.total_dram_gbps()
    );
    println!("  (host provides ~100 cores / ~1600 Gbps: about half used)\n");

    let d = dram_sizing(153.0, 150);
    println!("Appendix A.4: VCU DRAM sizing at the network limit");
    println!(
        "  low-latency SOT: {:.0} GiB   offline two-pass: {:.0} GiB   available (150 VCUs x 8 GiB): {:.0} GiB",
        d.sot_low_latency_gib, d.offline_two_pass_gib, d.available_gib
    );
    println!("  (paper: 150 GiB / 750 GiB; 8 GiB per VCU suffices, 4 GiB would not)\n");

    let l = attachment_limits();
    println!("Appendix A.2/A.5: VCU attachment ceilings per host");
    println!(
        "  real-time: {:.0} VCUs   offline two-pass: {:.0} VCUs   production choice: {} VCUs",
        l.realtime_vcus, l.offline_vcus, l.chosen
    );
    println!("  (paper: 30 / 150 / 20 — conservative for failure-domain size)");
}
