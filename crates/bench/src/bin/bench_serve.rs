//! Serving campaign: TTFF, rebuffer rate, cache hit ratio, and the
//! egress-vs-transcode cost split for live viewer populations.
//!
//! Drives [`vcu_serve::run_serve_campaign`] over a cache sweep (fixed
//! 100k-viewer cell, growing segment cache) and a scale sweep up to a
//! 1.2M-viewer target (≥ 1M observed peak concurrency), writing
//! `results/serve_campaign.json`. The artifact is byte-identical for a
//! fixed `VCU_SEED` — `tests/determinism.rs` and CI both pin it, for
//! any `VCU_THREADS` value.
//!
//! The binary also *gates* the serving layer:
//! - session accounting is exact in every cell (arrivals = admitted +
//!   shed, admitted = completed + aborted);
//! - the hit ratio is monotone across the cache sweep;
//! - TTFF p99 has no cliff as the cache grows (a bigger cache must
//!   never make tail startup meaningfully worse);
//! - the full sweep's largest cell reaches ≥ 1M peak concurrent
//!   viewers.
//!
//! Run with: `cargo run --release -p vcu-bench --bin bench_serve`
//! Set `VCU_BENCH_SMOKE=1` for a seconds-long CI configuration that
//! writes to a temp directory instead of `results/`.

use vcu_bench::timing::{results_path, smoke};
use vcu_serve::{render_serve_json, run_serve_campaign, ServeCampaignCell, ServeCampaignConfig};

/// Peak concurrency the full sweep must demonstrate.
const FULL_PEAK_FLOOR: u64 = 1_000_000;
/// Allowed TTFF p99 growth between adjacent cache-sweep cells: a
/// bigger cache may shift the tail a little (different miss mix), but
/// never a cliff.
const TTFF_CLIFF_FACTOR: f64 = 1.25;
const TTFF_CLIFF_SLACK_S: f64 = 0.05;

fn assert_gates(cells: &[ServeCampaignCell], full: bool) {
    for c in cells {
        assert_eq!(
            c.arrivals,
            c.admitted + c.shed,
            "arrival accounting broke at {} viewers / cache {}",
            c.viewers,
            c.cache_segments
        );
        assert_eq!(
            c.admitted,
            c.completed + c.aborted,
            "session accounting broke at {} viewers / cache {}",
            c.viewers,
            c.cache_segments
        );
    }
    // Cache-sweep groups: consecutive cells with the same viewer count
    // and fleet, ascending cache size.
    let mut groups: Vec<Vec<&ServeCampaignCell>> = Vec::new();
    for c in cells {
        match groups.last_mut() {
            Some(g)
                if g.last().unwrap().viewers == c.viewers
                    && g.last().unwrap().vcus == c.vcus
                    && g.last().unwrap().cache_segments < c.cache_segments =>
            {
                g.push(c)
            }
            _ => groups.push(vec![c]),
        }
    }
    for g in groups.iter().filter(|g| g.len() > 1) {
        for w in g.windows(2) {
            assert!(
                w[1].hit_ratio >= w[0].hit_ratio,
                "hit ratio fell with a bigger cache: {:.4} (cache {}) -> {:.4} (cache {})",
                w[0].hit_ratio,
                w[0].cache_segments,
                w[1].hit_ratio,
                w[1].cache_segments
            );
            assert!(
                w[1].ttff_p99_s <= w[0].ttff_p99_s * TTFF_CLIFF_FACTOR + TTFF_CLIFF_SLACK_S,
                "TTFF p99 cliff across the cache sweep: {:.3}s (cache {}) -> {:.3}s (cache {})",
                w[0].ttff_p99_s,
                w[0].cache_segments,
                w[1].ttff_p99_s,
                w[1].cache_segments
            );
        }
    }
    if full {
        let peak = cells.iter().map(|c| c.peak_concurrent).max().unwrap_or(0);
        assert!(
            peak >= FULL_PEAK_FLOOR,
            "full sweep must reach >= {FULL_PEAK_FLOOR} peak concurrent viewers, got {peak}"
        );
    }
}

fn main() {
    let quick = smoke();
    let seed = vcu_rng::env_seed(42);
    let cfg = if quick {
        ServeCampaignConfig::smoke(seed)
    } else {
        ServeCampaignConfig::full(seed)
    };

    println!(
        "serve campaign: {} cells, seed {}{}\n",
        cfg.cells.len(),
        seed,
        if quick { " (smoke)" } else { "" }
    );
    let cells = run_serve_campaign(&cfg);

    println!(
        "{:>9} {:>6} {:>8} {:>9} {:>7} {:>9} {:>8} {:>8} {:>7} {:>8} {:>9} {:>9} {:>9}",
        "viewers",
        "vcus",
        "cache",
        "peak",
        "shed",
        "ttff_p50",
        "ttff_p99",
        "rebuf%",
        "hit%",
        "xcodes",
        "egress$",
        "xcode$",
        "degr%",
    );
    for c in &cells {
        println!(
            "{:>9} {:>6} {:>8} {:>9} {:>7} {:>8.3}s {:>7.3}s {:>7.3}% {:>6.1}% {:>8} {:>9.2} {:>9.2} {:>8.1}%",
            c.viewers,
            c.vcus,
            c.cache_segments,
            c.peak_concurrent,
            c.shed,
            c.ttff_p50_s,
            c.ttff_p99_s,
            c.rebuffer_ratio * 100.0,
            c.hit_ratio * 100.0,
            c.transcodes,
            c.egress_cost_usd,
            c.transcode_cost_usd,
            c.degraded_frac * 100.0,
        );
    }

    assert_gates(&cells, !quick);
    println!(
        "\nserving gates passed: exact accounting, monotone hit ratio, no TTFF p99 cliff{}",
        if quick {
            String::new()
        } else {
            format!(", peak >= {FULL_PEAK_FLOOR}")
        }
    );

    let path = if quick {
        std::env::temp_dir()
            .join("serve_campaign_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("serve_campaign.json")
    };
    std::fs::write(&path, render_serve_json(&cfg, &cells)).expect("write campaign json");
    println!("wrote {path}");
}
