//! Region-campaign sweep: multi-region planets over regions × fleet
//! size × traffic growth, with the isolated-regions counterfactual.
//!
//! Drives [`vcu_regions::run_region_campaign`]: each cell runs a
//! [`vcu_regions::PlanetSim`] twice from the same seed — overflow
//! routing enabled, then disabled — over phase-shifted diurnal demand,
//! rolling firmware-upgrade waves, and correlated rack-domain outages.
//! The full sweep tops out at a 102,400-VCU four-region planet and
//! writes `results/region_campaign.json`, byte-identical for a fixed
//! `VCU_SEED` and any `VCU_THREADS`.
//!
//! The binary also *gates* overflow routing: in every cell the routed
//! planet's goodput must be at least the isolated planet's, and the
//! anti-phased peaks must actually route work (routed_jobs > 0). A
//! regression in the router (wrong pressure signal, routing into a hot
//! region) shows up here before it ships.
//!
//! Run with: `cargo run --release -p vcu-bench --bin bench_region_campaign`
//! Set `VCU_BENCH_SMOKE=1` for a seconds-long CI configuration that
//! writes to a temp directory instead of `results/`.

use vcu_bench::timing::results_path;
use vcu_regions::{
    render_region_json, run_region_campaign, RegionCampaignCell, RegionCampaignConfig,
};

fn assert_overflow_helps(cells: &[RegionCampaignCell]) {
    for c in cells {
        assert!(
            c.goodput_overflow >= c.goodput_isolated,
            "overflow routing lost goodput at {} regions x {} cells x {} VCUs (traffic {:.2}): \
             {:.4} < {:.4}",
            c.regions,
            c.cells_per_region,
            c.vcus_per_cell,
            c.traffic_scale,
            c.goodput_overflow,
            c.goodput_isolated
        );
        if c.regions > 1 {
            assert!(
                c.routed_jobs > 0,
                "multi-region cell with anti-phased peaks routed nothing \
                 ({} regions x {} VCUs, traffic {:.2})",
                c.regions,
                c.total_vcus,
                c.traffic_scale
            );
        }
    }
}

fn main() {
    let smoke = std::env::var("VCU_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let cfg = if smoke {
        RegionCampaignConfig::smoke(vcu_rng::env_seed(42))
    } else {
        RegionCampaignConfig::full(vcu_rng::env_seed(42))
    };

    let max_vcus = cfg.cells.iter().map(|c| c.total_vcus()).max().unwrap_or(0);
    println!(
        "region campaign: {} cells, up to {} VCUs, seed {}\n",
        cfg.cells.len(),
        max_vcus,
        cfg.seed
    );

    let start = std::time::Instant::now();
    let cells = run_region_campaign(&cfg);
    let wall = start.elapsed().as_secs_f64();

    println!(
        "{:>4} {:>6} {:>8} {:>5} {:>9} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "reg",
        "cells",
        "vcus",
        "traf",
        "jobs",
        "routed",
        "rfrac",
        "good_ov",
        "good_iso",
        "p99ov_s",
        "p99iso_s",
        "perf/tco",
    );
    for c in &cells {
        println!(
            "{:>4} {:>6} {:>8} {:>5.2} {:>9} {:>7} {:>7.4} {:>8.4} {:>8.4} {:>9.1} {:>9.1} {:>9.6}",
            c.regions,
            c.cells_per_region,
            c.total_vcus,
            c.traffic_scale,
            c.jobs,
            c.routed_jobs,
            c.routed_frac,
            c.goodput_overflow,
            c.goodput_isolated,
            c.p99_wait_overflow_s,
            c.p99_wait_isolated_s,
            c.perf_per_tco,
        );
    }
    println!("\nwall time: {wall:.1}s");

    assert_overflow_helps(&cells);
    println!("overflow-routing gate passed: goodput(overflow) >= goodput(isolated) in every cell");

    let path = if smoke {
        std::env::temp_dir()
            .join("region_campaign_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("region_campaign.json")
    };
    std::fs::write(&path, render_region_json(&cfg, &cells)).expect("write campaign json");
    println!("wrote {path}");
}
