//! Fault-campaign sweep: goodput, black-holing, and tail latency under
//! injected fleet faults, swept over fault rate × MTTR.
//!
//! Drives [`vcu_cluster::run_campaign`] over a 1 000-VCU fleet with the
//! full §4.4 failure-management machinery armed (watchdogs, backoff
//! retries, periodic golden screening, health scoring, the graceful-
//! degradation ladder) and writes `results/fault_campaign.json`. The
//! artifact is byte-identical for a fixed `VCU_SEED` — two runs of this
//! binary must produce the same file, which `tests/determinism.rs`
//! and CI both pin.
//!
//! The binary also *gates* graceful degradation: goodput must decay
//! smoothly as the fault rate climbs from 0 to 10% of the fleet — no
//! adjacent-cell cliff, and a floor at the highest rate. A regression
//! in the mitigation loop (e.g. watchdogs stop firing, the ladder
//! stops shedding) shows up here as a cliff before it ships.
//!
//! Run with: `cargo run --release -p vcu-bench --bin bench_fault_campaign`
//! Set `VCU_BENCH_SMOKE=1` for a seconds-long CI configuration that
//! writes to a temp directory instead of `results/`.

use vcu_bench::timing::results_path;
use vcu_cluster::{render_json, run_campaign, CampaignCell, CampaignConfig};

/// Max goodput drop tolerated between adjacent fault-rate cells at the
/// same MTTR: the "no cliff" bound.
const MAX_STEP_DROP: f64 = 0.20;
/// Goodput floor at the worst swept cell (10% of the fleet faulted,
/// never repaired).
const GOODPUT_FLOOR: f64 = 0.55;

fn assert_graceful(cells: &[CampaignCell]) {
    // Cells arrive grouped by MTTR, fault rate ascending within each
    // group (run_campaign's iteration order).
    let mut groups: Vec<Vec<&CampaignCell>> = Vec::new();
    for c in cells {
        match groups.last_mut() {
            Some(g) if g.last().unwrap().fault_rate < c.fault_rate => g.push(c),
            _ => groups.push(vec![c]),
        }
    }
    for g in &groups {
        for w in g.windows(2) {
            let drop = w[0].goodput_frac - w[1].goodput_frac;
            assert!(
                drop <= MAX_STEP_DROP,
                "goodput cliff: {:.3} -> {:.3} between fault rates {:.2} and {:.2} (mttr {:?})",
                w[0].goodput_frac,
                w[1].goodput_frac,
                w[0].fault_rate,
                w[1].fault_rate,
                w[0].mttr_s
            );
        }
        let worst = g.last().unwrap();
        assert!(
            worst.goodput_frac >= GOODPUT_FLOOR,
            "goodput floor breached: {:.3} < {GOODPUT_FLOOR} at fault rate {:.2} (mttr {:?})",
            worst.goodput_frac,
            worst.fault_rate,
            worst.mttr_s
        );
    }
}

fn main() {
    let smoke = std::env::var("VCU_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let cfg = if smoke {
        CampaignConfig {
            vcus: 64,
            jobs_per_vcu: 60,
            seed: vcu_rng::env_seed(42),
            fault_rates: vec![0.0, 0.05, 0.10],
            mttr_s: vec![20.0, f64::INFINITY],
        }
    } else {
        CampaignConfig {
            seed: vcu_rng::env_seed(42),
            ..CampaignConfig::default()
        }
    };

    println!(
        "fault campaign: {} VCUs, {} jobs/VCU, seed {}\n",
        cfg.vcus, cfg.jobs_per_vcu, cfg.seed
    );
    let cells = run_campaign(&cfg);

    println!(
        "{:>6} {:>8} {:>8} {:>7} {:>8} {:>9} {:>6} {:>6} {:>5} {:>6}  degrade frac l0..l3",
        "rate",
        "mttr_s",
        "goodput",
        "blackh",
        "p99_w_s",
        "watchdog",
        "shed",
        "quar",
        "rep",
        "blast",
    );
    for c in &cells {
        println!(
            "{:>6.2} {:>8} {:>8.3} {:>7} {:>8.1} {:>9} {:>6} {:>6} {:>5} {:>6.2}  [{:.2} {:.2} {:.2} {:.2}]",
            c.fault_rate,
            if c.mttr_s.is_finite() {
                format!("{:.0}", c.mttr_s)
            } else {
                "never".to_owned()
            },
            c.goodput_frac,
            c.black_holed,
            c.p99_wait_s,
            c.watchdog_fired,
            c.shed,
            c.quarantined_workers,
            c.repairs,
            c.blast_radius,
            c.degrade_time_frac[0],
            c.degrade_time_frac[1],
            c.degrade_time_frac[2],
            c.degrade_time_frac[3],
        );
    }

    assert_graceful(&cells);
    println!("\ngraceful-degradation gate passed: no adjacent cliff > {MAX_STEP_DROP}, floor {GOODPUT_FLOOR}");

    let path = if smoke {
        std::env::temp_dir()
            .join("fault_campaign_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("fault_campaign.json")
    };
    std::fs::write(&path, render_json(&cfg, &cells)).expect("write campaign json");
    println!("wrote {path}");
}
