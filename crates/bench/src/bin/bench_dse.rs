//! Chip design-space exploration: the co-design Pareto frontier.
//!
//! Sweeps candidate VCU designs — encoder cores × decoder cores × raw
//! DRAM bandwidth × reference-store SRAM — and evaluates every cell on
//! the full cluster simulator under a fixed offered load (steady leg)
//! and under the fault campaign's fault mix (fault leg), then writes
//! the Pareto frontier over (steady perf/VCU, fault goodput, perf/TCO,
//! latency headroom) to `results/dse_frontier.json`.
//!
//! In-binary gates, all fatal:
//!
//! 1. **byte-identity** — the sweep is run at parallelism 1 and again
//!    at parallelism 4 (or `VCU_THREADS`), and the rendered JSON must
//!    match byte-for-byte;
//! 2. **anchor-on-frontier** — the shipped VCU appears exactly once
//!    and no candidate dominates it beyond `VCU_DSE_ANCHOR_TOL`
//!    (default 2%): if the model claims a strictly better chip was
//!    left on the table, the model is miscalibrated and CI fails;
//! 3. **frontier consistency** — the `on_frontier` flags must be
//!    exactly the non-dominated set, independently recomputed.
//!
//! Run with: `cargo run --release -p vcu-bench --bin bench_dse`
//! Set `VCU_BENCH_SMOKE=1` for a seconds-long 3×3 sweep that writes to
//! a temp directory instead of `results/`.

use vcu_bench::timing::results_path;
use vcu_dse::{
    check_anchor, frontier_flags, render_dse_json, run_dse, DseCandidate, DseConfig,
    DEFAULT_ANCHOR_TOL,
};

fn anchor_tol() -> f64 {
    match std::env::var("VCU_DSE_ANCHOR_TOL") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("VCU_DSE_ANCHOR_TOL must be a float, got {v:?}")),
        Err(_) => DEFAULT_ANCHOR_TOL,
    }
}

fn print_table(candidates: &[DseCandidate]) {
    println!(
        "{:>14} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "design",
        "area",
        "card_w",
        "card_usd",
        "perf/vcu",
        "gp_stdy",
        "gp_fault",
        "p99_w_s",
        "perf/tco$",
        "front"
    );
    for c in candidates {
        println!(
            "{:>14} {:>8.1} {:>7.1} {:>8.0} {:>8.1} {:>8.3} {:>8.3} {:>8.2} {:>9.2} {:>5}{}",
            c.design.label(),
            c.area_mm2,
            c.card_power_w,
            c.card_capex_usd,
            c.perf_mpix_s_per_vcu,
            c.goodput_steady,
            c.goodput_fault,
            c.p99_wait_s,
            c.perf_per_tco,
            if c.on_frontier { "*" } else { "" },
            if c.anchor { "  <- shipped" } else { "" },
        );
    }
}

fn main() {
    let smoke = std::env::var("VCU_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let seed = vcu_rng::env_seed(42);
    let cfg = if smoke {
        DseConfig::smoke(seed)
    } else {
        DseConfig::full(seed)
    };
    let grid = cfg.design_grid().len();
    println!(
        "design-space sweep: {} candidates, {} VCUs, {} jobs/VCU, fault leg {:.0}% mttr {:.0}s, seed {}\n",
        grid, cfg.vcus, cfg.jobs_per_vcu, cfg.fault_rate * 100.0, cfg.mttr_s, cfg.seed
    );

    // Gate 1: byte-identity across executor parallelism. The sweep is
    // run sequentially and again fanned out over the worker pool; the
    // rendered artifacts must agree byte-for-byte.
    let wide = vcu_exec::env_threads().max(4);
    let candidates = run_dse(&cfg, 1);
    let json = render_dse_json(&cfg, &candidates);
    let json_wide = render_dse_json(&cfg, &run_dse(&cfg, wide));
    assert_eq!(
        json, json_wide,
        "DSE artifact differs between parallelism 1 and {wide}"
    );
    println!("byte-identity gate passed: parallelism 1 == parallelism {wide}\n");

    print_table(&candidates);

    // Gate 2: the shipped VCU validates the model by landing on (or
    // within tolerance of) its own frontier.
    let tol = anchor_tol();
    if let Err(e) = check_anchor(&candidates, tol) {
        panic!("anchor gate failed: {e}");
    }
    let anchor = candidates.iter().find(|c| c.anchor).expect("anchor");
    assert!(
        anchor.on_frontier,
        "shipped design evaluated off-frontier: {anchor:?}"
    );

    // Gate 3: the reported frontier is exactly the non-dominated set.
    let objectives: Vec<[f64; 4]> = candidates.iter().map(|c| c.objectives()).collect();
    for (c, expect) in candidates.iter().zip(frontier_flags(&objectives)) {
        assert_eq!(
            c.on_frontier,
            expect,
            "frontier flag mismatch for {}",
            c.design.label()
        );
    }
    let frontier = candidates.iter().filter(|c| c.on_frontier).count();
    println!(
        "\nanchor gate passed (tol {tol}): shipped VCU on the {frontier}-point frontier; no dominated point reported"
    );

    let path = if smoke {
        std::env::temp_dir()
            .join("dse_frontier_smoke.json")
            .to_string_lossy()
            .into_owned()
    } else {
        results_path("dse_frontier.json")
    };
    std::fs::write(&path, json).expect("write dse json");
    println!("wrote {path}");
}
