//! Experiment harness crate: see the `bin/` targets (one per paper
//! table/figure) and `benches/` (plain `fn main` wall-clock
//! microbenchmarks writing JSON to `results/`; run with
//! `cargo bench -p vcu-bench --offline`). The library provides only
//! [`timing`], the dependency-free median-of-K measurement harness the
//! benches share.

pub mod timing;
