//! Experiment harness crate: see the `bin/` targets (one per paper
//! table/figure) and `benches/` (Criterion microbenchmarks). The
//! library itself is intentionally empty — everything lives in the
//! binaries so each experiment is a self-contained, runnable artifact.
