//! Temporal filtering for alternate reference frames.
//!
//! Builds a denoised, non-displayable synthetic frame by
//! motion-aligning 16×16 blocks from a window of source frames and
//! blending them with similarity weights — the VP9 "altref" technique
//! the paper calls out as "a great example of an optimization that we
//! added given the more relaxed die-area constraints in a data center
//! use case" (§3.2).

use crate::motion::{mc_block, search, SearchParams};
use crate::stats::CodingStats;
use crate::types::MotionVector;
use vcu_media::Frame;
#[cfg(test)]
use vcu_media::Plane;

/// Block size used for filter alignment (matches the paper's 16×16).
const FILTER_BLOCK: usize = 16;

/// Blend diagnostics from a temporal-filter run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterStats {
    /// Mean per-neighbor blend weight in [0, 1]: how well motion
    /// alignment matched the window. Low values mean the content is not
    /// temporally predictable and an altref would mostly waste bits.
    pub mean_weight: f64,
}

/// Temporally filters `frames[center]` against its neighbors, producing
/// a denoised frame suitable for use as an alternate reference.
///
/// Each 16×16 block of the center frame is motion-aligned in every
/// other frame of the window; aligned blocks whose SAD is low get a
/// high blend weight, so static content is averaged (noise reduction)
/// while moving/occluded content falls back to the center frame.
///
/// # Panics
///
/// Panics if `frames` is empty or `center` is out of range.
pub fn temporal_filter(frames: &[&Frame], center: usize, stats: &mut CodingStats) -> Frame {
    temporal_filter_with_stats(frames, center, stats).0
}

/// Like [`temporal_filter`], additionally returning blend diagnostics.
///
/// # Panics
///
/// Panics if `frames` is empty or `center` is out of range.
pub fn temporal_filter_with_stats(
    frames: &[&Frame],
    center: usize,
    stats: &mut CodingStats,
) -> (Frame, FilterStats) {
    assert!(!frames.is_empty(), "filter window must be non-empty");
    assert!(center < frames.len(), "center index out of range");
    let base = frames[center];
    let (w, h) = (base.width(), base.height());
    let mut out = Frame::new(w, h);
    // Chroma passes through unfiltered (luma dominates both quality
    // and noise); copy it from the center frame.
    *out.u_mut() = base.u().clone();
    *out.v_mut() = base.v().clone();

    let params = SearchParams::hardware();
    let mut cur = vec![0u8; FILTER_BLOCK * FILTER_BLOCK];
    let mut aligned = vec![0u8; FILTER_BLOCK * FILTER_BLOCK];
    let mut acc = vec![0.0f64; FILTER_BLOCK * FILTER_BLOCK];

    let mut weight_sum = 0.0f64;
    let mut weight_n = 0u64;
    let mut y = 0;
    while y < h {
        let mut x = 0;
        while x < w {
            let bw = FILTER_BLOCK.min(w - x);
            let bh = FILTER_BLOCK.min(h - y);
            base.y()
                .copy_block_clamped(x as isize, y as isize, bw, bh, &mut cur[..bw * bh]);
            // Start accumulation with the center block at weight 2.
            for i in 0..bw * bh {
                acc[i] = cur[i] as f64 * 2.0;
            }
            let mut weight_total = 2.0f64;

            for (fi, f) in frames.iter().enumerate() {
                if fi == center {
                    continue;
                }
                let r = search(
                    f.y(),
                    base.y(),
                    x,
                    y,
                    bw,
                    bh,
                    MotionVector::ZERO,
                    &params,
                    stats,
                );
                mc_block(f.y(), x, y, r.mv, bw, bh, &mut aligned[..bw * bh]);
                // Similarity weight: 1 for near-identical blocks,
                // decaying to ~0 as mean absolute difference grows.
                let mad = r.sad as f64 / (bw * bh) as f64;
                let weight = (1.0 - mad / 12.0).clamp(0.0, 1.0);
                if weight > 0.0 {
                    crate::kernels::blend_accumulate(
                        &mut acc[..bw * bh],
                        &aligned[..bw * bh],
                        weight,
                    );
                    weight_total += weight;
                }
                weight_sum += weight;
                weight_n += 1;
            }

            stats.temporal_filter_pixels += (bw * bh) as u64 * frames.len() as u64;
            for by in 0..bh {
                for bx in 0..bw {
                    let v = (acc[by * bw + bx] / weight_total).round().clamp(0.0, 255.0) as u8;
                    out.y_mut().set(x + bx, y + by, v);
                }
            }
            x += FILTER_BLOCK;
        }
        y += FILTER_BLOCK;
    }
    let mean_weight = if weight_n == 0 {
        1.0
    } else {
        weight_sum / weight_n as f64
    };
    (out, FilterStats { mean_weight })
}

/// Convenience: filters the middle frame of a window.
pub fn filter_window(frames: &[&Frame], stats: &mut CodingStats) -> Frame {
    temporal_filter(frames, frames.len() / 2, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_static(seed: u64) -> Frame {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let base = 100 + ((x / 8 + y / 8) * 20) as i32;
                // Deterministic "noise".
                let n = ((x as u64 * 31 + y as u64 * 17 + seed * 97) % 7) as i32 - 3;
                f.y_mut().set(x, y, (base + n).clamp(0, 255) as u8);
            }
        }
        f
    }

    fn plane_mse(a: &Plane, b: &Plane) -> f64 {
        a.sse(b) as f64 / (a.width() * a.height()) as f64
    }

    #[test]
    fn filtering_reduces_noise_on_static_content() {
        // Clean signal + per-frame noise; the filtered center frame
        // should be closer to the clean signal than the noisy center.
        let clean = {
            let mut f = Frame::new(32, 32);
            for y in 0..32 {
                for x in 0..32 {
                    f.y_mut().set(x, y, (100 + ((x / 8 + y / 8) * 20)) as u8);
                }
            }
            f
        };
        let f0 = noisy_static(1);
        let f1 = noisy_static(2);
        let f2 = noisy_static(3);
        let mut stats = CodingStats::new();
        let filtered = temporal_filter(&[&f0, &f1, &f2], 1, &mut stats);
        let before = plane_mse(f1.y(), clean.y());
        let after = plane_mse(filtered.y(), clean.y());
        assert!(
            after < before * 0.8,
            "filter did not denoise: before {before}, after {after}"
        );
        assert!(stats.temporal_filter_pixels > 0);
    }

    #[test]
    fn single_frame_window_is_identity() {
        let f = noisy_static(5);
        let mut stats = CodingStats::new();
        let out = temporal_filter(&[&f], 0, &mut stats);
        assert_eq!(out.y(), f.y());
    }

    #[test]
    fn dissimilar_frames_are_rejected() {
        // Center frame vs a wildly different frame: weight ~0, output
        // should stay close to the center frame.
        let center = noisy_static(1);
        let mut other = Frame::new(32, 32);
        other.y_mut().fill(255);
        let mut stats = CodingStats::new();
        let out = temporal_filter(&[&other, &center, &other], 1, &mut stats);
        let drift = plane_mse(out.y(), center.y());
        assert!(drift < 4.0, "output drifted {drift} from center");
    }

    #[test]
    fn chroma_passes_through() {
        let mut f = noisy_static(1);
        f.u_mut().fill(77);
        let g = noisy_static(2);
        let mut stats = CodingStats::new();
        let out = temporal_filter(&[&f, &g], 0, &mut stats);
        assert!(out.u().data().iter().all(|&v| v == 77));
    }
}
