//! From-scratch block-based video codec with two profiles.
//!
//! Implements the transcoding substrate the VCU accelerates: a real
//! (simplified) hybrid video codec — motion-compensated prediction,
//! integer transform, scalar quantization, adaptive binary arithmetic
//! entropy coding, in-loop deblocking — with an [`types::Profile`] axis
//! mirroring the H.264 vs VP9 tool gap and full encode/decode
//! round-trip fidelity (the decoder reproduces the encoder's
//! reconstruction bit-exactly).
//!
//! The encoder additionally meters its own work ([`stats::CodingStats`])
//! so the chip/CPU timing models in `vcu-chip` can price software and
//! hardware transcodes from the same measured operation counts.
pub mod api;
pub(crate) mod block;
pub mod config;
pub mod deblock;
pub mod entropy;
pub mod frame_coder;
pub mod intra;
pub mod kernels;
pub mod models;
pub mod motion;
pub mod quant;
pub mod rc;
pub mod stats;
pub mod tempfilter;
pub mod transform;
pub mod types;

pub use api::{
    decode, encode, encode_batch, encode_parallel, encode_parallel_traced, encode_traced,
    CodedFrameInfo, Decoded, Encoded,
};
pub use config::{env_threads, EncoderConfig, PassMode, RateControl, Toolset, TuningLevel};
pub use stats::CodingStats;
pub use types::{CodecError, FrameKind, MotionVector, Profile, Qp};
