//! Compute-work accounting for encodes and decodes.
//!
//! Every encode/decode meters the operations it performs. The timing
//! models in `vcu-chip` convert these counts into CPU-seconds, GPU
//! time, or VCU pipeline cycles — so the same measured workload drives
//! every device model in Table 1, rather than each device getting its
//! own hand-waved constant.

use std::ops::{Add, AddAssign, Sub};

/// Operation counts accumulated while coding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodingStats {
    /// Luma pixels processed (sum over frames of width × height).
    pub pixels: u64,
    /// Frames coded.
    pub frames: u64,
    /// SAD operations, in pixel-difference units (block pixels summed
    /// per SAD evaluation) — the motion-estimation work metric. This is
    /// the *device timing charge*: a hardware SAD array evaluates the
    /// whole block regardless of early exit, so every candidate is
    /// billed at full `bw * bh` and the chip model's calibration is
    /// independent of host-side search optimizations.
    pub sad_pixels: u64,
    /// SAD pixels actually examined by the host implementation after
    /// early-exit thresholding — the honest CPU-side work metric. Always
    /// `<= sad_pixels`; excluded from [`CodingStats::work_units`] so the
    /// device models keep billing the fixed-function cost above.
    pub sad_pixels_examined: u64,
    /// Pixels run through forward+inverse transform pairs.
    pub transform_pixels: u64,
    /// Pixels fetched by motion compensation (including subpel taps).
    pub mc_pixels: u64,
    /// Pixels predicted by intra modes.
    pub intra_pixels: u64,
    /// Pixels passed through the temporal filter.
    pub temporal_filter_pixels: u64,
    /// Pixels touched by the in-loop deblocking filter.
    pub deblock_pixels: u64,
    /// Entropy-coded output bits.
    pub bits: u64,
    /// Blocks coded as intra.
    pub intra_blocks: u64,
    /// Blocks coded as inter.
    pub inter_blocks: u64,
    /// Reference-frame bytes read (before reference compression).
    pub ref_bytes_read: u64,
}

impl CodingStats {
    /// An empty stats record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Output size in bytes (bits rounded up).
    pub fn bytes(&self) -> u64 {
        self.bits.div_ceil(8)
    }

    /// Average bits per pixel — the compression headline number.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.bits as f64 / self.pixels as f64
        }
    }

    /// Total abstract compute work in "pixel-ops": a weighted sum of
    /// the metered operations. The weights reflect relative per-pixel
    /// cost of each kernel on a general-purpose CPU; device models
    /// apply their own per-kernel scaling on top.
    pub fn work_units(&self) -> f64 {
        self.sad_pixels as f64 * 1.0
            + self.transform_pixels as f64 * 4.0
            + self.mc_pixels as f64 * 1.5
            + self.intra_pixels as f64 * 1.0
            + self.temporal_filter_pixels as f64 * 6.0
            + self.deblock_pixels as f64 * 1.0
            + self.bits as f64 * 1.2
    }
}

impl Add for CodingStats {
    type Output = CodingStats;

    fn add(self, rhs: CodingStats) -> CodingStats {
        CodingStats {
            pixels: self.pixels + rhs.pixels,
            frames: self.frames + rhs.frames,
            sad_pixels: self.sad_pixels + rhs.sad_pixels,
            sad_pixels_examined: self.sad_pixels_examined + rhs.sad_pixels_examined,
            transform_pixels: self.transform_pixels + rhs.transform_pixels,
            mc_pixels: self.mc_pixels + rhs.mc_pixels,
            intra_pixels: self.intra_pixels + rhs.intra_pixels,
            temporal_filter_pixels: self.temporal_filter_pixels + rhs.temporal_filter_pixels,
            deblock_pixels: self.deblock_pixels + rhs.deblock_pixels,
            bits: self.bits + rhs.bits,
            intra_blocks: self.intra_blocks + rhs.intra_blocks,
            inter_blocks: self.inter_blocks + rhs.inter_blocks,
            ref_bytes_read: self.ref_bytes_read + rhs.ref_bytes_read,
        }
    }
}

impl AddAssign for CodingStats {
    fn add_assign(&mut self, rhs: CodingStats) {
        *self = *self + rhs;
    }
}

impl Sub for CodingStats {
    type Output = CodingStats;

    /// Componentwise difference — used to capture the exact metering
    /// delta of a unit of work (e.g. one motion search) so a cached
    /// result can replay the identical charge.
    fn sub(self, rhs: CodingStats) -> CodingStats {
        CodingStats {
            pixels: self.pixels - rhs.pixels,
            frames: self.frames - rhs.frames,
            sad_pixels: self.sad_pixels - rhs.sad_pixels,
            sad_pixels_examined: self.sad_pixels_examined - rhs.sad_pixels_examined,
            transform_pixels: self.transform_pixels - rhs.transform_pixels,
            mc_pixels: self.mc_pixels - rhs.mc_pixels,
            intra_pixels: self.intra_pixels - rhs.intra_pixels,
            temporal_filter_pixels: self.temporal_filter_pixels - rhs.temporal_filter_pixels,
            deblock_pixels: self.deblock_pixels - rhs.deblock_pixels,
            bits: self.bits - rhs.bits,
            intra_blocks: self.intra_blocks - rhs.intra_blocks,
            inter_blocks: self.inter_blocks - rhs.inter_blocks,
            ref_bytes_read: self.ref_bytes_read - rhs.ref_bytes_read,
        }
    }
}

impl std::iter::Sum for CodingStats {
    fn sum<I: Iterator<Item = CodingStats>>(iter: I) -> Self {
        iter.fold(CodingStats::new(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_componentwise() {
        let a = CodingStats {
            pixels: 10,
            bits: 100,
            ..CodingStats::new()
        };
        let b = CodingStats {
            pixels: 5,
            bits: 50,
            sad_pixels: 7,
            ..CodingStats::new()
        };
        let c = a + b;
        assert_eq!(c.pixels, 15);
        assert_eq!(c.bits, 150);
        assert_eq!(c.sad_pixels, 7);
    }

    #[test]
    fn bytes_rounds_up() {
        let s = CodingStats {
            bits: 9,
            ..CodingStats::new()
        };
        assert_eq!(s.bytes(), 2);
    }

    #[test]
    fn bits_per_pixel_safe_on_empty() {
        assert_eq!(CodingStats::new().bits_per_pixel(), 0.0);
    }

    #[test]
    fn work_units_monotone() {
        let mut a = CodingStats::new();
        a.sad_pixels = 1000;
        let mut b = a;
        b.transform_pixels = 500;
        assert!(b.work_units() > a.work_units());
    }

    #[test]
    fn sub_inverts_add() {
        let a = CodingStats {
            sad_pixels: 100,
            sad_pixels_examined: 60,
            bits: 40,
            ..CodingStats::new()
        };
        let b = CodingStats {
            sad_pixels: 30,
            sad_pixels_examined: 12,
            bits: 8,
            ..CodingStats::new()
        };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn examined_pixels_do_not_change_device_billing() {
        let mut a = CodingStats::new();
        a.sad_pixels = 1000;
        let w = a.work_units();
        a.sad_pixels_examined = 400;
        assert_eq!(
            a.work_units(),
            w,
            "early-exit metering must not move device charges"
        );
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            CodingStats {
                frames: 1,
                ..CodingStats::new()
            };
            5
        ];
        let total: CodingStats = parts.into_iter().sum();
        assert_eq!(total.frames, 5);
    }
}
