//! Adaptive binary arithmetic (boolean) coder.
//!
//! This is a VP8/VP9-style "bool coder": each binary decision is coded
//! against an 8-bit probability, and probabilities adapt per context as
//! symbols are coded. The paper notes entropy coding is
//! "sequential-logic-heavy and consequently challenging to implement in
//! hardware" (§3.2); here it is also the piece that turns our residual
//! data into a genuinely compressed bitstream, so RD curves are real.
//!
//! Layout: [`BoolEncoder`] / [`BoolDecoder`] implement the arithmetic
//! coding core; [`AdaptiveModel`] supplies per-context adaptive
//! probabilities; the `write_*`/`read_*` helpers binarize small
//! integers (unary + exp-Golomb hybrid) for coefficient magnitudes and
//! motion vector components.

/// Probability that a bit is 0, in `[1, 255]` out of 256.
pub type Prob = u8;

/// Probability adaptation rate shift: larger adapts slower.
const ADAPT_SHIFT: u8 = 5;

/// Adapts a probability towards an observed bit (VP8-style shift update).
#[inline]
pub fn adapt(p: Prob, bit: bool) -> Prob {
    if bit {
        // Bit was 1: probability of zero decreases.
        (p - (p >> ADAPT_SHIFT)).max(1)
    } else {
        p + ((255 - p) >> ADAPT_SHIFT)
    }
}

/// Arithmetic encoder over a byte buffer.
///
/// An LZMA-style binary range coder: 32-bit range, 64-bit low with a
/// cached-byte carry deferral, 8-bit probabilities. The first output
/// byte is a structural zero that [`BoolDecoder`] consumes at init.
///
/// # Example
///
/// ```
/// use vcu_codec::entropy::{BoolEncoder, BoolDecoder};
///
/// let mut enc = BoolEncoder::new();
/// enc.put(true, 128);
/// enc.put(false, 200);
/// let bytes = enc.finish();
/// let mut dec = BoolDecoder::new(&bytes);
/// assert!(dec.get(128));
/// assert!(!dec.get(200));
/// ```
#[derive(Debug, Clone)]
pub struct BoolEncoder {
    low: u64,
    range: u32,
    cache: u8,
    /// Number of pending bytes (the cache byte plus deferred 0xFF runs).
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for BoolEncoder {
    fn default() -> Self {
        Self::new()
    }
}

const TOP: u32 = 1 << 24;

impl BoolEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        BoolEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Encodes one bit with probability `prob` (of the bit being 0).
    #[inline]
    pub fn put(&mut self, bit: bool, prob: Prob) {
        debug_assert!(prob >= 1);
        let bound = (self.range >> 8) * prob as u32;
        if bit {
            self.low += bound as u64;
            self.range -= bound;
        } else {
            self.range = bound;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            while self.cache_size > 1 {
                self.out.push(0xFFu8.wrapping_add(carry));
                self.cache_size -= 1;
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        // Keep only the low 24 bits before shifting: the byte at bits
        // 24..32 has been captured in `cache` (or deferred as a 0xFF run).
        self.low = ((self.low as u32) << 8) as u64;
    }

    /// Encodes a bit at probability 1/2 (no model).
    #[inline]
    pub fn put_raw(&mut self, bit: bool) {
        self.put(bit, 128);
    }

    /// Encodes `n` raw bits of `v`, most significant first.
    pub fn put_bits(&mut self, v: u32, n: u32) {
        for i in (0..n).rev() {
            self.put_raw((v >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far (approximate until `finish`).
    pub fn bit_count(&self) -> u64 {
        (self.out.len() as u64 + self.cache_size) * 8
    }

    /// Flushes and returns the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Arithmetic decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct BoolDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    code: u32,
    range: u32,
}

impl<'a> BoolDecoder<'a> {
    /// Creates a decoder over `input`. Reading past the end yields
    /// zero bytes (the encoder's flush guarantees enough padding for
    /// well-formed streams; truncation shows up as corrupt symbols,
    /// which callers detect with consistency checks).
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = BoolDecoder {
            input,
            pos: 0,
            code: 0,
            range: u32::MAX,
        };
        // Consume the encoder's structural zero byte plus 4 code bytes.
        for _ in 0..5 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit with probability `prob` (of the bit being 0).
    #[inline]
    pub fn get(&mut self, prob: Prob) -> bool {
        let bound = (self.range >> 8) * prob as u32;
        let bit = self.code >= bound;
        if bit {
            self.code -= bound;
            self.range -= bound;
        } else {
            self.range = bound;
        }
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }

    /// Decodes a probability-1/2 bit.
    #[inline]
    pub fn get_raw(&mut self) -> bool {
        self.get(128)
    }

    /// Decodes `n` raw bits, most significant first.
    pub fn get_bits(&mut self, n: u32) -> u32 {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.get_raw() as u32;
        }
        v
    }

    /// True if the decoder has consumed bytes beyond the input (a
    /// strong signal of truncation/corruption).
    pub fn overrun(&self) -> bool {
        self.pos > self.input.len().saturating_add(4)
    }
}

/// A bank of adaptive binary probabilities indexed by context.
///
/// Encoder and decoder each hold one and must apply identical updates;
/// determinism of [`adapt`] guarantees they stay in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveModel {
    probs: Vec<Prob>,
}

impl AdaptiveModel {
    /// Creates `n` contexts, all initialized to 1/2.
    pub fn new(n: usize) -> Self {
        AdaptiveModel {
            probs: vec![128; n],
        }
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if the model has no contexts.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Encodes `bit` in context `ctx`, adapting the model.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[inline]
    pub fn encode(&mut self, enc: &mut BoolEncoder, ctx: usize, bit: bool) {
        let p = self.probs[ctx];
        enc.put(bit, p);
        self.probs[ctx] = adapt(p, bit);
    }

    /// Decodes a bit in context `ctx`, adapting the model.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[inline]
    pub fn decode(&mut self, dec: &mut BoolDecoder<'_>, ctx: usize) -> bool {
        let p = self.probs[ctx];
        let bit = dec.get(p);
        self.probs[ctx] = adapt(p, bit);
        bit
    }

    /// Estimated cost in (1/256)-bit units of coding `bit` in `ctx`
    /// *without* adapting — used by RDO to price candidate modes.
    pub fn cost(&self, ctx: usize, bit: bool) -> u32 {
        let p0 = self.probs[ctx] as f64 / 256.0;
        let p = if bit { 1.0 - p0 } else { p0 };
        (-(p.max(1e-6)).log2() * 256.0) as u32
    }
}

/// Writes a non-negative integer with a unary prefix + exp-Golomb tail,
/// using `model` contexts `base..base+8` for the prefix bits.
pub fn write_uint(enc: &mut BoolEncoder, model: &mut AdaptiveModel, base: usize, v: u32) {
    // Unary-coded bucket: 0, 1, 2, 3, then exp-Golomb remainder.
    let bucket = (v.min(3)) as usize;
    for i in 0..bucket {
        model.encode(enc, base + i, true);
    }
    if v < 3 {
        model.encode(enc, base + bucket, false);
        return;
    }
    // v >= 3: encode v - 3 in exp-Golomb (raw bits).
    let rem = v - 3;
    let nbits = 32 - (rem + 1).leading_zeros();
    for _ in 0..nbits - 1 {
        model.encode(enc, base + 3, true);
    }
    model.encode(enc, base + 3, false);
    // nbits-1 suffix bits of (rem+1).
    enc.put_bits((rem + 1) & ((1 << (nbits - 1)) - 1), nbits - 1);
}

/// Reads an integer written by [`write_uint`].
pub fn read_uint(dec: &mut BoolDecoder<'_>, model: &mut AdaptiveModel, base: usize) -> u32 {
    let mut bucket = 0usize;
    while bucket < 3 && model.decode(dec, base + bucket) {
        bucket += 1;
    }
    if bucket < 3 {
        return bucket as u32;
    }
    // Exp-Golomb remainder. A corrupt stream can present an absurdly
    // long prefix; saturate instead of panicking — downstream range
    // checks reject the value.
    let mut nbits = 1u32;
    while model.decode(dec, base + 3) {
        nbits += 1;
        if nbits >= 31 {
            return u32::MAX;
        }
    }
    let suffix = dec.get_bits(nbits - 1);
    let rem = ((1u32 << (nbits - 1)) | suffix) - 1;
    rem.saturating_add(3)
}

/// Writes a signed integer: magnitude via [`write_uint`], then a raw
/// sign bit for nonzero values.
pub fn write_int(enc: &mut BoolEncoder, model: &mut AdaptiveModel, base: usize, v: i32) {
    write_uint(enc, model, base, v.unsigned_abs());
    if v != 0 {
        enc.put_raw(v < 0);
    }
}

/// Reads an integer written by [`write_int`].
pub fn read_int(dec: &mut BoolDecoder<'_>, model: &mut AdaptiveModel, base: usize) -> i32 {
    let mag = read_uint(dec, model, base);
    if mag == 0 {
        0
    } else if dec.get_raw() {
        -(mag as i32)
    } else {
        mag as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bits_round_trip() {
        let mut enc = BoolEncoder::new();
        let pattern = [true, false, true, true, false, false, true, false];
        for &b in &pattern {
            enc.put_raw(b);
        }
        enc.put_bits(0xABCD, 16);
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        for &b in &pattern {
            assert_eq!(dec.get_raw(), b);
        }
        assert_eq!(dec.get_bits(16), 0xABCD);
    }

    #[test]
    fn skewed_probability_round_trip() {
        let mut enc = BoolEncoder::new();
        let bits: Vec<bool> = (0..1000).map(|i| i % 17 == 0).collect();
        for &b in &bits {
            enc.put(b, 240); // mostly zeros, high p0.
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        for &b in &bits {
            assert_eq!(dec.get(240), b);
        }
    }

    #[test]
    fn skewed_stream_compresses() {
        // 10_000 mostly-zero bits at p0=250 should take far less than
        // 1250 bytes.
        let mut enc = BoolEncoder::new();
        for i in 0..10_000 {
            enc.put(i % 100 == 0, 250);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() < 400,
            "poor compression: {} bytes for 10000 skewed bits",
            bytes.len()
        );
    }

    #[test]
    fn adaptive_model_stays_in_sync() {
        let mut enc = BoolEncoder::new();
        let mut m_enc = AdaptiveModel::new(4);
        let bits: Vec<(usize, bool)> = (0..500).map(|i| (i % 4, (i * 7) % 13 < 4)).collect();
        for &(ctx, b) in &bits {
            m_enc.encode(&mut enc, ctx, b);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut m_dec = AdaptiveModel::new(4);
        for &(ctx, b) in &bits {
            assert_eq!(m_dec.decode(&mut dec, ctx), b);
        }
        assert_eq!(m_enc, m_dec, "models diverged");
    }

    #[test]
    fn adaptation_learns_bias() {
        // Encoding a heavily biased stream adaptively should beat the
        // unadapted 1/2-probability cost substantially.
        let bits: Vec<bool> = (0..4000).map(|i| i % 50 == 0).collect();
        let mut enc_adapt = BoolEncoder::new();
        let mut model = AdaptiveModel::new(1);
        for &b in &bits {
            model.encode(&mut enc_adapt, 0, b);
        }
        let adaptive_len = enc_adapt.finish().len();
        let mut enc_flat = BoolEncoder::new();
        for &b in &bits {
            enc_flat.put_raw(b);
        }
        let flat_len = enc_flat.finish().len();
        assert!(
            adaptive_len * 3 < flat_len,
            "adaptive {adaptive_len} vs flat {flat_len}"
        );
    }

    #[test]
    fn uint_round_trip() {
        let values = [0u32, 1, 2, 3, 4, 5, 10, 63, 64, 100, 1000, 65535, 1 << 20];
        let mut enc = BoolEncoder::new();
        let mut me = AdaptiveModel::new(8);
        for &v in &values {
            write_uint(&mut enc, &mut me, 0, v);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut md = AdaptiveModel::new(8);
        for &v in &values {
            assert_eq!(read_uint(&mut dec, &mut md, 0), v);
        }
    }

    #[test]
    fn int_round_trip() {
        let values = [0i32, 1, -1, 5, -5, 127, -128, 4000, -4000];
        let mut enc = BoolEncoder::new();
        let mut me = AdaptiveModel::new(8);
        for &v in &values {
            write_int(&mut enc, &mut me, 0, v);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut md = AdaptiveModel::new(8);
        for &v in &values {
            assert_eq!(read_int(&mut dec, &mut md, 0), v);
        }
    }

    #[test]
    fn adapt_bounds() {
        let mut p: Prob = 128;
        for _ in 0..1000 {
            p = adapt(p, true);
        }
        assert!(p >= 1);
        for _ in 0..1000 {
            p = adapt(p, false);
        }
        assert!(p >= 200, "prob failed to adapt towards certain-zero: {p}");
    }

    #[test]
    fn cost_estimates_are_sane() {
        let m = AdaptiveModel::new(1);
        // At p=128 both bits cost ~1 bit = 256 units.
        assert!((m.cost(0, false) as i32 - 256).abs() <= 2);
        assert!((m.cost(0, true) as i32 - 256).abs() <= 2);
    }

    #[test]
    fn empty_input_decoder_yields_zeros() {
        let mut dec = BoolDecoder::new(&[]);
        // Must not panic; zero-fill behaviour.
        let _ = dec.get_raw();
        let _ = dec.get_bits(16);
    }
}
